"""Benchmark helpers: uncapturable reporting.

Each benchmark regenerates one of the paper's tables or figures and prints
it side-by-side with the published values.  Reports are written through
``sys.__stdout__`` so they appear even under pytest's output capture, and
are also persisted under ``benchmarks/reports/`` for later inspection.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


def emit(title: str, body: str) -> None:
    """Print a report past pytest's capture and persist it."""
    text = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n"
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")[:60]
    (REPORT_DIR / f"{slug}.txt").write_text(text, encoding="utf-8")


@pytest.fixture
def report():
    return emit


@pytest.fixture(scope="session")
def dataset():
    from repro.dataset import go171

    return go171.load()


@pytest.fixture(scope="session")
def app_usages():
    """Static usage profiles of the six mini-apps (computed once)."""
    from repro.apps import APP_PACKAGES
    from repro.study import usage_static

    apps_dir = Path(__file__).resolve().parents[1] / "src" / "repro" / "apps"
    return {
        paper_app: usage_static.analyze_package(apps_dir / pkg, pkg)
        for pkg, paper_app in APP_PACKAGES.items()
    }
