"""Table 11 — synchronization primitives in non-blocking patches.

Paper (cells published verbatim): Mutex leads with 32 uses, Channel second
with 19 — channels fix not only channel bugs but shared-memory ones too
(Observation 9).  Headline lifts: lift(chan, Channel) = 2.7 over uses,
lift(anonymous, Private) = 2.23, lift(chan, Move_s) = 2.21.
"""

import pytest

from repro.dataset.paper_values import (
    LIFT_NONBLOCKING_ANON_PRIVATE,
    LIFT_NONBLOCKING_CHAN_CHANNEL,
    LIFT_NONBLOCKING_CHAN_MOVE,
)
from repro.dataset.records import (
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from repro.study import lift as lift_mod
from repro.study import tables, taxonomy


def test_table11_fix_primitives(benchmark, report, dataset):
    matrix = benchmark(taxonomy.primitive_use_matrix, dataset)

    report("Table 11: fix primitives for non-blocking bugs", tables.table11(dataset))

    column = {
        prim: sum(matrix[sub].get(prim, 0) for sub in matrix)
        for prim in FixPrimitive
    }
    assert column[FixPrimitive.MUTEX] == 32
    assert column[FixPrimitive.CHANNEL] == 19
    assert column[FixPrimitive.ATOMIC] == 10
    assert column[FixPrimitive.WAITGROUP] == 7
    assert column[FixPrimitive.COND] == 4
    assert column[FixPrimitive.MISC] == 3
    assert column[FixPrimitive.NONE] == 19

    # Observation 9: channels also fix shared-memory bugs.
    shared_channel_fixes = sum(
        matrix[sub].get(FixPrimitive.CHANNEL, 0)
        for sub in (NonBlockingSubCause.TRADITIONAL,
                    NonBlockingSubCause.ANONYMOUS_FUNCTION,
                    NonBlockingSubCause.SHARED_LIBRARY)
    )
    assert shared_channel_fixes >= 5

    chan_channel = lift_mod.cause_primitive_lift(
        dataset, NonBlockingSubCause.CHAN, FixPrimitive.CHANNEL)
    assert chan_channel.lift == pytest.approx(LIFT_NONBLOCKING_CHAN_CHANNEL, abs=0.05)
    anon_private = lift_mod.cause_strategy_lift(
        dataset, Behavior.NONBLOCKING,
        NonBlockingSubCause.ANONYMOUS_FUNCTION, FixStrategy.PRIVATIZE)
    assert anon_private.lift == pytest.approx(LIFT_NONBLOCKING_ANON_PRIVATE, abs=0.02)
    chan_move = lift_mod.cause_strategy_lift(
        dataset, Behavior.NONBLOCKING, NonBlockingSubCause.CHAN,
        FixStrategy.MOVE_SYNC)
    assert chan_move.lift == pytest.approx(LIFT_NONBLOCKING_CHAN_MOVE, abs=0.02)


def test_table11_channel_fix_of_shared_memory_bug_demonstrated(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table11_channel_fix_of_shared_memory_bug_demonstrated(report), rounds=1, iterations=1)


def _run_test_table11_channel_fix_of_shared_memory_bug_demonstrated(report):
    """Implication 7 made executable: the order-violation kernel is a
    shared-memory bug whose committed fix is a channel."""
    from repro.bugs import registry
    from repro.dataset.records import Cause

    kernel = registry.get("nonblocking-trad-kubernetes-order-violation")
    assert kernel.meta.cause == Cause.SHARED_MEMORY
    assert FixPrimitive.CHANNEL in kernel.meta.fix_primitives
    assert kernel.manifestation_seeds(range(20))
    assert not any(kernel.manifested(kernel.run_fixed(seed=s)) for s in range(10))
    report(
        "Table 11 companion: message passing repairing shared memory",
        f"{kernel.meta.kernel_id}: shared-memory order violation fixed by a "
        f"channel signal — buggy manifests, fixed never does.",
    )
