"""Static analysis scorecard: zero-execution recall vs ground-truth labels.

Not a paper table — this guards the ``repro.static`` subsystem the way
``bench_predict_scorecard`` guards the predictive tier.  The same
measurements back ``repro bench --static``, whose JSON lands in the
committed ``BENCH_static.json`` baseline.

Three acceptance bars from the subsystem's design:

* Over the whole kernel corpus — both variants, no execution at all —
  the checkers must flag at least 80% of the buggy variants
  (recall >= 0.8) while keeping fixed variants clean (precision >= 0.8,
  with the pinned known-racy fixed variants scored as true positives).
* The full scan (108 program scans plus the mini-apps in module mode)
  must finish in well under the time of a single dynamic sweep —
  the budget here is one wall-clock second.
* As the cheapest pre-filter, static triage must let the explorer skip
  schedule search on the bug-free bench kernels (runs saved > 0, zero
  false skips) while still flagging every buggy variant.
"""

from repro.bench import run_static_benchmarks


def test_static_scorecard_and_triage_savings(report):
    document = run_static_benchmarks()
    scorecard = document["scorecard"]
    triage = document["triage"]

    checker_text = " ".join(
        f"{stage}:{secs:.2f}s" for stage, secs
        in sorted(scorecard["checker_seconds"].items()))
    lines = [f"kernels {scorecard['kernels']}  "
             f"recall {scorecard['recall']:.0%}  "
             f"precision {scorecard['precision']:.0%}  "
             f"full scan {scorecard['scan_wall_s']:.2f}s  "
             f"mini-apps {'clean' if scorecard['apps_clean'] else 'FLAGGED'}",
             f"per-stage wall: {checker_text}",
             f"{'kernel':<45} {'explore':>8} {'saved':>6} {'buggy':>8}"]
    for kid, row in triage["kernels"].items():
        lines.append(
            f"{kid:<45} {row['explore_runs']:>8} {row['runs_saved']:>6} "
            f"{'flagged' if row['buggy_flagged'] else 'MISSED':>8}")
    lines.append(f"total saved {triage['total_runs_saved']}/"
                 f"{triage['total_explore_runs']}  "
                 f"false skips: {triage['false_skips'] or 'none'}")
    report("Static analysis: scorecard + triage savings", "\n".join(lines))

    assert scorecard["recall"] >= 0.8, scorecard
    assert scorecard["precision"] >= 0.8, scorecard
    assert scorecard["apps_clean"], scorecard
    assert triage["all_fixed_screened_clean"]
    assert not triage["false_skips"]
    assert triage["total_runs_saved"] > 0
    assert all(row["triage_clean"] for row in triage["kernels"].values())
