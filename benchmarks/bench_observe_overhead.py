"""Observer self-overhead: the observability layer's two headline claims.

1. **Determinism** — observing a run is a pure function of ``(program,
   seed)``: two same-seed observed runs produce *byte-identical* profile
   and metrics dumps, and the observed schedule is bit-identical to the
   unobserved one (inertness).

2. **Bounded cost** — full observation (sites, stacks, occupancy series)
   costs less than ``OVERHEAD_BOUND``× wall-clock on the simulator-perf
   workloads, measured best-of-N to damp host noise.
"""

from repro import measure_overhead, run
from repro.chan import recv
from repro.observe import Observer, schedule_fingerprint
from repro.study.tables import render

#: Wall-clock ratio ceiling for the fully-instrumented observer.  The
#: acceptance bound is 2.0; the assert leaves headroom for CI jitter on
#: sub-millisecond workloads by repeating and taking the best run.
OVERHEAD_BOUND = 2.0
REPEATS = 5


# ----------------------------------------------------------------------
# Workloads: the bench_simulator_perf substrate scenarios.
# ----------------------------------------------------------------------


def pingpong(rt):
    ping = rt.make_chan()
    pong = rt.make_chan()

    def echo():
        for _ in range(50):
            ping.recv()
            pong.send(None)

    rt.go(echo)
    for _ in range(50):
        ping.send(None)
        pong.recv()


def mutex_contention(rt):
    mu = rt.mutex()
    done = rt.waitgroup()

    def worker():
        for _ in range(25):
            with mu:
                pass
        done.done()

    for _ in range(4):
        done.add(1)
        rt.go(worker)
    done.wait()


def select_fanin(rt):
    channels = [rt.make_chan(1) for _ in range(4)]

    def feeder(ch):
        for i in range(10):
            ch.send(i)

    for ch in channels:
        rt.go(feeder, ch)
    got = 0
    while got < 40:
        _i, _v, _ok = rt.select(*[recv(ch) for ch in channels])
        got += 1


def goroutine_spawn(rt):
    wg = rt.waitgroup()
    for _ in range(40):
        wg.add(1)
        rt.go(wg.done)
    wg.wait()


WORKLOADS = [
    ("channel pingpong", pingpong),
    ("mutex contention", mutex_contention),
    ("select fan-in", select_fanin),
    ("goroutine spawn", goroutine_spawn),
]


def test_observe_dumps_are_byte_identical_per_seed(benchmark, report):
    def dumps():
        out = []
        for name, program in WORKLOADS:
            for seed in (0, 3):
                first = run(program, seed=seed, observe=True)
                second = run(program, seed=seed, observe=True)
                out.append((name, seed,
                            first.observation.to_json(),
                            second.observation.to_json()))
        return out

    pairs = benchmark.pedantic(dumps, rounds=1, iterations=1)
    mismatched = [(name, seed) for name, seed, a, b in pairs if a != b]
    assert not mismatched, mismatched
    report(
        "Observer determinism",
        "\n".join(f"{name} seed={seed}: {len(a)} byte dump, byte-identical"
                  for name, seed, a, _ in pairs),
    )


def test_observe_is_schedule_inert_on_every_workload(benchmark):
    def fingerprints():
        out = []
        for name, program in WORKLOADS:
            bare = run(program, seed=1)
            observed = run(program, seed=1, observe=True)
            out.append((name, schedule_fingerprint(bare),
                        schedule_fingerprint(observed)))
        return out

    rows = benchmark.pedantic(fingerprints, rounds=1, iterations=1)
    diverged = [name for name, bare, observed in rows if bare != observed]
    assert not diverged, diverged


def test_observe_overhead_bounded(benchmark, report):
    def measure():
        return [
            measure_overhead(program, seed=1, repeats=REPEATS, name=name)
            for name, program in WORKLOADS
        ]

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = render(
        ["Workload", "Steps", "Base ms", "Observed ms", "Ratio", "Schedule"],
        [[r.program, r.steps, f"{r.base_seconds * 1e3:.2f}",
          f"{r.observed_seconds * 1e3:.2f}", f"{r.ratio:.2f}x",
          "identical" if r.identical_schedule else "DIVERGED"]
         for r in reports],
        title=f"Observer overhead (best of {REPEATS}, bound "
              f"{OVERHEAD_BOUND:.1f}x)",
    )
    report("Observer overhead", table)

    assert all(r.identical_schedule for r in reports)
    over = [(r.program, r.ratio) for r in reports if r.ratio >= OVERHEAD_BOUND]
    assert not over, f"observer overhead exceeded {OVERHEAD_BOUND}x: {over}"


def test_observe_without_sites_is_cheaper_dimension(benchmark, report):
    """The capture knobs matter: a site-free observer does strictly less
    work per block, so its dump is smaller and its overhead no larger."""

    def measure():
        full = run(mutex_contention, seed=1, observe=Observer())
        lean = run(mutex_contention, seed=1,
                   observe=Observer(capture_sites=False,
                                    track_occupancy=False))
        return full.observation, lean.observation

    full_obs, lean_obs = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert len(lean_obs.to_json()) < len(full_obs.to_json())
    report(
        "Observer capture knobs",
        f"full dump: {len(full_obs.to_json())} bytes; "
        f"sites+occupancy off: {len(lean_obs.to_json())} bytes",
    )
