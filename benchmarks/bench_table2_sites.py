"""Table 2 — goroutine creation sites.

Paper: 0.18–0.83 sites/KLOC across the six apps; anonymous functions
dominate everywhere except Kubernetes and BoltDB; gRPC-C has only 5
creation sites (0.03/KLOC) vs gRPC-Go's 0.83.

Ours: the same *orderings* over the mini-apps.  Absolute densities are
higher because mini-apps are all concurrency core with none of the bulk
(UI, codecs, vendored code) that dilutes real repositories; the
Go-vs-C-style density ratio is the faithful quantity.
"""

from pathlib import Path

from repro.dataset.paper_values import (
    TABLE2_GRPC_C_SITES_PER_KLOC,
    TABLE2_NORMAL_DOMINANT_APPS,
    TABLE2_SITES_PER_KLOC_RANGE,
)
from repro.dataset.records import App
from repro.study import usage_static
from repro.study.tables import render

APPS_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "apps"


def test_table2_goroutine_creation_sites(benchmark, report, app_usages):
    cstyle = benchmark(
        usage_static.analyze_source,
        (APPS_DIR / "minigrpc" / "cstyle.py").read_text(encoding="utf-8"),
        "cstyle.py",
    )

    rows = []
    for app in App:
        usage = app_usages[app.value]
        rows.append([
            str(app), usage.creation_sites, usage.anonymous_sites,
            usage.named_sites, f"{usage.sites_per_kloc:.2f}",
        ])
    rows.append([
        "gRPC-C (cstyle)", cstyle.creation_sites, cstyle.anonymous_sites,
        cstyle.named_sites, f"{cstyle.sites_per_kloc:.2f}",
    ])
    body = render(
        ["Application", "sites", "anonymous", "named", "sites/KLOC"], rows
    )
    go_sites = app_usages["gRPC"].creation_sites
    body += (
        f"\n\ngRPC-Go vs gRPC-C creation sites: ours {go_sites} vs "
        f"{cstyle.creation_sites} (paper: many vs 5).  Densities are not "
        f"comparable at mini scale — real repos dilute sites/KLOC with "
        f"bulk code (paper range {TABLE2_SITES_PER_KLOC_RANGE[0]}–"
        f"{TABLE2_SITES_PER_KLOC_RANGE[1]}, gRPC-C "
        f"{TABLE2_GRPC_C_SITES_PER_KLOC}); the orderings are the faithful "
        f"quantities."
    )
    report("Table 2: goroutine/thread creation sites", body)

    # Shape assertions from the paper's text.
    for app in App:
        usage = app_usages[app.value]
        if app in TABLE2_NORMAL_DOMINANT_APPS:
            assert usage.named_sites >= usage.anonymous_sites, app
        else:
            assert usage.anonymous_sites > usage.named_sites, app
    assert cstyle.creation_sites == 1
    assert go_sites > cstyle.creation_sites
