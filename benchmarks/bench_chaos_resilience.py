"""Chaos resilience: the fault-injection layer's two headline claims.

1. The six hardened mini-app workloads stay **clean** under the whole
   perturbation suite (spurious wakeups, scheduling delays, clock skew):
   their retry/resync/re-acquire machinery absorbs every injected fault
   across the seed sweep.

2. The same perturbation **amplifies** buggy kernels: nondeterministic
   bugs from the corpus manifest on strictly more seeds under chaos than
   at baseline — the paper's "rare interleaving" made common — while the
   fixed variants stay at zero.  Chaos is a bug-finding amplifier, not a
   noise source.
"""

from repro.bugs import registry
from repro.inject import ChaosHarness, app_targets, manifestation_rate, plans
from repro.study.tables import render

SEEDS = range(5)
AMPLIFY_SEEDS = range(20)

#: Nondeterministic kernels whose manifestation is timing-window bound —
#: the population perturbation should push upward.
AMPLIFY_CANDIDATES = [
    "nonblocking-chan-etcd-select-ticker",
    "nonblocking-trad-boltdb-torn-stats",
    "nonblocking-trad-boltdb-unlocked-read",
    "nonblocking-trad-etcd-check-then-act",
    "nonblocking-trad-etcd-split-critical-section",
    "nonblocking-trad-kubernetes-double-checked",
    "nonblocking-wg-cockroach-add-inside",
]


def test_chaos_app_scorecard(benchmark, report):
    harness = ChaosHarness(seeds=SEEDS)

    cells = benchmark.pedantic(
        lambda: harness.sweep(app_targets()), rounds=1, iterations=1
    )
    report("Chaos resilience scorecard", harness.scorecard(cells))

    # Every app, every plan (baseline + the four perturbation plans),
    # every seed: clean.
    assert len(cells) == 6 * (1 + len(plans.default_suite()))
    dirty = [cell for cell in cells if not cell.clean]
    assert not dirty, [(c.target, c.plan, c.failures) for c in dirty]
    # The sweep genuinely exercised the apps: faults actually fired.
    assert sum(cell.faults_fired for cell in cells) > 100


def test_chaos_network_partition(benchmark, report):
    """One network-partition cell per multi-node cluster app.

    Each cluster runs with its secondary cut off the fabric mid-run and
    healed later: minietcd's replication queue stalls and drains after
    the heal; minigrpc's failover client reroutes to the surviving
    server.  Both stay clean across the seed sweep — the repro.net
    equivalent of claim 1.
    """
    from repro.inject import net_app_targets

    targets = {target.name: target for target in net_app_targets()}
    partition_for = {
        "minietcd-cluster": plans.partition(target="n3", at_step=150,
                                            heal_after=400),
        "minigrpc-cluster": plans.partition(target="srv1", at_step=150,
                                            heal_after=400),
    }
    assert set(targets) == set(partition_for)
    harness = ChaosHarness(seeds=SEEDS)

    def measure():
        cells = []
        for name, target in targets.items():
            cells.append(harness.run_cell(target, None))
            cells.append(harness.run_cell(target, partition_for[name]))
        return cells

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Network partition scorecard",
           harness.scorecard(cells, title="Network partition scorecard"))

    assert len(cells) == 2 * len(targets)
    dirty = [cell for cell in cells if not cell.clean]
    assert not dirty, [(c.target, c.plan, c.failures) for c in dirty]
    # The partitions genuinely fired (at least once per seed).
    for cell in cells:
        if cell.plan != "baseline":
            assert cell.faults_fired >= len(list(SEEDS))


def test_chaos_kernel_amplification(benchmark, report):
    perturb = plans.perturb()

    def measure():
        rows = []
        for kernel_id in AMPLIFY_CANDIDATES:
            kernel = registry.get(kernel_id)
            base = manifestation_rate(kernel, AMPLIFY_SEEDS)
            chaotic = manifestation_rate(kernel, AMPLIFY_SEEDS, plan=perturb)
            fixed = manifestation_rate(kernel, AMPLIFY_SEEDS, plan=perturb,
                                       variant="fixed")
            rows.append((kernel_id, base, chaotic, fixed))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = render(
        ["Kernel", "Baseline", "Perturbed", "Fixed+perturb", "Delta"],
        [[kernel_id, f"{base:.2f}", f"{chaotic:.2f}", f"{fixed:.2f}",
          f"{chaotic - base:+.2f}"]
         for kernel_id, base, chaotic, fixed in rows],
        title=f"Manifestation rates over {len(AMPLIFY_SEEDS)} seeds",
    )
    report("Chaos amplification of buggy kernels", table)

    amplified = [kernel_id for kernel_id, base, chaotic, _ in rows
                 if chaotic > base]
    assert len(amplified) >= 3, (
        f"perturbation amplified only {amplified}; expected >= 3 of "
        f"{AMPLIFY_CANDIDATES}")
    # Chaos never invents bugs: every fixed variant stays silent under the
    # same perturbation.
    assert all(fixed == 0.0 for _, _, _, fixed in rows)
