"""Table 3 — dynamic goroutine statistics on the RPC workloads.

Paper: across three gRPC benchmarks, gRPC-Go creates more goroutines than
gRPC-C creates threads, and goroutines' average lifetime normalized by
program runtime is < 100% while every gRPC-C thread scores 100%.

Ours: the same three workload shapes (sync ping-pong, streaming,
multi-connection) against the minigrpc server and the C-style fixed pool.
"""

from repro import run
from repro.apps.minigrpc.bench import WORKLOADS
from repro.study import usage_dynamic
from repro.study.tables import render


def _measure_all(seed=1):
    rows = []
    for workload in sorted(WORKLOADS):
        progs = WORKLOADS[workload]
        go_result = run(progs["go"], seed=seed)
        c_result = run(progs["c"], seed=seed)
        assert go_result.status == "ok" and c_result.status == "ok"
        go_stats = usage_dynamic.collect(go_result, workload)
        c_stats = usage_dynamic.collect(c_result, workload)
        rows.append((workload, go_stats, c_stats))
    return rows


def test_table3_dynamic_goroutine_stats(benchmark, report):
    measured = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    table_rows = []
    for workload, go_stats, c_stats in measured:
        ratio = go_stats.goroutines_created / c_stats.goroutines_created
        table_rows.append([
            workload,
            go_stats.goroutines_created,
            c_stats.goroutines_created,
            f"{ratio:.1f}x",
            f"{go_stats.normalized_lifetime_pct:.1f}%",
            f"{c_stats.normalized_lifetime_pct:.1f}%",
        ])
    body = render(
        ["Workload", "goroutines (Go)", "threads (C)",
         "ratio", "Go lifetime", "C lifetime"],
        table_rows,
    )
    body += ("\n\npaper: ratio > 1 on every workload; C threads at 100%; "
             "Go goroutines well under 100%.")
    report("Table 3: dynamic goroutine/thread statistics", body)

    for workload, go_stats, c_stats in measured:
        assert go_stats.goroutines_created > c_stats.goroutines_created, workload
        assert go_stats.normalized_lifetime_pct < 50.0, workload
        assert c_stats.normalized_lifetime_pct > 95.0, workload
