"""Table 10 — fix strategies for non-blocking bugs.

Paper: ~69% of the fixes restrict timing (adding or moving
synchronization); 10 bypass the shared accesses; 14 privatize the shared
data (all shared-memory bugs).
"""

import pytest

from repro.dataset.records import (
    Behavior,
    Cause,
    FixStrategy,
    TIMING_STRATEGIES,
)
from repro.study import tables, taxonomy


def test_table10_nonblocking_fix_strategies(benchmark, report, dataset):
    matrix = benchmark(taxonomy.strategy_matrix, dataset, Behavior.NONBLOCKING)

    report("Table 10: non-blocking fix strategies", tables.table10(dataset))

    nonblocking = [r for r in dataset if r.behavior == Behavior.NONBLOCKING]
    timing = sum(r.fix_strategy in TIMING_STRATEGIES for r in nonblocking)
    bypass = sum(r.fix_strategy == FixStrategy.BYPASS for r in nonblocking)
    privates = [r for r in nonblocking if r.fix_strategy == FixStrategy.PRIVATIZE]

    assert timing / len(nonblocking) == pytest.approx(0.69, abs=0.02)
    assert bypass == 10
    assert len(privates) == 14
    assert all(r.cause == Cause.SHARED_MEMORY for r in privates)
    total = sum(sum(row.values()) for row in matrix.values())
    assert total == 86


def test_table10_fix_strategies_demonstrated_by_kernels(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table10_fix_strategies_demonstrated_by_kernels(report), rounds=1, iterations=1)


def _run_test_table10_fix_strategies_demonstrated_by_kernels(report):
    """Each strategy has at least one kernel whose fixed variant applies it
    and verifiably repairs the bug."""
    from collections import Counter

    from repro.bugs import registry

    verified = Counter()
    for kernel in registry.nonblocking_kernels():
        ok = all(
            not kernel.manifested(kernel.run_fixed(seed=s)) for s in range(4)
        )
        assert ok, kernel.meta.kernel_id
        verified[str(kernel.meta.fix_strategy)] += 1
    body = "\n".join(f"  {s}: {n} kernels" for s, n in sorted(verified.items()))
    report("Table 10 companion: verified non-blocking fixes by strategy", body)
    assert set(verified) >= {"Add_s", "Move_s", "Change_s", "Bypass", "Private"}
