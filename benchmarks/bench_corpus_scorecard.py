"""The corpus scorecard: every kernel × every detector.

Not a single paper table — this is the union artifact the paper's
Section 7 discussion points toward: which detection technique covers
which bug class.  The assertions encode the division of labor the study
predicts (leak detection owns blocking bugs, the race detector owns
shared-memory non-blocking bugs, the rule checker owns channel rule
violations).
"""

from repro.bugs import registry
from repro.bugs.scorecard import build_scorecard, render_scorecard
from repro.dataset.records import Behavior, Cause, NonBlockingSubCause


def test_corpus_scorecard(benchmark, report):
    rows = benchmark.pedantic(
        lambda: build_scorecard(runs_per_kernel=20), rounds=1, iterations=1
    )
    report("Corpus scorecard", render_scorecard(rows))

    by_id = {row.kernel_id: row for row in rows}
    kernels = {k.meta.kernel_id: k for k in registry.all_kernels()}

    blocking = [row for row in rows if row.behavior == "blocking"]
    nonblocking = [row for row in rows if row.behavior == "non-blocking"]

    # Division of labor, as the study predicts:
    # 1. Every blocking bug is caught by the leak detector.
    assert all(row.leak_detector for row in blocking)
    # 2. The built-in detector catches almost nothing.
    assert sum(row.builtin_deadlock for row in blocking) == 2
    # 3. Shared-memory non-blocking bugs with real races fall to the
    #    race detector.
    anon = [row for row in nonblocking
            if kernels[row.kernel_id].meta.subcause
            == NonBlockingSubCause.ANONYMOUS_FUNCTION]
    assert all(row.race_detector for row in anon)
    # 4. The lock-order detector only fires on lock-cycle kernels.
    lockorder_hits = [row.kernel_id for row in rows if row.lock_order]
    assert lockorder_hits == ["blocking-mutex-kubernetes-abba"]
    # 5. Nearly everything is caught by at least one technique combined.
    caught = sum(row.caught_by_any for row in rows)
    assert caught / len(rows) > 0.85
