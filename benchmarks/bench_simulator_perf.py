"""Microbenchmarks of the simulator substrate itself.

Not a paper table — these time the machinery every experiment rides on,
so regressions in the scheduler/primitives show up here first.  The same
workloads back ``repro bench`` (:mod:`repro.bench`), whose JSON output is
the committed ``BENCH_simulator.json`` baseline; CI's perf-smoke job runs
both without gating the build.
"""

from repro import run
from repro.bench import CHANNEL_WORKLOADS, WORKLOADS
from repro.chan import recv, send


def test_perf_channel_pingpong(benchmark):
    """Rendezvous throughput: N unbuffered round trips."""

    def main(rt):
        ping = rt.make_chan()
        pong = rt.make_chan()

        def echo():
            for _ in range(50):
                ping.recv()
                pong.send(None)

        rt.go(echo)
        for _ in range(50):
            ping.send(None)
            pong.recv()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_mutex_contention(benchmark):
    def main(rt):
        mu = rt.mutex()
        done = rt.waitgroup()

        def worker():
            for _ in range(25):
                with mu:
                    pass
            done.done()

        for _ in range(4):
            done.add(1)
            rt.go(worker)
        done.wait()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_select_fanin(benchmark):
    def main(rt):
        channels = [rt.make_chan(1) for _ in range(4)]

        def feeder(ch):
            for i in range(10):
                ch.send(i)

        for ch in channels:
            rt.go(feeder, ch)
        got = 0
        while got < 40:
            _i, _v, _ok = rt.select(*[recv(ch) for ch in channels])
            got += 1

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_goroutine_spawn(benchmark):
    def main(rt):
        wg = rt.waitgroup()
        for _ in range(40):
            wg.add(1)
            rt.go(wg.done)
        wg.wait()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_fastpath_pingpong(benchmark):
    """The sweep configuration: no observer, no kept trace.  This is the
    number the scheduler fast path (direct handoff, batched RNG, gated
    trace allocation) is accountable for."""
    program = WORKLOADS["pingpong"]
    result = benchmark(lambda: run(program, seed=1, keep_trace=False))
    assert result.status == "ok"


def test_perf_fastpath_mutex(benchmark):
    program = WORKLOADS["mutex"]
    result = benchmark(lambda: run(program, seed=1, keep_trace=False))
    assert result.status == "ok"


def test_perf_fastpath_channel_heavy(benchmark):
    """The compiled channel/select/sync fast ops on the heavy rendezvous
    cell — the pytest twin of the schema-4 ``channel_fastpath`` numbers."""
    program = CHANNEL_WORKLOADS["pingpong_heavy"]
    result = benchmark(lambda: run(program, seed=1, keep_trace=False))
    assert result.status == "ok"


def test_perf_purepath_channel_heavy(benchmark):
    """The same cell with every compiled path disabled — the denominator
    of the ≥3x fast-op speedup target in BENCH_simulator.json."""
    from repro.runtime._hotloop import force_pure

    program = CHANNEL_WORKLOADS["pingpong_heavy"]

    def pure():
        with force_pure():
            return run(program, seed=1, keep_trace=False)

    result = benchmark(pure)
    assert result.status == "ok"


def test_perf_sweep_serial(benchmark):
    """16-seed serial sweep through the parallel engine's summary path —
    the jobs=1 denominator of the scaling numbers in BENCH_simulator.json."""
    from repro.parallel import sweep_seeds

    program = WORKLOADS["pingpong"]
    summaries = benchmark(lambda: sweep_seeds(program, range(16), jobs=1))
    assert all(s.status == "ok" for s in summaries)


def test_perf_race_detector_overhead(benchmark):
    """A run with the detector attached vs. the raw run (reported via two
    benchmark rounds — compare in the table)."""
    from repro.detect import RaceDetector

    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.mutex()
        wg = rt.waitgroup()

        def worker():
            for _ in range(10):
                with mu:
                    v.add(1)
            wg.done()

        for _ in range(3):
            wg.add(1)
            rt.go(worker)
        wg.wait()

    def with_detector():
        detector = RaceDetector()
        return run(main, seed=1, observers=[detector])

    result = benchmark(with_detector)
    assert result.status == "ok"


if __name__ == "__main__":  # pragma: no cover
    # `python benchmarks/bench_simulator_perf.py --out BENCH_simulator.json`
    # produces the same JSON document as `repro bench`.
    import sys

    from repro.bench import main

    sys.exit(main())
