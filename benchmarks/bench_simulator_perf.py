"""Microbenchmarks of the simulator substrate itself.

Not a paper table — these time the machinery every experiment rides on,
so regressions in the scheduler/primitives show up here first.
"""

from repro import run
from repro.chan import recv, send


def test_perf_channel_pingpong(benchmark):
    """Rendezvous throughput: N unbuffered round trips."""

    def main(rt):
        ping = rt.make_chan()
        pong = rt.make_chan()

        def echo():
            for _ in range(50):
                ping.recv()
                pong.send(None)

        rt.go(echo)
        for _ in range(50):
            ping.send(None)
            pong.recv()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_mutex_contention(benchmark):
    def main(rt):
        mu = rt.mutex()
        done = rt.waitgroup()

        def worker():
            for _ in range(25):
                with mu:
                    pass
            done.done()

        for _ in range(4):
            done.add(1)
            rt.go(worker)
        done.wait()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_select_fanin(benchmark):
    def main(rt):
        channels = [rt.make_chan(1) for _ in range(4)]

        def feeder(ch):
            for i in range(10):
                ch.send(i)

        for ch in channels:
            rt.go(feeder, ch)
        got = 0
        while got < 40:
            _i, _v, _ok = rt.select(*[recv(ch) for ch in channels])
            got += 1

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_goroutine_spawn(benchmark):
    def main(rt):
        wg = rt.waitgroup()
        for _ in range(40):
            wg.add(1)
            rt.go(wg.done)
        wg.wait()

    result = benchmark(lambda: run(main, seed=1))
    assert result.status == "ok"


def test_perf_race_detector_overhead(benchmark):
    """A run with the detector attached vs. the raw run (reported via two
    benchmark rounds — compare in the table)."""
    from repro.detect import RaceDetector

    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.mutex()
        wg = rt.waitgroup()

        def worker():
            for _ in range(10):
                with mu:
                    v.add(1)
            wg.done()

        for _ in range(3):
            wg.add(1)
            rt.go(worker)
        wg.wait()

    def with_detector():
        detector = RaceDetector()
        return run(main, seed=1, observers=[detector])

    result = benchmark(with_detector)
    assert result.status == "ok"
