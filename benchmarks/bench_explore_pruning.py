"""Exploration pruning: fewer runs to exhaustion, identical verdicts.

Not a paper table — this guards the systematic explorer's two cost
optimizations (sleep-set pruning and the cross-run schedule memo,
:mod:`repro.detect.systematic`) the way ``bench_simulator_perf`` guards
the scheduler fast path.  The same measurements back ``repro bench
--explore``, whose JSON lands in the committed ``BENCH_simulator.json``
baseline under the ``explore`` section.

The acceptance bar it enforces: on at least three corpus kernels the
pruned exploration reaches exhaustion in >=30% fewer runs than the raw
tree, with the same exhaustion verdict — and on every buggy variant it
still finds the counterexample the unpruned explorer finds.
"""

from repro.bench import EXPLORE_KERNELS, run_explore_benchmarks
from repro.bugs import registry
from repro.detect.systematic import explore_systematic
from repro.parallel import memo as memo_mod


def test_pruning_savings_and_verdicts(report):
    document = run_explore_benchmarks(max_runs=800)
    rows = document["kernels"]

    lines = [f"{'kernel':<45} {'unpruned':>9} {'pruned':>7} {'saved':>7} "
             f"{'memoized':>9}"]
    for kid, row in rows.items():
        lines.append(f"{kid:<45} {row['runs_unpruned']:>9} "
                     f"{row['runs_pruned']:>7} {row['saved_pct']:>6.1f}% "
                     f"{row['memo_runs_saved']:>9}")
    lines.append(f"min saved {document['min_saved_pct']:.1f}%  "
                 f"verdicts match: {document['all_verdicts_match']}")
    report("Exploration pruning: runs to exhaustion", "\n".join(lines))

    assert document["all_verdicts_match"]
    big_savers = [row for row in rows.values() if row["saved_pct"] >= 30.0]
    assert len(big_savers) >= 3, (
        f"expected >=30% savings on >=3 kernels, got {len(big_savers)}")
    # The memoized re-exploration replays the whole pruned tree from cache.
    assert all(row["memo_runs_saved"] > 0 for row in rows.values())


def test_pruned_explorer_still_finds_the_bugs(report):
    """Counterexample parity on the buggy variants of the bench kernels."""
    lines = []
    for kid in EXPLORE_KERNELS:
        kernel = registry.get(kid)
        with memo_mod.disable():
            base = explore_systematic(
                kernel.buggy, stop_on=kernel.manifested, max_runs=200,
                prune=False, memo=False, **kernel.run_kwargs)
            pruned = explore_systematic(
                kernel.buggy, stop_on=kernel.manifested, max_runs=200,
                prune=True, memo=False, **kernel.run_kwargs)
        lines.append(f"{kid:<45} unpruned run {base.runs}, "
                     f"pruned run {pruned.runs}")
        assert base.found and pruned.found, kid
    report("Exploration pruning: counterexamples preserved", "\n".join(lines))
