"""Ablations over the design choices DESIGN.md calls out.

1. RWMutex writer priority (Go) vs reader preference (pthread): the
   Section 5.1.1 deadlock exists only under Go's rule.
2. Race-detector shadow words: 4 (Go's ``-race``) vs unlimited history —
   the Table 12 miss cause quantified.
3. Figure 1's fix: unbuffered vs buffered result channel — leak rate
   across seeds before/after.
4. Built-in deadlock detector vs the goroutine-leak extension over the
   whole blocking corpus (Implication 4).
"""

from repro import run
from repro.bugs import registry
from repro.bugs.blocking.rwmutex import DockerRWMutexWriterPriority
from repro.detect import BuiltinDeadlockDetector, GoroutineLeakDetector, RaceDetector
from repro.study.tables import render

SEEDS = range(30)


def test_ablation_rwmutex_priority(benchmark, report):
    def run_both():
        def go_semantics(rt):
            return DockerRWMutexWriterPriority._program(rt, reentrant_rlock=True)

        go_result = run(go_semantics, seed=0)

        def pthread_semantics(rt):
            mu = rt.rwmutex("containers", writer_priority=False)
            listed = rt.shared("listed", 0)

            def lister():
                mu.rlock()
                rt.sleep(1.0)
                mu.rlock()  # fine under reader preference
                mu.runlock()
                mu.runlock()

            def committer():
                rt.sleep(0.5)
                mu.lock()
                mu.unlock()

            rt.go(lister)
            rt.go(committer)
            rt.sleep(5.0)

        pthread_result = run(pthread_semantics, seed=0)
        return go_result, pthread_result

    go_result, pthread_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Ablation 1: RWMutex writer priority",
        f"Go semantics (writer priority): status={go_result.status}, "
        f"{len(go_result.leaked)} goroutines stuck forever.\n"
        f"pthread semantics (reader preference): status={pthread_result.status}.\n"
        "The paper's Section 5.1.1 claim holds: the same interleaving "
        "deadlocks only under Go's implementation.",
    )
    assert go_result.status == "leak"
    assert pthread_result.status == "ok"


def test_ablation_shadow_words(benchmark, report):
    kernel = registry.get("nonblocking-trad-grpc-shadow-eviction")

    def sweep():
        hits = {}
        for words in (1, 2, 4, 8, None):
            count = 0
            for seed in SEEDS:
                detector = RaceDetector(shadow_words=words)
                kernel.run_buggy(seed=seed, observers=[detector])
                count += detector.detected
            hits[words] = count
        return hits

    hits = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[("unlimited" if w is None else w), f"{n}/{len(list(SEEDS))}"]
            for w, n in hits.items()]
    report(
        "Ablation 2: shadow words per memory object",
        render(["shadow words", "runs detecting the race"], rows)
        + "\n\nGo's four shadow words forget the racy write; full history "
          "catches it on every run (Table 12 miss cause #3).",
    )
    assert hits[4] == 0
    assert hits[None] == len(list(SEEDS))


def test_ablation_figure1_buffered_channel(benchmark, report):
    kernel = registry.figures()["1"]

    def rates():
        buggy = sum(kernel.manifested(kernel.run_buggy(seed=s)) for s in SEEDS)
        fixed = sum(kernel.manifested(kernel.run_fixed(seed=s)) for s in SEEDS)
        return buggy, fixed

    buggy, fixed = benchmark.pedantic(rates, rounds=1, iterations=1)
    n = len(list(SEEDS))
    report(
        "Ablation 3: Figure 1's unbuffered vs buffered channel",
        f"unbuffered (buggy): child leaks in {buggy}/{n} schedules\n"
        f"buffered cap 1 (the committed fix): {fixed}/{n}\n"
        "The fix removes the leak without changing the timeout behavior.",
    )
    assert 0 < buggy < n  # the nondeterministic select choice
    assert fixed == 0


def test_ablation_builtin_vs_leak_detector(benchmark, report):
    builtin = BuiltinDeadlockDetector()
    leakdet = GoroutineLeakDetector()

    def evaluate():
        caught_builtin = caught_leak = total = 0
        for kernel in registry.blocking_kernels(reproduced_only=True):
            seeds = ([0] if kernel.meta.deterministic
                     else kernel.manifestation_seeds(range(40))[:1])
            result = kernel.run_buggy(seed=seeds[0])
            total += 1
            caught_builtin += builtin.classify(result)
            caught_leak += leakdet.classify(result)
        return total, caught_builtin, caught_leak

    total, caught_builtin, caught_leak = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    report(
        "Ablation 4: built-in detector vs goroutine-leak extension",
        f"blocking kernels: {total}\n"
        f"built-in (all-asleep) detector: {caught_builtin} caught\n"
        f"goroutine-leak detector (Implication 4): {caught_leak} caught\n"
        "Watching for blocked-forever goroutines instead of global sleep "
        "turns 2/21 recall into full recall on this corpus.",
    )
    assert caught_builtin == 2
    assert caught_leak == total == 21


def test_ablation_lock_order_vs_manifestation(benchmark, report):
    """Ablation 5: the lock-order detector flags the AB/BA hazard on every
    schedule; manifestation-based detection needs the unlucky timing."""
    from repro.detect import LockOrderDetector

    kernel = registry.get("blocking-mutex-kubernetes-abba")

    def sweep():
        flagged = manifested = 0
        for seed in SEEDS:
            detector = LockOrderDetector()
            result = kernel.run_buggy(seed=seed, observers=[detector])
            flagged += detector.detected
            manifested += kernel.manifested(result)
        clean = 0
        for seed in SEEDS:
            detector = LockOrderDetector()
            kernel.run_fixed(seed=seed, observers=[detector])
            clean += not detector.detected
        return flagged, manifested, clean

    flagged, manifested, clean = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n = len(list(SEEDS))
    report(
        "Ablation 5: lock-order graph vs manifestation",
        f"AB/BA kernel over {n} schedules:\n"
        f"  lock-order detector flags the hazard: {flagged}/{n}\n"
        f"  deadlock actually manifests:          {manifested}/{n}\n"
        f"  fixed variant flagged (false pos.):   {n - clean}/{n}\n"
        "Order-graph analysis decouples detection from the unlucky timing "
        "(the combination Implication 4 asks for).",
    )
    assert flagged == n
    assert clean == n


def test_ablation_systematic_vs_random(benchmark, report):
    """Ablation 6: directed schedule enumeration vs random seed sweeps on
    a rarely-manifesting bug (Figure 9's Add/Wait race)."""
    from repro.detect.systematic import explore_systematic

    kernel = registry.get("nonblocking-wg-etcd-6371")

    def compare():
        random_runs = None
        for i, seed in enumerate(range(400)):
            if kernel.manifested(kernel.run_buggy(seed=seed)):
                random_runs = i + 1
                break
        exploration = explore_systematic(
            kernel.buggy, stop_on=kernel.manifested, max_runs=400
        )
        rate = sum(
            kernel.manifested(kernel.run_buggy(seed=s)) for s in range(60)
        ) / 60
        return random_runs, exploration, rate

    random_runs, exploration, rate = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    report(
        "Ablation 6: systematic exploration vs random seeds",
        f"kernel: {kernel.meta.kernel_id} "
        f"(manifests on {rate:.0%} of random schedules)\n"
        f"  random sweep found it after: {random_runs} runs\n"
        f"  systematic explorer found it after: {exploration.runs} runs, "
        f"schedule {exploration.counterexample}\n"
        "Enumeration replaces luck: the counterexample schedule replays "
        "deterministically via ScriptedChoices.",
    )
    assert exploration.found
    assert exploration.runs <= 400
