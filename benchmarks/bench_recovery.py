"""Crash-recovery benchmark: verdicts and recovery-time distributions.

The durable, electing, supervised minietcd cluster is swept across
cluster sizes × crash-fault rates (one ``crash_restart``, one rolling
``crash-storm``).  Two claims:

1. Every cell recovers: after the fault window the cluster is consistent
   and progressing again within the virtual-time budget — no ``stuck``
   (liveness) or ``diverged`` (safety) verdicts anywhere in the sweep.

2. Recovery time is bounded and measured: each cell reports the
   distribution of virtual seconds from the start of the verdict watch
   to the first consistent-and-progressing poll.
"""

from repro.bench import run_recovery_benchmarks
from repro.inject import ChaosHarness, plans, recovery_targets

SIZES = (3, 5)
SEEDS = (0, 1, 2)


def _table(doc):
    lines = [f"{'cell':<24} {'recovered':>9} {'faults':>6} "
             f"{'median recovery_s':>18} {'max':>8}"]
    for name, cell in doc["cells"].items():
        dist = cell["recovery_s"] or {}
        lines.append(
            f"{name:<24} {cell['recovered']:>4}/{cell['seeds']:<4} "
            f"{cell['faults_fired']:>6} "
            f"{dist.get('median', '-')!s:>18} {dist.get('max', '-')!s:>8}")
    lines.append(f"all recovered: {doc['all_recovered']}")
    return "\n".join(lines)


def test_recovery_sweep(benchmark, report):
    doc = benchmark.pedantic(
        lambda: run_recovery_benchmarks(sizes=SIZES, seeds=SEEDS),
        rounds=1, iterations=1)
    report("Crash recovery sweep", _table(doc))

    assert set(doc["cells"]) == {
        f"size{s}/{p}" for s in SIZES for p in ("crash-restart",
                                                "crash-storm")}
    # Claim 1: every seed in every cell converges to "recovered".
    assert doc["all_recovered"], doc["cells"]
    # The sweep actually crashed machines (storm cells crash 3 each).
    assert all(cell["faults_fired"] > 0 for cell in doc["cells"].values())
    # Claim 2: recovery times were measured and are finite.
    for cell in doc["cells"].values():
        dist = cell["recovery_s"]
        assert dist is not None and dist["samples"] == len(SEEDS)
        assert 0.0 < dist["max"] <= 8.0  # within the scenario budget


def test_recovery_scorecard(benchmark, report):
    """The harness view: recovery scenarios under the crash suite show a
    non-zero Recovered column and nothing in Diverged/Stuck."""
    harness = ChaosHarness(seeds=range(3))
    suite = [plans.crash_restart(delay=0.3), plans.crash_storm()]

    cells = benchmark.pedantic(
        lambda: harness.sweep(recovery_targets(), plans=suite),
        rounds=1, iterations=1)
    report("Chaos recovery scorecard", harness.scorecard(cells))

    assert len(cells) == 2 * (1 + len(suite))  # two scenarios x plans
    dirty = [cell for cell in cells if not cell.clean]
    assert not dirty, [(c.target, c.plan, c.failures) for c in dirty]
    recovered = sum(cell.verdicts.get("recovered", 0) for cell in cells)
    assert recovered == sum(sum(c.verdicts.values()) for c in cells)
    assert recovered > 0
