"""Table 8 — the built-in deadlock detector on the reproduced blocking bugs.

Paper: of 21 reproduced blocking bugs (run once each; the blocking
triggers deterministically), the always-on runtime detector catches only
2 — BoltDB#392 and BoltDB#240 — because (1) it stays silent while *any*
goroutine can run and (2) it cannot see waits on non-Go resources.  No
false positives.

Ours: the replica detector over the 21-kernel blocking corpus, grouped by
root cause, next to the goroutine-leak detector extension (the ablation
Implication 4 asks for).
"""

from collections import defaultdict

from repro.bugs import registry
from repro.dataset.paper_values import TABLE8_DETECTED, TABLE8_REPRODUCED
from repro.dataset.records import App, BlockingSubCause, Cause
from repro.detect import BuiltinDeadlockDetector, GoroutineLeakDetector
from repro.study.tables import render

#: A seed under which every blocking kernel's bug manifests (the paper
#: triggers each blocking bug deterministically; our nondeterministic
#: kernels just need a manifesting seed).
def _manifesting_seed(kernel):
    if kernel.meta.deterministic:
        return 0
    seeds = kernel.manifestation_seeds(range(40))
    assert seeds, kernel.meta.kernel_id
    return seeds[0]


def _evaluate():
    builtin = BuiltinDeadlockDetector()
    leakdet = GoroutineLeakDetector()
    per_cause = defaultdict(lambda: [0, 0, 0])  # used, builtin, leakdet
    detected_ids = []
    for kernel in registry.blocking_kernels(reproduced_only=True):
        seed = _manifesting_seed(kernel)
        result = kernel.run_buggy(seed=seed)
        cause = kernel.meta.subcause
        per_cause[cause][0] += 1
        if builtin.classify(result):
            per_cause[cause][1] += 1
            detected_ids.append(kernel.meta.kernel_id)
        if leakdet.classify(result):
            per_cause[cause][2] += 1
    return per_cause, detected_ids


def test_table8_builtin_deadlock_detector(benchmark, report):
    per_cause, detected_ids = benchmark.pedantic(_evaluate, rounds=1, iterations=1)

    rows = []
    total_used = total_builtin = total_leak = 0
    for sub in BlockingSubCause:
        used, by_builtin, by_leak = per_cause.get(sub, (0, 0, 0))
        rows.append([str(sub), used, by_builtin, by_leak])
        total_used += used
        total_builtin += by_builtin
        total_leak += by_leak
    rows.append(["Total", total_used, total_builtin, total_leak])
    body = render(
        ["Root cause", "# bugs used", "built-in detected",
         "leak-detector detected (ours)"],
        rows,
    )
    body += (f"\n\ndetected by built-in: {', '.join(detected_ids)}"
             f"\npaper: {TABLE8_DETECTED}/{TABLE8_REPRODUCED} detected "
             f"(BoltDB#392, BoltDB#240); Mutex 1 + Chan w/ 1.")
    report("Table 8: built-in deadlock detector evaluation", body)

    assert total_used == TABLE8_REPRODUCED == 21
    assert total_builtin == TABLE8_DETECTED == 2
    assert per_cause[BlockingSubCause.MUTEX][1] == 1
    assert per_cause[BlockingSubCause.CHAN_WITH_OTHER][1] == 1
    assert per_cause[BlockingSubCause.CHAN][1] == 0
    assert per_cause[BlockingSubCause.MSG_LIBRARY][1] == 0
    # The Implication 4 extension catches everything the built-in misses.
    assert total_leak == 21


def test_table8_no_false_positives(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table8_no_false_positives(report), rounds=1, iterations=1)


def _run_test_table8_no_false_positives(report):
    """The paper notes the built-in detector reports no false positives;
    neither detector may fire on the fixed variants."""
    builtin = BuiltinDeadlockDetector()
    leakdet = GoroutineLeakDetector()
    checked = 0
    for kernel in registry.blocking_kernels(reproduced_only=True):
        for seed in range(3):
            result = kernel.run_fixed(seed=seed)
            assert not builtin.classify(result), kernel.meta.kernel_id
            assert not leakdet.classify(result), kernel.meta.kernel_id
            checked += 1
    report("Table 8 companion: false-positive check",
           f"{checked} fixed-variant runs, 0 false positives "
           f"(both detectors), matching the paper.")
