"""Table 5 — the two-dimensional taxonomy.

Paper: 85 blocking / 86 non-blocking; 105 shared-memory / 66 message
passing; per-application rows as published.
"""

from repro.dataset import go171
from repro.dataset.records import App
from repro.study import tables, taxonomy


def test_table5_taxonomy(benchmark, report, dataset):
    matrix = benchmark(taxonomy.behavior_cause_matrix, dataset)

    report("Table 5: taxonomy (regenerated from the dataset)",
           tables.table5(dataset))

    for app, expected in go171.TABLE5.items():
        assert matrix[app] == expected, app
    totals = taxonomy.totals(dataset)
    assert totals["blocking"] == 85
    assert totals["nonblocking"] == 86
    assert totals["shared"] == 105
    assert totals["message"] == 66


def test_table5_kernel_corpus_mirrors_taxonomy(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table5_kernel_corpus_mirrors_taxonomy(report), rounds=1, iterations=1)


def _run_test_table5_kernel_corpus_mirrors_taxonomy(report):
    """The executable corpus spans the same two dimensions.

    ``reproduced_only`` selects the Table 8 / Table 12 evaluation corpora;
    additional pattern kernels beyond them carry ``reproduced=False``.
    """
    from repro.bugs import registry
    from repro.dataset.records import Behavior, Cause

    kernels = (registry.blocking_kernels(reproduced_only=True)
               + registry.nonblocking_kernels(reproduced_only=True))
    rows = [[
        "kernel corpus",
        sum(k.meta.behavior == Behavior.BLOCKING for k in kernels),
        sum(k.meta.behavior == Behavior.NONBLOCKING for k in kernels),
        sum(k.meta.cause == Cause.SHARED_MEMORY for k in kernels),
        sum(k.meta.cause == Cause.MESSAGE_PASSING for k in kernels),
    ]]
    report(
        "Table 5 companion: executable kernel corpus",
        tables.render(
            ["Corpus", "blocking", "non-blocking", "shared", "message"], rows
        ),
    )
    assert rows[0][1] == 21  # the paper's reproduced blocking set
