"""Table 4 — concurrency primitive usage proportions.

Paper: shared-memory primitives dominate everywhere; Mutex is the single
most-used primitive in every app; chan leads message passing with
18.48–42.99%; gRPC-Go uses 8 primitive kinds where gRPC-C uses 1.
"""

from pathlib import Path

from repro.dataset.paper_values import (
    GRPC_C_PRIMITIVE_KINDS,
    TABLE4,
)
from repro.dataset.records import App
from repro.study import usage_static
from repro.study.tables import render
from repro.study.usage_static import COLUMNS

APPS_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "apps"


def test_table4_primitive_usage(benchmark, report, app_usages):
    def proportions():
        return {app: app_usages[app.value].proportions() for app in App}

    measured = benchmark(proportions)

    rows = []
    for app in App:
        props = measured[app]
        rows.append(
            [f"{app} (ours)"] + [f"{props[c]:.1f}%" for c in COLUMNS]
            + [app_usages[app.value].total_primitives]
        )
        rows.append(
            [f"{app} (paper)"] + [f"{TABLE4[app][c]:.1f}%" for c in COLUMNS]
            + [""]
        )
    report(
        "Table 4: primitive usage proportions (ours vs paper)",
        render(["Application"] + list(COLUMNS) + ["total"], rows),
    )

    for app in App:
        props = measured[app]
        # Mutex is the most used primitive in every application (paper).
        assert props["Mutex"] == max(props[c] for c in COLUMNS), app
        # chan leads message passing and is substantial.
        assert props["chan"] >= 5.0, app
        # Shared memory dominates message passing overall.
        shared = sum(props[c] for c in ("Mutex", "atomic", "Once", "WaitGroup", "Cond"))
        assert shared > props["chan"] + props["Misc"], app

    # gRPC-Go vs gRPC-C primitive variety (8 vs 1 in the paper).
    cstyle = usage_static.analyze_source(
        (APPS_DIR / "minigrpc" / "cstyle.py").read_text(encoding="utf-8"),
        "cstyle.py",
    )
    c_kinds = sum(1 for v in cstyle.primitives.values() if v)
    go_kinds = sum(1 for v in app_usages["gRPC"].primitives.values() if v)
    assert c_kinds == GRPC_C_PRIMITIVE_KINDS == 1
    assert go_kinds >= 5
