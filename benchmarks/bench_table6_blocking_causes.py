"""Table 6 — blocking bug root causes.

Paper (all cells published): Mutex 28, RWMutex 5, Wait 3 | Chan 29,
Chan w/ 16, Lib 4 — i.e. 42% shared memory vs 58% message passing
(Observation 3), despite shared-memory primitives being *used* more.
"""

from repro.dataset import go171
from repro.dataset.records import Behavior, BlockingSubCause, Cause
from repro.study import tables, taxonomy


def test_table6_blocking_causes(benchmark, report, dataset):
    table = benchmark(taxonomy.blocking_cause_table, dataset)

    body = tables.table6(dataset)
    blocking = [r for r in dataset if r.behavior == Behavior.BLOCKING]
    mp_share = sum(r.cause == Cause.MESSAGE_PASSING for r in blocking) / len(blocking)
    body += (f"\n\nmessage-passing share of blocking bugs: {mp_share:.0%} "
             f"(paper: ~58% — Observation 3)")
    report("Table 6: blocking bug causes", body)

    for app, cells in go171.TABLE6.items():
        for sub, expected in cells.items():
            assert table[app][sub] == expected, (app, sub)
    assert 0.55 < mp_share < 0.60


def test_table6_kernels_trigger_every_cause(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table6_kernels_trigger_every_cause(report), rounds=1, iterations=1)


def _run_test_table6_kernels_trigger_every_cause(report):
    """Each Table 6 column has at least one executable reproduction whose
    buggy variant actually blocks."""
    from repro.bugs import registry

    rows = []
    for sub in BlockingSubCause:
        kernels = registry.by_subcause(sub)
        kernel = kernels[0]
        seeds = kernel.manifestation_seeds(range(20))
        rows.append([str(sub), len(kernels), kernel.meta.kernel_id,
                     f"{len(seeds)}/20 seeds"])
        assert seeds, sub
    report(
        "Table 6 companion: executable kernels per blocking cause",
        tables.render(["Cause", "kernels", "example", "manifestation"], rows),
    )
