"""Predictive analysis scorecard: offline recall vs the dynamic detectors.

Not a paper table — this guards the ``repro.predict`` subsystem the way
``bench_explore_pruning`` guards the systematic explorer.  The same
measurements back ``repro bench --predict``, whose JSON lands in the
committed ``BENCH_predict.json`` baseline.

Two acceptance bars from the subsystem's design:

* Over the whole kernel corpus, one recorded run analyzed offline must
  predict at least 80% of the bugs the dynamic detectors catch across a
  multi-seed sweep (recall >= 0.8), without drowning the signal in noise
  (precision >= 0.8).
* As a pre-filter, triage must let the explorer skip schedule search on
  the bug-free bench kernels (runs saved > 0, zero false skips) while
  still flagging every buggy variant.
"""

from repro.bench import run_predict_benchmarks


def test_scorecard_recall_precision_and_triage_savings(report):
    document = run_predict_benchmarks()
    scorecard = document["scorecard"]
    triage = document["triage"]

    lines = [f"kernels {scorecard['kernels']}  "
             f"recall {scorecard['recall']:.0%}  "
             f"precision {scorecard['precision']:.0%}  "
             f"offline wall {scorecard['predict_wall_s']:.2f}s",
             f"agreements: {scorecard['agreements']}",
             f"{'kernel':<45} {'explore':>8} {'saved':>6} {'buggy':>8}"]
    for kid, row in triage["kernels"].items():
        lines.append(
            f"{kid:<45} {row['explore_runs']:>8} {row['runs_saved']:>6} "
            f"{'flagged' if row['buggy_flagged'] else 'MISSED':>8}")
    lines.append(f"total saved {triage['total_runs_saved']}/"
                 f"{triage['total_explore_runs']}  "
                 f"false skips: {triage['false_skips'] or 'none'}")
    report("Predictive analysis: scorecard + triage savings",
           "\n".join(lines))

    assert scorecard["recall"] >= 0.8, scorecard
    assert scorecard["precision"] >= 0.8, scorecard
    assert triage["all_fixed_screened_clean"]
    assert not triage["false_skips"]
    assert triage["total_runs_saved"] > 0
    assert all(row["triage_clean"] for row in triage["kernels"].values())
