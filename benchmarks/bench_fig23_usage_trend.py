"""Figures 2 and 3 — primitive usage proportions over time.

Paper: monthly snapshots Feb 2015 – May 2018 per application; the
shared-memory vs message-passing mix is *stable over time*.

Ours: the synthesized history series (see DESIGN.md §2's substitution
note) plus the measured "HEAD" point from the mini-apps, with the
stability property asserted.
"""

from repro.dataset import usage_history
from repro.dataset.records import App
from repro.study import figures
from repro.study.tables import render


def test_fig2_fig3_usage_over_time(benchmark, report, app_usages):
    series = benchmark(usage_history.all_series)

    rows = []
    for app in App:
        shared = series[app]["shared"]
        measured_head = app_usages[app.value].shared_memory_share()
        rows.append([
            str(app),
            f"{shared[0]:.2f}",
            f"{shared[-1]:.2f}",
            f"{usage_history.stability(shared):.3f}",
            figures.sparkline(shared, width=30),
            f"{measured_head:.2f}",
        ])
    body = render(
        ["Application", "Feb'15", "May'18", "max dev", "trend (fig 2)",
         "mini-app HEAD"],
        rows,
    )
    body += ("\n\nFigure 3 is the complement (message passing share). "
             "Paper: all twelve curves essentially flat.")
    report("Figures 2/3: primitive usage over time", body)

    for app in App:
        shared = series[app]["shared"]
        message = series[app]["message"]
        assert usage_history.stability(shared) < 0.05, app
        assert usage_history.stability(message) < 0.05, app
        assert abs(shared[-1] + message[-1] - 1.0) < 1e-6
        # The mini-apps land on the same side of 50/50 as the paper apps.
        measured = app_usages[app.value].shared_memory_share()
        assert measured > 0.5, app
        assert shared[-1] > 0.5, app
