"""Table 1 — application inventory.

Paper: six applications, 9K to >2M lines of code, 3.3–4.9 years of
history.  Ours: the six mini-apps' measured sizes next to the paper's, and
the scale substitution made explicit.
"""

from repro.dataset.paper_values import TABLE1_LOC, TABLE1_STARS
from repro.dataset.records import App
from repro.study.tables import render


def test_table1_application_inventory(benchmark, report, app_usages):
    def build_rows():
        rows = []
        for app in App:
            usage = app_usages[app.value]
            paper_loc, years = TABLE1_LOC[app]
            stars = TABLE1_STARS[app]
            rows.append([
                str(app),
                usage.name,
                usage.files,
                usage.loc,
                f"{paper_loc:,}",
                f"{years:.1f}y",
                f"{stars:,}" if stars else "?",
            ])
        return rows

    rows = benchmark(build_rows)
    report(
        "Table 1: studied applications (paper) vs mini-apps (ours)",
        render(
            ["Application", "our package", "files", "our LoC",
             "paper LoC", "paper history", "paper stars"],
            rows,
        ),
    )

    # Shape assertions: relative sizes preserved (Kubernetes largest,
    # BoltDB smallest) even at mini scale.
    sizes = {app: app_usages[app.value].loc for app in App}
    assert min(sizes, key=sizes.get) == App.BOLTDB
    assert all(usage.loc > 100 for usage in app_usages.values())
