"""Table 9 — non-blocking bug root causes.

Paper: ~80% of non-blocking bugs come from un/mis-protected shared memory
(traditional 46, anonymous function 11, WaitGroup 6, libraries) and ~20%
from message passing (channel 16, lib 1).  Observations 7 and 8.
"""

from repro.dataset.records import Behavior, Cause, NonBlockingSubCause
from repro.study import tables, taxonomy


def test_table9_nonblocking_causes(benchmark, report, dataset):
    table = benchmark(taxonomy.nonblocking_cause_table, dataset)

    body = tables.table9(dataset)
    nonblocking = [r for r in dataset if r.behavior == Behavior.NONBLOCKING]
    shared_share = sum(r.cause == Cause.SHARED_MEMORY for r in nonblocking) / len(nonblocking)
    body += (f"\n\nshared-memory share: {shared_share:.0%} (paper ~80%, "
             f"Observation 8: far fewer non-blocking bugs from message passing)")
    report("Table 9: non-blocking bug causes", body)

    sums = {
        sub: sum(table[app][sub] for app in table)
        for sub in NonBlockingSubCause
    }
    assert sums[NonBlockingSubCause.TRADITIONAL] == 46
    assert sums[NonBlockingSubCause.ANONYMOUS_FUNCTION] == 11
    assert sums[NonBlockingSubCause.WAITGROUP] == 6
    assert sums[NonBlockingSubCause.SHARED_LIBRARY] == 6
    assert sums[NonBlockingSubCause.CHAN] == 16
    assert sums[NonBlockingSubCause.MSG_LIBRARY] == 1
    assert 0.78 <= shared_share <= 0.82

    # Observation 7: about two-thirds of shared-memory non-blocking bugs
    # are traditional; Go's new semantics/libraries contribute the rest.
    shared_total = sum(
        sums[s] for s in NonBlockingSubCause if s.cause == Cause.SHARED_MEMORY
    )
    assert 0.6 < sums[NonBlockingSubCause.TRADITIONAL] / shared_total < 0.72


def test_table9_kernels_cover_every_cause(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table9_kernels_cover_every_cause(report), rounds=1, iterations=1)


def _run_test_table9_kernels_cover_every_cause(report):
    from repro.bugs import registry

    rows = []
    for sub in NonBlockingSubCause:
        kernels = [k for k in registry.by_subcause(sub)]
        assert kernels, sub
        rows.append([str(sub), len(kernels),
                     ", ".join(k.meta.kernel_id for k in kernels[:2])])
    report(
        "Table 9 companion: executable kernels per non-blocking cause",
        tables.render(["Cause", "kernels", "examples"], rows),
    )
