"""Table 7 — fix strategies for blocking bugs, with the lift analysis.

Paper: among the 33 Mutex/RWMutex bugs — 8 fixed by adding, 9 by moving,
11 by removing synchronization; lift(Mutex, Move_s) = 1.52 is the
strongest correlation, lift(Chan, Add_s) = 1.42 second; ~90% of blocking
fixes adjust synchronization; mean patch 6.8 lines.
"""

import pytest

from repro.dataset.paper_values import (
    LIFT_BLOCKING_CHAN_ADD,
    LIFT_BLOCKING_MUTEX_MOVE,
    MEAN_BLOCKING_PATCH_LINES,
)
from repro.dataset.records import Behavior, BlockingSubCause, FixStrategy
from repro.study import lift as lift_mod
from repro.study import tables


def test_table7_blocking_fix_strategies(benchmark, report, dataset):
    lifts = benchmark(lift_mod.all_strategy_lifts, dataset, Behavior.BLOCKING)

    body = tables.table7(dataset)
    blocking = [r for r in dataset if r.behavior == Behavior.BLOCKING]
    mean_patch = sum(r.patch_lines for r in blocking) / len(blocking)
    sync_share = sum(r.fix_strategy != FixStrategy.MISC for r in blocking) / len(blocking)
    body += (f"\n\nmean blocking patch: {mean_patch:.1f} lines (paper 6.8); "
             f"fixes adjusting synchronization: {sync_share:.0%} (paper ~90%)")
    body += "\n\ntop lifts:\n" + "\n".join(f"  {l}" for l in lifts[:4])
    report("Table 7: blocking fix strategies + lift", body)

    assert lifts[0].a == str(BlockingSubCause.MUTEX)
    assert lifts[0].b == str(FixStrategy.MOVE_SYNC)
    assert lifts[0].lift == pytest.approx(LIFT_BLOCKING_MUTEX_MOVE, abs=0.02)
    chan_add = next(l for l in lifts
                    if l.a == str(BlockingSubCause.CHAN)
                    and l.b == str(FixStrategy.ADD_SYNC))
    assert chan_add.lift == pytest.approx(LIFT_BLOCKING_CHAN_ADD, abs=0.02)
    assert mean_patch == pytest.approx(MEAN_BLOCKING_PATCH_LINES, abs=0.05)
    assert sync_share >= 0.90


def test_table7_fixes_verified_executable(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table7_fixes_verified_executable(report), rounds=1, iterations=1)


def _run_test_table7_fixes_verified_executable(report):
    """Implication 3's premise, demonstrated: the corpus fixes are simple
    strategy applications and they *work* (buggy blocks, fixed doesn't)."""
    from collections import Counter

    from repro.bugs import registry

    strategies = Counter()
    for kernel in registry.blocking_kernels():
        strategies[str(kernel.meta.fix_strategy)] += 1
        assert not kernel.manifested(kernel.run_fixed(seed=0))
    report(
        "Table 7 companion: verified fix strategies in the kernel corpus",
        "\n".join(f"  {s}: {n} kernels fixed" for s, n in sorted(strategies.items())),
    )
