"""Table 12 — the data race detector on the reproduced non-blocking bugs.

Paper: 20 reproduced non-blocking bugs, 100 runs each with ``-race``:
7/13 traditional and 3/4 anonymous-function bugs detected, none of the
others; six of the successes fire on every run, four needed ~100 runs;
zero false positives.  Misses happen because (1) not every non-blocking
bug is a data race, (2) detection depends on the interleaving, and
(3) four shadow words per object forget old accesses.

Ours: the vector-clock detector with 4 shadow words over the non-blocking
corpus, 100 seeds per kernel, grouped by Table 9 category.
"""

from collections import defaultdict

from repro.bugs import registry
from repro.dataset.paper_values import TABLE12_RUNS
from repro.dataset.records import NonBlockingSubCause
from repro.detect import RaceDetector
from repro.study.tables import render

RUNS = TABLE12_RUNS  # 100, as in the paper


def _evaluate():
    per_cause = defaultdict(lambda: [0, 0])      # used, detected
    always = occasionally = 0
    for kernel in registry.nonblocking_kernels(reproduced_only=True):
        sub = kernel.meta.subcause
        per_cause[sub][0] += 1
        detecting_runs = 0
        for seed in range(RUNS):
            detector = RaceDetector(shadow_words=4)
            kernel.run_buggy(seed=seed, observers=[detector])
            detecting_runs += detector.detected
        if detecting_runs:
            per_cause[sub][1] += 1
            if detecting_runs == RUNS:
                always += 1
            else:
                occasionally += 1
    return per_cause, always, occasionally


def test_table12_race_detector(benchmark, report):
    per_cause, always, occasionally = benchmark.pedantic(
        _evaluate, rounds=1, iterations=1
    )

    rows = []
    total_used = total_detected = 0
    for sub in NonBlockingSubCause:
        used, detected = per_cause.get(sub, (0, 0))
        rows.append([str(sub), used, detected])
        total_used += used
        total_detected += detected
    rows.append(["Total", total_used, total_detected])
    body = render(["Root cause", "# bugs used", f"detected within {RUNS} runs"], rows)
    body += (f"\n\nfires on every run: {always} kernels; "
             f"needs many runs: {occasionally} kernels."
             f"\npaper: traditional 7/13, anonymous 3/4, others 0; "
             f"6 always / 4 rarely; no false positives.")
    report("Table 12: data race detector evaluation", body)

    # Shape: races in the shared-memory categories are found; the
    # non-race bug classes (select ordering, timer misuse, pure channel
    # rule violations that panic before racing) are missed.
    trad = per_cause[NonBlockingSubCause.TRADITIONAL]
    anon = per_cause[NonBlockingSubCause.ANONYMOUS_FUNCTION]
    assert trad[1] >= trad[0] - 2      # most traditional races caught...
    assert trad[1] < trad[0]           # ...but not all (order violation,
                                       # shadow eviction)
    assert anon[1] == anon[0]          # capture races are plain data races
    assert per_cause[NonBlockingSubCause.MSG_LIBRARY][1] == 0  # Fig 12: no race
    assert total_detected < total_used  # the headline: -race is not enough


def test_table12_no_false_positives(benchmark, report):
    benchmark.pedantic(lambda: _run_test_table12_no_false_positives(report), rounds=1, iterations=1)


def _run_test_table12_no_false_positives(report):
    checked = 0
    for kernel in registry.nonblocking_kernels(reproduced_only=True):
        for seed in range(5):
            detector = RaceDetector(shadow_words=4)
            kernel.run_fixed(seed=seed, observers=[detector])
            assert not detector.detected, (kernel.meta.kernel_id, seed)
            checked += 1
    report("Table 12 companion: false-positive check",
           f"{checked} fixed-variant runs under the race detector, "
           f"0 reports — matching the paper.")
