"""Figure 4 — bug life time CDFs.

Paper: both shared-memory and message-passing bugs live long (most exceed
a year); the two CDFs track each other closely.
"""

from repro.dataset.records import Cause
from repro.study import figures, lifetime
from repro.study.tables import render


def test_fig4_lifetime_cdf(benchmark, report, dataset):
    cdfs = benchmark(figures.figure4_data, dataset)
    summary = lifetime.summary(dataset)

    rows = []
    for cause in Cause:
        stats = summary[cause]
        rows.append([
            str(cause),
            int(stats["count"]),
            f"{stats['median_days']:.0f}d",
            f"{stats['mean_days']:.0f}d",
            f"{stats['share_over_one_year']:.0%}",
        ])
    body = render(["Cause", "bugs", "median", "mean", "> 1 year"], rows)
    import statistics

    mean_lag = statistics.mean(r.report_lag_days for r in dataset)
    body += (f"\n\nmean report-to-fix lag: {mean_lag:.1f} days (the paper: "
             f"reports land close to fixes — hard to trigger, quick to fix)")
    body += "\n\n" + figures.ascii_cdf(cdfs[Cause.SHARED_MEMORY], label="shared memory")
    body += "\n\n" + figures.ascii_cdf(cdfs[Cause.MESSAGE_PASSING], label="message passing")
    body += "\n\npaper: both curves rise slowly; bugs are long-lived."
    report("Figure 4: bug life time CDF", body)

    for cause in Cause:
        assert summary[cause]["median_days"] > 300
        assert summary[cause]["share_over_one_year"] > 0.4
    assert mean_lag < 21  # report→fix is days, not the dormant months
    # The curves track each other (the paper plots them nearly overlapping).
    for q in (0.25, 0.5, 0.75):
        sm = _quantile(cdfs[Cause.SHARED_MEMORY], q)
        mp = _quantile(cdfs[Cause.MESSAGE_PASSING], q)
        assert abs(sm - mp) / max(sm, mp) < 0.4, q


def _quantile(points, q):
    return next(v for v, p in points if p >= q)
