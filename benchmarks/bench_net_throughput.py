"""Network throughput: the fabric under load, and determinism at scale.

Three claims about :mod:`repro.net`:

1. The virtual-time load generator sustains **six figures of requests in
   one deterministic run** — 100,000 echo round trips through the
   simulated fabric, with latency percentiles from the observe-layer
   histograms, in seconds of wall clock.
2. The fabric and RPC micro-workloads hold their single-run cost
   (``BENCH_net.json`` at the repo root is the committed baseline; CI's
   perf-smoke job uploads a fresh document per run).
3. Loadgen seed sweeps are **byte-identical** across worker counts:
   ``jobs=4`` returns exactly the serial summaries.
"""

from functools import partial

from repro.bench import render, run_net_benchmarks
from repro.net.demo import loadgen_summary
from repro.parallel import map_units


def test_loadgen_sustains_100k_requests(benchmark, report):
    summary = benchmark.pedantic(
        lambda: loadgen_summary(seed=3, clients=40, requests=2500,
                                rate=500.0),
        rounds=1, iterations=1)

    lat = summary["latency"]
    report("Virtual-time load generator at 100k requests", "\n".join([
        f"requests: {summary['requests']:,} from {summary['clients']} "
        f"client(s)",
        f"status: {summary['status']}  steps: {summary['steps']:,}  "
        f"virtual: {summary['virtual_s']:.2f}s",
        f"throughput: {summary['rps_virtual']:,.0f} req/s virtual",
        f"latency: mean={lat['mean'] * 1e3:.3f}ms "
        f"p50<={lat['p50'] * 1e3:.3f}ms p90<={lat['p90'] * 1e3:.3f}ms "
        f"p99<={lat['p99'] * 1e3:.3f}ms max={lat['max'] * 1e3:.3f}ms",
        f"fabric: {summary['net']}",
    ]))

    assert summary["status"] == "ok"
    assert summary["requests"] == 100_000
    assert summary["errors"] == 0
    assert summary["leaked"] == 0
    assert lat["count"] == 100_000
    assert lat["p99"] >= lat["p50"] > 0
    assert summary["net"]["delivered"] == summary["net"]["sent"]


def test_net_micro_benchmarks(benchmark, report):
    document = benchmark.pedantic(
        lambda: run_net_benchmarks(repeats=1, loadgen_requests=100),
        rounds=1, iterations=1)

    report("Network micro-benchmarks (baseline: BENCH_net.json)",
           render(document))

    assert set(document["single"]) == {"net_pingpong", "net_rpc"}
    for row in document["single"].values():
        assert row["fast"]["steps_per_run"] > 0
    assert document["loadgen"]["errors"] == 0
    assert document["loadgen"]["deterministic"]


def test_loadgen_sweep_parallel_identical(benchmark, report):
    units = [partial(loadgen_summary, seed, 4, 50, 200.0, "poisson")
             for seed in range(6)]

    serial = map_units(units, jobs=1)
    parallel = benchmark.pedantic(
        lambda: map_units(units, jobs=4), rounds=1, iterations=1)

    report("Loadgen sweep equivalence", "\n".join(
        [f"seed={row['seed']}: requests={row['requests']} "
         f"steps={row['steps']} virtual={row['virtual_s']}s "
         f"p99<={row['latency']['p99'] * 1e3:.3f}ms"
         for row in serial]
        + [f"jobs=4 byte-identical to jobs=1: {serial == parallel}"]))

    assert serial == parallel
    assert all(row["errors"] == 0 for row in serial)
