#!/usr/bin/env python
"""Regenerate the paper's full evaluation in one terminal report.

Prints Tables 5, 6, 7, 9, 10 and 11 from the dataset, the Figure 4
lifetime summary, the Figure 2/3 stability check, and the nine key
observations with the numbers backing them.

Equivalent CLI:  python -m repro report
Run:             python examples/study_report.py
"""

from repro.study.report import full_report


def main():
    print(full_report())


if __name__ == "__main__":
    main()
