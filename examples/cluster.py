#!/usr/bin/env python
"""A config service as a real multi-node deployment on the simulated network.

Earlier revisions of this example composed the mini-apps inside one
process.  Now the serving plane runs on :mod:`repro.net`: the config
server is a named fabric node fronting a minietcd store and a miniboltdb
audit log, and every client is its own node dialing over links with
latency.  The wiring is the same paper-shaped composition — RPC facade,
leases, watch stream, batched audit writes under one errgroup — but the
messages now cross a deterministic network that can be partitioned,
delayed or made lossy by a fault plan.

Run:  python examples/cluster.py
"""

from repro import run
from repro.apps.miniboltdb import DB, Batcher
from repro.apps.minietcd import Node as KvNode
from repro.net import Node, RpcServer, connect_with_retry
from repro.stdlib.errgroup import with_context


def cluster(rt):
    net = rt.network(name="confignet", default_latency=0.003)

    # ------------------------------------------------------------------
    # Storage plane (on the server machine): etcd-like node + audit log.
    # ------------------------------------------------------------------
    kv = KvNode(rt, compaction_interval=10.0)
    kv.start()
    audit_db = DB(rt)
    audit = Batcher(rt, audit_db, max_batch=4, flush_interval=1.0)
    audit.start()
    audit_seq = rt.atomic_int(0, name="audit.seq")

    def audit_event(kind, key):
        seq = audit_seq.add(1)
        audit.batch(lambda tx, seq=seq: tx.put(f"audit/{seq:04d}", (kind, key)))

    # ------------------------------------------------------------------
    # Serving plane: one fabric node, gRPC-style server over the wire.
    # ------------------------------------------------------------------
    server_node = Node(net, "configd")
    server = RpcServer(server_node, name="configd")

    def rpc_put(payload):
        key, value = payload
        kv.put(key, value)
        audit_event("put", key)
        return kv.store.revision

    def rpc_get(key):
        return kv.get(key)

    def rpc_session(owner):
        lease = kv.grant_lease(3.0)
        kv.put(f"sessions/{owner}", "active", lease=lease)
        audit_event("session", owner)
        return lease.id

    def rpc_watch(prefix, send):
        watcher = kv.watch(prefix, buffer=16)
        try:
            for _ in range(3):  # stream the next three events
                event = watcher.events.recv()
                send((event.kind, event.key, event.revision))
        finally:
            kv.watch_hub.cancel(watcher)

    server.register("put", rpc_put)
    server.register("get", rpc_get)
    server.register("session", rpc_session)
    server.register_streaming("watch", rpc_watch)
    server.serve(server_node.listen("rpc"))
    addr = server_node.addr("rpc")

    # ------------------------------------------------------------------
    # Workload: one fabric node per client, under one errgroup.
    # ------------------------------------------------------------------
    group, _ctx = with_context(rt)
    observed = rt.shared("observed", ())
    observed_mu = rt.mutex("observed")

    def watcher_client():
        node = Node(net, "watcher")
        client = connect_with_retry(node, addr, name="watcher")
        for frame in client.stream("watch", "app/"):
            with observed_mu:
                observed.update(lambda t: t + (frame,))
        client.close()
        node.stop()

    def writer_client():
        node = Node(net, "writer")
        client = connect_with_retry(node, addr, name="writer")
        rt.sleep(0.3)  # let the watcher register first
        for i in range(3):
            client.call("put", (f"app/key-{i}", i * 10), timeout=2.0)
            rt.sleep(0.2)
        client.close()
        node.stop()

    def session_client():
        node = Node(net, "alice")
        client = connect_with_retry(node, addr, name="alice")
        client.call("session", "alice", timeout=2.0)
        client.close()
        node.stop()
        # alice never renews: the lease expires and the key vanishes

    group.go(watcher_client, name="watcher-client")
    group.go(writer_client, name="writer-client")
    group.go(session_client, name="session-client")
    err = group.wait()
    assert err is None, err

    rt.sleep(4.0)  # alice's lease expires
    session_after = kv.get("sessions/alice")

    server_node.stop()
    audit.stop()
    kv.stop()
    rt.sleep(0.5)

    return {
        "watched": observed.peek(),
        "final": [(item.key, item.value) for item in kv.range("app/")],
        "session_after_expiry": session_after,
        "audit_entries": len(audit_db.keys()),
        "audit_batches": audit.batches.load(),
        "fabric": dict(net.stats),
    }


def main():
    result = run(cluster, seed=9)
    assert result.status == "ok", (result, [g.describe() for g in result.leaked])
    summary = result.main_result
    print("== watch stream delivered (over the fabric) ==")
    for kind, key, revision in summary["watched"]:
        print(f"   {kind} {key} @rev{revision}")
    print("== final state ==")
    for key, value in summary["final"]:
        print(f"   {key} = {value}")
    print(f"== session after lease expiry: "
          f"{summary['session_after_expiry']} (expired) ==")
    print(f"== audit log: {summary['audit_entries']} entries in "
          f"{summary['audit_batches']} batched transactions ==")
    fabric = summary["fabric"]
    print(f"== fabric: {fabric['sent']} messages sent, "
          f"{fabric['delivered']} delivered, {fabric['dials']} dials ==")
    print(f"\nrun: {len(result.goroutines)} goroutines, "
          f"{result.steps} steps, virtual time {result.end_time:.1f}s, "
          f"status={result.status}")


if __name__ == "__main__":
    main()
