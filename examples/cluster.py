#!/usr/bin/env python
"""Composing the substrates: an RPC-fronted, lease-backed config service.

A minigrpc server exposes a minietcd node over three RPCs (get/put/watch
-snapshot); clients hold sessions under leases; a miniboltdb store keeps
an audit log through its batcher.  One errgroup supervises the whole
thing, and the run must come back leak-free — which is the point: the
paper's bug classes are exactly what goes wrong when these pieces are
wired together carelessly.

Run:  python examples/cluster.py
"""

from repro import run
from repro.apps.miniboltdb import DB, Batcher
from repro.apps.minietcd import Node
from repro.apps.minigrpc import Listener, Server, dial
from repro.stdlib.errgroup import with_context


def cluster(rt):
    # ------------------------------------------------------------------
    # Storage plane: the etcd-like node and the bolt-like audit log.
    # ------------------------------------------------------------------
    node = Node(rt, compaction_interval=10.0)
    node.start()
    audit_db = DB(rt)
    audit = Batcher(rt, audit_db, max_batch=4, flush_interval=1.0)
    audit.start()
    audit_seq = rt.atomic_int(0, name="audit.seq")

    def audit_event(kind, key):
        seq = audit_seq.add(1)
        audit.batch(lambda tx, seq=seq: tx.put(f"audit/{seq:04d}", (kind, key)))

    # ------------------------------------------------------------------
    # Serving plane: the gRPC-like facade.
    # ------------------------------------------------------------------
    listener = Listener(rt)
    server = Server(rt, name="configd")

    def rpc_put(payload):
        key, value = payload
        node.put(key, value)
        audit_event("put", key)
        return node.store.revision

    def rpc_get(payload):
        return node.get(payload)

    def rpc_session(payload):
        lease = node.grant_lease(3.0)
        node.put(f"sessions/{payload}", "active", lease=lease)
        audit_event("session", payload)
        return lease.id

    server.register("put", rpc_put)
    server.register("get", rpc_get)
    server.register("session", rpc_session)

    def rpc_watch_stream(prefix, send):
        watcher = node.watch(prefix, buffer=16)
        for _ in range(3):  # stream the next three events
            event = watcher.events.recv()
            send((event.kind, event.key, event.revision))
        node.watch_hub.cancel(watcher)

    server.register_stream("watch", rpc_watch_stream)
    server.start(listener)

    # ------------------------------------------------------------------
    # Workload: clients under one errgroup.
    # ------------------------------------------------------------------
    group, _ctx = with_context(rt)
    observed = rt.shared("observed", ())
    observed_mu = rt.mutex("observed")

    def watcher_client():
        client = dial(rt, listener)
        for frame in client.stream("watch", "app/"):
            with observed_mu:
                observed.update(lambda t: t + (frame,))
        client.close()

    def writer_client():
        client = dial(rt, listener)
        rt.sleep(0.3)  # let the watcher register first
        for i in range(3):
            client.call("put", (f"app/key-{i}", i * 10))
            rt.sleep(0.2)
        client.close()

    def session_client():
        client = dial(rt, listener)
        client.call("session", "alice")
        client.close()
        # alice never renews: the lease expires and the key vanishes

    group.go(watcher_client, name="watcher-client")
    group.go(writer_client, name="writer-client")
    group.go(session_client, name="session-client")
    err = group.wait()
    assert err is None, err

    rt.sleep(4.0)  # alice's lease expires
    session_after = node.get("sessions/alice")

    server.graceful_stop(listener)
    audit.stop()
    node.stop()
    rt.sleep(0.5)

    audit_keys = audit_db.keys()
    return {
        "watched": observed.peek(),
        "final": [(kv.key, kv.value) for kv in node.range("app/")],
        "session_after_expiry": session_after,
        "audit_entries": len(audit_keys),
        "audit_batches": audit.batches.load(),
    }


def main():
    result = run(cluster, seed=9)
    assert result.status == "ok", (result, [g.describe() for g in result.leaked])
    summary = result.main_result
    print("== watch stream delivered ==")
    for kind, key, revision in summary["watched"]:
        print(f"   {kind} {key} @rev{revision}")
    print("== final state ==")
    for key, value in summary["final"]:
        print(f"   {key} = {value}")
    print(f"== session after lease expiry: "
          f"{summary['session_after_expiry']} (expired) ==")
    print(f"== audit log: {summary['audit_entries']} entries in "
          f"{summary['audit_batches']} batched transactions ==")
    print(f"\nrun: {len(result.goroutines)} goroutines, "
          f"{result.steps} steps, virtual time {result.end_time:.1f}s, "
          f"status={result.status}")


if __name__ == "__main__":
    main()
