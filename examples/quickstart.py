#!/usr/bin/env python
"""Quickstart: Go-style concurrency on the simulator in five minutes.

Covers goroutines, channels, select, the sync package, virtual time, and
what happens when you get it wrong (deadlocks, leaks, panics, races) —
the bug classes from "Understanding Real-World Concurrency Bugs in Go"
(ASPLOS 2019).

Run:  python examples/quickstart.py
"""

from repro import run
from repro.chan import recv, send
from repro.detect import RaceDetector


def hello_goroutines(rt):
    """Spawn workers, collect results over a channel."""
    results = rt.make_chan(0, name="results")

    def worker(index):
        rt.sleep(0.1 * index)       # virtual time: free and deterministic
        results.send(index * index)

    for i in range(5):
        rt.go(worker, i)
    return sorted(results.recv() for _ in range(5))


def fan_in_with_select(rt):
    """select across two producers plus a timeout."""
    fast = rt.make_chan()
    slow = rt.make_chan()
    rt.go(lambda: (rt.sleep(0.2), fast.send("fast")))
    rt.go(lambda: (rt.sleep(2.0), slow.send("slow")))
    timer = rt.new_timer(1.0)

    collected = []
    for _ in range(2):
        index, value, _ok = rt.select(recv(fast), recv(slow), recv(timer.c))
        collected.append(value if index != 2 else "timeout")
    return collected


def shared_memory_the_right_way(rt):
    """WaitGroup + Mutex: the bread-and-butter sync primitives."""
    wg = rt.waitgroup()
    mu = rt.mutex()
    ledger = rt.shared("ledger", 0)

    def deposit():
        with mu:                      # without this: a data race
            ledger.add(10)
        wg.done()

    for _ in range(10):
        wg.add(1)
        rt.go(deposit)
    wg.wait()
    return ledger.peek()


def what_a_deadlock_looks_like(rt):
    ch = rt.make_chan()
    ch.recv()  # nobody will ever send


def what_a_leak_looks_like(rt):
    ch = rt.make_chan()
    rt.go(lambda: ch.send("lost result"), name="orphan")
    rt.sleep(0.1)  # main gives up and returns; the orphan blocks forever


def what_a_race_looks_like(rt):
    counter = rt.shared("counter", 0)
    wg = rt.waitgroup()
    for _ in range(4):
        wg.add(1)

        def bump():
            counter.add(1)  # unprotected read-modify-write
            wg.done()

        rt.go(bump)
    wg.wait()
    return counter.peek()


def main():
    print("== goroutines and channels ==")
    result = run(hello_goroutines, seed=1)
    print(f"   squares: {result.main_result}   ({result.steps} scheduler steps)")

    print("== select with timeout ==")
    result = run(fan_in_with_select, seed=1)
    print(f"   got: {result.main_result}  (slow producer lost to the timer)")

    print("== WaitGroup + Mutex ==")
    result = run(shared_memory_the_right_way, seed=7)
    print(f"   ledger: {result.main_result}")

    print("== a global deadlock (the built-in detector's territory) ==")
    result = run(what_a_deadlock_looks_like)
    print(f"   status: {result.status}")
    for line in result.blocked_forever:
        print(f"   {line}")

    print("== a goroutine leak (the paper's blocking-bug symptom) ==")
    result = run(what_a_leak_looks_like)
    print(f"   status: {result.status};"
          f" leaked: {[g.name for g in result.leaked]}")

    print("== a data race, caught by the detector ==")
    detector = RaceDetector()
    result = run(what_a_race_looks_like, seed=3, observers=[detector])
    print(f"   final counter: {result.main_result} (should be 4!)")
    for report in detector.reports:
        print(f"   {report}")

    print("== determinism: same seed, same story ==")
    a = run(what_a_race_looks_like, seed=3).main_result
    b = run(what_a_race_looks_like, seed=3).main_result
    counts = {run(what_a_race_looks_like, seed=s).main_result for s in range(20)}
    print(f"   seed 3 twice: {a} == {b}; over 20 seeds the counter takes "
          f"values {sorted(counts)}")


if __name__ == "__main__":
    main()
