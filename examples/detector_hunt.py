#!/usr/bin/env python
"""Run all four detectors across the executable bug corpus.

The paper's Section 5.3 / 6.3 experiments as an interactive tour: every
kernel's buggy variant goes through the built-in deadlock detector, the
goroutine-leak extension, the happens-before race detector, and the
channel-rule checker; the static capture detector scans the corpus source.

Run:  python examples/detector_hunt.py
"""

from collections import Counter
from pathlib import Path

from repro import run
from repro.bugs import registry
from repro.dataset.records import Behavior
from repro.detect import (
    AnonymousCaptureDetector,
    BuiltinDeadlockDetector,
    ChannelRuleChecker,
    GoroutineLeakDetector,
    RaceDetector,
)


def manifesting_seed(kernel):
    if kernel.meta.deterministic:
        return 0
    seeds = kernel.manifestation_seeds(range(40))
    return seeds[0] if seeds else 0


def hunt_blocking():
    print("== blocking corpus: built-in detector vs leak detector ==")
    builtin = BuiltinDeadlockDetector()
    leakdet = GoroutineLeakDetector()
    score = Counter()
    for kernel in registry.blocking_kernels():
        result = kernel.run_buggy(seed=manifesting_seed(kernel))
        b = builtin.classify(result)
        l = leakdet.classify(result)
        score["builtin"] += b
        score["leakdet"] += l
        marker = "!!" if b else ("ok" if l else "??")
        print(f"   [{marker}] {kernel.meta.kernel_id:<48} "
              f"status={result.status:<9} builtin={'HIT ' if b else 'miss'} "
              f"leakdet={'HIT' if l else 'miss'}")
    total = len(registry.blocking_kernels())
    print(f"   built-in: {score['builtin']}/{total} "
          f"(paper: 2/21) — leak detector: {score['leakdet']}/{total}\n")


def hunt_nonblocking(runs=25):
    print(f"== non-blocking corpus: race detector, {runs} runs each ==")
    detected = Counter()
    used = Counter()
    for kernel in registry.nonblocking_kernels():
        sub = str(kernel.meta.subcause)
        used[sub] += 1
        hits = 0
        for seed in range(runs):
            det = RaceDetector()
            kernel.run_buggy(seed=seed, observers=[det])
            hits += det.detected
        if hits:
            detected[sub] += 1
        rate = f"{hits}/{runs}"
        print(f"   {kernel.meta.kernel_id:<48} race-detected in {rate} runs")
    print("   by category: " + ", ".join(
        f"{sub} {detected[sub]}/{used[sub]}" for sub in sorted(used)))
    print("   (paper: traditional 7/13, anonymous 3/4, all others 0)\n")


def hunt_rules():
    print("== channel-rule checker over every buggy kernel ==")
    violations = Counter()
    for kernel in registry.all_kernels():
        checker = ChannelRuleChecker()
        kwargs = dict(kernel.run_kwargs)
        run(kernel.buggy, seed=manifesting_seed(kernel),
            observers=[checker], **kwargs)
        for violation in checker.violations:
            violations[violation.rule] += 1
    for rule, count in violations.most_common():
        print(f"   {rule:<32} {count} kernels")
    print()


def hunt_captures():
    print("== static capture detector over the corpus source ==")
    corpus_dir = Path(registry.__file__).parent
    detection = AnonymousCaptureDetector().detect_paths([corpus_dir])
    for finding in detection.reports:
        print(f"   {finding}")
    if not detection.detected:
        print("   (corpus kernels encode capture races through SharedVar, "
              "so source-level captures are in their fixed form)")
    figure8 = (
        "def prog(rt):\n"
        "    for i in range(17, 22):\n"
        "        rt.go(lambda: serve('v1.%d' % i))\n"
    )
    demo = AnonymousCaptureDetector().detect_source(figure8, "figure8.py")
    print("   on Figure 8's literal shape:")
    for finding in demo.reports:
        print(f"   {finding}")


if __name__ == "__main__":
    hunt_blocking()
    hunt_nonblocking()
    hunt_rules()
    hunt_captures()
