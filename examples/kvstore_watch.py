#!/usr/bin/env python
"""A service-discovery scenario on minietcd.

Workers register themselves under leases; a load balancer watches the
registry and keeps its backend set current; workers that stop sending
keep-alives expire and vanish from rotation.  The workload the paper's
etcd bugs live in — watches, leases, timers — exercised end to end.

Run:  python examples/kvstore_watch.py
"""

from repro import run
from repro.apps.minietcd import Node
from repro.chan import recv


def service_discovery(rt):
    node = Node(rt, compaction_interval=10.0)
    node.start()
    log = []

    # ------------------------------------------------------------------
    # The load balancer: watch workers/ and maintain the backend set.
    # ------------------------------------------------------------------
    backends = rt.shared("backends", frozenset())
    backends_mu = rt.mutex("backends")
    watcher = node.watch("workers/", buffer=32)
    lb_stop = rt.make_chan(0, name="lb.stop")

    def load_balancer():
        while True:
            index, event, ok = rt.select(recv(lb_stop), recv(watcher.events))
            if index == 0 or not ok:
                return
            with backends_mu:
                current = set(backends.load())
                if event.kind == "PUT":
                    current.add(event.key)
                    log.append(f"t={rt.now():>4.1f}  + {event.key}")
                else:
                    current.discard(event.key)
                    log.append(f"t={rt.now():>4.1f}  - {event.key} (expired)")
                backends.store(frozenset(current))

    rt.go(load_balancer, name="load-balancer")

    # ------------------------------------------------------------------
    # Workers: register under a lease; healthy ones keep it alive.
    # ------------------------------------------------------------------
    def worker(name, healthy, lifetime):
        lease = node.grant_lease(2.0)
        node.put(f"workers/{name}", {"addr": f"10.0.0.{name[-1]}"}, lease=lease)
        elapsed = 0.0
        while elapsed < lifetime:
            rt.sleep(1.0)
            elapsed += 1.0
            if healthy:
                node.lessor.keepalive(lease)
        # an unhealthy worker simply stops heart-beating: the lease expires

    rt.go(worker, "w1", True, 14.0, name="worker-1")
    rt.go(worker, "w2", True, 14.0, name="worker-2")
    rt.go(worker, "w3", False, 8.0, name="worker-3")  # will drop out

    # ------------------------------------------------------------------
    # Traffic: route requests to whatever is in rotation.
    # ------------------------------------------------------------------
    routed = []
    for tick in range(6):
        rt.sleep(1.5)
        with backends_mu:
            pool = sorted(backends.load())
        if pool:
            routed.append(pool[tick % len(pool)])

    rt.sleep(3.0)
    with backends_mu:
        final_pool = sorted(backends.load())
    lb_stop.close()
    node.watch_hub.cancel(watcher)
    node.stop()
    return log, routed, final_pool


def main():
    result = run(service_discovery, seed=11)
    assert result.status == "ok", result
    log, routed, final_pool = result.main_result
    print("== registry events ==")
    for line in log:
        print(f"   {line}")
    print("== routing decisions ==")
    print(f"   {routed}")
    print("== final pool (w3 stopped heart-beating) ==")
    print(f"   {final_pool}")
    assert all("w3" not in b for b in final_pool)
    print(f"\nrun: status={result.status}, {len(result.goroutines)} goroutines, "
          f"virtual time {result.end_time:.1f}s, no leaks")


if __name__ == "__main__":
    main()
