#!/usr/bin/env python
"""Schedule enumeration instead of luck: hunting a rare interleaving.

Figure 9's Add/Wait race (etcd#6371) manifests on roughly one in eight
random schedules.  This example contrasts the two ways to find it —
random seed sweeps vs. the systematic explorer — then replays the found
counterexample deterministically and prints its timeline for triage, and
finally *verifies* the fixed version over the whole bounded schedule
tree.

Run:  python examples/model_checking.py
"""

from repro import run
from repro.bugs.registry import get
from repro.detect.systematic import ScriptedChoices, explore_systematic
from repro.runtime.timeline import timeline

KERNEL = get("nonblocking-wg-etcd-6371")


def random_hunt(budget=400):
    for i, seed in enumerate(range(budget)):
        if KERNEL.manifested(KERNEL.run_buggy(seed=seed)):
            return i + 1
    return None


def main():
    rate = sum(KERNEL.manifested(KERNEL.run_buggy(seed=s))
               for s in range(60)) / 60
    print(f"target: {KERNEL.meta.kernel_id} (Figure {KERNEL.meta.figure})")
    print(f"random manifestation rate: {rate:.0%}\n")

    print("== random seed sweep ==")
    runs = random_hunt()
    print(f"   first manifesting seed found after {runs} runs\n")

    print("== systematic exploration ==")
    exploration = explore_systematic(
        KERNEL.buggy, stop_on=KERNEL.manifested, max_runs=400
    )
    print(f"   {exploration}\n")

    print("== deterministic replay + timeline ==")
    replay = run(KERNEL.buggy, rng=ScriptedChoices(exploration.counterexample))
    assert KERNEL.manifested(replay)
    print(timeline(replay, max_width=72))
    print()

    print("== verifying the committed fix over the schedule tree ==")
    verification = explore_systematic(
        KERNEL.fixed, stop_on=KERNEL.manifested, max_runs=1500
    )
    print(f"   {verification}")
    assert not verification.found


if __name__ == "__main__":
    main()
