#!/usr/bin/env python
"""Quickstart for the virtual-time load generator.

Six simulated clients drive the bundled echo service at a seeded Poisson
arrival rate.  Load costs scheduler steps, not wall-clock waiting, and —
like everything on the deterministic runtime — the whole report is a
pure function of the seed: the run is replayed at the end to show the
bytes come back identical.

Run:  python examples/loadgen.py
"""

from repro import run
from repro.net import echo_load_program


def program(rt):
    return echo_load_program(rt, clients=6, requests=200, rate=300.0)


def main():
    first = run(program, seed=7, max_steps=200_000)
    assert first.status == "ok", first
    report = first.main_result

    print("== load report ==")
    for key in ("requests", "ok", "errors", "virtual_s", "rps_virtual"):
        print(f"   {key}: {report[key]}")
    lat = report["latency"]
    print(f"   latency: mean={lat['mean'] * 1e3:.3f}ms "
          f"p50<={lat['p50'] * 1e3:.3f}ms p90<={lat['p90'] * 1e3:.3f}ms "
          f"p99<={lat['p99'] * 1e3:.3f}ms")
    print(f"   fabric: {report['net']}")

    second = run(program, seed=7, max_steps=200_000)
    print(f"\nreplay with seed=7 identical: "
          f"{second.main_result == report}")
    print(f"run: {first.steps} steps, "
          f"virtual time {first.end_time:.2f}s, status={first.status}")


if __name__ == "__main__":
    main()
