#!/usr/bin/env python
"""The Figure 1 story, end to end.

The paper opens with Kubernetes#5316: a request handler sends its result
into an unbuffered channel while the caller races it against a timeout.
This example (1) reproduces the leak and measures how often it strikes,
(2) applies the one-character fix, and (3) shows the same pattern done
right inside the minigrpc library, under load.

Run:  python examples/request_server.py
"""

from repro import explore, run
from repro.apps.minigrpc import Listener, RpcError, Server, dial
from repro.bugs.registry import figures
from repro.chan import recv
from repro.detect import ChannelRuleChecker, leak_reports


def finish_req(rt, capacity):
    """The paper's finishReq, parameterized by channel capacity."""
    ch = rt.make_chan(capacity, name="result")

    def handler():                 # go func() { ch <- fn() }()
        rt.sleep(0.5)              # fn(): the actual work
        ch.send("response")

    rt.go(handler, name="request-handler")
    timer = rt.new_timer(1.0)      # time.After(timeout)
    rt.sleep(1.5)                  # parent-side post-processing
    index, value, _ok = rt.select(recv(ch), recv(timer.c))
    return value if index == 0 else "timeout"


def demo_bug_and_fix():
    print("== Figure 1: the unbuffered result channel ==")
    seeds = range(40)
    buggy = explore(lambda rt: finish_req(rt, 0), seeds)
    leaks = [r for r in buggy if r.leaked]
    print(f"   unbuffered: {len(leaks)}/{len(buggy)} schedules leak the handler")
    sample = leaks[0]
    for report in leak_reports(sample):
        print(f"   e.g. seed {sample.seed}: {report}")

    checker = ChannelRuleChecker()
    run(lambda rt: finish_req(rt, 0), seed=sample.seed, observers=[checker])
    for violation in checker.violations:
        print(f"   rule checker: {violation}")

    fixed = explore(lambda rt: finish_req(rt, 1), seeds)
    print(f"   buffered(1): {sum(bool(r.leaked) for r in fixed)}/{len(fixed)} leak "
          f"(the committed Kubernetes fix)")
    outcomes = sorted({r.main_result for r in fixed})
    print(f"   behavior preserved: outcomes across seeds = {outcomes}")


def demo_library_under_load():
    print("\n== the same pattern, library-grade, under load (minigrpc) ==")

    def main(rt):
        listener = Listener(rt)
        server = Server(rt, name="api")

        def lookup(payload):
            rt.sleep(0.5 if payload % 3 else 2.0)  # every third call is slow
            return {"user": payload}

        server.register("lookup", lookup)
        server.start(listener)
        client = dial(rt, listener)

        served = timed_out = 0
        for i in range(12):
            try:
                client.call("lookup", i, timeout=1.0)
                served += 1
            except RpcError:
                timed_out += 1
        client.close()
        server.graceful_stop(listener)
        return served, timed_out

    result = run(main, seed=2)
    served, timed_out = result.main_result
    print(f"   served={served} timed_out={timed_out} status={result.status} "
          f"leaked={len(result.leaked)}")
    print("   the client buffers every response channel, so even abandoned"
          " handlers finish cleanly — Figure 1's fix as library policy.")


def demo_corpus_kernel():
    print("\n== the registered corpus kernel ==")
    kernel = figures()["1"]
    rate = len(kernel.manifestation_seeds(range(40))) / 40
    print(f"   {kernel.meta.kernel_id}: manifests on {rate:.0%} of seeds;")
    print(f"   fix strategy: {kernel.meta.fix_strategy} "
          f"({', '.join(str(p) for p in kernel.meta.fix_primitives)})")


if __name__ == "__main__":
    demo_bug_and_fix()
    demo_library_under_load()
    demo_corpus_kernel()
