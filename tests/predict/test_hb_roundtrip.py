"""Round-trip: the exported sync stream rebuilds the live HB closure.

The predictive engine only sees what :func:`repro.observe.sync_events_json`
exports, so the export must carry *every* happens-before-relevant fact.
The pin: replaying the JSON through :class:`repro.predict.HBEngine` in
strict mode must land clock-for-clock on the live
:class:`repro.detect.RaceDetector`'s final vector clocks — over the whole
corpus, buggy and fixed, not a curated subset.
"""

import pytest

from repro import run
from repro.bugs import registry
from repro.detect import RaceDetector
from repro.observe import sync_events_json
from repro.predict import HBEngine, SyncTrace

KERNELS = [k.meta.kernel_id for k in registry.all_kernels()]


def _closures(program, seed, run_kwargs):
    det = RaceDetector(shadow_words=None)
    result = run(program, seed=seed, observers=[det], **run_kwargs)
    trace = SyncTrace.from_json(sync_events_json(result))
    engine = HBEngine(mode="strict")
    for event in trace.events:
        engine.step(event)
    return det.final_clocks(), engine.final_clocks()


@pytest.mark.parametrize("kernel_id", KERNELS)
def test_strict_closure_matches_live_detector(kernel_id):
    kernel = registry.get(kernel_id)
    for program in (kernel.buggy, kernel.fixed):
        live, offline = _closures(program, 0, dict(kernel.run_kwargs))
        for gid, clock in live.items():
            assert offline.get(gid) == clock, (
                f"{kernel_id}: clock for g{gid} diverged after round-trip")


def test_json_is_stable_across_identical_runs():
    kernel = registry.get("blocking-mutex-kubernetes-abba")
    kwargs = dict(kernel.run_kwargs)
    first = sync_events_json(run(kernel.buggy, seed=3, **kwargs))
    second = sync_events_json(run(kernel.buggy, seed=3, **kwargs))
    assert first == second


def test_from_json_equals_from_result():
    kernel = registry.get("nonblocking-trad-docker-lost-update")
    result = run(kernel.buggy, seed=1, **dict(kernel.run_kwargs))
    direct = SyncTrace.from_result(result)
    parsed = SyncTrace.from_json(sync_events_json(result))
    assert len(direct) == len(parsed)
    for a, b in zip(direct.events, parsed.events):
        assert (a.step, a.gid, a.kind, a.obj) == (b.step, b.gid, b.kind, b.obj)
    assert parsed.seed == result.seed
    assert parsed.status == result.status
    assert parsed.goroutine_names == direct.goroutine_names
