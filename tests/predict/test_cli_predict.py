"""`repro predict` and `repro trace-export --sync` CLI behavior."""

import json

from repro.cli import main


def test_predict_kernel_text_output(capsys):
    assert main(["predict", "nonblocking-chan-docker-24007"]) == 0
    out = capsys.readouterr().out
    assert "comm/double-close" in out
    assert "panics" in out


def test_predict_json_payload(capsys):
    assert main(["predict", "blocking-mutex-kubernetes-abba",
                 "--seed", "0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["found"] is True
    families = {p["family"] for p in payload["predictions"]}
    assert "lockorder" in families


def test_predict_confirm_attaches_witness(capsys):
    assert main(["predict", "nonblocking-chan-docker-24007",
                 "--confirm", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    confirmed = [c for c in payload["confirm"] if c["confirmed"]]
    assert confirmed and confirmed[0]["witness"]


def test_predict_triage_verdicts(capsys):
    assert main(["predict", "nonblocking-chan-docker-24007",
                 "--triage"]) == 0
    assert "needs schedule search" in capsys.readouterr().out
    assert main(["predict", "nonblocking-chan-docker-24007",
                 "--fixed", "--triage"]) == 0
    assert "skip schedule search" in capsys.readouterr().out


def test_predict_reads_sync_export_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["trace-export", "blocking-mutex-kubernetes-abba",
                 "--sync", "-o", str(path)]) == 0
    capsys.readouterr()
    document = path.read_text()
    assert json.loads(document)["schema"] == 1

    assert main(["predict", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["found"] is True
    assert payload["target"] == str(path)


def test_predict_confirm_rejects_trace_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    main(["trace-export", "blocking-mutex-kubernetes-abba",
          "--sync", "-o", str(path)])
    capsys.readouterr()
    assert main(["predict", str(path), "--confirm"]) == 2
    assert "runnable target" in capsys.readouterr().err


def test_predict_unknown_target_fails_cleanly(capsys):
    assert main(["predict", "no-such-kernel"]) == 2
    assert "unknown target" in capsys.readouterr().err
