"""Parity: whatever the dynamic detectors catch, predict sees offline.

Satellite contract from the issue: for every kernel where the dynamic
race/deadlock detectors fire (over manifestation-seed sweeps), running
predict on a *single* recorded run — preferring a passing one, the
adversarial input for a predictor — must predict the same bug, or the
kernel must be listed here as out-of-scope with a reason.

The list is currently empty: every dynamically-caught kernel is
predicted from one trace.  If a future kernel legitimately cannot be
predicted offline (e.g. the bug needs an input the recorded run never
exercises), add it with an honest reason rather than weakening the
assertion.
"""

from repro.predict import (
    build_predict_scorecard,
    predict_precision,
    predict_recall,
)

#: kernel_id -> why offline prediction cannot see this one.
OUT_OF_SCOPE = {}

RUNS_PER_KERNEL = 15


def test_predict_covers_every_dynamic_detection():
    rows = build_predict_scorecard(runs_per_kernel=RUNS_PER_KERNEL)
    assert rows, "kernel corpus is empty?"

    missed = [r.kernel_id for r in rows
              if r.dynamic_hit and not r.predicted_hit
              and r.kernel_id not in OUT_OF_SCOPE]
    assert not missed, (
        "dynamic detectors fire but predict is silent (add to "
        f"OUT_OF_SCOPE only with a real reason): {missed}")

    # Out-of-scope entries must stay honest: drop them once predicted.
    stale = [kid for kid in OUT_OF_SCOPE
             if any(r.kernel_id == kid and r.predicted_hit for r in rows)]
    assert not stale, f"now predicted, remove from OUT_OF_SCOPE: {stale}"

    # The issue's acceptance floor, and the headline numbers: predict
    # should catch >= 80% of what the dynamic detectors catch without
    # hallucinating on kernels where nothing fires.
    assert predict_recall(rows) >= 0.8
    assert predict_precision(rows) >= 0.8


def test_predict_only_rows_are_the_known_wins():
    # Predicting *more* than the dynamic detectors is the point of the
    # subsystem, but each predict-only row must be a understood win,
    # not noise: shadow-word eviction (Table 12) and WaitGroup
    # Add/Wait misuse (Figure 9) are invisible to the live detectors
    # by design.
    rows = build_predict_scorecard(runs_per_kernel=RUNS_PER_KERNEL)
    predict_only = {r.kernel_id for r in rows
                    if r.agreement == "predict-only"}
    assert predict_only <= {
        "nonblocking-trad-grpc-shadow-eviction",
        "nonblocking-wg-cockroach-add-inside",
    }
