"""Per-rule predictor behavior on minimal programs.

Each rule gets a positive (the bug shape is predicted from a run where
nothing went wrong) and a negative (the corresponding fix idiom
suppresses the prediction).  Programs are scheduled so the recorded run
is clean — prediction, not detection, is under test.
"""

from repro import run
from repro.chan import recv
from repro.predict import predict


def _rules(report):
    return {(p.family, p.rule) for p in report.predictions}


def _predict(program, seed=0, **run_kwargs):
    result = run(program, seed=seed, **run_kwargs)
    assert result.status == "ok", (
        f"test wants a clean recorded run, got {result.status}")
    return predict(result)


# ---------------------------------------------------------------------------
# race: mutex edges are relaxed, lockset discipline is respected
# ---------------------------------------------------------------------------

def test_mutex_serialized_race_is_predicted():
    # The classic predictive race: both writes happen *outside* the
    # critical section, so the recorded release->acquire edge is
    # coincidental and a reordering races.  The live HB detector is
    # blind to this in most schedules; predict is not.
    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.mutex()

        def first():
            v.store(1)
            with mu:
                pass

        def second():
            rt.sleep(0.5)      # recorded run: strictly after first()
            with mu:
                pass
            v.store(2)

        rt.go(first)
        rt.go(second)
        rt.sleep(1.0)

    report = _predict(main)
    assert ("race", "data-race") in _rules(report)


def test_common_lock_suppresses_predicted_race():
    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.mutex()

        def worker():
            with mu:
                v.add(1)

        rt.go(worker)
        rt.go(worker)
        rt.sleep(1.0)

    assert ("race", "data-race") not in _rules(_predict(main))


def test_channel_edge_is_kept_in_weak_closure():
    # A real hand-off: the send->recv edge orders the writes in every
    # schedule, so no race may be predicted.
    def main(rt):
        v = rt.shared("v", 0)
        ch = rt.make_chan(0)

        def producer():
            v.store(1)
            ch.send(None)

        def consumer():
            ch.recv()
            v.store(2)

        rt.go(producer)
        rt.go(consumer)
        rt.sleep(1.0)

    assert ("race", "data-race") not in _rules(_predict(main))


# ---------------------------------------------------------------------------
# lockorder: ABBA cycles with feasible witnesses
# ---------------------------------------------------------------------------

def test_abba_cycle_predicted_from_serialized_run():
    def main(rt):
        a, b = rt.mutex("A"), rt.mutex("B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            rt.sleep(0.5)      # serialized: the run itself cannot deadlock
            with b:
                with a:
                    pass

        rt.go(forward)
        rt.go(backward)
        rt.sleep(1.0)

    report = _predict(main)
    assert ("lockorder", "lock-cycle") in _rules(report)


def test_same_goroutine_inversion_is_not_a_cycle():
    def main(rt):
        a, b = rt.mutex("A"), rt.mutex("B")

        def worker():
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass

        rt.go(worker)
        rt.sleep(1.0)

    assert ("lockorder", "lock-cycle") not in _rules(_predict(main))


# ---------------------------------------------------------------------------
# comm: send-on-closed
# ---------------------------------------------------------------------------

def test_unordered_send_and_close_predicted():
    def main(rt):
        ch = rt.make_chan(1)
        wg = rt.waitgroup()
        wg.add(2)

        def sender():
            ch.send("frame")
            wg.done()

        def closer():
            rt.sleep(0.5)       # after the send in this schedule only
            ch.close()
            wg.done()

        rt.go(sender)
        rt.go(closer)
        wg.wait()

    report = _predict(main)
    assert ("comm", "send-on-closed") in _rules(report)


# ---------------------------------------------------------------------------
# comm: double-close behind a select-default guard (Figure 10)
# ---------------------------------------------------------------------------

def _teardown_program(rt, use_once):
    closed = rt.make_chan(0, name="c.closed")
    once = rt.once("close-once")
    wg = rt.waitgroup()

    def teardown():
        index, _v, _ok = rt.select(recv(closed), default=True)
        if index == -1:
            if use_once:
                once.do(closed.close)
            else:
                closed.close()
        wg.done()

    for i in range(3):
        wg.add(1)
        rt.go(teardown, name=f"teardown-{i}")
    wg.wait()


def test_guarded_double_close_predicted():
    report = _predict(lambda rt: _teardown_program(rt, use_once=False))
    assert ("comm", "double-close") in _rules(report)


def test_once_wrapped_close_suppresses_prediction():
    report = _predict(lambda rt: _teardown_program(rt, use_once=True))
    assert ("comm", "double-close") not in _rules(report)


# ---------------------------------------------------------------------------
# comm: abandoned sender behind a multi-case select (Figure 1)
# ---------------------------------------------------------------------------

def _finishreq_program(rt, capacity):
    ch = rt.make_chan(capacity, name="ch")

    def handler():
        rt.sleep(0.5)
        ch.send("response")

    rt.go(handler, name="handler")
    timer = rt.new_timer(1.0)
    rt.sleep(1.5)               # both cases ready at the select
    rt.select(recv(ch), recv(timer.c))


def test_abandoned_sender_predicted_when_unbuffered():
    # Find a seed whose select commits the ch case (a passing run).
    for seed in range(20):
        result = run(lambda rt: _finishreq_program(rt, 0), seed=seed)
        if result.status == "ok" and not result.leaked:
            report = predict(result)
            assert ("comm", "abandoned-sender") in _rules(report)
            return
    raise AssertionError("no passing schedule found in 20 seeds")


def test_buffered_channel_suppresses_abandoned_sender():
    for seed in range(20):
        result = run(lambda rt: _finishreq_program(rt, 1), seed=seed)
        assert result.status == "ok" and not result.leaked
        report = predict(result)
        assert ("comm", "abandoned-sender") not in _rules(report)


# ---------------------------------------------------------------------------
# comm: lost signal and the predicate-loop fix
# ---------------------------------------------------------------------------

def _cond_program(rt, use_predicate_loop):
    mu = rt.mutex()
    cond = rt.cond(mu)
    ready = rt.shared("ready", False)

    def waiter():
        with mu:
            if use_predicate_loop:
                while not ready.load():
                    cond.wait()
            else:
                cond.wait()

    def signaler():
        with mu:
            ready.store(True)
            cond.signal()

    rt.go(waiter, name="waiter")
    rt.sleep(0.5)               # waiter parks first: the run is clean
    rt.go(signaler, name="signaler")
    rt.sleep(1.0)


def test_lost_signal_predicted_without_predicate_loop():
    report = _predict(lambda rt: _cond_program(rt, False))
    assert ("comm", "lost-signal") in _rules(report)


def test_predicate_loop_suppresses_lost_signal():
    report = _predict(lambda rt: _cond_program(rt, True))
    assert ("comm", "lost-signal") not in _rules(report)


# ---------------------------------------------------------------------------
# comm: WaitGroup Add/Wait race (Figure 9)
# ---------------------------------------------------------------------------

def test_add_inside_child_predicted():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(1)               # for the launcher itself

        def child():
            wg.add(1)           # BUG: Add races the parent's Wait
            wg.done()

        def launcher():
            rt.go(child)
            wg.done()

        rt.go(launcher)
        rt.sleep(0.5)
        wg.wait()

    report = _predict(main)
    assert ("comm", "wg-add-wait-race") in _rules(report)


def test_add_before_go_is_ordered():
    def main(rt):
        wg = rt.waitgroup()

        def child():
            wg.done()

        wg.add(1)
        rt.go(child)
        wg.wait()

    assert ("comm", "wg-add-wait-race") not in _rules(_predict(main))


# ---------------------------------------------------------------------------
# observed predictions ride along
# ---------------------------------------------------------------------------

def test_stuck_goroutine_reported_from_leaky_run():
    def main(rt):
        ch = rt.make_chan(0)
        rt.go(lambda: ch.recv(), name="forgotten")
        rt.sleep(0.5)

    result = run(main, seed=0)
    assert result.leaked
    report = predict(result)
    assert ("blocking", "stuck-goroutine") in _rules(report)
