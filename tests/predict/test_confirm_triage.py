"""Confirmation (prediction -> replayable witness) and triage screening."""

import pytest

from repro import run
from repro.bugs import registry
from repro.detect.systematic import replay_schedule
from repro.predict import (
    confirm_predictions,
    predict_kernel,
    triage_kernel,
)


def _confirm_kernel(kernel_id, **kwargs):
    kernel = registry.get(kernel_id)
    report, _seed = predict_kernel(kernel)
    assert report.found, f"{kernel_id}: nothing predicted to confirm"
    outcomes = confirm_predictions(
        report, kernel.buggy, run_kwargs=dict(kernel.run_kwargs),
        oracle=kernel.manifested, **kwargs)
    return kernel, report, outcomes


@pytest.mark.parametrize("kernel_id", [
    "nonblocking-chan-docker-24007",       # double-close -> panic
    "blocking-mutex-kubernetes-abba",      # lock cycle  -> deadlock/leak
    "blocking-chan-kubernetes-5316",       # abandoned sender -> leak
    "nonblocking-trad-docker-lost-update", # predicted race
])
def test_predictions_confirm_with_replayable_witness(kernel_id):
    kernel, report, outcomes = _confirm_kernel(kernel_id)
    confirmed = [o for o in outcomes if o.confirmed]
    assert confirmed, f"{kernel_id}: no prediction confirmed within budget"
    for outcome in confirmed:
        assert outcome.witness is not None
        # The witness must stand on its own: replaying the schedule
        # prefix manifests the kernel's own bug definition.
        replayed = replay_schedule(kernel.buggy, outcome.witness,
                                   **dict(kernel.run_kwargs))
        assert kernel.manifested(replayed)
        assert outcome.prediction.confirmed
        assert outcome.prediction.witness == outcome.witness


def test_unconfirmable_prediction_reports_honestly():
    # The fixed docker variant predicts nothing, so fabricate the check
    # on the buggy kernel with a budget too small to find the panic.
    kernel, report, outcomes = _confirm_kernel(
        "nonblocking-chan-docker-24007", max_runs=1)
    assert all(o.confirmed is not True or o.runs <= 1 for o in outcomes)
    for outcome in outcomes:
        if not outcome.confirmed:
            assert outcome.witness is None


def test_shared_predicate_searches_once():
    kernel = registry.get("blocking-mutex-kubernetes-abba")
    report, _seed = predict_kernel(kernel)
    # Lock-cycle plus two stuck goroutines share the blocking oracle.
    outcomes = confirm_predictions(
        report, kernel.buggy, run_kwargs=dict(kernel.run_kwargs),
        oracle=kernel.manifested)
    assert len(outcomes) >= 2
    spent = [o.runs for o in outcomes if o.runs > 0]
    assert len(spent) == 1, "same oracle should share one search"


@pytest.mark.parametrize("kernel_id", [
    "nonblocking-chan-docker-24007",
    "blocking-chan-kubernetes-5316",
    "blocking-mutex-kubernetes-abba",
    "blocking-wait-kubernetes-cond-missed-signal",
    "nonblocking-trad-docker-lost-update",
])
def test_triage_separates_buggy_from_fixed(kernel_id):
    kernel = registry.get(kernel_id)
    dirty = triage_kernel(kernel, fixed=False,
                          seed=_passing_seed(kernel, fixed=False))
    clean = triage_kernel(kernel, fixed=True)
    assert dirty.needs_search, f"{kernel_id}: buggy variant screened clean"
    assert not clean.needs_search, (
        f"{kernel_id}: fixed variant still flagged ({clean.reason})")
    assert "skip schedule search" in str(clean)


def _passing_seed(kernel, fixed):
    program = kernel.fixed if fixed else kernel.buggy
    for seed in range(25):
        result = run(program, seed=seed, **dict(kernel.run_kwargs))
        if not kernel.manifested(result):
            return seed
    return 0
