"""The fork-pool engine itself: worker accounting, ordering, degradation."""

from functools import partial

import pytest

from repro.parallel import effective_jobs, map_units
from repro.parallel import engine as engine_mod


def test_effective_jobs_accounting():
    assert effective_jobs(1, 100) == 1
    assert effective_jobs(0, 100) == 1
    assert effective_jobs(4, 0) == 1
    assert effective_jobs(4, 1) == 1
    if engine_mod._fork_available():
        assert effective_jobs(4, 100) == 4
        assert effective_jobs(8, 3) == 3


def test_nested_sweeps_degrade_to_serial(monkeypatch):
    # The worker-side _IN_WORKER flag (set by the pool initializer) is the
    # "I am a forked worker" signal: a sweep started from inside one must
    # run in-process, never fork recursively.
    monkeypatch.setattr(engine_mod, "_IN_WORKER", True)
    assert effective_jobs(8, 100) == 1
    assert map_units([lambda: 1, lambda: 2], jobs=8) == [1, 2]


def test_parent_between_reuses_is_not_a_worker():
    # Regression: the old engine used the unit-publication slot as the
    # nesting sentinel, which misclassified the parent as "inside a worker"
    # whenever the slot leaked.  The parent must stay a parent before,
    # between, and after pool uses.
    if not engine_mod._fork_available():
        pytest.skip("fork unavailable")
    assert not engine_mod._IN_WORKER
    map_units([partial(_square, i) for i in range(8)], jobs=2)
    assert not engine_mod._IN_WORKER
    assert effective_jobs(4, 100) == 4


def _square(i):
    return i * i


@pytest.mark.parametrize("jobs", [1, 4])
def test_map_units_preserves_submission_order(jobs):
    units = [partial(_square, i) for i in range(20)]
    assert map_units(units, jobs=jobs) == [i * i for i in range(20)]


def _boom():
    raise ValueError("unit failure")


@pytest.mark.parametrize("jobs", [1, 2])
def test_unit_exceptions_propagate(jobs):
    with pytest.raises(ValueError, match="unit failure"):
        map_units([_boom, _boom], jobs=jobs)


def test_unit_slot_reset_after_pool():
    # The closure-fallback path publishes units in the module slot; it must
    # always be cleared afterwards (lambdas force the non-picklable path).
    if not engine_mod._fork_available():
        pytest.skip("fork unavailable")
    captured = []
    original = engine_mod._map_units_fallback

    def spying(units, workers, chunk):
        captured.append(len(units))
        return original(units, workers, chunk)

    engine_mod._map_units_fallback = spying
    try:
        slow = engine_mod.MIN_PARALLEL_COST_S
        engine_mod.MIN_PARALLEL_COST_S = 0.0  # defeat the serial cutover
        values = [10, 11, 12, 13, 14, 15]
        results = map_units([(lambda v=v: v * v) for v in values], jobs=2)
    finally:
        engine_mod._map_units_fallback = original
        engine_mod.MIN_PARALLEL_COST_S = slow
    assert results == [v * v for v in values]
    assert captured, "closure units should take the fallback path"
    assert engine_mod._ACTIVE_UNITS is None


def test_persistent_pool_reused_across_calls():
    if not engine_mod._fork_available():
        pytest.skip("fork unavailable")
    engine_mod.shutdown_pool()
    before = engine_mod.pool_stats()
    slow = engine_mod.MIN_PARALLEL_COST_S
    engine_mod.MIN_PARALLEL_COST_S = 0.0  # force dispatch even for cheap units
    try:
        for _ in range(3):
            assert map_units([partial(_square, i) for i in range(12)],
                             jobs=2) == [i * i for i in range(12)]
    finally:
        engine_mod.MIN_PARALLEL_COST_S = slow
    after = engine_mod.pool_stats()
    assert after["pools_created"] == before["pools_created"] + 1
    assert after["dispatches"] >= before["dispatches"] + 3
    assert after["pool_alive"] == 1
    engine_mod.shutdown_pool()
    assert engine_mod.pool_stats()["pool_alive"] == 0


def _spread(rt):
    """Completion order of three workers — seed-sensitive output."""
    ch = rt.make_chan(3)

    def worker(i):
        ch.send(i)

    for i in range(3):
        rt.go(worker, i)
    return tuple(ch.recv() for _ in range(3))


def test_three_consecutive_sweeps_one_pool_identical_to_serial():
    # The steady-state contract in one test: back-to-back sweeps reuse a
    # single pool (no fork/teardown per call) and every round is
    # byte-identical to the serial sweep.  Memo off so each round really
    # dispatches instead of replaying the first round from cache.
    if not engine_mod._fork_available():
        pytest.skip("fork unavailable")
    from repro.parallel import memo as memo_mod
    from repro.parallel import sweep_seeds

    engine_mod.shutdown_pool()
    slow = engine_mod.MIN_PARALLEL_COST_S
    engine_mod.MIN_PARALLEL_COST_S = 0.0  # force dispatch for tiny programs
    try:
        with memo_mod.disable():
            serial = sweep_seeds(_spread, range(12), jobs=1)
            before = engine_mod.pool_stats()
            for _ in range(3):
                assert sweep_seeds(_spread, range(12), jobs=4) == serial
    finally:
        engine_mod.MIN_PARALLEL_COST_S = slow
    after = engine_mod.pool_stats()
    assert after["pools_created"] == before["pools_created"] + 1
    assert after["dispatches"] == before["dispatches"] + 3
    assert after["pool_alive"] == 1


def test_adaptive_cutover_stays_serial_for_cheap_units():
    if not engine_mod._fork_available():
        pytest.skip("fork unavailable")
    before = engine_mod.pool_stats()
    assert map_units([partial(_square, i) for i in range(32)],
                     jobs=4) == [i * i for i in range(32)]
    after = engine_mod.pool_stats()
    # Instant units can't pay for fan-out: no new dispatch, cutover counted.
    assert after["dispatches"] == before["dispatches"]
    assert after["serial_cutovers"] == before["serial_cutovers"] + 1
