"""The fork-pool engine itself: worker accounting, ordering, degradation."""

from functools import partial

import pytest

from repro.parallel import effective_jobs, map_units
from repro.parallel import engine as engine_mod


def test_effective_jobs_accounting():
    assert effective_jobs(1, 100) == 1
    assert effective_jobs(0, 100) == 1
    assert effective_jobs(4, 0) == 1
    assert effective_jobs(4, 1) == 1
    if engine_mod._fork_available():
        assert effective_jobs(4, 100) == 4
        assert effective_jobs(8, 3) == 3


def test_nested_sweeps_degrade_to_serial(monkeypatch):
    # A non-None unit slot is the "I am a forked worker" signal: a sweep
    # started from inside one must run in-process, never fork recursively.
    monkeypatch.setattr(engine_mod, "_ACTIVE_UNITS", [lambda: None])
    assert effective_jobs(8, 100) == 1
    assert map_units([lambda: 1, lambda: 2], jobs=8) == [1, 2]


def _square(i):
    return i * i


@pytest.mark.parametrize("jobs", [1, 4])
def test_map_units_preserves_submission_order(jobs):
    units = [partial(_square, i) for i in range(20)]
    assert map_units(units, jobs=jobs) == [i * i for i in range(20)]


def _boom():
    raise ValueError("unit failure")


@pytest.mark.parametrize("jobs", [1, 2])
def test_unit_exceptions_propagate(jobs):
    with pytest.raises(ValueError, match="unit failure"):
        map_units([_boom, _boom], jobs=jobs)


def test_unit_slot_reset_after_pool():
    map_units([partial(_square, i) for i in range(4)], jobs=2)
    assert engine_mod._ACTIVE_UNITS is None
