"""Cross-run memoization: repeated sweeps, chaos cells, explorations.

The memo's contract has two halves: cached consumers return exactly what
an uncached run returns (determinism makes the stored result the real
one), and repeats genuinely skip the work.  The second half is what the
counters here pin down — a silent cache miss would only show up as time.
"""

import pytest

from repro.bugs.registry import get
from repro.detect.systematic import explore_systematic
from repro.inject.harness import ChaosHarness, ChaosTarget, manifestation_rate
from repro.parallel import memo as memo_mod
from repro.parallel import sweep_seeds
from repro.parallel.memo import RunMemo

KERNEL = get("blocking-chan-kubernetes-5316")

#: Executions of ``_counting`` — observable with ``jobs=1`` (in-process).
_CALLS = {"n": 0}


def _counting(rt):
    _CALLS["n"] += 1
    ch = rt.make_chan(1)
    rt.go(lambda: ch.send(1))
    return ch.recv()


@pytest.fixture(autouse=True)
def _fresh_memo():
    memo_mod.clear()
    _CALLS["n"] = 0
    yield
    memo_mod.clear()


def test_repeat_sweep_served_from_cache():
    first = sweep_seeds(_counting, range(4), memo_key=("t", "counting"))
    assert _CALLS["n"] == 4
    second = sweep_seeds(_counting, range(4), memo_key=("t", "counting"))
    assert _CALLS["n"] == 4          # nothing re-ran
    assert second == first


def test_partial_overlap_runs_only_new_seeds():
    sweep_seeds(_counting, range(4), memo_key=("t", "counting"))
    summaries = sweep_seeds(_counting, range(6), memo_key=("t", "counting"))
    assert _CALLS["n"] == 6          # seeds 4 and 5 only
    assert [s.seed for s in summaries] == list(range(6))


def test_disable_rules_the_cache_out():
    sweep_seeds(_counting, range(3), memo_key=("t", "counting"))
    with memo_mod.disable():
        sweep_seeds(_counting, range(3), memo_key=("t", "counting"))
    assert _CALLS["n"] == 6
    # Nothing was stored while disabled, and the old entries still serve.
    sweep_seeds(_counting, range(3), memo_key=("t", "counting"))
    assert _CALLS["n"] == 6


def test_run_options_are_part_of_the_key():
    sweep_seeds(_counting, range(3), memo_key=("t", "counting"))
    sweep_seeds(_counting, range(3), memo_key=("t", "counting"),
                time_limit=123.0)
    assert _CALLS["n"] == 6          # different options, different cells


def test_no_memo_key_means_no_caching():
    sweep_seeds(_counting, range(3))
    sweep_seeds(_counting, range(3))
    assert _CALLS["n"] == 6


def test_manifestation_seeds_memoized_across_calls():
    first = KERNEL.manifestation_seeds(range(8))
    hits_before = memo_mod.memo.hits
    second = KERNEL.manifestation_seeds(range(8))
    assert second == first
    assert memo_mod.memo.hits == hits_before + 8


def test_manifestation_rate_memoized_across_calls():
    first = manifestation_rate(KERNEL, range(6))
    hits_before = memo_mod.memo.hits
    assert manifestation_rate(KERNEL, range(6)) == first
    assert memo_mod.memo.hits > hits_before


def test_chaos_cells_memoized_across_harnesses():
    target = ChaosTarget.from_kernel(KERNEL)
    first = ChaosHarness(seeds=range(3))
    first.sweep([target], plans=[])
    hits_before = memo_mod.memo.hits
    second = ChaosHarness(seeds=range(3))
    second.sweep([target], plans=[])
    assert memo_mod.memo.hits > hits_before
    assert second.to_dict() == first.to_dict()


def test_exploration_replays_from_the_memo_trie():
    kernel = get("blocking-chan-cockroach-missing-case")
    first = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                               max_runs=200, **kernel.run_kwargs)
    assert first.runs_saved == 0
    again = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                               max_runs=200, **kernel.run_kwargs)
    assert again.runs_saved > 0
    assert again.runs_executed < first.runs_executed
    assert (again.runs, again.exhausted, again.found) == \
        (first.runs, first.exhausted, first.found)
    assert again.statuses == first.statuses


def test_lru_bound_evicts_oldest():
    small = RunMemo(max_entries=2)
    small.put("a", 1)
    small.put("b", 2)
    small.put("c", 3)
    assert "a" not in small
    assert small.get("b") == 2 and small.get("c") == 3
    assert small.stats()["entries"] == 2
