"""jobs=1 vs jobs=N byte-equivalence, for every sweep consumer.

The parallel engine's contract is that parallelism is invisible in the
output: same summaries, same order, same JSON, for the seed sweep, the
explorer, the detectors' sweeps, and the chaos harness.  These tests pin
that contract with a worker count above 1 regardless of how many cores the
CI machine has (forking 4 workers on 1 core is slower, never different).
"""

import json
import time

import pytest

from repro import explore, run
from repro.bugs.registry import get
from repro.detect.systematic import explore_systematic
from repro.inject.harness import ChaosHarness, ChaosTarget, manifestation_rate
from repro.inject.plans import default_suite
from repro.parallel import schedule_digest, sweep_seeds

JOBS = 4

#: A seed-sensitive kernel (manifests on some seeds, not others).
KERNEL = get("blocking-chan-kubernetes-5316")


def _racy(rt):
    """Completion order of three workers — varies with the seed."""
    ch = rt.make_chan(3)

    def worker(i):
        ch.send(i)

    for i in range(3):
        rt.go(worker, i)
    return tuple(ch.recv() for _ in range(3))


def _tiny(rt):
    """Small enough for systematic exploration to exhaust."""
    ch = rt.make_chan(1)
    rt.go(lambda: ch.send(1))
    return ch.recv()


# ----------------------------------------------------------------------
# sweep_seeds / explore
# ----------------------------------------------------------------------


def test_sweep_seeds_byte_identical():
    seeds = range(8)
    serial = sweep_seeds(_racy, seeds, jobs=1)
    parallel = sweep_seeds(_racy, seeds, jobs=JOBS)
    assert serial == parallel
    assert [s.seed for s in serial] == list(seeds)
    assert json.dumps([s.to_dict() for s in serial], sort_keys=True) == \
        json.dumps([s.to_dict() for s in parallel], sort_keys=True)
    # Digests are present and the sweep really explored >1 interleaving.
    assert all(s.trace_digest for s in serial)
    assert len({s.trace_digest for s in serial}) > 1


def test_explore_summaries_identical():
    assert explore(_racy, range(8), jobs=1, summaries=True) == \
        explore(_racy, range(8), jobs=JOBS, summaries=True)


def test_schedule_digest_stable_across_runs():
    a = schedule_digest(run(_racy, seed=3))
    b = schedule_digest(run(_racy, seed=3))
    assert a == b
    assert len(a) == 64  # sha256 hex — comparable across processes
    assert schedule_digest(run(_racy, seed=3, keep_trace=False)) is None


# ----------------------------------------------------------------------
# Detector sweeps
# ----------------------------------------------------------------------


def test_kernel_manifestation_seeds_identical():
    seeds = range(16)
    serial = KERNEL.manifestation_seeds(seeds, jobs=1)
    parallel = KERNEL.manifestation_seeds(seeds, jobs=JOBS)
    assert serial == parallel
    # The kernel is seed-sensitive: a strict subset manifests.
    assert 0 < len(serial) < 16


def test_chaos_manifestation_rate_identical():
    seeds = range(10)
    assert manifestation_rate(KERNEL, seeds, jobs=1) == \
        manifestation_rate(KERNEL, seeds, jobs=JOBS)


def test_systematic_exploration_coverage_identical():
    serial = explore_systematic(_tiny, max_runs=4000)
    parallel = explore_systematic(_tiny, max_runs=4000, jobs=JOBS)
    # Exhaustion visits exactly the same bounded tree regardless of the
    # visiting order, so the totals agree.
    assert serial.exhausted and parallel.exhausted
    assert serial.runs == parallel.runs
    assert serial.statuses == parallel.statuses


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------


def test_chaos_harness_sweep_identical():
    target = ChaosTarget.from_kernel(KERNEL)
    plans = list(default_suite())[:2]
    serial = ChaosHarness(seeds=range(4), jobs=1)
    parallel = ChaosHarness(seeds=range(4), jobs=JOBS)
    serial.sweep([target], plans=plans)
    parallel.sweep([target], plans=plans)
    assert json.dumps(serial.to_dict(), sort_keys=True) == \
        json.dumps(parallel.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Sweep teardown bound
# ----------------------------------------------------------------------


def _stubborn(rt):
    """Leaves one host thread that swallows the teardown Killed signal."""
    ch = rt.make_chan(0)

    def stubborn():
        while True:
            try:
                ch.recv()
            except BaseException:
                continue

    rt.go(stubborn)
    rt.sleep(0.1)
    return True


def test_sweep_applies_short_join_timeout():
    # sweep_seeds shrinks host_join_timeout (in the serial path too) so a
    # pathological seed costs ~1 s of teardown instead of the 5 s default.
    start = time.monotonic()
    with pytest.warns(RuntimeWarning, match="did not unwind"):
        summaries = sweep_seeds(_stubborn, [0], drain=False)
    assert time.monotonic() - start < 4.0
    assert summaries[0].stuck_host_threads
    assert summaries[0].main_result is True
