"""Channel-rule checker diagnostics."""

from repro import run
from repro.detect import ChannelRuleChecker


def _check(program, seed=0, **kw):
    checker = ChannelRuleChecker()
    result = run(program, seed=seed, observers=[checker], **kw)
    return checker, result


def test_double_close_diagnosed():
    def main(rt):
        ch = rt.make_chan()
        ch.close()
        ch.close()

    checker, _ = _check(main)
    assert [v.rule for v in checker.violations] == ["close-of-closed-channel"]


def test_send_on_closed_diagnosed():
    def main(rt):
        ch = rt.make_chan(1)
        ch.close()
        ch.send(1)

    checker, _ = _check(main)
    assert [v.rule for v in checker.violations] == ["send-on-closed-channel"]


def test_negative_waitgroup_diagnosed():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(1)
        wg.done()
        wg.done()

    checker, _ = _check(main)
    assert [v.rule for v in checker.violations] == ["negative-waitgroup-counter"]


def test_unlock_of_unlocked_diagnosed():
    def main(rt):
        rt.mutex().unlock()

    checker, _ = _check(main)
    assert [v.rule for v in checker.violations] == ["unlock-of-unlocked-mutex"]


def test_nil_channel_block_diagnosed():
    def main(rt):
        rt.go(lambda: rt.nil_chan().recv())
        rt.sleep(0.1)

    checker, _ = _check(main)
    assert [v.rule for v in checker.violations] == ["operation-on-nil-channel"]


def test_leaked_sender_diagnosed_with_channel_identity():
    def main(rt):
        ch = rt.make_chan(0, name="results")
        rt.go(lambda: ch.send(1))
        rt.sleep(0.1)

    checker, _ = _check(main)
    assert len(checker.violations) == 1
    violation = checker.violations[0]
    assert violation.rule == "missing-receiver"
    assert "results" in violation.message


def test_leaked_receiver_diagnosed():
    def main(rt):
        ch = rt.make_chan(0, name="updates")
        rt.go(lambda: ch.recv())
        rt.sleep(0.1)

    checker, _ = _check(main)
    assert checker.violations[0].rule == "missing-sender-or-close"


def test_deadlocked_main_diagnosed():
    def main(rt):
        rt.make_chan(0, name="stuck").recv()

    checker, result = _check(main)
    assert result.status == "deadlock"
    assert checker.violations[0].rule == "missing-sender-or-close"


def test_clean_program_yields_no_violations():
    def main(rt):
        ch = rt.make_chan(1)
        ch.send(1)
        ch.recv()
        ch.close()

    checker, result = _check(main)
    assert result.status == "ok"
    assert not checker.detected
    assert result.rule_violations == []
