"""The built-in deadlock detector replica and the leak-detector extension."""

from repro import run
from repro.detect import BuiltinDeadlockDetector, GoroutineLeakDetector, leak_reports


def _global_deadlock(rt):
    mu = rt.mutex()
    mu.lock()
    mu.lock()


def _partial_deadlock(rt):
    ch = rt.make_chan()
    rt.go(lambda: ch.recv())  # stuck forever
    rt.sleep(0.1)             # main continues and exits


def _healthy(rt):
    ch = rt.make_chan(1)
    ch.send(1)
    return ch.recv()


def test_builtin_detects_global_deadlock():
    detection = BuiltinDeadlockDetector().detect(_global_deadlock)
    assert detection.detected
    assert detection.runs == 1
    assert detection.reports


def test_builtin_misses_partial_deadlock():
    """Miss cause #1: some goroutine can still run (here: main)."""
    detection = BuiltinDeadlockDetector().detect(_partial_deadlock)
    assert not detection.detected


def test_builtin_misses_external_wait():
    """Miss cause #2: goroutines waiting on non-Go resources."""

    def main(rt):
        rt.external_wait("blocked syscall")

    detection = BuiltinDeadlockDetector().detect(main)
    assert not detection.detected


def test_builtin_no_false_positive_on_healthy_program():
    detection = BuiltinDeadlockDetector().detect(_healthy)
    assert not detection.detected


def test_leak_detector_catches_partial_deadlock():
    detection = GoroutineLeakDetector().detect(_partial_deadlock)
    assert detection.detected
    assert any("chan.recv" in str(r) for r in detection.reports)


def test_leak_detector_catches_global_deadlock_too():
    assert GoroutineLeakDetector().detect(_global_deadlock).detected


def test_leak_detector_no_false_positive():
    assert not GoroutineLeakDetector().detect(_healthy).detected


def test_leak_reports_structured():
    result = run(_partial_deadlock)
    reports = leak_reports(result)
    assert len(reports) == 1
    report = reports[0]
    assert report.gid == 2
    assert report.reason.startswith("chan.recv")
    assert "LEAK" in str(report)


def test_leak_reports_for_deadlock_status():
    result = run(_global_deadlock)
    reports = leak_reports(result)
    assert len(reports) == 1
    assert "mutex.lock" in reports[0].reason
