"""Divergence accounting: clamped replays are visible, not just counted.

Satellite fix: ``ScriptedChoices`` records every clamped draw as a
``(position, intended, n)`` event, and the exploration surfaces them in
``to_stats()`` — which is exactly what ``repro explore --json --stats``
serializes — instead of a bare count.
"""

import json

from repro.bugs import registry
from repro.cli import main
from repro.detect.systematic import (
    Exploration,
    ScriptedChoices,
    replay_schedule,
)


def test_scripted_choices_records_clamp_events():
    choices = ScriptedChoices([5, 0, 9])
    assert choices.randrange(3) == 2      # clamped: intended 5, n=3
    assert choices.randrange(4) == 0      # exact
    assert choices.randrange(2) == 1      # clamped: intended 9, n=2
    assert choices.randrange(6) == 0      # past the prefix: defaults to 0
    assert choices.divergences == [(0, 5, 3), (2, 9, 2)]
    assert choices.diverged


def test_replay_schedule_exposes_divergences():
    kernel = registry.get("nonblocking-chan-docker-24007")
    # An absurd over-range prefix must clamp somewhere and say so.
    result = replay_schedule(kernel.buggy, [99] * 4,
                             **dict(kernel.run_kwargs))
    assert result.replay_divergences
    position, intended, n = result.replay_divergences[0]
    assert intended == 99 and n <= 99


def test_exploration_stats_carry_divergence_events():
    exploration = Exploration(
        runs=3, exhausted=True,
        divergence_events=[(1, 7, 2), (0, 3, 2)])
    stats = exploration.to_stats()
    assert stats["divergence_events"] == [[1, 7, 2], [0, 3, 2]]
    assert json.dumps(stats)  # JSON-serializable as exported by the CLI


def test_explore_json_stats_include_divergence_events(capsys):
    assert main(["explore", "nonblocking-chan-docker-24007",
                 "--max-runs", "30", "--json", "--stats"]) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["stats"]
    assert "divergences" in stats
    assert "divergence_events" in stats
    assert isinstance(stats["divergence_events"], list)
    assert len(stats["divergence_events"]) == stats["divergences"] or (
        stats["divergences"] > 100     # capped retention, count is exact
        and len(stats["divergence_events"]) == 100)
