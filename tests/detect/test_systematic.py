"""Systematic schedule exploration (bounded model checking)."""

from repro import run
from repro.bugs.registry import get
from repro.detect.systematic import (
    Exploration,
    ScriptedChoices,
    explore_systematic,
    verify_no_manifestation,
)


def _racy(rt):
    v = rt.shared("v", 0)

    def worker():
        v.add(1)

    rt.go(worker)
    rt.go(worker)
    rt.sleep(0.5)
    return v.peek() != 2  # truthy == lost update observed


def test_scripted_choices_replay_and_default():
    choices = ScriptedChoices([2, 0])
    assert choices.randrange(5) == 2
    assert choices.randrange(3) == 0
    assert choices.randrange(4) == 0   # beyond the prefix: default 0
    assert choices.log == [(5, 2), (3, 0), (4, 0)]


def test_scripted_choice_clamped_to_range():
    choices = ScriptedChoices([9])
    assert choices.randrange(3) == 2   # clamped to n-1


def test_finds_lost_update_schedule():
    exploration = explore_systematic(
        _racy, stop_on=lambda r: bool(r.main_result), max_runs=500
    )
    assert exploration.found
    assert exploration.runs < 50       # directed, not lucky
    assert "counterexample" in str(exploration)


def test_counterexample_replays_deterministically():
    exploration = explore_systematic(
        _racy, stop_on=lambda r: bool(r.main_result), max_runs=500
    )
    replay = run(_racy, rng=ScriptedChoices(exploration.counterexample))
    assert bool(replay.main_result) is True


def test_exhaustive_verification_of_correct_program():
    def correct(rt):
        counter = rt.atomic_int(0)

        def worker():
            counter.add(1)

        rt.go(worker)
        rt.go(worker)
        rt.sleep(0.1)
        return counter.load() != 2

    exploration = explore_systematic(
        correct, stop_on=lambda r: bool(r.main_result), max_runs=5000
    )
    assert not exploration.found
    assert exploration.exhausted       # a real guarantee, not sampling
    assert exploration.statuses == {"ok": exploration.runs}
    assert "property holds" in str(exploration)


def test_budget_bound_respected():
    exploration = explore_systematic(_racy, max_runs=7)
    assert exploration.runs <= 7
    assert not exploration.exhausted


def test_rare_kernel_found_quickly():
    """etcd#6371 manifests on ~1/8 random seeds; the explorer walks
    straight to it."""
    kernel = get("nonblocking-wg-etcd-6371")
    exploration = explore_systematic(
        kernel.buggy, stop_on=kernel.manifested, max_runs=400
    )
    assert exploration.found
    assert exploration.runs < 100


def test_verify_no_manifestation_on_fixed_kernel():
    kernel = get("nonblocking-trad-etcd-check-then-act")
    exploration = verify_no_manifestation(kernel, "fixed", max_runs=400)
    assert not exploration.found


def test_statuses_summarize_coverage():
    exploration = explore_systematic(_racy, max_runs=30)
    assert exploration.statuses.get("ok", 0) == exploration.runs
