"""Sleep-set pruning is invisible in verdicts, over the whole corpus.

Pruning claims an equivalence: every schedule it skips only reorders
commuting transitions of a schedule it ran, so counterexamples and
exhaustion verdicts must come out exactly as in the raw tree — on all 54
kernels, not a curated subset.  The memo layer makes the same claim for
repeated explorations.  Budgets are bounded so the whole file stays in
tier-1 time; the deeper 800-run comparison lives in
``benchmarks/bench_explore_pruning.py``.
"""

import pytest

from repro.bugs import registry
from repro.detect.systematic import explore_systematic
from repro.parallel import memo as memo_mod

CORPUS = list(registry.all_kernels())


@pytest.fixture(autouse=True)
def _fresh_memo():
    memo_mod.clear()
    yield
    memo_mod.clear()


def test_counterexample_parity_over_corpus():
    # Wherever the raw tree finds the bug within budget, the pruned tree
    # must find it too (possibly via a different equivalent schedule).
    missed = []
    with memo_mod.disable():
        for kernel in CORPUS:
            base = explore_systematic(
                kernel.buggy, stop_on=kernel.manifested, max_runs=80,
                prune=False, memo=False, **kernel.run_kwargs)
            pruned = explore_systematic(
                kernel.buggy, stop_on=kernel.manifested, max_runs=80,
                prune=True, memo=False, **kernel.run_kwargs)
            if base.found and not pruned.found:
                missed.append(kernel.meta.kernel_id)
            if pruned.found:
                assert kernel.manifested(pruned.counterexample_result)
    assert not missed, f"pruning lost counterexamples: {missed}"


def test_exhaustion_verdicts_match_over_corpus():
    # On the fixed programs the question is the verdict: pruning may never
    # turn "exhausted, no bug" into anything weaker, and must agree on
    # found/not-found at equal budgets.  It should also genuinely save
    # work somewhere, or it is dead weight.
    regressions, savers = [], 0
    with memo_mod.disable():
        for kernel in CORPUS:
            base = explore_systematic(
                kernel.fixed, stop_on=kernel.manifested, max_runs=100,
                prune=False, memo=False, **kernel.run_kwargs)
            pruned = explore_systematic(
                kernel.fixed, stop_on=kernel.manifested, max_runs=100,
                prune=True, memo=False, **kernel.run_kwargs)
            if base.found != pruned.found:
                regressions.append(kernel.meta.kernel_id)
            if base.exhausted and not pruned.exhausted:
                regressions.append(kernel.meta.kernel_id)
            if base.exhausted and pruned.exhausted and \
                    pruned.runs_executed < base.runs_executed:
                savers += 1
    assert not regressions, f"verdict changed under pruning: {regressions}"
    assert savers >= 3


@pytest.mark.parametrize("kernel_id", [
    "blocking-chan-cockroach-missing-case",
    "blocking-chan-etcd-error-path-no-send",
    "blocking-mutex-kubernetes-abba",
])
def test_default_flags_match_unpruned_verdict(kernel_id):
    # The defaults (prune=True, memo=True) across two rounds — the second
    # served from the memo trie — give the unpruned verdict both times.
    kernel = registry.get(kernel_id)
    with memo_mod.disable():
        base = explore_systematic(
            kernel.fixed, stop_on=kernel.manifested, max_runs=300,
            prune=False, memo=False, **kernel.run_kwargs)
    first = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                               max_runs=300, **kernel.run_kwargs)
    second = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                                max_runs=300, **kernel.run_kwargs)
    for exploration in (first, second):
        assert exploration.found == base.found
        assert exploration.exhausted >= base.exhausted
    assert first.pruned > 0
    assert second.runs_saved > 0
    assert second.runs == first.runs


def test_stats_expose_the_savings():
    kernel = registry.get("blocking-chan-cockroach-missing-case")
    with memo_mod.disable():
        exploration = explore_systematic(
            kernel.fixed, stop_on=kernel.manifested, max_runs=300,
            memo=False, **kernel.run_kwargs)
    stats = exploration.to_stats()
    assert stats["runs_executed"] == exploration.runs
    assert stats["pruned"] == exploration.pruned > 0
    assert stats["runs_saved"] == 0
    for key in ("runs", "exhausted", "divergences", "max_depth", "wall_s"):
        assert key in stats
