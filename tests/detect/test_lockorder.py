"""Lock-order detector: potential deadlocks without needing the hang."""

from repro import run
from repro.detect import LockOrderDetector


def _detect(program, seed=0, **kw):
    detector = LockOrderDetector()
    result = run(program, seed=seed, observers=[detector], **kw)
    return detector, result


def test_ab_ba_inversion_detected_even_when_nothing_blocks():
    """The schedule below never deadlocks (the workers run one after the
    other), but the inversion is still a bug waiting for the right
    timing — and the detector sees it from the order graph alone."""

    def main(rt):
        a = rt.mutex("A")
        b = rt.mutex("B")

        def one():
            a.lock(); b.lock()
            b.unlock(); a.unlock()

        def two():
            b.lock(); a.lock()
            a.unlock(); b.unlock()

        rt.go(one)
        rt.sleep(1.0)  # serialize: no actual deadlock this run
        rt.go(two)
        rt.sleep(1.0)

    detector, result = _detect(main)
    assert result.status == "ok"          # nothing actually hung...
    assert detector.detected              # ...but the hazard is real
    violation = detector.violations[0]
    assert len(violation.cycle) == 2
    assert "POTENTIAL DEADLOCK" in str(violation)


def test_consistent_order_is_clean():
    def main(rt):
        a = rt.mutex("A")
        b = rt.mutex("B")

        def worker():
            a.lock(); b.lock()
            b.unlock(); a.unlock()

        rt.go(worker)
        rt.go(worker)
        rt.sleep(1.0)

    detector, _ = _detect(main)
    assert not detector.detected


def test_three_lock_cycle_detected():
    def main(rt):
        locks = [rt.mutex(name) for name in "ABC"]

        def chain(first, second):
            locks[first].lock()
            locks[second].lock()
            locks[second].unlock()
            locks[first].unlock()

        for i in range(3):
            rt.go(chain, i, (i + 1) % 3)   # A->B, B->C, C->A
            rt.sleep(0.5)                   # serialized: no actual hang
        rt.sleep(0.5)

    detector, result = _detect(main)
    assert result.status == "ok"
    assert any(len(v.cycle) == 3 for v in detector.violations)


def test_nested_same_lock_not_self_edge():
    """Re-acquiring the same mutex is self-deadlock, not a cycle; the
    order graph must not record A->A."""

    def main(rt):
        a = rt.mutex("A")
        a.lock()
        a.unlock()
        a.lock()
        a.unlock()

    detector, _ = _detect(main)
    assert (list(detector.edges) == [])


def test_rwmutex_write_locks_participate():
    def main(rt):
        rw = rt.rwmutex("RW")
        mu = rt.mutex("M")

        def one():
            rw.lock(); mu.lock()
            mu.unlock(); rw.unlock()

        def two():
            mu.lock(); rw.lock()
            rw.unlock(); mu.unlock()

        rt.go(one)
        rt.sleep(0.5)
        rt.go(two)
        rt.sleep(0.5)

    detector, _ = _detect(main)
    assert detector.detected


def test_abba_kernel_flagged_on_every_seed():
    """The corpus AB/BA kernel is caught regardless of manifestation."""
    from repro.bugs.registry import get

    kernel = get("blocking-mutex-kubernetes-abba")
    for seed in range(6):
        detector = LockOrderDetector()
        kernel.run_buggy(seed=seed, observers=[detector])
        assert detector.detected, seed
        fixed_detector = LockOrderDetector()
        kernel.run_fixed(seed=seed, observers=[fixed_detector])
        assert not fixed_detector.detected, seed


def test_no_false_positives_on_apps():
    """The mini-apps are lock-order clean."""
    from repro.apps.minigrpc.bench import WORKLOADS

    for workload, progs in WORKLOADS.items():
        detector = LockOrderDetector()
        run(progs["go"], seed=1, observers=[detector])
        assert not detector.detected, workload


def test_finish_exposes_violations_on_result():
    def main(rt):
        a = rt.mutex(); b = rt.mutex()
        a.lock(); b.lock(); b.unlock(); a.unlock()
        b.lock(); a.lock(); a.unlock(); b.unlock()

    detector, result = _detect(main)
    assert result.lock_order_violations == detector.violations
