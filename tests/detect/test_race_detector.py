"""Race detector: true positives, HB-edge suppression, shadow words."""

from repro import run
from repro.detect import RaceDetector


def _detect(program, seeds=range(15), **detector_kwargs):
    hits = 0
    for seed in seeds:
        det = RaceDetector(**detector_kwargs)
        run(program, seed=seed, observers=[det])
        hits += det.detected
    return hits


def test_unsynchronized_write_write_race_detected():
    def main(rt):
        v = rt.shared("v", 0)
        rt.go(lambda: v.store(1))
        rt.go(lambda: v.store(2))
        rt.sleep(0.1)

    assert _detect(main) == 15


def test_read_write_race_detected():
    def main(rt):
        v = rt.shared("v", 0)
        rt.go(lambda: v.store(1))
        rt.go(lambda: v.load())
        rt.sleep(0.1)

    assert _detect(main) == 15


def test_read_read_is_not_a_race():
    def main(rt):
        v = rt.shared("v", 0)
        rt.go(lambda: v.load())
        rt.go(lambda: v.load())
        rt.sleep(0.1)

    assert _detect(main) == 0


def test_mutex_discipline_suppresses_report():
    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.mutex()

        def worker():
            with mu:
                v.add(1)

        rt.go(worker)
        rt.go(worker)
        rt.sleep(0.1)

    assert _detect(main) == 0


def test_rwmutex_discipline_suppresses_report():
    def main(rt):
        v = rt.shared("v", 0)
        mu = rt.rwmutex()

        def writer():
            mu.lock()
            v.store(1)
            mu.unlock()

        def reader():
            mu.rlock()
            v.load()
            mu.runlock()

        rt.go(writer)
        rt.go(reader)
        rt.sleep(0.1)

    assert _detect(main) == 0


def test_unbuffered_channel_synchronizes_both_ways():
    def main(rt):
        v = rt.shared("v", 0)
        ch = rt.make_chan()

        def worker():
            v.store(1)
            ch.send(None)   # release to the receiver
            v.load()        # ordered after main's read (rendezvous)

        rt.go(worker)
        ch.recv()
        v.load()

    assert _detect(main) == 0


def test_goroutine_creation_orders_parent_prefix():
    def main(rt):
        v = rt.shared("v", 0)
        v.store(1)          # before go: ordered with the child
        rt.go(lambda: v.load())
        rt.sleep(0.1)

    assert _detect(main) == 0


def test_waitgroup_done_wait_edge():
    def main(rt):
        v = rt.shared("v", 0)
        wg = rt.waitgroup()
        wg.add(1)

        def worker():
            v.store(1)
            wg.done()

        rt.go(worker)
        wg.wait()
        v.load()

    assert _detect(main) == 0


def test_once_edge():
    def main(rt):
        v = rt.shared("v", None)
        once = rt.once()

        def user():
            once.do(lambda: v.store("ready"))
            v.load()

        rt.go(user)
        rt.go(user)
        rt.sleep(0.5)

    assert _detect(main) == 0


def test_atomic_flag_is_not_itself_a_race_but_gives_order():
    def main(rt):
        flag = rt.atomic_int(0)
        rt.go(lambda: flag.store(1))
        rt.go(lambda: flag.load())
        rt.sleep(0.1)

    assert _detect(main) == 0


def test_close_recv_edge():
    def main(rt):
        v = rt.shared("v", 0)
        done = rt.make_chan()

        def producer():
            v.store(42)
            done.close()

        rt.go(producer)
        done.recv_ok()
        v.load()

    assert _detect(main) == 0


def test_shadow_word_eviction_hides_old_access():
    """Six same-goroutine reads push the racy write out of a 4-word
    shadow; unlimited history still reports it (the Table 12 ablation)."""

    def main(rt):
        v = rt.shared("v", 0)

        def writer():
            v.store(1)
            for _ in range(6):
                v.load()

        def reader():
            rt.sleep(0.5)  # strictly after the writer's burst
            v.load()

        rt.go(writer)
        rt.go(reader)
        rt.sleep(1.0)

    assert _detect(main, seeds=range(10), shadow_words=4) == 0
    assert _detect(main, seeds=range(10), shadow_words=None) == 10


def test_report_contents():
    def main(rt):
        v = rt.shared("refcount", 0)
        rt.go(lambda: v.store(1))
        rt.go(lambda: v.store(2))
        rt.sleep(0.1)

    det = RaceDetector()
    result = run(main, seed=0, observers=[det])
    assert det.reports, "expected a race report"
    report = det.reports[0]
    assert report.var_name == "refcount"
    assert report.first.gid != report.second.gid
    assert {report.first.kind, report.second.kind} <= {"read", "write"}
    assert "DATA RACE" in str(report)
    # finish() exposed the reports on the result object too.
    assert result.races == det.reports


def test_max_reports_per_var_caps_noise():
    def main(rt):
        v = rt.shared("v", 0)

        def writer():
            for _ in range(5):
                v.store(1)

        rt.go(writer)
        rt.go(writer)
        rt.sleep(0.5)

    det = RaceDetector(max_reports_per_var=1)
    run(main, seed=1, observers=[det])
    assert len(det.reports) <= 1
