"""Static anonymous-function capture detector (the Section 7 prototype)."""

import textwrap
from pathlib import Path

from repro.detect import AnonymousCaptureDetector, scan_paths, scan_source


def _scan(code: str):
    return scan_source(textwrap.dedent(code), "probe.py")


def test_flags_local_def_capturing_loop_var():
    findings = _scan(
        """
        def prog(rt):
            for i in range(5):
                def worker():
                    print(i)
                rt.go(worker)
        """
    )
    assert len(findings) == 1
    assert findings[0].loop_var == "i"
    assert findings[0].function == "worker"


def test_flags_lambda_capturing_loop_var():
    findings = _scan(
        """
        def prog(rt):
            for item in items:
                rt.go(lambda: handle(item))
        """
    )
    assert len(findings) == 1
    assert findings[0].loop_var == "item"
    assert findings[0].function == "<lambda>"


def test_default_arg_copy_is_the_fix():
    findings = _scan(
        """
        def prog(rt):
            for i in range(5):
                def worker(i=i):
                    print(i)
                rt.go(worker)
        """
    )
    assert findings == []


def test_parameter_shadowing_is_safe():
    findings = _scan(
        """
        def prog(rt):
            for i in range(5):
                def worker(i):
                    print(i)
                rt.go(worker, i)
        """
    )
    assert findings == []


def test_local_rebinding_is_safe():
    findings = _scan(
        """
        def prog(rt):
            for i in range(5):
                def worker():
                    i = 0
                    print(i)
                rt.go(worker)
        """
    )
    assert findings == []


def test_goroutine_outside_loop_is_safe():
    findings = _scan(
        """
        def prog(rt):
            i = compute()
            def worker():
                print(i)
            rt.go(worker)
        """
    )
    assert findings == []


def test_tuple_loop_targets_all_checked():
    findings = _scan(
        """
        def prog(rt):
            for k, v in table.items():
                rt.go(lambda: store(k, v))
        """
    )
    assert {f.loop_var for f in findings} == {"k", "v"}


def test_nested_loops_report_correct_line():
    findings = _scan(
        """
        def prog(rt):
            for outer in rows:
                for inner in outer:
                    def w():
                        use(inner)
                    rt.go(w)
        """
    )
    # inner loop flagged for `inner`; outer loop sees the same call site
    assert any(f.loop_var == "inner" for f in findings)


def test_detector_facade_and_path_scan(tmp_path: Path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def prog(rt):\n"
        "    for i in range(3):\n"
        "        rt.go(lambda: print(i))\n"
    )
    good = tmp_path / "good.py"
    good.write_text("def prog(rt):\n    rt.go(lambda: print(1))\n")

    findings = scan_paths([tmp_path])
    assert len(findings) == 1
    assert findings[0].path.endswith("bad.py")

    detection = AnonymousCaptureDetector().detect_paths([tmp_path])
    assert detection.detected and len(detection.reports) == 1


def test_corpus_buggy_kernels_are_flagged_and_fixed_are_not():
    """Figure 8's kernel shape, straight from the corpus source."""
    buggy = """
    def buggy(rt):
        for i in range(17, 22):
            rt.go(lambda: record(i))
    """
    fixed = """
    def fixed(rt):
        for i in range(17, 22):
            def record_one(i=i):
                record(i)
            rt.go(record_one)
    """
    assert _scan(buggy)
    assert not _scan(fixed)
