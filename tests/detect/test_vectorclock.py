"""Vector clock algebra."""

from repro.detect import VectorClock


def test_fresh_clock_is_zero():
    vc = VectorClock()
    assert vc.get(1) == 0
    assert vc.epoch(3) == (3, 0)


def test_increment_and_get():
    vc = VectorClock()
    vc.increment(2)
    vc.increment(2)
    assert vc.get(2) == 2
    assert vc.get(1) == 0


def test_join_is_pointwise_max():
    a = VectorClock({1: 3, 2: 1})
    b = VectorClock({2: 5, 3: 2})
    a.join(b)
    assert (a.get(1), a.get(2), a.get(3)) == (3, 5, 2)


def test_join_none_is_noop():
    a = VectorClock({1: 1})
    a.join(None)
    assert a.get(1) == 1


def test_partial_order():
    lo = VectorClock({1: 1})
    hi = VectorClock({1: 2, 2: 1})
    assert lo <= hi
    assert not (hi <= lo)


def test_concurrent_detection():
    a = VectorClock({1: 2})
    b = VectorClock({2: 2})
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)
    c = a.copy()
    c.join(b)
    assert not a.concurrent_with(c)


def test_copy_is_independent():
    a = VectorClock({1: 1})
    b = a.copy()
    b.increment(1)
    assert a.get(1) == 1 and b.get(1) == 2


def test_dominates_epoch():
    vc = VectorClock({4: 7})
    assert vc.dominates_epoch((4, 7))
    assert vc.dominates_epoch((4, 3))
    assert not vc.dominates_epoch((4, 8))
    assert not vc.dominates_epoch((9, 1))


def test_equality_ignores_zero_components():
    assert VectorClock({1: 0, 2: 3}) == VectorClock({2: 3})
