"""Convergence verdicts: classify, await_recovery, scorecard extraction."""

from types import SimpleNamespace

from repro import run
from repro.detect import await_recovery, classify, recovery_verdict
from repro.detect.convergence import VERDICTS


def test_classify_truth_table():
    assert classify(consistent=True, progressed=True) == "recovered"
    assert classify(consistent=False, progressed=True) == "diverged"
    assert classify(consistent=True, progressed=False) == "stuck"
    assert classify(consistent=False, progressed=False) == "stuck"


def test_await_recovery_reports_recovery_time():
    def main(rt):
        counter = rt.atomic_int(0, name="acked")

        def worker():
            rt.sleep(0.3)  # the "outage"
            while True:
                rt.sleep(0.05)
                counter.add(1)

        rt.go(worker, name="worker")
        report = await_recovery(
            rt,
            consistent=lambda: True,
            progress=lambda: counter.load(),
            budget=2.0, poll=0.1)
        return report

    report = run(main).main_result
    assert report.verdict == "recovered"
    assert report.recovered is True
    assert 0.3 <= report.recovery_s <= 0.6  # quantized to the poll grid
    assert report.polls >= 3


def test_await_recovery_stuck_when_no_progress():
    def main(rt):
        return await_recovery(
            rt,
            consistent=lambda: True,  # agreeing but frozen is still stuck
            progress=lambda: 0,
            budget=0.5, poll=0.1)

    report = run(main).main_result
    assert report.verdict == "stuck"
    assert report.recovery_s is None
    assert "progressed=False" in report.detail


def test_await_recovery_diverged_when_progress_without_agreement():
    def main(rt):
        counter = rt.atomic_int(0, name="acked")

        def worker():
            while True:
                rt.sleep(0.05)
                counter.add(1)

        rt.go(worker, name="worker")
        return await_recovery(
            rt,
            consistent=lambda: False,  # replicas never agree
            progress=lambda: counter.load(),
            budget=0.5, poll=0.1)

    report = run(main).main_result
    assert report.verdict == "diverged"
    assert report.recovery_s is None


def test_report_round_trips_to_dict():
    def main(rt):
        report = await_recovery(rt, consistent=lambda: True,
                                progress=lambda: 0, budget=0.2, poll=0.1)
        return report.to_dict()

    doc = run(main).main_result
    assert doc["verdict"] in VERDICTS
    assert set(doc) == {"verdict", "recovery_s", "polls", "budget", "detail"}


def test_recovery_verdict_only_reads_verdict_dicts():
    good = SimpleNamespace(main_result={"verdict": "recovered", "acked": 9})
    assert recovery_verdict(good) == "recovered"
    assert recovery_verdict(SimpleNamespace(main_result={"verdict": "?"})) is None
    assert recovery_verdict(SimpleNamespace(main_result=42)) is None
    assert recovery_verdict(SimpleNamespace(main_result=None)) is None
    assert recovery_verdict(object()) is None
