"""The public API surface stays importable and complete."""

import importlib

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module", [
    "repro.runtime",
    "repro.chan",
    "repro.sync",
    "repro.stdlib",
    "repro.detect",
    "repro.bugs",
    "repro.bugs.registry",
    "repro.bugs.scorecard",
    "repro.dataset",
    "repro.dataset.go171",
    "repro.dataset.paper_values",
    "repro.study",
    "repro.study.report",
    "repro.study.export",
    "repro.apps",
    "repro.apps.minietcd.cluster",
    "repro.inject",
    "repro.net",
    "repro.net.demo",
    "repro.cli",
    "repro.runtime.timeline",
    "repro.detect.systematic",
    "repro.stdlib.errgroup",
])
def test_submodules_import(module):
    importlib.import_module(module)


def test_subpackage_all_exports_resolve():
    for module_name in ("repro.runtime", "repro.chan", "repro.sync",
                        "repro.stdlib", "repro.detect", "repro.dataset",
                        "repro.net"):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (module_name, name)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_docstrings_present():
    """Every public module and class carries a docstring."""
    import inspect

    modules = [
        importlib.import_module(name) for name in (
            "repro", "repro.runtime.runtime", "repro.chan.channel",
            "repro.sync.mutex", "repro.detect.race", "repro.study.lift",
        )
    ]
    for module in modules:
        assert module.__doc__, module.__name__
        for name, obj in inspect.getmembers(module, inspect.isclass):
            if obj.__module__ == module.__name__ and not name.startswith("_"):
                assert obj.__doc__, f"{module.__name__}.{obj.__name__}"
