"""Figure 2/3 series: stability, complementarity, Table 4 convergence."""

import pytest

from repro.dataset import paper_values, usage_history
from repro.dataset.records import App


def test_snapshot_axis_matches_paper_window():
    assert usage_history.SNAPSHOTS[0] == "15-02"
    assert usage_history.SNAPSHOTS[-1] == "18-05"
    assert len(usage_history.SNAPSHOTS) == 40  # monthly, Feb'15..May'18


def test_series_are_stable_over_time():
    """Observation 2's premise: the usage mix barely moves."""
    for app in App:
        series = usage_history.shared_memory_series(app)
        assert usage_history.stability(series) < 0.05


def test_series_end_at_table4_levels():
    for app in App:
        series = usage_history.shared_memory_series(app)
        expected = paper_values.SHARED_MEMORY_PROPORTION[app]
        assert series[-1] == pytest.approx(expected, abs=0.02)


def test_figure3_is_complement_of_figure2():
    for app in App:
        shared = usage_history.shared_memory_series(app)
        message = usage_history.message_passing_series(app)
        for s, m in zip(shared, message):
            assert s + m == pytest.approx(1.0, abs=1e-6)


def test_all_series_bundle():
    bundle = usage_history.all_series()
    assert set(bundle) == set(App)
    for data in bundle.values():
        assert len(data["shared"]) == len(usage_history.SNAPSHOTS)


def test_proportions_bounded():
    for app in App:
        for v in usage_history.shared_memory_series(app):
            assert 0.0 <= v <= 1.0


def test_etcd_has_highest_message_passing_share():
    """Table 4: etcd's chan share (42.99%) tops the six apps."""
    finals = {
        app: usage_history.message_passing_series(app)[-1] for app in App
    }
    assert max(finals, key=finals.get) == App.ETCD
