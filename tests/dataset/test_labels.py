"""Ground-truth kernel labels: one source of truth for every scorecard."""

from repro.dataset import (
    FAMILIES,
    KernelLabels,
    RACY_FIXED_KERNELS,
    all_labels,
    kernel_labels,
    labels_by_id,
    labels_for,
)
from repro.bugs.registry import all_kernels, get


def test_every_registered_kernel_has_labels():
    labels = all_labels()
    assert len(labels) == len(all_kernels()) >= 54
    by_id = labels_by_id()
    for kernel in all_kernels():
        lab = by_id[kernel.meta.kernel_id]
        assert isinstance(lab, KernelLabels)
        assert lab.behavior in {"blocking", "non-blocking"}
        assert lab.expected_detectors


def test_accessors_agree_for_id_class_and_meta():
    kernel = get("blocking-mutex-kubernetes-abba")
    assert kernel_labels("blocking-mutex-kubernetes-abba") == \
        kernel_labels(kernel) == labels_for(kernel.meta)


def test_expected_detector_mapping_follows_the_paper():
    by_id = labels_by_id()
    # Table 8: blocking bugs are the blocked-goroutine detectors' turf.
    assert "leak" in by_id["blocking-chan-kubernetes-5316"].expected_detectors
    assert "lockorder" in \
        by_id["blocking-mutex-kubernetes-abba"].expected_detectors
    # Table 12: non-blocking bugs belong to the race detector / rules.
    assert "race" in \
        by_id["nonblocking-trad-docker-lost-update"].expected_detectors
    assert "rules" in \
        by_id["nonblocking-chan-docker-24007"].expected_detectors


def test_racy_fixed_kernels_are_pinned_and_marked():
    by_id = labels_by_id()
    assert RACY_FIXED_KERNELS <= set(by_id)
    for kid, lab in by_id.items():
        assert lab.fixed_expected_clean == (kid not in RACY_FIXED_KERNELS)
        assert lab.to_dict()["fixed_expected_clean"] == \
            lab.fixed_expected_clean


def test_families_cover_the_three_scorecards():
    assert set(FAMILIES) == {"dynamic", "predict", "static"}
