"""The 171-bug dataset: every published marginal, verbatim."""

import pytest

from repro.dataset import go171, paper_values
from repro.dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from repro.study import lift as lift_mod


@pytest.fixture(scope="module")
def records():
    return go171.load()


def test_validate_passes(records):
    go171.validate(records)


def test_headline_totals(records):
    assert len(records) == 171
    assert sum(r.behavior == Behavior.BLOCKING for r in records) == 85
    assert sum(r.behavior == Behavior.NONBLOCKING for r in records) == 86
    assert sum(r.cause == Cause.SHARED_MEMORY for r in records) == 105
    assert sum(r.cause == Cause.MESSAGE_PASSING for r in records) == 66


def test_table5_rows_verbatim(records):
    for app, expected in go171.TABLE5.items():
        rows = [r for r in records if r.app == app]
        got = (
            sum(r.behavior == Behavior.BLOCKING for r in rows),
            sum(r.behavior == Behavior.NONBLOCKING for r in rows),
            sum(r.cause == Cause.SHARED_MEMORY for r in rows),
            sum(r.cause == Cause.MESSAGE_PASSING for r in rows),
        )
        assert got == expected, app


def test_table6_cells_verbatim(records):
    totals = {sub: 0 for sub in BlockingSubCause}
    for app, cells in go171.TABLE6.items():
        for sub, n in cells.items():
            got = sum(
                1 for r in records
                if r.app == app and r.behavior == Behavior.BLOCKING
                and r.subcause == sub
            )
            assert got == n
            totals[sub] += n
    assert totals == {
        BlockingSubCause.MUTEX: 28,
        BlockingSubCause.RWMUTEX: 5,
        BlockingSubCause.WAIT: 3,
        BlockingSubCause.CHAN: 29,
        BlockingSubCause.CHAN_WITH_OTHER: 16,
        BlockingSubCause.MSG_LIBRARY: 4,
    }


def test_section52_fix_text_constraints(records):
    mutexish = [
        r for r in records
        if r.behavior == Behavior.BLOCKING
        and r.subcause in (BlockingSubCause.MUTEX, BlockingSubCause.RWMUTEX)
    ]
    assert len(mutexish) == 33
    strategies = [r.fix_strategy for r in mutexish]
    assert strategies.count(FixStrategy.ADD_SYNC) == 8
    assert strategies.count(FixStrategy.MOVE_SYNC) == 9
    assert strategies.count(FixStrategy.REMOVE_SYNC) == 11


def test_blocking_lift_targets(records):
    mutex_move = lift_mod.cause_strategy_lift(
        records, Behavior.BLOCKING, BlockingSubCause.MUTEX, FixStrategy.MOVE_SYNC
    )
    assert mutex_move.lift == pytest.approx(
        paper_values.LIFT_BLOCKING_MUTEX_MOVE, abs=0.02)
    chan_add = lift_mod.cause_strategy_lift(
        records, Behavior.BLOCKING, BlockingSubCause.CHAN, FixStrategy.ADD_SYNC
    )
    assert chan_add.lift == pytest.approx(
        paper_values.LIFT_BLOCKING_CHAN_ADD, abs=0.02)


def test_mutex_move_is_strongest_blocking_correlation(records):
    lifts = lift_mod.all_strategy_lifts(records, Behavior.BLOCKING)
    strongest = lifts[0]
    assert strongest.a == str(BlockingSubCause.MUTEX)
    assert strongest.b == str(FixStrategy.MOVE_SYNC)


def test_nonblocking_lift_targets(records):
    chan_channel = lift_mod.cause_primitive_lift(
        records, NonBlockingSubCause.CHAN, FixPrimitive.CHANNEL
    )
    assert chan_channel.lift == pytest.approx(
        paper_values.LIFT_NONBLOCKING_CHAN_CHANNEL, abs=0.05)
    anon_private = lift_mod.cause_strategy_lift(
        records, Behavior.NONBLOCKING,
        NonBlockingSubCause.ANONYMOUS_FUNCTION, FixStrategy.PRIVATIZE,
    )
    assert anon_private.lift == pytest.approx(
        paper_values.LIFT_NONBLOCKING_ANON_PRIVATE, abs=0.02)
    chan_move = lift_mod.cause_strategy_lift(
        records, Behavior.NONBLOCKING, NonBlockingSubCause.CHAN,
        FixStrategy.MOVE_SYNC,
    )
    assert chan_move.lift == pytest.approx(
        paper_values.LIFT_NONBLOCKING_CHAN_MOVE, abs=0.02)


def test_table11_primitive_use_totals(records):
    uses = [
        p for r in records if r.behavior == Behavior.NONBLOCKING
        for p in r.fix_primitives
    ]
    assert len(uses) == 94
    assert uses.count(FixPrimitive.MUTEX) == 32
    assert uses.count(FixPrimitive.CHANNEL) == 19
    assert uses.count(FixPrimitive.ATOMIC) == 10
    assert uses.count(FixPrimitive.WAITGROUP) == 7
    assert uses.count(FixPrimitive.COND) == 4
    assert uses.count(FixPrimitive.MISC) == 3
    assert uses.count(FixPrimitive.NONE) == 19


def test_blocking_patches_average_6_8_lines(records):
    blocking = [r for r in records if r.behavior == Behavior.BLOCKING]
    mean = sum(r.patch_lines for r in blocking) / len(blocking)
    assert mean == pytest.approx(6.8, abs=0.05)


def test_ninety_percent_blocking_fixes_adjust_sync(records):
    blocking = [r for r in records if r.behavior == Behavior.BLOCKING]
    share = sum(r.fix_strategy != FixStrategy.MISC for r in blocking) / len(blocking)
    assert share >= 0.90


def test_known_bugs_seeded_and_marked_exact(records):
    by_id = {r.bug_id: r for r in records}
    for bug_id in ("kubernetes#5316", "docker#25384", "grpc#1460",
                   "boltdb#392", "boltdb#240", "docker#30603", "etcd#6371",
                   "docker#24007", "docker#22985", "cockroach#6111",
                   "etcd#7816"):
        assert bug_id in by_id, bug_id
        assert by_id[bug_id].reconstructed is False
    assert by_id["kubernetes#5316"].figure == "1"
    assert by_id["docker#25384"].figure == "5"
    assert by_id["docker#30603"].figure == "8"


def test_load_is_cached_and_defensive(records):
    again = go171.load()
    assert again == records
    again.pop()
    assert len(go171.load()) == 171  # load() hands out copies


def test_lifetimes_are_long(records):
    import statistics

    for cause in Cause:
        days = [r.lifetime_days for r in records if r.cause == cause]
        assert statistics.median(days) > 300  # Figure 4: long-lived bugs
        assert all(d > 0 for d in days)


def test_reports_arrive_close_to_fixes(records):
    """Section 4's second Figure 4 claim: report-to-fix time is short
    relative to the bug's dormant lifetime."""
    import statistics

    lags = [r.report_lag_days for r in records]
    lifetimes = [r.lifetime_days for r in records]
    assert statistics.mean(lags) < 21
    assert statistics.mean(lags) < statistics.mean(lifetimes) / 10
    assert all(0 < lag <= 30 for lag in lags)
