"""Node lifecycle: goroutine ownership, orderly stop, post-stop errors."""

import pytest

from repro import run
from repro.net import NetError, Node


def test_go_runs_tasks_under_the_node_waitgroup():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "worker")
        out = []
        node.go(lambda a, b: out.append(a + b), 1, 2, name="adder")
        node.go(lambda: out.append("plain"))
        node.stop()                   # waits for both
        return sorted(map(str, out)), node.stopped

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == (["3", "plain"], True)


def test_stop_cancels_context_and_unblocks_receivers():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        listener = srv.listen("p")
        seen = []

        def server():
            for conn in listener.accept_loop():
                srv.track(conn)
                for payload in conn:   # unblocked with EOF by stop()
                    seen.append(payload)

        srv.go(server, name="serve")
        cli = Node(net, "cli")
        conn = cli.dial(srv.addr("p"))
        conn.send("hello")
        rt.sleep(0.1)
        was_stopping = srv.stopping
        srv.stop()                     # closes listener + conns, drains wg
        cli.stop()
        return seen, was_stopping, srv.stopping

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == (["hello"], False, True)
    assert result.leaked == []


def test_listen_and_dial_on_stopped_node_raise():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "gone")
        node.stop()
        node.stop()                    # idempotent
        with pytest.raises(NetError, match="listen on stopped node"):
            node.listen("p")
        with pytest.raises(NetError, match="dial from stopped node"):
            node.dial("x:1")
        return True

    assert run(main).main_result is True


def test_goroutines_are_named_for_fault_targeting():
    """``node.go`` names goroutines ``"<node>/<task>"`` so chaos plans can
    glob a whole simulated machine."""
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n2")
        gor = node.go(lambda: None, name="handler")
        name = gor.name
        node.stop()
        return name

    assert run(main).main_result == "n2/handler"
