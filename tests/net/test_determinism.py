"""The subsystem guarantee: same (seed, topology, plan) -> same everything.

Schedule digests, byte-identical message logs, identical fault records,
and parallel sweeps that match the serial order exactly.
"""

from functools import partial

from repro import run
from repro.inject import plans
from repro.net.demo import loadgen_summary
from repro.parallel import map_units
from repro.parallel.summary import schedule_digest


def _echo_cluster(rt):
    """A small two-client echo service with full message logging."""
    from repro.net import Node

    net = rt.network(name="echonet", log_messages=True)
    server = Node(net, "server")
    listener = server.listen("echo")

    def serve(conn):
        for payload in conn:
            conn.send(payload)

    server.go(lambda: [server.go(serve, server.track(conn), name="echo")
                       for conn in listener.accept_loop()], name="accept")

    done = rt.waitgroup("clients")
    for index in range(2):
        done.add(1)

        def client(idx=index):
            node = Node(net, f"client{idx}")
            conn = node.dial(server.addr("echo"))
            for i in range(10):
                conn.send((idx, i))
                conn.recv()
            conn.shutdown()
            node.stop()
            done.done()

        rt.go(client, name=f"client{index}")
    done.wait()
    server.stop()
    return net.format_message_log(), dict(net.stats)


def test_same_seed_reproduces_schedule_and_message_log():
    first = run(_echo_cluster, seed=5)
    second = run(_echo_cluster, seed=5)
    assert schedule_digest(first) == schedule_digest(second)
    assert first.main_result[0] == second.main_result[0]   # byte-identical
    assert first.main_result[1] == second.main_result[1]
    assert first.main_result[1]["delivered"] == first.main_result[1]["sent"]


def test_different_seeds_usually_reorder_the_fabric():
    digests = {schedule_digest(run(_echo_cluster, seed=seed))
               for seed in range(6)}
    assert len(digests) > 1


def _lossy(rt):
    from repro.net import Conn

    net = rt.network(name="lossynet", log_messages=True)
    a, b = Conn.pair(rt, net, "a", "b")
    for i in range(30):
        a.send(i)
    a.close_write()
    got = list(b)
    rt.sleep(0.5)
    return tuple(got), net.format_message_log()


def _fault_signature(result):
    return (
        result.status,
        result.steps,
        result.main_result,
        [(r.step, r.time, r.action, r.fault_index, r.victim)
         for r in result.injected],
    )


def test_net_fault_plan_replays_exactly():
    plan = plans.flaky_links(drop=0.2, duplicate=0.1, reorder=0.1)
    first = run(_lossy, seed=3, inject=plan)
    assert first.status == "ok"
    assert len(first.injected) >= 3    # all three rate faults applied
    second = run(_lossy, seed=3, inject=plan)
    assert _fault_signature(first) == _fault_signature(second)
    assert schedule_digest(first) == schedule_digest(second)


def _node_pair(rt):
    """Two registered nodes (partition faults need real topology)."""
    from repro.net import Node

    net = rt.network(name="pairnet", log_messages=True)
    a = Node(net, "a")
    listener = a.listen("sink")
    got = []

    def sink():
        conn = listener.accept()
        a.track(conn)
        for payload in conn:
            got.append(payload)

    a.go(sink, name="sink")
    b = Node(net, "b")
    conn = b.dial(a.addr("sink"))
    for i in range(60):
        conn.send(i)
        rt.sleep(0.01)
    conn.close_write()
    rt.sleep(1.0)
    a.stop()
    b.stop()
    return len(got), net.format_message_log()


def test_partition_plan_replays_exactly():
    plan = plans.partition(target="b", at_step=60, heal_after=150)
    first = run(_node_pair, seed=1, inject=plan)
    assert first.status == "ok"
    second = run(_node_pair, seed=1, inject=plan)
    assert _fault_signature(first) == _fault_signature(second)
    # The partition actually fired and cost messages.
    assert any(r.action == "net_partition" for r in first.injected)
    received, log = first.main_result
    assert "PART " in log and "HEAL" in log
    assert 0 < received < 60
    baseline, _ = run(_node_pair, seed=1).main_result
    assert baseline == 60              # without the plan, nothing is lost


def test_loadgen_summary_is_a_pure_function_of_the_seed():
    first = loadgen_summary(seed=2, clients=3, requests=8)
    second = loadgen_summary(seed=2, clients=3, requests=8)
    assert first == second
    assert first["status"] == "ok"
    assert first["requests"] == 24
    other = loadgen_summary(seed=9, clients=3, requests=8)
    assert other != first              # arrivals genuinely vary by seed


def test_parallel_sweep_matches_serial_byte_for_byte():
    units = [partial(loadgen_summary, seed, 2, 6, 200.0, "poisson")
             for seed in range(4)]
    serial = map_units(units, jobs=1)
    fanned = map_units(units, jobs=2)
    assert serial == fanned
    assert [row["seed"] for row in serial] == [0, 1, 2, 3]
