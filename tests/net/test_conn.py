"""Conn close semantics: the Go sharp edges, on purpose.

The paper's message-passing bugs live at channel close boundaries; the
network layer keeps those edges sharp — double close and send-on-closed
panic exactly like their channel counterparts, while ``shutdown()`` is
the idempotent teardown path node lifecycles use.
"""

import pytest

from repro import run
from repro.net import NetError, Node


def _pair(rt, latency=0.001):
    net = rt.network(name="t", default_latency=latency)
    srv = Node(net, "srv")
    listener = srv.listen("p")
    accepted = []
    srv.go(lambda: accepted.append(listener.accept()), name="accept")
    cli = Node(net, "cli")
    conn = cli.dial(srv.addr("p"))
    while not accepted:          # dial returns before accept lands
        rt.sleep(0.001)
    return net, srv, cli, conn, accepted[0]


def test_echo_round_trip_over_dial():
    def main(rt):
        _net, srv, cli, conn, server_side = _pair(rt)
        srv.track(server_side)
        srv.go(lambda: [server_side.send(p * 2) for p in server_side],
               name="echo")
        out = []
        for i in range(3):
            conn.send(i)
            out.append(conn.recv())
        conn.shutdown()
        srv.stop()
        cli.stop()
        return out

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == [0, 2, 4]


def test_double_close_panics():
    def main(rt):
        _net, _srv, _cli, conn, _server_side = _pair(rt)
        conn.close()
        conn.close()

    result = run(main)
    assert result.status == "panic"
    assert "close of closed connection" in str(result.panic_value)


def test_send_on_closed_conn_panics():
    def main(rt):
        _net, _srv, _cli, conn, _server_side = _pair(rt)
        conn.close()
        conn.send("late")

    result = run(main)
    assert result.status == "panic"
    assert "send on closed connection" in str(result.panic_value)


def test_close_write_twice_panics():
    def main(rt):
        _net, _srv, _cli, conn, _server_side = _pair(rt)
        conn.close_write()
        conn.close_write()

    result = run(main)
    assert result.status == "panic"
    assert "close of closed connection" in str(result.panic_value)


def test_half_close_drains_then_eof_and_keeps_receiving():
    def main(rt):
        _net, srv, cli, conn, server_side = _pair(rt)
        for i in range(3):
            conn.send(i)
        conn.close_write()            # half-close: server drains, sees EOF
        drained = list(server_side)
        server_side.send(sum(drained))  # ...but the other direction is open
        reply, ok = conn.recv_ok()
        conn.close()                  # full close after a half-close is fine
        server_side.shutdown()
        srv.stop()
        cli.stop()
        return drained, reply, ok

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == ([0, 1, 2], 3, True)


def test_shutdown_is_idempotent():
    def main(rt):
        _net, _srv, _cli, conn, _server_side = _pair(rt)
        conn.shutdown()
        conn.shutdown()               # no panic: the defer-style path
        payload, ok = conn.recv_ok()  # locally closed -> immediate EOF
        return payload, ok, conn.closed

    assert run(main).main_result == (None, False, True)


def test_dial_unbound_address_refused():
    def main(rt):
        net = rt.network(name="t")
        cli = Node(net, "cli")
        with pytest.raises(NetError, match="connection refused"):
            cli.dial("ghost:80")
        return True

    assert run(main).main_result is True


def test_dial_across_partition_unreachable():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        srv.listen("p")
        cli = Node(net, "cli")
        net.partition({"srv"}, {"cli"})
        with pytest.raises(NetError, match="host unreachable"):
            cli.dial(srv.addr("p"))
        return True

    assert run(main).main_result is True


def test_dial_full_backlog_refused():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        srv.listen("p", backlog=1)    # nobody accepting
        cli = Node(net, "cli")
        cli.dial(srv.addr("p"))
        with pytest.raises(NetError, match="backlog full"):
            cli.dial(srv.addr("p"))
        return True

    assert run(main).main_result is True


def test_listener_close_wakes_pending_accept():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        listener = srv.listen("p")
        outcome = []

        def acceptor():
            try:
                listener.accept()
                outcome.append("conn")
            except NetError:
                outcome.append("closed")

        srv.go(acceptor, name="accept")
        rt.sleep(0.1)
        listener.close()
        listener.close()              # idempotent
        srv.stop()
        return outcome

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == ["closed"]


def test_messages_arriving_after_local_close_are_discarded():
    def main(rt):
        net = rt.network(name="t", default_latency=0.1)
        srv = Node(net, "srv")
        listener = srv.listen("p")
        accepted = []
        srv.go(lambda: accepted.append(listener.accept()), name="accept")
        cli = Node(net, "cli")
        conn = cli.dial(srv.addr("p"))
        while not accepted:
            rt.sleep(0.01)
        accepted[0].send("in-flight")
        conn.shutdown()               # close before the 0.1s delivery lands
        rt.sleep(0.5)
        srv.stop()
        cli.stop()
        return net.stats["dropped"]

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == 1    # discarded like a closed socket
