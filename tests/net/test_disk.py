"""Per-node durable store: append/fsync/crash/replay semantics."""

from repro import run
from repro.net import Disk


def test_append_is_volatile_until_fsync():
    def main(rt):
        net = rt.network(name="t")
        disk = net.disk("n1")
        disk.append(("put", "a", 1))
        disk.append(("put", "b", 2))
        before = (disk.durable_length, disk.pending)
        disk.fsync()
        after = (disk.durable_length, disk.pending)
        return before, after

    before, after = run(main).main_result
    assert before == (0, 2)
    assert after == (2, 0)


def test_crash_discards_unsynced_tail_only():
    def main(rt):
        net = rt.network(name="t")
        disk = net.disk("n1")
        disk.write(("put", "a", 1))          # append + fsync
        disk.append(("put", "b", 2))         # never fsynced
        lost = disk.crash()
        return lost, disk.replay()

    lost, records = run(main).main_result
    assert lost == 1
    assert records == [("put", "a", 1)]


def test_fsync_latency_opens_a_loss_window():
    """With a non-zero fsync latency the clock advances inside fsync —
    the window where a crash loses acknowledged-in-memory writes."""

    def main(rt):
        net = rt.network(name="t")
        disk = net.disk("n1", fsync_latency=0.01)
        t0 = rt.now()
        disk.append(("put", "a", 1))
        disk.fsync()
        return rt.now() - t0

    assert run(main).main_result > 0.0


def test_disk_survives_node_crash_and_restart():
    def main(rt):
        net = rt.network(name="t")
        from repro.net import Node

        node = Node(net, "n1")
        disk = node.disk()
        disk.write(("put", "k", "v"))
        disk.append(("put", "lost", "x"))
        lost = node.crash()
        node.restart()
        return lost, node.disk().replay(), disk.crashes

    lost, records, crashes = run(main).main_result
    assert lost == 1
    assert records == [("put", "k", "v")]
    assert crashes == 1


def test_stats_track_appends_syncs_and_losses():
    def main(rt):
        net = rt.network(name="t")
        disk = net.disk("n1")
        disk.write(("a", 1))
        disk.append(("b", 2))
        disk.crash()
        return disk.stats()

    stats = run(main).main_result
    assert stats["appends"] == 2
    assert stats["syncs"] == 1
    assert stats["lost"] == 1
    assert stats["crashes"] == 1
    assert stats["durable"] == 1
    assert stats["pending"] == 0


def test_disk_is_per_node_and_cached():
    def main(rt):
        net = rt.network(name="t")
        d1 = net.disk("n1")
        d2 = net.disk("n2")
        d1.write(("only", "n1"))
        return net.disk("n1") is d1, d2.durable_length

    same, other_len = run(main).main_result
    assert same is True
    assert other_len == 0
