"""Node crash/restart lifecycle and deterministic connection resets."""

import pytest

from repro import run
from repro.net import (
    ConnReset,
    Node,
    RpcClient,
    RpcError,
    RpcServer,
    Status,
)


def _echo_server(node):
    server = RpcServer(node, name="grpc")
    server.register("echo", lambda payload: payload)

    def counter(n, send):
        for i in range(n):
            send(i)
            node._rt.sleep(0.01)

    server.register_streaming("range", counter)
    server.serve(node.listen("grpc"))


def test_crash_kills_owned_goroutines_and_marks_state():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        ticks = rt.atomic_int(0, name="ticks")

        def loop():
            while True:
                rt.sleep(0.01)
                ticks.add(1)

        node.go(loop, name="loop")
        rt.sleep(0.05)
        node.crash()
        at_crash = ticks.load()
        rt.sleep(0.1)
        return at_crash, ticks.load(), node.crashed, node.stopped

    at_crash, later, crashed, stopped = run(main).main_result
    assert at_crash > 0
    assert later == at_crash  # the loop died with the machine
    assert crashed and stopped


def test_restart_gets_fresh_incarnation_and_runs_boot_hook():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        boots = []
        node.on_restart = lambda n: boots.append(n.incarnation)
        node.crash()
        ok = node.restart()
        rt.sleep(0.01)
        again = node.restart()  # already up: no-op
        return ok, again, node.incarnation, boots, node.crashed

    ok, again, incarnation, boots, crashed = run(main).main_result
    assert ok is True
    assert again is False
    assert incarnation == 1
    assert boots == [1]
    assert crashed is False


def test_send_to_crashed_peer_raises_conn_reset():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        listener = srv.listen("p")
        cli = Node(net, "cli")
        srv.go(lambda: srv.track(listener.accept()), name="accept")
        conn = cli.dial("srv:p")
        rt.sleep(0.01)
        srv.crash()
        rt.sleep(0.01)
        assert conn.peer_reset
        try:
            conn.send("x")
        except ConnReset as err:
            return str(err)
        return None

    message = run(main).main_result
    assert message is not None
    assert "connection reset by peer" in message


def test_rpc_call_after_peer_crash_fails_fast_not_deadline():
    """The satellite fix: a client whose peer died surfaces UNAVAILABLE
    immediately on next use instead of hanging out its deadline."""

    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        _echo_server(srv)
        cli = Node(net, "cli")
        client = RpcClient(cli, "srv:grpc", name="c")
        assert client.call("echo", 1, timeout=1.0) == 1
        srv.crash()
        rt.sleep(0.01)  # let the pump observe the reset
        t0 = rt.now()
        try:
            client.call("echo", 2, timeout=60.0)
            return None
        except RpcError as err:
            return err.code, rt.now() - t0, client.broken

    code, elapsed, broken = run(main).main_result
    assert code == Status.UNAVAILABLE
    assert elapsed < 1.0  # fail-fast: nowhere near the 60s deadline
    assert broken is True


def test_restart_while_streaming_regression():
    """A server restart mid-stream must end the consumer with a
    deterministic UNAVAILABLE, not a hang until the per-frame deadline
    — and the redialed client must stream from the new incarnation."""

    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        srv.on_restart = _echo_server
        _echo_server(srv)
        cli = Node(net, "cli")
        client = RpcClient(cli, "srv:grpc", name="c")

        frames = []
        outcome = {}

        def consume():
            t0 = rt.now()
            try:
                for frame in client.stream("range", 1000, timeout=30.0):
                    frames.append(frame)
            except RpcError as err:
                outcome["code"] = err.code
            outcome["elapsed"] = rt.now() - t0

        rt.go(consume, name="consumer")
        rt.sleep(0.05)  # a few frames in
        srv.crash()
        srv.restart()
        rt.sleep(0.5)

        fresh = RpcClient(cli, "srv:grpc", name="c2")
        replay = list(fresh.stream("range", 3, timeout=5.0))
        fresh.close()
        client.close()
        cli.stop()
        srv.stop()
        return frames, outcome, replay

    frames, outcome, replay = run(main).main_result
    assert frames  # stream was live before the crash
    assert outcome["code"] == Status.UNAVAILABLE
    assert outcome["elapsed"] < 1.0  # reset surfaced, deadline untouched
    assert replay == [0, 1, 2]  # new incarnation serves streams again


def test_go_on_stopped_node_raises():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        node.crash()
        with pytest.raises(Exception) as exc:
            node.go(lambda: None)
        return type(exc.value).__name__

    assert run(main).main_result == "NetError"
