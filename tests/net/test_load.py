"""LoadGen: counts, arrival processes, error accounting, histograms."""

import json

import pytest

from repro import run
from repro.net import LATENCY_BOUNDS, LoadGen, echo_load_program
from repro.observe.metrics import MetricsRegistry


def test_echo_load_counts_every_request():
    def main(rt):
        return echo_load_program(rt, clients=3, requests=5, rate=100.0)

    result = run(main)
    assert result.status == "ok"
    report = result.main_result
    assert report["requests"] == 15          # requests are per client
    assert report["ok"] == 15
    assert report["errors"] == 0
    assert report["latency"]["count"] == 15
    assert report["latency"]["p99"] >= report["latency"]["p50"] > 0
    assert report["net"]["delivered"] == report["net"]["sent"]
    assert result.leaked == []


def test_closed_loop_and_uniform_arrivals():
    def closed_loop(rt):
        return echo_load_program(rt, clients=2, requests=4, rate=None)

    def uniform(rt):
        return echo_load_program(rt, clients=2, requests=4, rate=50.0,
                                 arrival="uniform")

    closed = run(closed_loop).main_result
    spaced = run(uniform).main_result
    assert closed["requests"] == spaced["requests"] == 8
    assert closed["errors"] == spaced["errors"] == 0
    # A closed loop only waits on replies; uniform pacing adds think time.
    assert closed["virtual_s"] < spaced["virtual_s"]


def test_unknown_arrival_process_rejected():
    def main(rt):
        with pytest.raises(ValueError, match="unknown arrival process"):
            LoadGen(rt, lambda ctx, i: None, arrival="bursty")
        return True

    assert run(main).main_result is True


def test_errors_are_counted_by_exception_kind():
    def main(rt):
        def request(_ctx, i):
            rt.sleep(0.001)
            if i % 2:
                raise RuntimeError("flaky backend")

        gen = LoadGen(rt, request, clients=2, requests=6, rate=None,
                      name="mixed")
        return gen.run().to_dict()

    report = run(main).main_result
    assert report["requests"] == 12
    assert report["ok"] == 6
    assert report["errors"] == 6
    assert report["error_kinds"] == {"RuntimeError": 6}
    # Failed requests still get a latency sample (time to the error).
    assert report["latency"]["count"] == 12


def test_setup_and_teardown_run_per_client():
    def main(rt):
        opened, closed = [], []

        def setup(index):
            opened.append(index)
            return index

        def teardown(ctx):
            closed.append(ctx)

        gen = LoadGen(rt, lambda ctx, i: rt.sleep(0.001), clients=3,
                      requests=2, rate=None, setup=setup, teardown=teardown)
        gen.run()
        return sorted(opened), sorted(closed)

    assert run(main).main_result == ([0, 1, 2], [0, 1, 2])


def test_latencies_land_in_a_shared_registry():
    def main(rt):
        registry = MetricsRegistry()
        gen = LoadGen(rt, lambda ctx, i: rt.sleep(0.003), clients=2,
                      requests=3, rate=None, registry=registry, name="svc")
        report = gen.run()
        hist = registry.histogram("svc.latency_s", bounds=LATENCY_BOUNDS)
        return report.to_dict(), hist.count, sorted(registry.names())

    report, observed, names = run(main).main_result
    assert observed == 6
    assert "svc.latency_s" in names and "svc.ok" in names
    # 3ms sleeps: the p50 upper bound is the 4ms bucket.
    assert report["latency"]["p50"] == pytest.approx(0.004)


def test_report_is_json_stable():
    def main(rt):
        gen = LoadGen(rt, lambda ctx, i: rt.sleep(0.001), clients=1,
                      requests=2, rate=None)
        return gen.run().to_json()

    text = run(main).main_result
    decoded = json.loads(text)
    assert decoded["requests"] == 2
    assert decoded["rps_virtual"] > 0
