"""Supervision: restart policies and the monitor goroutine."""

import pytest

from repro import run
from repro.net import Node, RestartPolicy, Supervisor


def test_policy_delay_schedules():
    fixed = RestartPolicy.always(delay=0.2)
    assert fixed.delay_for(0) == fixed.delay_for(5) == 0.2
    backoff = RestartPolicy.backoff_capped(delay=0.1, factor=2.0,
                                           max_delay=0.5)
    assert backoff.delay_for(0) == pytest.approx(0.1)
    assert backoff.delay_for(1) == pytest.approx(0.2)
    assert backoff.delay_for(2) == pytest.approx(0.4)
    assert backoff.delay_for(3) == pytest.approx(0.5)  # capped
    assert backoff.delay_for(9) == pytest.approx(0.5)


def test_policy_budgets():
    assert RestartPolicy.one_shot().exhausted(0) is False
    assert RestartPolicy.one_shot().exhausted(1) is True
    assert RestartPolicy.always().exhausted(10_000) is False
    capped = RestartPolicy.backoff_capped(max_restarts=2)
    assert capped.exhausted(1) is False
    assert capped.exhausted(2) is True


def test_supervisor_restarts_a_crashed_node():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        sup = Supervisor(rt, RestartPolicy.always(delay=0.05)).watch(node)
        node.crash()
        rt.sleep(0.5)
        up = not node.stopped
        restarts = sup.restarts["n1"]
        sup.stop()
        return up, restarts, node.incarnation

    up, restarts, incarnation = run(main).main_result
    assert up is True
    assert restarts == 1
    assert incarnation == 1


def test_one_shot_gives_up_after_its_budget():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        sup = Supervisor(rt, RestartPolicy.one_shot(delay=0.05)).watch(node)
        node.crash()
        rt.sleep(0.5)
        first_up = not node.stopped
        node.crash()
        rt.sleep(0.5)
        second_up = not node.stopped
        gave_up = list(sup.gave_up)
        sup.stop()
        return first_up, second_up, gave_up

    first_up, second_up, gave_up = run(main).main_result
    assert first_up is True
    assert second_up is False  # budget spent: stays down
    assert gave_up == ["n1"]


def test_externally_revived_node_does_not_consume_budget():
    """A crash_restart fault's own timer may revive the node while the
    supervisor is still sleeping its restart delay; the supervisor must
    notice and not count (or duplicate) the restart."""

    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        sup = Supervisor(rt, RestartPolicy.one_shot(delay=0.2)).watch(node)
        node.crash()
        rt.sleep(0.05)
        node.restart()  # the fault action wins the race
        rt.sleep(0.5)
        counted = sup.restarts["n1"]
        sup.stop()
        return counted, node.incarnation

    counted, incarnation = run(main).main_result
    assert counted == 0
    assert incarnation == 1


def test_supervision_is_deterministic():
    def main(rt):
        net = rt.network(name="t")
        nodes = [Node(net, f"n{i}") for i in range(3)]
        sup = Supervisor(rt, RestartPolicy.backoff_capped(delay=0.05))
        for node in nodes:
            sup.watch(node)
        nodes[0].crash()
        rt.sleep(0.1)
        nodes[2].crash()
        rt.sleep(1.0)
        out = (dict(sup.restarts), [n.incarnation for n in nodes], rt.now())
        sup.stop()
        return out

    first = run(main, seed=7).main_result
    second = run(main, seed=7).main_result
    assert first == second
    assert first[0] == {"n0": 1, "n1": 0, "n2": 1}
