"""Network fabric: latency, FIFO, faults, partitions, message log."""

import pytest

from repro import run
from repro.net import Conn, NetError, Node


def test_delivery_takes_one_link_latency():
    def main(rt):
        net = rt.network(name="t", default_latency=0.25)
        a, b = Conn.pair(rt, net, "a", "b")
        a.send("x")
        payload, ok = b.recv_ok()
        return payload, ok, rt.now()

    payload, ok, now = run(main).main_result
    assert (payload, ok) == ("x", True)
    assert now == pytest.approx(0.25)


def test_per_pipe_fifo_is_preserved():
    def main(rt):
        net = rt.network(name="t")
        a, b = Conn.pair(rt, net, "a", "b")
        for i in range(10):
            a.send(i)
        a.close_write()
        return list(b)

    assert run(main).main_result == list(range(10))


def test_set_latency_is_symmetric_by_default():
    def main(rt):
        net = rt.network(name="t", default_latency=0.001)
        net.set_latency("a", "b", 0.5)
        return net.link("a", "b").latency, net.link("b", "a").latency

    assert run(main).main_result == (0.5, 0.5)


def test_drop_rate_one_loses_everything():
    def main(rt):
        net = rt.network(name="t")
        a, b = Conn.pair(rt, net, "a", "b")
        net.link("a", "b").drop = 1.0
        for i in range(5):
            a.send(i)
        a.close_write()
        got = list(b)
        return got, dict(net.stats)

    got, stats = run(main).main_result
    assert got == []
    assert stats["sent"] == 5
    assert stats["dropped"] == 5
    assert stats["delivered"] == 0


def test_duplicate_rate_one_delivers_twice():
    def main(rt):
        net = rt.network(name="t")
        a, b = Conn.pair(rt, net, "a", "b")
        net.link("a", "b").duplicate = 1.0
        for i in range(3):
            a.send(i)
        a.close_write()
        got = list(b)
        return got, dict(net.stats)

    got, stats = run(main).main_result
    assert got == [0, 0, 1, 1, 2, 2]  # FIFO holds for the copies too
    assert stats["duplicated"] == 3
    assert stats["delivered"] == 6


def test_partition_drops_in_flight_and_heal_restores():
    def main(rt):
        net = rt.network(name="t", default_latency=0.1)
        a, b = Conn.pair(rt, net, "a", "b")
        a.send("doomed")             # in flight when the cable is cut
        net.partition({"a"}, {"b"})
        unreachable = not net.reachable("a", "b")
        rt.sleep(0.5)                # past the delivery time
        got_during, received, _open = b.try_recv()
        net.heal()
        a.send("after-heal")
        payload, ok = b.recv_ok()
        return (unreachable, received, got_during, payload, ok,
                net.stats["dropped"], net.partitioned)

    unreachable, received, got, payload, ok, dropped, parted = \
        run(main).main_result
    assert unreachable is True
    assert received is False and got is None
    assert (payload, ok) == ("after-heal", True)
    assert dropped == 1
    assert parted is False


def test_partition_leaves_unnamed_nodes_connected():
    def main(rt):
        net = rt.network(name="t")
        net.partition({"a"}, {"b"})
        return (net.reachable("a", "c"), net.reachable("c", "b"),
                net.reachable("a", "a"))

    assert run(main).main_result == (True, True, True)


def test_fault_rate_rules_glob_and_clear():
    def main(rt):
        net = rt.network(name="t")
        a, b = Conn.pair(rt, net, "a", "b")
        net.set_fault_rate("drop", "a->*", 1.0)
        a.send("lost")
        net.set_fault_rate("drop", "a->*", 0.0)   # value=0 removes the rule
        a.send("kept")
        payload, ok = b.recv_ok()
        return payload, ok, net.stats["dropped"]

    assert run(main).main_result == ("kept", True, 1)


def test_unknown_fault_rate_kind_rejected():
    def main(rt):
        net = rt.network(name="t")
        with pytest.raises(ValueError, match="unknown fault rate kind"):
            net.set_fault_rate("corrupt", "*", 0.5)
        return True

    assert run(main).main_result is True


def test_duplicate_node_name_rejected():
    def main(rt):
        net = rt.network(name="t")
        Node(net, "twin")
        with pytest.raises(NetError, match="duplicate node name"):
            Node(net, "twin")
        return True

    assert run(main).main_result is True


def test_address_already_in_use_rejected():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "srv")
        node.listen("api")
        with pytest.raises(NetError, match="address already in use"):
            node.listen("api")
        return True

    assert run(main).main_result is True


def _flaky_program(rt):
    net = rt.network(name="flakynet")
    a, b = Conn.pair(rt, net, "a", "b")
    net.link("a", "b").drop = 0.3
    net.link("a", "b").duplicate = 0.2
    for i in range(40):
        a.send(i)
    a.close_write()
    got = list(b)
    return tuple(got), net.format_message_log(), dict(net.stats)


def test_message_log_is_byte_identical_for_a_seed():
    first = run(_flaky_program, seed=11).main_result
    second = run(_flaky_program, seed=11).main_result
    assert first == second
    got, log, stats = first
    assert stats["sent"] == 40
    assert 0 < stats["delivered"]
    assert log.count("SEND") == 40
    assert log.count("DROP") == stats["dropped"]


def test_fabric_coins_vary_with_the_seed():
    logs = {run(_flaky_program, seed=seed).main_result[1]
            for seed in range(6)}
    assert len(logs) > 1


def test_log_messages_gate_disables_the_log():
    def main(rt):
        net = rt.network(name="quiet", log_messages=False)
        a, b = Conn.pair(rt, net, "a", "b")
        a.send(1)
        b.recv()
        return net.format_message_log()

    assert run(main).main_result == ""
