"""RPC layer: unary calls, streaming, deadlines, retries, pump hygiene.

The client pump is the paper's Figure 1 shape applied as library policy:
timed-out callers and abandoned stream consumers must never strand the
demultiplexing goroutine.
"""

import pytest

from repro import run
from repro.net import (
    Node,
    RpcClient,
    RpcError,
    RpcServer,
    Status,
    connect_with_retry,
)
from repro.net.fabric import NetError


def _serve(rt, net, handlers=None, streaming=None, name="srv"):
    node = Node(net, name)
    server = RpcServer(node, name="api")
    for method, handler in (handlers or {}).items():
        server.register(method, handler)
    for method, handler in (streaming or {}).items():
        server.register_streaming(method, handler)
    server.serve(node.listen("api"))
    return node, server, node.addr("api")


def test_unary_echo_and_not_found():
    def main(rt):
        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, {"echo": lambda p: p * 2})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        doubled = client.call("echo", 21)
        with pytest.raises(RpcError) as missing:
            client.call("nope", None)
        client.close()
        srv.stop()
        cli.stop()
        return doubled, missing.value.code

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == (42, Status.NOT_FOUND)
    assert result.leaked == []


def test_handler_exception_maps_to_internal():
    def main(rt):
        def boom(_payload):
            raise ValueError("kaput")

        net = rt.network(name="t")
        srv, server, addr = _serve(rt, net, {"boom": boom})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        with pytest.raises(RpcError) as err:
            client.call("boom", None)
        client.close()
        srv.stop()
        cli.stop()
        return err.value.code, err.value.detail, server.errors

    code, detail, errors = run(main).main_result
    assert code == Status.INTERNAL
    assert "kaput" in detail
    assert errors == 1


def test_call_deadline_fires_without_stranding_the_pump():
    def main(rt):
        def slow(_payload):
            rt.sleep(5.0)
            return "late"

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, {"slow": slow})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        with pytest.raises(RpcError) as err:
            client.call("slow", None, timeout=0.5)
        retryable = err.value.retryable
        # The late response lands in a popped registration: the pump must
        # shrug it off and keep serving this fresh call.
        alive = client.call("slow", None, timeout=10.0)
        client.close()
        srv.stop()
        cli.stop()
        return err.value.code, retryable, alive

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == (Status.DEADLINE_EXCEEDED, True, "late")
    assert result.leaked == []


def test_server_streaming_until_eos():
    def main(rt):
        def count(n, send):
            for i in range(n):
                send(i)

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, streaming={"count": count})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        frames = list(client.stream("count", 4))
        client.close()
        srv.stop()
        cli.stop()
        return frames

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == [0, 1, 2, 3]


def test_stream_per_frame_deadline():
    def main(rt):
        def stall(_payload, send):
            send("first")
            rt.sleep(30.0)            # the link looks dead to the consumer
            send("second")

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, streaming={"stall": stall})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        got = []
        with pytest.raises(RpcError) as err:
            for frame in client.stream("stall", None, timeout=0.5):
                got.append(frame)
        client.close()
        srv.stop()
        cli.stop()
        return got, err.value.code

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == (["first"], Status.DEADLINE_EXCEEDED)
    assert result.leaked == []


def test_abandoned_stream_never_strands_the_pump():
    def main(rt):
        def firehose(_payload, send):
            for i in range(100):
                send(i)

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, streaming={"firehose": firehose})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        stream = client.stream("firehose", None, buffer=2)
        got = [next(stream), next(stream), next(stream)]
        stream.close()                # walk away mid-stream
        # The pump survived the abandonment and still serves unary calls
        # (a stranded pump would leave this blocked forever).
        with pytest.raises(RpcError):
            client.call("missing", None, timeout=1.0)
        client.close()
        srv.stop()
        cli.stop()
        return got

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == [0, 1, 2]
    assert result.leaked == []


def test_call_with_retry_survives_transient_unavailable():
    def main(rt):
        attempts = []

        def shaky(payload):
            attempts.append(payload)
            if len(attempts) < 3:
                raise RpcError(Status.UNAVAILABLE, "warming up")
            return "served"

        def never(_payload):
            raise RpcError(Status.NOT_FOUND, "no retry for this")

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, {"shaky": shaky, "never": never})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        served = client.call_with_retry("shaky", "x", attempts=5)
        with pytest.raises(RpcError) as err:
            client.call_with_retry("never", "y", attempts=5)
        client.close()
        srv.stop()
        cli.stop()
        return served, len(attempts), err.value.code

    served, shaky_calls, code = run(main).main_result
    assert served == "served"
    assert shaky_calls == 3
    assert code == Status.NOT_FOUND   # non-retryable: raised on attempt one


def test_connect_with_retry_waits_for_a_late_listener():
    def main(rt):
        net = rt.network(name="t")
        srv = Node(net, "srv")
        cli = Node(net, "cli")

        def bring_up():
            rt.sleep(0.3)
            server = RpcServer(srv, name="api")
            server.register("ping", lambda _p: "pong")
            server.serve(srv.listen("api"))

        rt.go(bring_up, name="late-start")
        client = connect_with_retry(cli, "srv:api", name="api", attempts=8)
        pong = client.call("ping", None, timeout=1.0)
        client.close()
        srv.stop()
        cli.stop()
        return pong, rt.now() >= 0.3

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == ("pong", True)


def test_connect_with_retry_exhausts_attempts():
    def main(rt):
        net = rt.network(name="t")
        cli = Node(net, "cli")
        with pytest.raises(NetError, match="connection refused"):
            connect_with_retry(cli, "ghost:api", attempts=3)
        cli.stop()
        return True

    assert run(main).main_result is True


def test_close_fails_callers_with_unavailable():
    def main(rt):
        def slow(_payload):
            rt.sleep(10.0)
            return "late"

        net = rt.network(name="t")
        srv, _server, addr = _serve(rt, net, {"slow": slow})
        cli = Node(net, "cli")
        client = RpcClient(cli, addr, name="api")
        outcome = rt.make_chan(1)

        def caller():
            try:
                client.call("slow", None)
            except RpcError as err:
                outcome.send(err.code)

        rt.go(caller, name="caller")
        rt.sleep(0.5)
        client.close()                # pump EOF fails the pending call
        code = outcome.recv()
        srv.stop()
        cli.stop()
        return code

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == Status.UNAVAILABLE
    assert result.leaked == []
