"""Multi-node mini-apps on the fabric: minietcd and minigrpc clusters."""

import pytest

from repro import run
from repro.apps.minietcd.cluster import EtcdCluster
from repro.inject import plans, scenarios


def test_etcd_cluster_replicates_and_serves_reads():
    def main(rt):
        cluster = EtcdCluster(rt, size=3)
        client = cluster.client("cli")
        for i in range(4):
            client.put(f"cfg/{i}", i * 10)
        converged = cluster.await_convergence("cfg/", timeout=60.0)
        leader_read = client.get("cfg/2")
        follower_read = client.get("cfg/2", member=2)
        rows = client.range("cfg/", timeout=10.0)
        replicated = [m.replicated.load() for m in cluster.members]
        cluster.stop()
        return converged, leader_read, follower_read, len(rows), replicated

    result = run(main, seed=0, max_steps=400_000)
    assert result.status == "ok"
    converged, leader_read, follower_read, rows, replicated = \
        result.main_result
    assert converged is True
    assert leader_read == follower_read == 20
    assert rows == 4
    assert replicated == [0, 4, 4]     # leader applies locally, followers ack
    assert result.leaked == []


def test_etcd_cluster_watch_streams_over_the_wire():
    def main(rt):
        cluster = EtcdCluster(rt, size=2)
        watcher = cluster.client("watcher")
        writer = cluster.client("writer")
        events = []

        def watch():
            for event in watcher.watch("job/", count=3, timeout=30.0):
                events.append(event)

        rt.go(watch, name="watch")
        rt.sleep(0.5)                  # let the watch register
        for i in range(3):
            writer.put(f"job/{i}", i)
        rt.sleep(1.0)
        cluster.stop()
        return events

    result = run(main, seed=0, max_steps=400_000)
    assert result.status == "ok"
    events = result.main_result
    assert [(kind, key) for kind, key, _value, _rev in events] == \
        [("PUT", "job/0"), ("PUT", "job/1"), ("PUT", "job/2")]


def test_non_leader_put_rejected():
    def main(rt):
        from repro.net.rpc import RpcError

        cluster = EtcdCluster(rt, size=2)
        follower = cluster.members[1]
        with pytest.raises(RpcError, match="not the leader"):
            follower._rpc_put({"key": "x", "value": 1})
        cluster.stop()
        return True

    assert run(main, max_steps=400_000).main_result is True


@pytest.mark.parametrize("name,program,kwargs", scenarios.net_scenarios())
@pytest.mark.parametrize("seed", [0, 1])
def test_net_scenarios_healthy_at_baseline(name, program, kwargs, seed):
    result = run(program, seed=seed, **kwargs)
    assert result.status == "ok", (name, seed, result.status)
    assert result.main_result is True, (name, seed)
    assert result.leaked == [], (name, seed)


@pytest.mark.parametrize("name,program,kwargs", scenarios.net_scenarios())
def test_net_scenarios_survive_a_secondary_partition(name, program, kwargs):
    """Cut each app's secondary node (etcd n2 / grpc srv2) and heal: the
    replication queue drains and the failover client reroutes — the
    invariants still hold."""
    plan = plans.partition(target="*2", at_step=150, heal_after=400)
    result = run(program, seed=0, inject=plan, **kwargs)
    assert result.status == "ok", (name, result.status)
    assert result.main_result is True, name
    assert any(r.action == "net_partition" for r in result.injected), name


def test_net_scenarios_stay_out_of_the_single_process_suite():
    """The chaos scorecard's shape (6 apps x plans) is load-bearing for
    the benchmarks; cluster scenarios ride a separate registry."""
    single = {name for name, _p, _k in scenarios.all_scenarios()}
    cluster = {name for name, _p, _k in scenarios.net_scenarios()}
    assert len(single) == 6
    assert cluster == {"minietcd-cluster", "minigrpc-cluster"}
    assert not (single & cluster)
