"""Figure helper utilities."""

from repro.dataset import go171
from repro.dataset.records import App, Cause
from repro.study import figures


def test_figure2_and_3_cover_all_apps():
    fig2 = figures.figure2_data()
    fig3 = figures.figure3_data()
    assert set(fig2) == set(App) == set(fig3)
    for app in App:
        assert len(fig2[app]) == len(fig3[app]) == 40


def test_figure4_data_keyed_by_cause():
    data = figures.figure4_data(go171.load())
    assert set(data) == set(Cause)


def test_sparkline_scales_to_width():
    line = figures.sparkline([0.0, 0.5, 1.0] * 20, width=30)
    assert 0 < len(line) <= 31
    assert line.strip()


def test_sparkline_handles_flat_and_empty_series():
    assert figures.sparkline([]) == ""
    flat = figures.sparkline([0.7] * 10)
    assert len(set(flat)) == 1  # constant series renders one glyph


def test_ascii_cdf_renders_deciles():
    points = figures.figure4_data()[Cause.SHARED_MEMORY]
    art = figures.ascii_cdf(points, label="shared memory")
    lines = art.splitlines()
    assert lines[0].startswith("CDF shared memory")
    assert len(lines) == 11  # header + ten deciles
    assert all("days" in line for line in lines[1:])
