"""Lifetime CDFs (Figure 4)."""

import pytest

from repro.dataset import go171
from repro.dataset.records import Cause
from repro.study import lifetime


def test_cdf_is_monotone_and_normalized():
    points = lifetime.cdf([5.0, 1.0, 3.0])
    assert points == [(1.0, pytest.approx(1 / 3)),
                      (3.0, pytest.approx(2 / 3)),
                      (5.0, pytest.approx(1.0))]


def test_lifetime_cdfs_cover_both_causes():
    cdfs = lifetime.lifetime_cdfs(go171.load())
    assert set(cdfs) == set(Cause)
    assert len(cdfs[Cause.SHARED_MEMORY]) == 105
    assert len(cdfs[Cause.MESSAGE_PASSING]) == 66
    for points in cdfs.values():
        quantiles = [q for _v, q in points]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] == pytest.approx(1.0)


def test_summary_shows_long_lifetimes_for_both_causes():
    summary = lifetime.summary(go171.load())
    for cause in Cause:
        stats = summary[cause]
        assert stats["median_days"] > 300
        assert stats["share_over_one_year"] > 0.4


def test_fraction_under():
    records = go171.load()
    under_10y = lifetime.fraction_under(records, Cause.SHARED_MEMORY, 3650)
    under_1d = lifetime.fraction_under(records, Cause.SHARED_MEMORY, 1)
    assert under_1d < 0.1
    assert under_10y > 0.9


def test_both_causes_have_similar_distributions():
    """Figure 4 shows the two curves close together."""
    summary = lifetime.summary(go171.load())
    m1 = summary[Cause.SHARED_MEMORY]["median_days"]
    m2 = summary[Cause.MESSAGE_PASSING]["median_days"]
    assert abs(m1 - m2) / max(m1, m2) < 0.25
