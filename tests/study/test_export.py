"""Machine-readable exports."""

import json

from repro.study.export import export_all


def test_export_all_creates_every_artifact(tmp_path):
    paths = export_all(tmp_path)
    names = sorted(p.name for p in paths)
    assert names == sorted([
        "go171.json",
        "table5_taxonomy.tsv",
        "table6_blocking_causes.tsv",
        "table7_blocking_fixes.tsv",
        "table9_nonblocking_causes.tsv",
        "table10_nonblocking_fixes.tsv",
        "table11_fix_primitives.tsv",
        "figure4_lifetime_cdf.tsv",
        "figures23_usage_series.tsv",
        "kernels.json",
    ])
    for path in paths:
        assert path.exists() and path.stat().st_size > 0


def test_dataset_json_roundtrip(tmp_path):
    export_all(tmp_path)
    data = json.loads((tmp_path / "go171.json").read_text())
    assert len(data) == 171
    record = next(r for r in data if r["bug_id"] == "kubernetes#5316")
    assert record["figure"] == "1"
    assert record["reconstructed"] is False
    assert record["behavior"] == "blocking"


def test_table5_tsv_totals(tmp_path):
    export_all(tmp_path)
    lines = (tmp_path / "table5_taxonomy.tsv").read_text().strip().splitlines()
    assert lines[0].split("\t") == ["app", "blocking", "nonblocking",
                                    "shared", "message"]
    body = [line.split("\t") for line in lines[1:]]
    assert sum(int(row[1]) for row in body) == 85
    assert sum(int(row[2]) for row in body) == 86


def test_figure4_tsv_is_a_valid_cdf(tmp_path):
    export_all(tmp_path)
    lines = (tmp_path / "figure4_lifetime_cdf.tsv").read_text().strip().splitlines()
    shared = [line.split("\t") for line in lines[1:]
              if line.startswith("shared memory")]
    quantiles = [float(row[2]) for row in shared]
    assert quantiles == sorted(quantiles)
    assert quantiles[-1] == 1.0
    assert len(shared) == 105


def test_kernels_json_matches_registry(tmp_path):
    from repro.bugs import registry

    export_all(tmp_path)
    data = json.loads((tmp_path / "kernels.json").read_text())
    assert len(data) == len(registry.all_kernels())
    figures = {k["figure"] for k in data if k["figure"]}
    assert figures == {"1", "5", "6", "7", "8", "9", "10", "11", "12"}


def test_cli_export(tmp_path, capsys):
    from repro.cli import main

    assert main(["export", str(tmp_path / "artifacts")]) == 0
    out = capsys.readouterr().out
    assert "go171.json" in out
    assert (tmp_path / "artifacts" / "kernels.json").exists()
