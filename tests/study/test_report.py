"""The one-call study report."""

from repro.dataset import go171
from repro.study import report


def test_full_report_contains_every_section():
    text = report.full_report()
    for marker in (
        "dataset: 171 bugs",
        "Table 5. Taxonomy",
        "Table 6. Blocking bug causes",
        "Table 7. Fix strategies for blocking bugs",
        "Table 9. Non-blocking bug causes",
        "Table 10. Fix strategies for non-blocking bugs",
        "Table 11. Fix primitives for non-blocking bugs",
        "Figure 4: bug life time",
        "Figures 2/3: usage stability",
        "headline findings, regenerated:",
    ):
        assert marker in text, marker


def test_report_headlines_quote_paper_numbers():
    text = report.headline_findings(go171.load())
    assert "58%" in text
    assert "80%" in text
    assert "6.8 lines" in text
    assert "69%" in text


def test_report_accepts_custom_records():
    records = go171.load()
    assert report.dataset_header(records).startswith("dataset: 171 bugs")
    assert "lift(" in report.tables_section(records)
