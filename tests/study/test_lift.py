"""The lift statistic itself."""

import math

import pytest

from repro.study.lift import LiftResult, lift


class _Item:
    def __init__(self, a, b):
        self.a = a
        self.b = b


def _population(n_ab, n_a_only, n_b_only, n_neither):
    items = []
    items += [_Item(True, True)] * n_ab
    items += [_Item(True, False)] * n_a_only
    items += [_Item(False, True)] * n_b_only
    items += [_Item(False, False)] * n_neither
    return items


def test_independent_events_have_lift_one():
    # P(A)=1/2, P(B)=1/2, P(AB)=1/4 over 100 items.
    pop = _population(25, 25, 25, 25)
    result = lift(pop, lambda i: i.a, lambda i: i.b)
    assert result.lift == pytest.approx(1.0)


def test_perfect_correlation():
    pop = _population(10, 0, 0, 30)
    result = lift(pop, lambda i: i.a, lambda i: i.b)
    assert result.lift == pytest.approx(4.0)  # 10*40/(10*10)


def test_negative_correlation():
    pop = _population(0, 20, 20, 0)
    result = lift(pop, lambda i: i.a, lambda i: i.b)
    assert result.lift == 0.0


def test_counts_recorded():
    pop = _population(3, 2, 5, 10)
    result = lift(pop, lambda i: i.a, lambda i: i.b, "cause", "fix")
    assert (result.n_a, result.n_b, result.n_ab, result.population) == (5, 8, 3, 20)
    assert "lift(cause, fix)" in str(result)


def test_empty_marginal_yields_nan():
    pop = _population(0, 0, 5, 5)
    result = lift(pop, lambda i: i.a, lambda i: i.b)
    assert math.isnan(result.lift)


def test_hand_computed_paper_style_example():
    """lift = P(AB)/(P(A)P(B)) with the paper's formula, by hand:
    85 bugs, |A|=28, |B|=18, |AB|=9 -> 9*85/(28*18) = 1.5179."""
    pop = _population(9, 19, 9, 48)
    result = lift(pop, lambda i: i.a, lambda i: i.b)
    assert result.population == 85
    assert result.lift == pytest.approx(9 * 85 / (28 * 18))
