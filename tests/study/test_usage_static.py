"""The static usage analyzer: bindings, attribution, app-level profiles."""

import textwrap
from pathlib import Path

import pytest

from repro.study import usage_static

APPS_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "apps"


def _analyze(code: str):
    return usage_static.analyze_source(textwrap.dedent(code), "probe.py")


def test_counts_constructors():
    usage = _analyze(
        """
        def main(rt):
            mu = rt.mutex()
            rw = rt.rwmutex()
            wg = rt.waitgroup()
            ch = rt.make_chan(4)
            once = rt.once()
        """
    )
    assert usage.primitives["Mutex"] == 2
    assert usage.primitives["WaitGroup"] == 1
    assert usage.primitives["chan"] == 1
    assert usage.primitives["Once"] == 1


def test_resolves_ambiguous_methods_through_bindings():
    usage = _analyze(
        """
        def main(rt):
            wg = rt.waitgroup()
            counter = rt.atomic_int(0)
            wg.add(1)        # WaitGroup
            counter.add(1)   # atomic
            wg.wait()        # WaitGroup
            counter.load()   # atomic
        """
    )
    assert usage.primitives["WaitGroup"] == 1 + 2  # ctor + add + wait
    assert usage.primitives["atomic"] == 1 + 2


def test_with_statement_counts_lock_pair():
    usage = _analyze(
        """
        def main(rt):
            mu = rt.mutex()
            with mu:
                pass
        """
    )
    assert usage.primitives["Mutex"] == 3  # ctor + lock + unlock


def test_self_attribute_bindings_resolve():
    usage = _analyze(
        """
        class Server:
            def __init__(self, rt):
                self.mu = rt.mutex()
                self.events = rt.make_chan(8)

            def handle(self):
                self.mu.lock()
                self.events.send(1)
                self.mu.unlock()
        """
    )
    assert usage.primitives["Mutex"] == 3
    assert usage.primitives["chan"] == 2


def test_go_site_anonymity_classification():
    usage = _analyze(
        """
        def top_level_worker():
            pass

        def main(rt):
            rt.go(top_level_worker)      # named
            rt.go(lambda: None)          # anonymous
            def local():
                pass
            rt.go(local)                 # anonymous (closure)
        """
    )
    assert usage.creation_sites == 3
    assert usage.anonymous_sites == 2
    assert usage.named_sites == 1


def test_loc_counting_skips_blanks_and_comments():
    assert usage_static.count_loc("a = 1\n\n# comment\nb = 2\n") == 2


def test_app_profiles_match_paper_shape():
    """Table 2/4 shape over our six mini-apps."""
    profiles = {
        pkg: usage_static.analyze_package(APPS_DIR / pkg, pkg)
        for pkg in ("minidocker", "minikube", "minietcd", "miniroach",
                    "minigrpc", "miniboltdb")
    }
    for usage in profiles.values():
        assert usage.creation_sites > 0
        assert usage.total_primitives > 10
        props = usage.proportions()
        assert props["Mutex"] > props["Cond"]
        assert 5 <= props["chan"] <= 60  # significant but not dominant

    # Table 2: Kubernetes and BoltDB favor named functions; others anonymous.
    assert profiles["minikube"].named_sites >= profiles["minikube"].anonymous_sites
    assert profiles["miniboltdb"].named_sites >= profiles["miniboltdb"].anonymous_sites
    for pkg in ("minidocker", "minietcd", "miniroach", "minigrpc"):
        assert profiles[pkg].anonymous_sites > profiles[pkg].named_sites, pkg


def test_cstyle_comparator_is_lock_only_with_one_creation_site():
    usage = usage_static.analyze_source(
        (APPS_DIR / "minigrpc" / "cstyle.py").read_text(encoding="utf-8"),
        "cstyle.py",
    )
    assert usage.creation_sites == 1   # the fixed pool spawn
    kinds = [k for k, v in usage.primitives.items() if v]
    assert kinds == ["Mutex"]          # gRPC-C: locks only


def test_grpc_density_exceeds_cstyle_density():
    """Table 2's headline: 0.83 vs 0.03 sites/KLOC — ordering must hold."""
    go_usage = usage_static.analyze_package(APPS_DIR / "minigrpc", "minigrpc")
    c_usage = usage_static.analyze_source(
        (APPS_DIR / "minigrpc" / "cstyle.py").read_text(encoding="utf-8"),
        "cstyle.py",
    )
    assert go_usage.sites_per_kloc > c_usage.sites_per_kloc
    # And the variety of primitives is far richer (8 kinds vs 1 in the paper).
    go_kinds = sum(1 for v in go_usage.primitives.values() if v)
    c_kinds = sum(1 for v in c_usage.primitives.values() if v)
    assert go_kinds >= 5 > c_kinds
