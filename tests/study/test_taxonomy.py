"""Taxonomy aggregation over the dataset."""

import pytest

from repro.dataset import go171
from repro.dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    NonBlockingSubCause,
)
from repro.study import taxonomy


@pytest.fixture(scope="module")
def records():
    return go171.load()


def test_totals(records):
    t = taxonomy.totals(records)
    assert t == {
        "total": 171, "blocking": 85, "nonblocking": 86,
        "shared": 105, "message": 66,
    }


def test_behavior_cause_matrix_row_order_and_values(records):
    matrix = taxonomy.behavior_cause_matrix(records)
    assert list(matrix) == list(App)
    assert matrix[App.DOCKER] == (21, 23, 28, 16)
    assert matrix[App.BOLTDB] == (3, 2, 4, 1)


def test_blocking_cause_table(records):
    table = taxonomy.blocking_cause_table(records)
    assert table[App.ETCD][BlockingSubCause.CHAN] == 10
    assert table[App.KUBERNETES][BlockingSubCause.CHAN_WITH_OTHER] == 6
    assert sum(table[app][BlockingSubCause.MUTEX] for app in App) == 28


def test_nonblocking_cause_table_columns_sum_to_published_totals(records):
    table = taxonomy.nonblocking_cause_table(records)
    sums = {
        sub: sum(table[app][sub] for app in App)
        for sub in NonBlockingSubCause
    }
    assert sums[NonBlockingSubCause.TRADITIONAL] == 46
    assert sums[NonBlockingSubCause.ANONYMOUS_FUNCTION] == 11
    assert sums[NonBlockingSubCause.WAITGROUP] == 6
    assert sums[NonBlockingSubCause.CHAN] == 16
    assert sums[NonBlockingSubCause.MSG_LIBRARY] == 1


def test_strategy_matrix_rows_sum_to_category_sizes(records):
    matrix = taxonomy.strategy_matrix(records, Behavior.BLOCKING)
    assert sum(matrix[BlockingSubCause.MUTEX].values()) == 28
    assert sum(matrix[BlockingSubCause.CHAN].values()) == 29
    total = sum(sum(row.values()) for row in matrix.values())
    assert total == 85


def test_primitive_use_matrix_matches_table11(records):
    matrix = taxonomy.primitive_use_matrix(records)
    assert matrix[NonBlockingSubCause.TRADITIONAL][FixPrimitive.MUTEX] == 24
    assert matrix[NonBlockingSubCause.CHAN][FixPrimitive.CHANNEL] == 11
    assert matrix[NonBlockingSubCause.MSG_LIBRARY][FixPrimitive.CHANNEL] == 1
    grand_total = sum(sum(c.values()) for c in matrix.values())
    assert grand_total == 94
