"""WaitGroup semantics: barrier behavior, panics, Add/Wait rules."""

from repro import run


def test_wait_blocks_until_all_done():
    def main(rt):
        wg = rt.waitgroup()
        done = rt.atomic_int(0)

        def worker(delay):
            rt.sleep(delay)
            done.add(1)
            wg.done()

        for i in range(3):
            wg.add(1)
            rt.go(worker, 0.2 * (i + 1))
        wg.wait()
        return done.load(), rt.now()

    count, now = run(main).main_result
    assert count == 3
    assert now >= 0.6


def test_wait_with_zero_counter_returns_immediately():
    def main(rt):
        wg = rt.waitgroup()
        wg.wait()
        return "instant"

    assert run(main).main_result == "instant"


def test_negative_counter_panics():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(1)
        wg.done()
        wg.done()

    result = run(main)
    assert result.status == "panic"
    assert "negative WaitGroup counter" in str(result.panic_value)


def test_add_negative_delta_panics_below_zero():
    def main(rt):
        rt.waitgroup().add(-1)

    assert run(main).status == "panic"


def test_multiple_waiters_all_released():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(1)
        released = rt.atomic_int(0)

        def waiter():
            wg.wait()
            released.add(1)

        for _ in range(3):
            rt.go(waiter)
        rt.sleep(0.2)
        wg.done()
        rt.sleep(0.2)
        return released.load()

    assert run(main).main_result == 3


def test_reuse_after_zero():
    def main(rt):
        wg = rt.waitgroup()
        for wave in range(2):
            wg.add(2)
            for _ in range(2):
                rt.go(wg.done)
            wg.wait()
        return "two waves"

    assert run(main).main_result == "two waves"


def test_counter_introspection():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(5)
        before = wg.counter
        wg.add(-2)
        return before, wg.counter

    assert run(main).main_result == (5, 3)


def test_missing_done_blocks_wait_forever():
    def main(rt):
        wg = rt.waitgroup()
        wg.add(2)
        rt.go(wg.done)  # only one Done
        wg.wait()

    assert run(main).status == "deadlock"
