"""AtomicInt/AtomicValue vs. SharedVar: atomicity under contention."""

from repro import run


def test_atomic_add_never_loses_updates():
    def main(rt):
        counter = rt.atomic_int(0)
        wg = rt.waitgroup()

        def worker():
            for _ in range(5):
                counter.add(1)
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(worker)
        wg.wait()
        return counter.load()

    for seed in range(10):
        assert run(main, seed=seed).main_result == 20


def test_sharedvar_add_can_lose_updates():
    """The non-atomic read-modify-write that powers the race kernels."""

    def main(rt):
        counter = rt.shared("c", 0)
        wg = rt.waitgroup()

        def worker():
            for _ in range(5):
                counter.add(1)
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(worker)
        wg.wait()
        return counter.peek()

    results = {run(main, seed=s).main_result for s in range(20)}
    assert any(v < 20 for v in results), "no lost update ever observed"
    assert all(v <= 20 for v in results)


def test_compare_and_swap():
    def main(rt):
        v = rt.atomic_int(5)
        first = v.compare_and_swap(5, 9)
        second = v.compare_and_swap(5, 11)
        return first, second, v.load()

    assert run(main).main_result == (True, False, 9)


def test_swap_returns_old_value():
    def main(rt):
        v = rt.atomic_int(1)
        old = v.swap(2)
        return old, v.load()

    assert run(main).main_result == (1, 2)


def test_atomic_value_store_load_swap():
    def main(rt):
        cell = rt.atomic_value()
        empty = cell.load()
        cell.store({"config": True})
        loaded = cell.load()
        old = cell.swap("next")
        return empty, loaded, old, cell.load()

    assert run(main).main_result == (
        None, {"config": True}, {"config": True}, "next",
    )


def test_sharedvar_update_and_peek_poke():
    def main(rt):
        v = rt.shared("s", (1,))
        v.update(lambda t: t + (2,))
        v.poke((9,))  # invisible to the detector, used for test setup
        return v.peek()

    assert run(main).main_result == (9,)


def test_sharedvar_incr():
    def main(rt):
        v = rt.shared("n", 0)
        v.incr()
        v.incr()
        return v.peek()

    assert run(main).main_result == 2
