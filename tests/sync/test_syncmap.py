"""sync.Map semantics and concurrency safety."""

from repro import run
from repro.detect import RaceDetector


def test_store_load_delete():
    def main(rt):
        m = rt.sync_map()
        m.store("k", 1)
        hit = m.load("k")
        m.delete("k")
        miss = m.load("k")
        return hit, miss, len(m)

    assert run(main).main_result == ((1, True), (None, False), 0)


def test_none_is_a_legal_value():
    def main(rt):
        m = rt.sync_map()
        m.store("k", None)
        return m.load("k")

    assert run(main).main_result == (None, True)


def test_load_or_store_is_atomic_double_init_guard():
    def main(rt):
        m = rt.sync_map()
        inits = rt.atomic_int(0)
        wg = rt.waitgroup()

        def ensure():
            _actual, loaded = m.load_or_store("buffer", object())
            if not loaded:
                inits.add(1)
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(ensure)
        wg.wait()
        return inits.load()

    for seed in range(10):
        assert run(main, seed=seed).main_result == 1


def test_load_and_delete_hands_off_exactly_once():
    def main(rt):
        m = rt.sync_map()
        m.store("job", "payload")
        claimed = rt.atomic_int(0)
        wg = rt.waitgroup()

        def claim():
            _value, ok = m.load_and_delete("job")
            if ok:
                claimed.add(1)
            wg.done()

        for _ in range(3):
            wg.add(1)
            rt.go(claim)
        wg.wait()
        return claimed.load()

    for seed in range(10):
        assert run(main, seed=seed).main_result == 1


def test_range_snapshot_and_early_stop():
    def main(rt):
        m = rt.sync_map()
        for i in range(5):
            m.store(i, i * i)
        visited = []

        def visit(key, value):
            visited.append((key, value))
            m.store(f"extra-{key}", True)  # reentrant store: no deadlock
            return len(visited) < 3

        m.range(visit)
        return len(visited)

    assert run(main).main_result == 3


def test_concurrent_mixed_ops_are_race_free_and_consistent():
    def main(rt):
        m = rt.sync_map()
        wg = rt.waitgroup()

        def writer(base):
            for i in range(4):
                m.store((base, i), i)
            wg.done()

        def deleter():
            for i in range(4):
                m.delete(("w0", i))
            wg.done()

        for base in ("w0", "w1", "w2"):
            wg.add(1)
            rt.go(writer, base)
        wg.add(1)
        rt.go(deleter)
        wg.wait()
        return len(m)

    for seed in range(8):
        detector = RaceDetector()
        result = run(main, seed=seed, observers=[detector])
        assert result.status == "ok"
        assert not detector.detected
        assert 8 <= result.main_result <= 12  # w1+w2 always survive
