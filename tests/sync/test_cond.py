"""Cond semantics: wait/signal/broadcast, non-sticky signals."""

from repro import run


def test_signal_wakes_one_waiter():
    def main(rt):
        mu = rt.mutex()
        cond = rt.cond(mu)
        ready = rt.shared("ready", False)
        woke = rt.atomic_int(0)

        def waiter():
            mu.lock()
            while not ready.load():
                cond.wait()
            woke.add(1)
            mu.unlock()

        rt.go(waiter)
        rt.sleep(0.2)
        mu.lock()
        ready.store(True)
        cond.signal()
        mu.unlock()
        rt.sleep(0.2)
        return woke.load()

    assert run(main).main_result == 1


def test_broadcast_wakes_everyone():
    def main(rt):
        mu = rt.mutex()
        cond = rt.cond(mu)
        go = rt.shared("go", False)
        woke = rt.atomic_int(0)

        def waiter():
            mu.lock()
            while not go.load():
                cond.wait()
            woke.add(1)
            mu.unlock()

        for _ in range(4):
            rt.go(waiter)
        rt.sleep(0.2)
        mu.lock()
        go.store(True)
        cond.broadcast()
        mu.unlock()
        rt.sleep(0.5)
        return woke.load()

    assert run(main).main_result == 4


def test_signal_before_wait_is_lost():
    """Signals are not sticky: the missed-signal blocking bug shape."""

    def main(rt):
        mu = rt.mutex()
        cond = rt.cond(mu)
        cond.signal()  # nobody waiting: lost

        def waiter():
            mu.lock()
            cond.wait()  # waits forever
            mu.unlock()

        rt.go(waiter)
        rt.sleep(1.0)

    result = run(main)
    assert result.status == "leak"
    assert "cond.wait" in result.leaked[0].block_reason


def test_wait_releases_and_reacquires_the_lock():
    def main(rt):
        mu = rt.mutex()
        cond = rt.cond(mu)
        observed = []

        def waiter():
            mu.lock()
            cond.wait()
            observed.append(("reacquired", mu.locked))
            mu.unlock()

        rt.go(waiter)
        rt.sleep(0.2)
        mu.lock()  # acquirable because wait released it
        observed.append(("lock-free-during-wait", True))
        cond.signal()
        mu.unlock()
        rt.sleep(0.2)
        return observed

    assert run(main).main_result == [
        ("lock-free-during-wait", True),
        ("reacquired", True),
    ]


def test_signal_wakes_in_fifo_order():
    def main(rt):
        mu = rt.mutex()
        cond = rt.cond(mu)
        order = []

        def waiter(tag):
            mu.lock()
            cond.wait()
            order.append(tag)
            mu.unlock()

        rt.go(waiter, "first")
        rt.sleep(0.1)
        rt.go(waiter, "second")
        rt.sleep(0.1)
        for _ in range(2):
            mu.lock()
            cond.signal()
            mu.unlock()
            rt.sleep(0.1)
        return order

    for seed in range(6):
        assert run(main, seed=seed).main_result == ["first", "second"]
