"""Mutex semantics: exclusion, non-reentrancy, handoff, errors."""

from repro import run


def test_mutual_exclusion_under_contention():
    def main(rt):
        mu = rt.mutex()
        inside = rt.shared("inside", 0)
        violations = rt.shared("violations", 0)
        wg = rt.waitgroup()

        def worker():
            for _ in range(3):
                mu.lock()
                if inside.load() != 0:
                    violations.add(1)
                inside.store(1)
                rt.gosched()
                inside.store(0)
                mu.unlock()
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(worker)
        wg.wait()
        return violations.peek()

    for seed in range(10):
        assert run(main, seed=seed).main_result == 0


def test_double_lock_self_deadlocks():
    def main(rt):
        mu = rt.mutex()
        mu.lock()
        mu.lock()

    assert run(main).status == "deadlock"


def test_unlock_of_unlocked_panics():
    def main(rt):
        rt.mutex().unlock()

    result = run(main)
    assert result.status == "panic"
    assert "unlock of unlocked mutex" in str(result.panic_value)


def test_unlock_by_other_goroutine_is_legal():
    def main(rt):
        mu = rt.mutex()
        mu.lock()
        rt.go(mu.unlock)
        rt.sleep(0.1)
        mu.lock()  # re-acquirable after the cross-goroutine unlock
        mu.unlock()
        return "ok"

    assert run(main).main_result == "ok"


def test_handoff_prevents_barging_past_waiters():
    def main(rt):
        mu = rt.mutex()
        order = []
        mu.lock()

        def waiter():
            mu.lock()
            order.append("waiter")
            mu.unlock()

        rt.go(waiter)
        rt.sleep(0.2)  # the waiter is parked now
        mu.unlock()    # direct handoff to the waiter

        def barger():
            mu.lock()
            order.append("barger")
            mu.unlock()

        rt.go(barger)
        rt.sleep(0.5)
        return order

    for seed in range(8):
        assert run(main, seed=seed).main_result == ["waiter", "barger"]


def test_try_lock():
    def main(rt):
        mu = rt.mutex()
        first = mu.try_lock()
        second = mu.try_lock()
        mu.unlock()
        third = mu.try_lock()
        mu.unlock()
        return first, second, third

    assert run(main).main_result == (True, False, True)


def test_context_manager():
    def main(rt):
        mu = rt.mutex()
        with mu:
            assert mu.locked
        return mu.locked

    assert run(main).main_result is False


def test_fifo_wakeup_order():
    def main(rt):
        mu = rt.mutex()
        order = []
        mu.lock()

        def waiter(tag):
            mu.lock()
            order.append(tag)
            mu.unlock()

        rt.go(waiter, "first", name="w1")
        rt.sleep(0.1)
        rt.go(waiter, "second", name="w2")
        rt.sleep(0.1)
        mu.unlock()
        rt.sleep(0.5)
        return order

    for seed in range(8):
        assert run(main, seed=seed).main_result == ["first", "second"]
