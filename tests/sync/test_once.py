"""Once semantics: exactly-once execution, blocking until the first run."""

from repro import run


def test_function_runs_exactly_once():
    def main(rt):
        once = rt.once()
        runs = rt.atomic_int(0)
        wg = rt.waitgroup()

        def init():
            runs.add(1)

        def caller():
            once.do(init)
            wg.done()

        for _ in range(5):
            wg.add(1)
            rt.go(caller)
        wg.wait()
        return runs.load()

    for seed in range(10):
        assert run(main, seed=seed).main_result == 1


def test_later_callers_block_until_first_finishes():
    def main(rt):
        once = rt.once()
        log = []

        def slow_init():
            log.append("init-start")
            rt.sleep(1.0)
            log.append("init-end")

        def second():
            rt.sleep(0.2)  # arrives mid-init
            once.do(lambda: log.append("never"))
            log.append("second-returned")

        rt.go(lambda: once.do(slow_init))
        rt.go(second)
        rt.sleep(3.0)
        return log

    assert run(main).main_result == ["init-start", "init-end", "second-returned"]


def test_different_functions_still_once():
    def main(rt):
        once = rt.once()
        log = []
        once.do(lambda: log.append("a"))
        once.do(lambda: log.append("b"))
        return log, once.done

    assert run(main).main_result == (["a"], True)


def test_panicking_init_still_marks_done():
    """Go marks the Once done even if f panics; later Do calls are no-ops."""

    def main(rt):
        once = rt.once()
        ran_second = rt.shared("second", False)

        def bad_init():
            raise_panic()

        def raise_panic():
            rt.panic("init failed")

        def guarded():
            try:
                once.do(bad_init)
            except BaseException:
                pass  # the panic escapes Do, as in Go

        guarded()
        once.do(lambda: ran_second.store(True))
        return once.done, ran_second.peek()

    result = run(main)
    assert result.main_result == (True, False)
