"""RWMutex semantics, including the Go-specific writer-priority rule."""

from repro import run


def test_concurrent_readers_allowed():
    def main(rt):
        mu = rt.rwmutex()
        peak = rt.shared("peak", 0)
        active = rt.shared("active", 0)
        wg = rt.waitgroup()

        def reader():
            mu.rlock()
            n = active.add(1)
            if n > peak.load():
                peak.store(n)
            rt.sleep(0.5)
            active.add(-1)
            mu.runlock()
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(reader)
        wg.wait()
        return peak.peek()

    assert run(main, seed=2).main_result >= 2


def test_writer_excludes_readers_and_writers():
    def main(rt):
        mu = rt.rwmutex()
        log = []
        wg = rt.waitgroup()

        def writer():
            mu.lock()
            log.append("w-in")
            rt.sleep(0.5)
            log.append("w-out")
            mu.unlock()
            wg.done()

        def reader():
            rt.sleep(0.1)  # arrive while the writer holds the lock
            mu.rlock()
            log.append("r")
            mu.runlock()
            wg.done()

        wg.add(2)
        rt.go(writer)
        rt.go(reader)
        wg.wait()
        return log

    assert run(main).main_result == ["w-in", "w-out", "r"]


def test_pending_writer_blocks_new_readers_go_semantics():
    """The exact Section 5.1.1 interleaving: deadlock under Go semantics."""

    def program(rt, writer_priority):
        mu = rt.rwmutex(writer_priority=writer_priority)

        def th_a():
            mu.rlock()
            rt.sleep(1.0)   # th-B's write lock request arrives here
            mu.rlock()      # blocks behind the pending writer in Go
            mu.runlock()
            mu.runlock()

        def th_b():
            rt.sleep(0.5)
            mu.lock()
            mu.unlock()

        rt.go(th_a)
        rt.go(th_b)
        rt.sleep(5.0)

    go_result = run(lambda rt: program(rt, True))
    assert go_result.status == "leak"
    assert len(go_result.leaked) == 2  # both th-A and th-B stuck

    pthread_result = run(lambda rt: program(rt, False))
    assert pthread_result.status == "ok"


def test_runlock_of_unlocked_panics():
    def main(rt):
        rt.rwmutex().runlock()

    result = run(main)
    assert result.status == "panic"
    assert "RUnlock" in str(result.panic_value)


def test_unlock_of_unlocked_write_panics():
    def main(rt):
        rt.rwmutex().unlock()

    result = run(main)
    assert result.status == "panic"


def test_readers_released_before_next_writer_after_write_unlock():
    def main(rt):
        mu = rt.rwmutex()
        log = []
        mu.lock()

        def reader():
            mu.rlock()
            log.append("reader")
            mu.runlock()

        def writer2():
            rt.sleep(0.1)
            mu.lock()
            log.append("writer2")
            mu.unlock()

        rt.go(reader)
        rt.go(writer2)
        rt.sleep(0.5)  # both queued behind the held write lock
        mu.unlock()
        rt.sleep(0.5)
        return log

    for seed in range(8):
        assert run(main, seed=seed).main_result == ["reader", "writer2"]


def test_rlocker_context_manager():
    def main(rt):
        mu = rt.rwmutex()
        with mu.rlocker():
            pass
        with mu:
            pass
        return "ok"

    assert run(main).main_result == "ok"


def test_writer_waits_for_all_readers():
    def main(rt):
        mu = rt.rwmutex()
        log = []

        def reader(tag, hold):
            mu.rlock()
            rt.sleep(hold)
            log.append(tag)
            mu.runlock()

        rt.go(reader, "r1", 0.5)
        rt.go(reader, "r2", 1.0)
        rt.sleep(0.1)
        mu.lock()
        log.append("writer")
        mu.unlock()
        return log

    assert run(main).main_result == ["r1", "r2", "writer"]
