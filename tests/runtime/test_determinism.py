"""Determinism: a run is a pure function of (program, seed, options)."""

from repro import explore, run
from repro.chan import recv


def _racy_program(rt):
    out = rt.shared("out", ())
    wg = rt.waitgroup()
    for label in ("a", "b", "c"):
        wg.add(1)

        def worker(label=label):
            out.update(lambda seen: seen + (label,))
            wg.done()

        rt.go(worker)
    wg.wait()
    return out.peek()


def test_same_seed_same_trace():
    first = run(_racy_program, seed=7)
    second = run(_racy_program, seed=7)
    assert first.main_result == second.main_result
    kinds1 = [(e.kind, e.gid, e.obj) for e in first.trace]
    kinds2 = [(e.kind, e.gid, e.obj) for e in second.trace]
    assert kinds1 == kinds2


def test_different_seeds_explore_different_interleavings():
    orders = {run(_racy_program, seed=s).main_result for s in range(30)}
    assert len(orders) > 1, "scheduler never varied the interleaving"


def test_select_choice_is_seed_deterministic():
    def main(rt):
        a = rt.make_chan(1)
        b = rt.make_chan(1)
        a.send("a")
        b.send("b")
        index, value, _ok = rt.select(recv(a), recv(b))
        return value

    for seed in range(10):
        assert run(main, seed=seed).main_result == run(main, seed=seed).main_result
    values = {run(main, seed=s).main_result for s in range(30)}
    assert values == {"a", "b"}  # Go's random ready-case choice


def test_explore_sweeps_seeds():
    results = explore(_racy_program, range(5))
    assert len(results) == 5
    assert [r.seed for r in results] == list(range(5))
    assert all(r.status == "ok" for r in results)


def test_preempt_false_still_correct_but_fewer_steps():
    loose = run(_racy_program, seed=3, preempt=True)
    tight = run(_racy_program, seed=3, preempt=False)
    assert sorted(tight.main_result) == sorted(loose.main_result) == ["a", "b", "c"]
    assert tight.steps < loose.steps
