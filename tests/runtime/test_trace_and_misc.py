"""Trace structure, reprs, and small runtime surfaces."""

import pytest

from repro import EventKind, GoPanic, run
from repro.runtime.errors import SchedulerStateError
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import Trace, TraceEvent


def test_trace_records_ordered_steps():
    def main(rt):
        ch = rt.make_chan(1)
        ch.send(1)
        ch.recv()

    result = run(main)
    steps = [e.step for e in result.trace]
    assert steps == sorted(steps)
    kinds = set(result.trace.kinds())
    assert EventKind.CHAN_MAKE in kinds
    assert EventKind.CHAN_SEND in kinds
    assert EventKind.CHAN_RECV in kinds


def test_trace_query_helpers():
    def main(rt):
        mu = rt.mutex()
        mu.lock()
        mu.unlock()

    result = run(main)
    locks = result.trace.of_kind(EventKind.MU_LOCK)
    assert len(locks) == 1
    assert locks[0].gid == 1
    assert result.trace.by_goroutine(1)
    assert len(result.trace) > 0
    assert "mutex.lock" in repr(locks[0])


def test_send_events_carry_sequence_and_sync_info():
    def main(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.send("x"))
        ch.recv()

    result = run(main)
    sends = result.trace.of_kind(EventKind.CHAN_SEND)
    recvs = result.trace.of_kind(EventKind.CHAN_RECV)
    assert sends[0].info["sync"] is True
    assert sends[0].info["seq"] == recvs[0].info["seq"]
    assert "partner" in recvs[0].info


def test_keep_trace_false_skips_recording():
    result = run(lambda rt: rt.make_chan(1).send(1), keep_trace=False)
    assert result.trace is None


def test_trace_listener_sees_live_events():
    seen = []
    trace = Trace()
    trace.subscribe(seen.append)
    event = TraceEvent(step=1, time=0.0, gid=1, kind="x")
    trace.emit(event)
    assert seen == [event]


def test_scheduler_current_outside_run_raises():
    sched = Scheduler()
    with pytest.raises(SchedulerStateError):
        _ = sched.current
    assert sched.current_gid == 0


def test_run_result_repr_mentions_failures():
    leaky = run(lambda rt: (rt.go(lambda: rt.make_chan().recv()), rt.sleep(0.1)))
    assert "leaked=1" in repr(leaky)
    panicky = run(lambda rt: rt.panic("x"))
    assert "panic=" in repr(panicky)


def test_go_panic_str():
    assert str(GoPanic("send on closed channel")) == \
        "panic: send on closed channel"


def test_goroutine_describe_mentions_site_and_reason():
    def main(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.recv(), name="watcher")
        rt.sleep(0.1)

    result = run(main)
    description = result.leaked[0].describe()
    assert "watcher" in description
    assert "chan.recv" in description
    assert ".py:" in description


def test_primitive_reprs():
    def main(rt):
        mu = rt.mutex("m")
        rw = rt.rwmutex("rw")
        wg = rt.waitgroup("w")
        once = rt.once("o")
        ch = rt.make_chan(2, name="c")
        cond = rt.cond(mu, "cv")
        return [repr(x) for x in (mu, rw, wg, once, ch, cond)]

    reprs = run(main).main_result
    assert any("Mutex" in r for r in reprs)
    assert any("cap=2" in r for r in reprs)
    assert any("waiters=0" in r for r in reprs)


def test_runtime_args_passthrough():
    def main(rt, base, scale):
        return base * scale

    assert run(main, args=(6, 7)).main_result == 42
