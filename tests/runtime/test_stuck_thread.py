"""Host-thread leak handling: a goroutine that swallows ``Killed`` must be
surfaced on the RunResult (and warned about), not silently leaked as a
live OS thread."""

import warnings

import pytest

from repro import run
from repro.runtime import goroutine as goroutine_mod


def _stubborn_program(rt):
    """The worker swallows every exception — including the Killed signal the
    scheduler uses to unwind host threads at the end of the run."""
    ch = rt.make_chan(0, name="never")

    def stubborn():
        while True:
            try:
                ch.recv()
            except BaseException:
                continue  # swallows Killed: the host thread can't unwind

    rt.go(stubborn, name="stubborn")
    rt.sleep(0.1)
    return "done"


def test_swallowed_kill_is_recorded_and_warned(monkeypatch):
    monkeypatch.setattr(goroutine_mod, "HOST_JOIN_TIMEOUT", 0.2)
    with pytest.warns(RuntimeWarning, match="did not unwind"):
        result = run(_stubborn_program, drain=False)
    assert result.main_result == "done"
    assert len(result.stuck_host_threads) == 1
    stuck = result.stuck_host_threads[0]
    assert stuck.name == "stubborn"
    assert stuck.stuck_host_thread is True
    assert any("stubborn" in entry
               for entry in result.to_dict()["stuck_host_threads"])


def test_host_join_timeout_run_option():
    """``run(..., host_join_timeout=...)`` bounds teardown waiting per run
    without touching the module-level default — the knob sweep workers use
    so one pathological seed cannot stall a whole sweep."""
    import time

    start = time.monotonic()
    with pytest.warns(RuntimeWarning, match="did not unwind"):
        result = run(_stubborn_program, drain=False, host_join_timeout=0.1)
    elapsed = time.monotonic() - start
    assert result.main_result == "done"
    assert len(result.stuck_host_threads) == 1
    # Far under the interactive default: the per-run option was honored.
    assert elapsed < 3.0
    assert goroutine_mod.HOST_JOIN_TIMEOUT == 5.0


def test_well_behaved_programs_leave_no_stuck_threads():
    def main(rt):
        ch = rt.make_chan(0, name="never")

        def waiter():
            ch.recv()  # killed at end-of-run teardown; unwinds promptly

        rt.go(waiter, name="waiter")
        rt.sleep(0.05)
        return True

    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        result = run(main)
    assert result.stuck_host_threads == []
