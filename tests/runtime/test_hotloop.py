"""The compiled hot path vs its pure-Python twins.

``repro.runtime._hotloop`` exposes one surface with two implementations:
the C extension (MT19937 RNG + the fused per-step drive loop) and the
pure-Python fallbacks that every platform gets.  These tests pin the
equivalences the determinism contract rests on:

* the compiled ``BatchedRandom`` draws the exact ``random.Random(seed)``
  sequence the pure one draws, over every seed shape;
* a traceless run (compiled loop eligible) takes the same steps as a
  traced run of the same seed (pure loop, trace forces it);
* a subprocess with ``REPRO_NO_CEXT=1`` — pure RNG, pure loop — produces
  byte-identical digests, statuses, and step counts.

Where the extension didn't build, the compiled-only tests skip and the
subprocess test still passes trivially (pure vs pure).
"""

import json
import os
import random
import subprocess
import sys
import textwrap

import pytest

from repro import run
from repro.bench import WORKLOADS
from repro.parallel import schedule_digest
from repro.runtime import _hotloop
from repro.runtime.fastrand import BatchedRandom as PyBatchedRandom

needs_compiled = pytest.mark.skipif(
    not _hotloop.HAS_COMPILED,
    reason="compiled hot loop unavailable on this host")

DRAW_NS = [3, 10, 1, 7, 2, 5, 2 ** 20, 2 ** 33 + 7, 100, 2 ** 32, 6,
           2 ** 31 - 1]
SEEDS = [0, 1, 7, 123456789, -5, 2 ** 80 + 13]


@needs_compiled
@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_randrange_matches_stdlib_and_pure(seed):
    compiled = _hotloop.BatchedRandom(seed)
    pure = PyBatchedRandom(seed)
    stdlib = random.Random(seed)
    for n in DRAW_NS * 40:
        expected = stdlib.randrange(n)
        assert compiled.randrange(n) == expected
        assert pure.randrange(n) == expected


@needs_compiled
@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_getrandbits_matches_stdlib(seed):
    compiled = _hotloop.BatchedRandom(seed)
    stdlib = random.Random(seed)
    for bits in [1, 7, 32, 33, 64, 65, 128, 311] * 20:
        assert compiled.getrandbits(bits) == stdlib.getrandbits(bits)


@needs_compiled
def test_compiled_rng_error_parity():
    compiled = _hotloop.BatchedRandom(1)
    pure = PyBatchedRandom(1)
    for bad in (compiled, pure):
        with pytest.raises(ValueError):
            bad.randrange(0)
        with pytest.raises(ValueError):
            bad.getrandbits(-1)


@needs_compiled
def test_scheduler_uses_the_compiled_rng_by_default():
    from repro.runtime.scheduler import Scheduler

    assert type(Scheduler(seed=1).rng) is _hotloop.BatchedRandom


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_traceless_run_matches_traced_run(workload):
    """Compiled loop (traceless) vs pure loop (trace on), in-process.

    A live trace is exactly what disqualifies the compiled loop, so the
    pair exercises both loops on the same seed; steps, status, and the
    main result must agree.
    """
    program = WORKLOADS[workload]
    hot = run(program, seed=11, keep_trace=False)
    pure = run(program, seed=11, keep_trace=True)
    assert hot.status == pure.status
    assert hot.steps == pure.steps
    assert hot.main_result == pure.main_result


_SUBPROCESS_SCRIPT = textwrap.dedent("""
    import json, sys
    from repro import run
    from repro.bench import WORKLOADS
    from repro.parallel import schedule_digest
    from repro.runtime import _hotloop

    rows = {}
    for name in sorted(WORKLOADS):
        traced = run(WORKLOADS[name], seed=11, keep_trace=True)
        fast = run(WORKLOADS[name], seed=11, keep_trace=False)
        rows[name] = {
            "digest": schedule_digest(traced),
            "status": fast.status,
            "steps": fast.steps,
        }
    print(json.dumps({"compiled": _hotloop.HAS_COMPILED, "rows": rows}))
""")


def test_pure_python_subprocess_matches_compiled_process():
    """REPRO_NO_CEXT=1 end to end: pure RNG + pure loop, same bytes."""
    env = dict(os.environ, REPRO_NO_CEXT="1",
               PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["compiled"] is False
    for name, row in payload["rows"].items():
        traced = run(WORKLOADS[name], seed=11, keep_trace=True)
        fast = run(WORKLOADS[name], seed=11, keep_trace=False)
        assert row["digest"] == schedule_digest(traced), name
        assert row["status"] == fast.status, name
        assert row["steps"] == fast.steps, name


@needs_compiled
def test_hot_loop_disabled_by_observers_without_changing_results():
    """Hooks force the pure loop; the schedule must not notice."""
    program = WORKLOADS["spin"]
    plain = run(program, seed=4, keep_trace=False)
    seen = []

    class StepHook:
        def attach(self, rt):
            rt.sched.on_step = lambda step, depth, gid: seen.append(gid)

    hooked = run(program, seed=4, keep_trace=False, observers=[StepHook()])
    assert hooked.status == plain.status
    assert hooked.steps == plain.steps
    assert len(seen) == hooked.steps


# ---------------------------------------------------------------------------
# Array-backed vector clocks (shared by detect.race and predict.hb)
# ---------------------------------------------------------------------------


def test_vectorclock_import_locations_are_one_class():
    from repro.detect.vectorclock import VectorClock as DetectVC
    from repro.runtime._hotloop import VectorClock as HotVC

    assert DetectVC is HotVC


def test_vectorclock_zero_components_are_absent_components():
    from repro.detect.vectorclock import VectorClock

    assert VectorClock({1: 0, 2: 3}) == VectorClock({2: 3})
    assert hash(VectorClock({1: 0, 2: 3})) == hash(VectorClock({2: 3}))
    assert list(VectorClock({3: 1, 1: 2, 2: 0}).items()) == [(1, 2), (3, 1)]


def test_vectorclock_join_and_ordering():
    from repro.detect.vectorclock import VectorClock

    a = VectorClock({1: 2, 2: 1})
    b = VectorClock({2: 4, 5: 1})
    a.join(b)
    assert list(a.items()) == [(1, 2), (2, 4), (5, 1)]
    assert b <= a
    assert not a <= b
    c = VectorClock({1: 1})
    assert c <= a
    assert c.concurrent_with(b)
    assert a.dominates_epoch(b.epoch(5))
    assert not b.dominates_epoch(a.epoch(1))
