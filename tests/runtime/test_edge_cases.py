"""Cross-cutting edge cases that don't fit one primitive's file."""

import pytest

from repro import run
from repro.chan import recv, send
from repro.study import usage_dynamic


def test_select_same_channel_in_two_recv_cases():
    def main(rt):
        ch = rt.make_chan(1)
        ch.send("only")
        index, value, _ok = rt.select(recv(ch), recv(ch))
        return index in (0, 1), value

    assert run(main).main_result == (True, "only")


def test_select_send_and_recv_on_same_channel_pairs_with_peer():
    """A select offering both directions on one unbuffered channel must
    not rendezvous with itself."""

    def main(rt):
        ch = rt.make_chan()
        outcome = rt.shared("outcome", None)

        def peer():
            rt.sleep(0.2)
            outcome.store(ch.recv())

        rt.go(peer)
        index, _v, _ok = rt.select(send(ch, "payload"), recv(ch))
        rt.sleep(0.2)
        return index, outcome.peek()

    for seed in range(8):
        index, received = run(main, seed=seed).main_result
        assert index == 0          # only the send case can complete
        assert received == "payload"


def test_cond_with_rwmutex_write_locker():
    def main(rt):
        rw = rt.rwmutex()
        cond = rt.cond(rw)
        ready = rt.shared("ready", False)
        out = rt.shared("out", None)

        def waiter():
            rw.lock()
            while not ready.load():
                cond.wait()
            out.store("woke")
            rw.unlock()

        rt.go(waiter)
        rt.sleep(0.2)
        rw.lock()
        ready.store(True)
        cond.signal()
        rw.unlock()
        rt.sleep(0.2)
        return out.peek()

    assert run(main).main_result == "woke"


def test_nested_goroutine_creation():
    def main(rt):
        depth = rt.atomic_int(0)

        def spawn(level):
            depth.add(1)
            if level < 4:
                rt.go(spawn, level + 1)

        rt.go(spawn, 1)
        rt.sleep(0.5)
        return depth.load()

    assert run(main).main_result == 4


def test_goroutine_spawning_from_drain_phase():
    """Goroutines created after main exits (by drained goroutines) still
    run to completion."""

    def main(rt):
        log = rt.shared("log", ())

        def parent():
            rt.sleep(0.5)
            rt.go(lambda: log.update(lambda t: t + ("child",)))
            log.update(lambda t: t + ("parent",))

        rt.go(parent)
        return log  # main returns immediately

    result = run(main)
    assert result.status == "ok"
    assert set(result.main_result.peek()) == {"parent", "child"}


def test_usage_dynamic_measure_and_comparison():
    def go_style(rt):
        wg = rt.waitgroup()
        for i in range(4):
            wg.add(1)

            def worker():
                rt.sleep(0.2)
                wg.done()

            rt.go(worker)
        wg.wait()
        rt.sleep(0.8)

    def c_style(rt):
        rt.sleep(1.0)

    go_stats = usage_dynamic.measure(go_style, "go", seed=1)
    c_stats = usage_dynamic.measure(c_style, "c", seed=1)
    comparison = usage_dynamic.Comparison("w", go_stats, c_stats)
    assert comparison.goroutine_thread_ratio == 5.0
    assert "5.0x" in str(comparison)
    assert go_stats.normalized_lifetime_pct < 100.0
    assert "goroutines" in str(go_stats)


def test_usage_dynamic_measure_rejects_failed_runs():
    def deadlocks(rt):
        rt.make_chan().recv()

    with pytest.raises(RuntimeError):
        usage_dynamic.measure(deadlocks, "bad")


def test_external_hang_counts_as_stuck_for_leak_reports():
    from repro.detect import leak_reports

    def main(rt):
        rt.external_wait("socket read")

    result = run(main)
    assert result.status == "hang"
    reports = leak_reports(result)
    assert len(reports) == 1
    assert "external" in reports[0].reason


def test_zero_duration_sleep_is_a_yield():
    def main(rt):
        rt.sleep(0)
        return rt.now()

    assert run(main).main_result == 0.0


def test_many_goroutines_scale():
    def main(rt):
        wg = rt.waitgroup()
        total = rt.atomic_int(0)
        for i in range(100):
            wg.add(1)

            def worker(i=i):
                total.add(i)
                wg.done()

            rt.go(worker)
        wg.wait()
        return total.load()

    assert run(main, seed=4).main_result == sum(range(100))


def test_no_host_threads_leak_across_runs():
    """Every goroutine thread must be joined at run teardown — even for
    deadlocked, leaked, and panicked runs."""
    import threading

    def leaky(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.recv(), name="stuck")
        rt.sleep(0.1)

    def deadlocked(rt):
        rt.make_chan().recv()

    def panicky(rt):
        rt.go(lambda: rt.panic("boom"))
        rt.sleep(1.0)

    baseline = threading.active_count()
    for seed in range(5):
        run(leaky, seed=seed)
        run(deadlocked, seed=seed)
        run(panicky, seed=seed)
    assert threading.active_count() <= baseline + 1


def test_close_releases_select_senders_with_panic():
    def main(rt):
        ch = rt.make_chan()

        def selector():
            rt.select(send(ch, "x"))  # parks as a select send waiter

        rt.go(selector)
        rt.sleep(0.2)
        ch.close()
        rt.sleep(0.2)

    result = run(main)
    assert result.status == "panic"
    assert "send on closed channel" in str(result.panic_value)


def test_recv_ok_from_main_result_channel_patterns():
    """try_recv's third flag distinguishes empty from closed (the pattern
    several tests and apps rely on)."""

    def main(rt):
        ch = rt.make_chan(1)
        empty = ch.try_recv()
        ch.close()
        closed = ch.try_recv()
        return empty[2], closed[1], closed[2]

    received_on_empty, ok_on_closed, received_on_closed = run(main).main_result
    assert received_on_empty is False
    assert ok_on_closed is False and received_on_closed is True
