"""Scheduler fast path: batched RNG equivalence, traceless runs, site cache.

The fast path's whole contract is "faster, not different": the batched RNG
must draw bit-for-bit what ``random.Random`` would, and a ``keep_trace=False``
run must take exactly the schedule a traced run takes.
"""

import random

import pytest

from repro import run
from repro.runtime.fastrand import BatchedRandom
from repro.runtime.scheduler import _SITE_CACHE_MAX, _site_cache, short_site


def _pingpong(rt):
    ping = rt.make_chan()
    pong = rt.make_chan()

    def echo():
        for _ in range(20):
            ping.recv()
            pong.send(None)

    rt.go(echo)
    for _ in range(20):
        ping.send(None)
        pong.recv()
    return "done"


# A draw schedule mixing the shapes the scheduler produces (small runnable
# sets), powers of two (no rejection), and multi-word ranges (> 2**32).
_DRAW_NS = [3, 10, 1, 7, 2, 5, 2**20, 2**33 + 7, 100, 2**32, 6, 2**31 - 1]


@pytest.mark.parametrize("seed", [0, 1, 7, 123456789])
def test_batched_randrange_matches_random_random(seed):
    reference = random.Random(seed)
    batched = BatchedRandom(seed)
    for i in range(600):
        n = _DRAW_NS[i % len(_DRAW_NS)]
        assert batched.randrange(n) == reference.randrange(n), (seed, i, n)


@pytest.mark.parametrize("seed", [0, 42])
def test_batched_getrandbits_matches_random_random(seed):
    reference = random.Random(seed)
    batched = BatchedRandom(seed)
    for k in [1, 5, 31, 32, 33, 64, 65, 128, 32, 1]:
        assert batched.getrandbits(k) == reference.getrandbits(k), (seed, k)


def test_batched_random_edge_cases():
    batched = BatchedRandom(0)
    assert batched.getrandbits(0) == 0
    with pytest.raises(ValueError):
        batched.getrandbits(-1)
    with pytest.raises(ValueError):
        batched.randrange(0)


def test_traceless_run_takes_the_same_schedule():
    traced = run(_pingpong, seed=3)
    fast = run(_pingpong, seed=3, keep_trace=False)
    assert traced.status == fast.status == "ok"
    assert traced.main_result == fast.main_result == "done"
    # Identical step count under the same seed means the RNG consumed the
    # same draws: skipping trace-event allocation did not move the schedule.
    assert traced.steps == fast.steps
    assert traced.trace is not None and len(list(traced.trace)) > 0
    assert fast.trace is None or not list(fast.trace)


def test_site_cache_is_bounded():
    for i in range(_SITE_CACHE_MAX + 512):
        short_site(f"/tmp/sweeps/prog_{i}.py", i)
    assert len(_site_cache) <= _SITE_CACHE_MAX
    # Formatting: last two path segments plus the line number.
    assert short_site("/a/b/c/file.py", 7) == "c/file.py:7"
    # Interning still works after eviction churn.
    first = short_site("/x/y/mod.py", 1)
    assert short_site("/x/y/mod.py", 1) is first
