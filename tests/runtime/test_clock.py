"""Unit tests for the virtual clock and timer heap."""

from repro.runtime.clock import VirtualClock


def test_starts_at_zero():
    clock = VirtualClock()
    assert clock.now == 0.0
    assert clock.next_deadline() is None
    assert not clock.has_pending()


def test_call_after_orders_by_deadline():
    clock = VirtualClock()
    fired = []
    clock.call_after(2.0, lambda: fired.append("b"))
    clock.call_after(1.0, lambda: fired.append("a"))
    assert clock.next_deadline() == 1.0
    for handle in clock.advance_to_next():
        handle.callback()
    assert fired == ["a"]
    assert clock.now == 1.0
    for handle in clock.advance_to_next():
        handle.callback()
    assert fired == ["a", "b"]
    assert clock.now == 2.0


def test_simultaneous_deadlines_fire_in_creation_order():
    clock = VirtualClock()
    fired = []
    clock.call_after(1.0, lambda: fired.append(1))
    clock.call_after(1.0, lambda: fired.append(2))
    handles = clock.advance_to_next()
    for handle in handles:
        handle.callback()
    assert fired == [1, 2]


def test_cancel_prevents_firing():
    clock = VirtualClock()
    fired = []
    handle = clock.call_after(1.0, lambda: fired.append("x"))
    assert handle.cancel() is True
    assert handle.cancel() is False  # already cancelled
    assert clock.advance_to_next() == []
    assert fired == []


def test_cancelled_head_does_not_mask_later_timer():
    clock = VirtualClock()
    fired = []
    head = clock.call_after(1.0, lambda: fired.append("head"))
    clock.call_after(2.0, lambda: fired.append("tail"))
    head.cancel()
    assert clock.next_deadline() == 2.0
    for handle in clock.advance_to_next():
        handle.callback()
    assert fired == ["tail"]


def test_past_deadline_clamps_to_now():
    clock = VirtualClock()
    clock.advance(5.0)
    handle = clock.call_at(1.0, lambda: None)
    assert handle.deadline == 5.0


def test_advance_pops_everything_due():
    clock = VirtualClock()
    fired = []
    for delay in (0.5, 1.0, 1.5, 3.0):
        clock.call_after(delay, lambda d=delay: fired.append(d))
    for handle in clock.advance(2.0):
        handle.callback()
    assert fired == [0.5, 1.0, 1.5]
    assert clock.now == 2.0


def test_fired_timer_cannot_be_cancelled():
    clock = VirtualClock()
    handle = clock.call_after(1.0, lambda: None)
    clock.advance_to_next()
    assert handle.cancel() is False


def test_negative_delay_is_clamped():
    clock = VirtualClock()
    fired = []
    clock.call_after(-3.0, lambda: fired.append(True))
    for handle in clock.advance(0.0):
        handle.callback()
    assert fired == [True]
