"""Budget exhaustion: step limits, time limits, drain budgets, hangs.

These are the runner's backstops — each maps one kind of runaway program to
a distinct RunResult classification instead of wedging the harness.
"""

import pytest

from repro import run
from repro.runtime.errors import StepLimitExceeded


def _livelock(rt):
    """Two goroutines yielding forever: never blocked, never done."""

    def spin():
        while True:
            rt.gosched()

    rt.go(spin, name="spin-a")
    rt.go(spin, name="spin-b")
    spin()


def test_max_steps_classifies_livelock_as_steps():
    result = run(_livelock, max_steps=500)
    assert result.status == "steps"
    assert result.steps >= 500
    assert result.panic_value is None


def test_max_steps_not_charged_for_quiet_runs():
    def main(rt):
        rt.sleep(1.0)
        return 42

    result = run(main, max_steps=500)
    assert result.status == "ok"
    assert result.main_result == 42
    assert result.steps < 500


def test_time_limit_cuts_off_a_server_loop():
    """A forever-server crosses the observation window: status 'timeout',
    and whatever is blocked right then is reported (sleepers excluded)."""

    def main(rt):
        ch = rt.make_chan(0, name="requests")

        def handler():
            while True:
                ch.recv()

        rt.go(handler, name="handler")
        while True:
            rt.sleep(10.0)

    result = run(main, time_limit=120.0)
    assert result.status == "timeout"
    assert result.end_time >= 120.0
    leaked_names = [g.name for g in result.leaked]
    assert "handler" in leaked_names        # blocked on recv forever
    assert "main" not in leaked_names       # plain sleeper: not a suspect


def test_external_wait_classifies_as_hang_not_deadlock():
    """Blocking on a modelled external resource is the built-in detector's
    blind spot: the run is stuck, but it is not a detectable deadlock."""

    def main(rt):
        rt.external_wait("network: etcd peer")

    result = run(main)
    assert result.status == "hang"
    assert result.deadlock is None
    assert any(g.external for g in result.leaked)


def test_pure_deadlock_still_classified_as_deadlock():
    def main(rt):
        rt.make_chan(0, name="never").recv()

    result = run(main)
    assert result.status == "deadlock"
    assert result.deadlock is not None


def test_drain_budget_bounds_post_main_work():
    """An immortal background spinner cannot wedge the drain phase: the
    budget expires and the goroutine is reported as abandoned."""

    def main(rt):
        def spin():
            while True:
                rt.gosched()

        rt.go(spin, name="immortal")
        return "done"

    result = run(main, drain_budget=200)
    assert result.status == "ok"
    assert result.main_result == "done"
    assert "immortal" in [g.name for g in result.abandoned]


def test_drain_disabled_reports_blocked_goroutines_at_exit():
    def main(rt):
        ch = rt.make_chan(0, name="never")

        def waiter():
            ch.recv()

        rt.go(waiter, name="waiter")
        rt.sleep(0.1)

    drained = run(main, drain=True)
    not_drained = run(main, drain=False)
    assert drained.status == "leak"
    assert not_drained.status == "leak"
    assert "waiter" in [g.name for g in not_drained.leaked]


def test_step_limit_exceeded_raises_from_check():
    from repro.runtime.scheduler import Scheduler

    sched = Scheduler(seed=0, max_steps=10)
    sched._steps = 11
    with pytest.raises(StepLimitExceeded, match="seed=0"):
        sched.check_step_limit()


def test_budget_statuses_survive_to_dict():
    result = run(_livelock, max_steps=300)
    data = result.to_dict()
    assert data["status"] == "steps"
    assert data["steps"] >= 300
