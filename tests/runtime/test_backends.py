"""Goroutine host backends: resolution, fallback warnings, cross-backend
schedule equivalence.

The backend only changes *how* goroutines are hosted (continuations vs OS
threads); every scheduling decision comes from the same seeded RNG either
way, so all backends must produce bit-identical schedule fingerprints.
"""

import warnings

import pytest

from repro import run
from repro.parallel import schedule_digest
from repro.runtime import scheduler as scheduler_mod
from repro.runtime.goroutine import HAS_GREENLET, has_tasklet
from repro.runtime.scheduler import BACKENDS, resolve_backend


def _program(rt):
    ch = rt.make_chan(1)

    def worker(i):
        ch.send(i)

    for i in range(3):
        rt.go(worker, i)
    return tuple(ch.recv() for _ in range(3))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown goroutine backend"):
        run(_program, backend="fiber")


def test_coroutine_is_the_default_and_resolves_to_a_continuation_vehicle():
    result = run(_program, seed=3)
    assert result.backend in ("greenlet", "tasklet", "generator")
    assert result.backend == resolve_backend("coroutine")
    # The compat mode is still reachable and reports itself.
    assert run(_program, seed=3, backend="thread").backend == "thread"


def test_backend_surfaced_on_result_and_summary():
    from repro.parallel import summarize_result

    result = run(_program, seed=1, backend="thread")
    assert result.backend == "thread"
    assert result.to_dict()["backend"] == "thread"
    assert summarize_result(result).backend == "thread"


@pytest.mark.skipif(HAS_GREENLET,
                    reason="greenlet installed; fallback path unreachable")
def test_missing_greenlet_falls_back_to_continuations_with_warning(monkeypatch):
    monkeypatch.setattr(scheduler_mod, "_fallback_warned", set())
    with pytest.warns(RuntimeWarning, match="falling back to the"):
        fallback = run(_program, seed=5, backend="greenlet")
    assert fallback.backend in ("tasklet", "generator")
    thread = run(_program, seed=5, backend="thread")
    assert fallback.status == thread.status
    assert fallback.main_result == thread.main_result
    assert schedule_digest(fallback) == schedule_digest(thread)
    # The warning fires once per process, not once per run.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        run(_program, seed=5, backend="greenlet")


def test_fallback_warns_once_per_process_across_schedulers(monkeypatch):
    """Many Scheduler constructions (a sweep) -> at most one warning."""
    if HAS_GREENLET and has_tasklet():
        pytest.skip("every vehicle available; no fallback to exercise")
    requested = "greenlet" if not HAS_GREENLET else "tasklet"
    monkeypatch.setattr(scheduler_mod, "_fallback_warned", set())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        for seed in range(4):
            run(_program, seed=seed, backend=requested)
    fallback_warnings = [w for w in caught
                         if "falling back to the" in str(w.message)]
    assert len(fallback_warnings) == 1


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_backends_produce_identical_schedules(seed):
    available = ["thread", "coroutine", "generator"]
    if HAS_GREENLET:
        available.append("greenlet")
    if has_tasklet():
        available.append("tasklet")
    results = {b: run(_program, seed=seed, backend=b) for b in available}
    reference = results["thread"]
    for backend, result in results.items():
        assert result.status == reference.status, backend
        assert result.steps == reference.steps, backend
        assert result.main_result == reference.main_result, backend
        assert schedule_digest(result) == schedule_digest(reference), backend


def test_backends_tuple_names_every_vehicle():
    assert BACKENDS == ("coroutine", "thread", "greenlet", "tasklet",
                        "generator")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for name in BACKENDS:
            assert resolve_backend(name) in ("thread", "greenlet", "tasklet",
                                             "generator")
