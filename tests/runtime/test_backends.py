"""Goroutine host backends: resolution, greenlet fallback, cross-backend
schedule equivalence.

The backend only changes *how* goroutines are hosted (OS threads vs
userspace greenlets); every scheduling decision comes from the same seeded
RNG either way, so both backends must produce bit-identical schedule
fingerprints.
"""

import warnings

import pytest

from repro import run
from repro.parallel import schedule_digest
from repro.runtime import scheduler as scheduler_mod
from repro.runtime.goroutine import HAS_GREENLET


def _program(rt):
    ch = rt.make_chan(1)

    def worker(i):
        ch.send(i)

    for i in range(3):
        rt.go(worker, i)
    return tuple(ch.recv() for _ in range(3))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown goroutine backend"):
        run(_program, backend="fiber")


@pytest.mark.skipif(HAS_GREENLET,
                    reason="greenlet installed; fallback path unreachable")
def test_missing_greenlet_falls_back_to_threads_with_warning(monkeypatch):
    monkeypatch.setattr(scheduler_mod, "_warned_no_greenlet", False)
    with pytest.warns(RuntimeWarning,
                      match="falling back to the thread backend"):
        fallback = run(_program, seed=5, backend="greenlet")
    thread = run(_program, seed=5, backend="thread")
    assert fallback.status == thread.status
    assert fallback.main_result == thread.main_result
    assert schedule_digest(fallback) == schedule_digest(thread)
    # The warning fires once per process, not once per run.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        run(_program, seed=5, backend="greenlet")


@pytest.mark.skipif(not HAS_GREENLET,
                    reason="needs the optional greenlet package")
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_backends_produce_identical_schedules(seed):
    thread = run(_program, seed=seed, backend="thread")
    green = run(_program, seed=seed, backend="greenlet")
    assert thread.status == green.status
    assert thread.steps == green.steps
    assert thread.main_result == green.main_result
    assert schedule_digest(thread) == schedule_digest(green)
