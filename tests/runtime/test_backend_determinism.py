"""Cross-backend schedule-digest parity: the determinism contract.

The coroutine-core scheduler promises that an identical ``(seed, plan)``
produces byte-identical schedules no matter which vehicle hosts the
goroutines (OS threads, greenlet, the tasklet extension, generators) and
no matter whether a sweep ran in-process or across worker processes.
This suite pins that contract over the benchmark workloads and a full
repro.net crash-recovery scenario; ``test_hotloop.py`` pins the
compiled-vs-pure half of the same contract.
"""

from functools import partial

import pytest

from repro import run
from repro.bench import WORKLOADS
from repro.parallel import schedule_digest, sweep_seeds
from repro.runtime.goroutine import HAS_GREENLET, has_tasklet
from repro.runtime.scheduler import resolve_backend


def _available_backends():
    backends = ["thread", "coroutine", "generator"]
    if HAS_GREENLET:
        backends.append("greenlet")
    if has_tasklet():
        backends.append("tasklet")
    return backends


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [0, 7])
def test_bench_workloads_digest_parity_across_backends(workload, seed):
    program = WORKLOADS[workload]
    reference = run(program, seed=seed, keep_trace=True, backend="thread")
    ref_digest = schedule_digest(reference)
    assert ref_digest is not None
    for backend in _available_backends():
        result = run(program, seed=seed, keep_trace=True, backend=backend)
        assert result.status == reference.status, backend
        assert result.steps == reference.steps, backend
        assert schedule_digest(result) == ref_digest, backend


@pytest.mark.parametrize("backend", ["thread", "coroutine"])
def test_sweep_jobs_parity_per_backend(backend):
    """jobs=1 vs jobs=N: identical summaries, whatever hosts the steps."""
    program = WORKLOADS["pingpong"]
    seeds = list(range(8))
    serial = sweep_seeds(program, seeds, jobs=1, keep_trace=True,
                         backend=backend)
    parallel = sweep_seeds(program, seeds, jobs=2, keep_trace=True,
                           backend=backend)
    assert serial == parallel
    expected = resolve_backend(backend)
    assert all(s.backend == expected for s in serial)


def test_sweep_digests_agree_across_backends():
    """The same sweep on thread vs coroutine: same interleavings per seed.

    Whole summaries can't be compared across backends — they honestly
    record which vehicle ran — so compare the fields the schedule
    determines: status, steps, and the trace digest.
    """
    program = WORKLOADS["mutex"]
    seeds = list(range(6))
    by_backend = {
        backend: sweep_seeds(program, seeds, jobs=1, keep_trace=True,
                             backend=backend)
        for backend in _available_backends()
    }
    reference = by_backend["thread"]
    for backend, summaries in by_backend.items():
        for ref, got in zip(reference, summaries):
            assert got.status == ref.status, backend
            assert got.steps == ref.steps, backend
            assert got.trace_digest == ref.trace_digest, backend


def _corpus_kernels():
    from repro.bugs import registry

    return sorted(registry.all_kernels(), key=lambda k: k.meta.kernel_id)


@pytest.mark.parametrize("kernel", _corpus_kernels(),
                         ids=lambda k: k.meta.kernel_id)
def test_every_corpus_kernel_digest_parity_thread_vs_coroutine(kernel):
    """All 54+ bug kernels: same schedule, same verdict, any vehicle."""
    for variant in (kernel.buggy, kernel.fixed):
        kwargs = dict(kernel.run_kwargs)
        kwargs["keep_trace"] = True
        thread = run(variant, seed=3, backend="thread", **kwargs)
        coro = run(variant, seed=3, backend="coroutine", **kwargs)
        assert coro.status == thread.status
        assert coro.steps == thread.steps
        assert coro.main_result == thread.main_result
        assert schedule_digest(coro) == schedule_digest(thread)


def _app_scenarios():
    from repro.inject import scenarios

    return sorted(scenarios.all_scenarios(), key=lambda row: row[0])


@pytest.mark.parametrize("scenario", _app_scenarios(),
                         ids=lambda row: row[0])
def test_miniapp_scenarios_digest_parity_thread_vs_coroutine(scenario):
    """The six mini-app workloads replay identically on every vehicle."""
    _, program, base_kwargs = scenario
    kwargs = dict(base_kwargs)
    kwargs["keep_trace"] = True
    thread = run(program, seed=1, backend="thread", **kwargs)
    coro = run(program, seed=1, backend="coroutine", **kwargs)
    assert coro.status == thread.status
    assert coro.steps == thread.steps
    assert schedule_digest(coro) == schedule_digest(thread)


def test_net_recovery_scenario_digest_parity_across_backends():
    """A crashing, electing, durable cluster replays identically everywhere.

    The injector disables the compiled hot loop, timers fire, nodes crash
    and restart under supervision — the heaviest machinery the simulator
    has, and the schedule still may not depend on the vehicle.
    """
    from repro.inject import plans
    from repro.inject.scenarios import net_etcd_recovery_scenario

    program = partial(net_etcd_recovery_scenario, size=3)
    results = {
        backend: run(program, seed=2, keep_trace=True, backend=backend,
                     inject=plans.crash_restart(delay=0.3),
                     max_steps=600_000)
        for backend in _available_backends()
    }
    reference = results["thread"]
    ref_digest = schedule_digest(reference)
    assert ref_digest is not None
    for backend, result in results.items():
        assert result.status == reference.status, backend
        assert result.steps == reference.steps, backend
        assert result.main_result == reference.main_result, backend
        assert len(result.injected) == len(reference.injected), backend
        assert schedule_digest(result) == ref_digest, backend
