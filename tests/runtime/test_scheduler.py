"""Scheduler behavior: statuses, goroutine lifecycle, step limits."""

import pytest

from repro import GoPanic, run
from repro.runtime.goroutine import GState


def test_empty_main_completes():
    result = run(lambda rt: 42)
    assert result.status == "ok"
    assert result.main_result == 42
    assert result.leak_count == 0


def test_goroutines_run_and_finish():
    def main(rt):
        done = rt.atomic_int(0)
        for _ in range(5):
            rt.go(lambda: done.add(1))
        rt.sleep(0.1)
        return done.load()

    result = run(main, seed=1)
    assert result.status == "ok"
    assert result.main_result == 5
    assert len(result.goroutines) == 6  # main + 5


def test_global_deadlock_reported():
    def main(rt):
        rt.make_chan().recv()

    result = run(main)
    assert result.status == "deadlock"
    assert result.deadlock is not None
    assert "deadlock" in str(result.deadlock)
    assert any("chan.recv" in desc for desc in result.deadlock.blocked)


def test_leaked_goroutine_reported():
    def main(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.recv())
        rt.sleep(0.1)

    result = run(main)
    assert result.status == "leak"
    assert result.leak_count == 1
    assert result.leaked[0].block_reason.startswith("chan.recv")


def test_panic_aborts_run():
    def main(rt):
        rt.panic("boom")

    result = run(main)
    assert result.status == "panic"
    assert isinstance(result.panic_value, GoPanic)
    assert result.panic_value.value == "boom"


def test_background_panic_aborts_whole_program():
    def main(rt):
        rt.go(lambda: rt.panic("child blew up"))
        rt.sleep(10.0)
        return "never"

    result = run(main)
    assert result.status == "panic"
    assert result.main_result is None


def test_host_exception_is_treated_as_panic():
    def main(rt):
        raise ValueError("host bug")

    result = run(main)
    assert result.status == "panic"
    assert isinstance(result.panic_value, ValueError)


def test_external_wait_yields_hang_not_deadlock():
    def main(rt):
        rt.external_wait("network read")

    result = run(main)
    assert result.status == "hang"
    assert result.deadlock is None


def test_external_wait_with_duration_completes():
    def main(rt):
        rt.external_wait("disk io", duration=0.5)
        return rt.now()

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == pytest.approx(0.5)


def test_time_limit_yields_timeout_status():
    def main(rt):
        stuck = rt.make_chan()

        def heartbeat():
            for _ in range(100):
                rt.sleep(1.0)

        rt.go(heartbeat)
        stuck.recv()  # blocks forever while heartbeat keeps the app alive

    result = run(main, time_limit=5.0)
    assert result.status == "timeout"
    # The stuck main is a leak suspect; the sleeper is not.
    reasons = [g.block_reason for g in result.leaked]
    assert reasons and all(r.startswith("chan.recv") for r in reasons)


def test_sleep_advances_virtual_clock_only():
    def main(rt):
        rt.sleep(3600.0)
        return rt.now()

    result = run(main)
    assert result.main_result == pytest.approx(3600.0)
    assert result.end_time >= 3600.0


def test_step_budget_catches_livelock():
    def main(rt):
        while True:
            rt.gosched()

    result = run(main, max_steps=2000)
    assert result.status == "steps"


def test_abandoned_runnable_goroutines_are_not_leaks():
    def main(rt):
        def spinner():
            while True:
                rt.gosched()

        rt.go(spinner)
        return "done"

    result = run(main, drain_budget=500)
    assert result.status == "ok"
    assert result.abandoned and not result.leaked


def test_num_goroutine_and_gid():
    def main(rt):
        assert rt.gid() == 1
        before = rt.num_goroutine()
        ch = rt.make_chan()
        rt.go(lambda: ch.recv())
        rt.gosched()
        during = rt.num_goroutine()
        ch.send(None)
        return (before, during)

    result = run(main)
    assert result.main_result == (1, 2)


def test_goroutine_names_and_sites_recorded():
    def main(rt):
        rt.go(lambda: None, name="worker-a")
        rt.sleep(0.01)

    result = run(main)
    names = [g.name for g in result.goroutines]
    assert "worker-a" in names
    worker = next(g for g in result.goroutines if g.name == "worker-a")
    assert worker.creation_site and ":" in worker.creation_site
    assert worker.anonymous  # a lambda


def test_drain_lets_sleepers_finish():
    def main(rt):
        flag = rt.shared("flag", False)

        def late():
            rt.sleep(5.0)
            flag.store(True)

        rt.go(late)
        return flag  # main exits immediately

    result = run(main)
    assert result.status == "ok"
    assert result.main_result.peek() is True
