"""Compiled channel/select/sync fast ops vs the pure primitives.

``repro.runtime._ext._hotloop`` executes channel send/recv, buffered try
ops, ``select``, and Mutex/RWMutex acquire/release inline in C whenever
nothing observable differs — no live trace consumer, no fault injector,
and a real goroutine holding the token.  Everything else returns
``NotImplemented`` and the pure primitive runs instead.  These tests pin
the contract from both sides:

* engaged runs (traceless, compiled) take byte-for-byte the same
  schedules — steps, statuses, results, RNG draws — as the same seeds
  under :class:`repro.runtime._hotloop.force_pure`;
* every disqualifier (kept trace, subscribed listener, fault injector)
  actually bails the ops out, visibly in ``fastops_stats``, without
  changing the schedule;
* error paths (send on closed, unlock of unlocked, select on a closed
  send case) panic identically in both modes;
* a ``REPRO_NO_CEXT=1`` subprocess — no extension at all — reproduces
  the compiled process's digests and step counts;
* the whole corpus, the mini-apps, and a crash-recovery cluster replay
  identically compiled vs pure.

Where the extension didn't build, the engagement tests skip and the
parity tests still pass trivially (pure vs pure).
"""

import json
import os
import subprocess
import sys
import textwrap
from functools import partial

import pytest

from repro import run
from repro.bench import CHANNEL_WORKLOADS, WORKLOADS
from repro.inject import FaultPlan
from repro.parallel import schedule_digest
from repro.runtime._hotloop import force_pure, get_fastops

needs_fastops = pytest.mark.skipif(
    get_fastops() is None,
    reason="compiled fast ops unavailable on this host")

ALL_WORKLOADS = {**WORKLOADS, **CHANNEL_WORKLOADS}

#: Which stats counters each channel-heavy cell must drive when engaged.
EXPECTED_OPS = {
    "pingpong_heavy": ("send", "recv"),
    "select_fanin_heavy": ("select", "send"),
    "mutex_heavy": ("mutex",),
}


def _reset_stats():
    fast = get_fastops()
    if fast is not None:
        fast.fastops_stats(True)


def _stats():
    fast = get_fastops()
    return fast.fastops_stats(True)


def _signature(result):
    return result.status, result.steps, result.main_result


# ---------------------------------------------------------------------------
# Engaged vs forced-pure parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(ALL_WORKLOADS))
@pytest.mark.parametrize("seed", [0, 7])
def test_traceless_run_matches_forced_pure(workload, seed):
    program = ALL_WORKLOADS[workload]
    engaged = run(program, seed=seed, keep_trace=False)
    with force_pure():
        pure = run(program, seed=seed, keep_trace=False)
    assert _signature(engaged) == _signature(pure)


@needs_fastops
@pytest.mark.parametrize("workload", sorted(EXPECTED_OPS))
def test_channel_cells_actually_engage(workload):
    _reset_stats()
    result = run(ALL_WORKLOADS[workload], seed=1, keep_trace=False)
    assert result.status == "ok"
    stats = _stats()
    for op in EXPECTED_OPS[workload]:
        assert stats["engaged"][op] > 0, (workload, op, stats)


@needs_fastops
@pytest.mark.parametrize("workload", sorted(EXPECTED_OPS))
def test_forced_pure_run_reports_compiled_false(workload):
    engaged = run(ALL_WORKLOADS[workload], seed=1, keep_trace=False)
    assert engaged.compiled is True
    with force_pure():
        pure = run(ALL_WORKLOADS[workload], seed=1, keep_trace=False)
    assert pure.compiled is False


@pytest.mark.parametrize("workload", sorted(CHANNEL_WORKLOADS))
def test_traced_digest_identical_compiled_process_vs_forced_pure(workload):
    program = CHANNEL_WORKLOADS[workload]
    traced = run(program, seed=5, keep_trace=True)
    with force_pure():
        reference = run(program, seed=5, keep_trace=True)
    assert schedule_digest(traced) == schedule_digest(reference)
    assert traced.steps == reference.steps


# ---------------------------------------------------------------------------
# Bail-out paths: every disqualifier defers to the pure primitive
# ---------------------------------------------------------------------------


@needs_fastops
def test_kept_trace_bails_every_op():
    _reset_stats()
    traced = run(CHANNEL_WORKLOADS["pingpong_heavy"], seed=1, keep_trace=True)
    stats = _stats()
    assert sum(stats["engaged"].values()) == 0, stats
    assert stats["bailed"]["send"] > 0
    assert stats["bailed"]["recv"] > 0
    fast = run(CHANNEL_WORKLOADS["pingpong_heavy"], seed=1, keep_trace=False)
    assert _signature(traced) == _signature(fast)


@needs_fastops
def test_subscribed_listener_bails_even_without_kept_events():
    """keep_trace=False but a live listener: still observable, still pure."""
    seen = []

    class Listener:
        def attach(self, rt):
            rt.sched.trace.subscribe(seen.append)

    program = CHANNEL_WORKLOADS["pingpong_heavy"]
    _reset_stats()
    hooked = run(program, seed=1, keep_trace=False, observers=[Listener()])
    stats = _stats()
    assert sum(stats["engaged"].values()) == 0, stats
    assert seen, "listener saw no events"
    plain = run(program, seed=1, keep_trace=False)
    assert _signature(hooked) == _signature(plain)


@needs_fastops
def test_fault_injector_bails_every_op():
    """An attached injector — even one with no faults — forces the pure
    path, where every probe point the injector hooks still exists."""
    program = CHANNEL_WORKLOADS["pingpong_heavy"]
    _reset_stats()
    injected = run(program, seed=1, keep_trace=False,
                   inject=FaultPlan(name="noop"))
    stats = _stats()
    assert sum(stats["engaged"].values()) == 0, stats
    plain = run(program, seed=1, keep_trace=False)
    assert _signature(injected) == _signature(plain)


# ---------------------------------------------------------------------------
# Per-op error and edge paths, compiled vs pure
# ---------------------------------------------------------------------------


def _both_modes(program, seed=1):
    engaged = run(program, seed=seed, keep_trace=False)
    with force_pure():
        pure = run(program, seed=seed, keep_trace=False)
    return engaged, pure


def test_send_on_closed_channel_panics_identically():
    def program(rt):
        ch = rt.make_chan(1)
        ch.close()
        ch.send(1)

    engaged, pure = _both_modes(program)
    assert engaged.status == pure.status == "panic"
    assert str(engaged.panic_value) == str(pure.panic_value)
    assert engaged.steps == pure.steps


def test_recv_on_closed_channel_zero_value_identically():
    def program(rt):
        ch = rt.make_chan(2)
        ch.send("a")
        ch.close()
        return [ch.recv_ok(), ch.recv_ok(), ch.recv_ok()]

    engaged, pure = _both_modes(program)
    assert _signature(engaged) == _signature(pure)
    assert engaged.main_result == [("a", True), (None, False), (None, False)]


def test_buffered_try_ops_identically():
    def program(rt):
        ch = rt.make_chan(2)
        outcomes = [ch.try_send(1), ch.try_send(2), ch.try_send(3)]
        outcomes.append(ch.try_recv())
        outcomes.append(ch.try_recv())
        outcomes.append(ch.try_recv())
        ch.close()
        outcomes.append(ch.try_recv())
        return outcomes

    engaged, pure = _both_modes(program)
    assert _signature(engaged) == _signature(pure)
    assert engaged.main_result == [
        True, True, False,
        (1, True, True), (2, True, True), (None, False, False),
        (None, False, True),
    ]


def test_select_default_and_single_case_draw_identically():
    """A one-ready-case select still consumes one RNG draw (randrange(1)
    eats a Mersenne word), so later scheduling decisions shift if either
    implementation skips it — the trailing spawn fan-out would diverge."""
    from repro.chan import recv as recv_case

    def program(rt):
        ch = rt.make_chan(1)
        hits = [rt.select(recv_case(ch), default=True)]
        ch.send("x")
        hits.append(rt.select(recv_case(ch)))
        wg = rt.waitgroup()
        for _ in range(6):
            wg.add(1)
            rt.go(wg.done)
        wg.wait()
        return hits

    engaged, pure = _both_modes(program)
    assert _signature(engaged) == _signature(pure)
    assert engaged.main_result[0] == (-1, None, False)
    assert engaged.main_result[1] == (0, "x", True)


def test_select_send_on_closed_case_panics_identically():
    from repro.chan import send as send_case

    def program(rt):
        ch = rt.make_chan(1)
        ch.close()
        rt.select(send_case(ch, 1))

    engaged, pure = _both_modes(program)
    assert engaged.status == pure.status == "panic"
    assert str(engaged.panic_value) == str(pure.panic_value)
    assert engaged.steps == pure.steps


def test_unlock_of_unlocked_mutex_panics_identically():
    def program(rt):
        rt.mutex().unlock()

    engaged, pure = _both_modes(program)
    assert engaged.status == pure.status == "panic"
    assert str(engaged.panic_value) == str(pure.panic_value)


def test_rwmutex_paths_identically():
    def program(rt):
        rw = rt.rwmutex()
        log = []
        done = rt.make_chan()

        def reader(tag):
            rw.rlock()
            log.append(("r+", tag))
            rt.gosched()
            log.append(("r-", tag))
            rw.runlock()
            done.send(None)

        def writer():
            rw.lock()
            log.append("w")
            rw.unlock()
            done.send(None)

        rt.go(reader, 1)
        rt.go(reader, 2)
        rt.go(writer)
        for _ in range(3):
            done.recv()
        return log

    engaged, pure = _both_modes(program)
    assert _signature(engaged) == _signature(pure)


def test_runlock_without_rlock_panics_identically():
    def program(rt):
        rt.rwmutex().runlock()

    engaged, pure = _both_modes(program)
    assert engaged.status == pure.status == "panic"
    assert str(engaged.panic_value) == str(pure.panic_value)


# ---------------------------------------------------------------------------
# REPRO_NO_CEXT subprocess: no extension at all, same bytes
# ---------------------------------------------------------------------------


_SUBPROCESS_SCRIPT = textwrap.dedent("""
    import json
    from repro import run
    from repro.bench import CHANNEL_WORKLOADS
    from repro.parallel import schedule_digest
    from repro.runtime import _hotloop

    rows = {}
    for name in sorted(CHANNEL_WORKLOADS):
        traced = run(CHANNEL_WORKLOADS[name], seed=11, keep_trace=True)
        fast = run(CHANNEL_WORKLOADS[name], seed=11, keep_trace=False)
        rows[name] = {
            "digest": schedule_digest(traced),
            "status": fast.status,
            "steps": fast.steps,
            "compiled_field": fast.compiled,
        }
    print(json.dumps({"compiled": _hotloop.HAS_COMPILED, "rows": rows}))
""")


def test_no_cext_subprocess_matches_compiled_process():
    env = dict(os.environ, REPRO_NO_CEXT="1",
               PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["compiled"] is False
    for name, row in payload["rows"].items():
        assert row["compiled_field"] is False, name
        traced = run(CHANNEL_WORKLOADS[name], seed=11, keep_trace=True)
        fast = run(CHANNEL_WORKLOADS[name], seed=11, keep_trace=False)
        assert row["digest"] == schedule_digest(traced), name
        assert row["status"] == fast.status, name
        assert row["steps"] == fast.steps, name


# ---------------------------------------------------------------------------
# Corpus, mini-apps, recovery: compiled vs pure over everything
# ---------------------------------------------------------------------------


def _corpus_kernels():
    from repro.bugs import registry

    return sorted(registry.all_kernels(), key=lambda k: k.meta.kernel_id)


@pytest.mark.parametrize("kernel", _corpus_kernels(),
                         ids=lambda k: k.meta.kernel_id)
def test_corpus_kernel_parity_compiled_vs_pure(kernel):
    """Every bug kernel, both variants: fast ops engaged vs force_pure."""
    for variant in (kernel.buggy, kernel.fixed):
        kwargs = dict(kernel.run_kwargs)
        kwargs["keep_trace"] = False
        engaged = run(variant, seed=3, **kwargs)
        with force_pure():
            pure = run(variant, seed=3, **kwargs)
        assert engaged.status == pure.status
        assert engaged.steps == pure.steps
        assert engaged.main_result == pure.main_result
        kwargs["keep_trace"] = True
        traced = run(variant, seed=3, **kwargs)
        with force_pure():
            traced_pure = run(variant, seed=3, **kwargs)
        assert schedule_digest(traced) == schedule_digest(traced_pure)


def _app_scenarios():
    from repro.inject import scenarios

    return sorted(scenarios.all_scenarios(), key=lambda row: row[0])


@pytest.mark.parametrize("scenario", _app_scenarios(),
                         ids=lambda row: row[0])
def test_miniapp_parity_compiled_vs_pure(scenario):
    _, program, base_kwargs = scenario
    kwargs = dict(base_kwargs)
    kwargs["keep_trace"] = True
    traced = run(program, seed=1, **kwargs)
    with force_pure():
        pure = run(program, seed=1, **kwargs)
    assert traced.status == pure.status
    assert traced.steps == pure.steps
    assert schedule_digest(traced) == schedule_digest(pure)


def test_net_recovery_scenario_parity_compiled_vs_pure():
    from repro.inject import plans
    from repro.inject.scenarios import net_etcd_recovery_scenario

    program = partial(net_etcd_recovery_scenario, size=3)
    kwargs = dict(seed=2, keep_trace=True,
                  inject=plans.crash_restart(delay=0.3), max_steps=600_000)
    compiled = run(program, **kwargs)
    with force_pure():
        pure = run(program, **kwargs)
    assert compiled.status == pure.status
    assert compiled.steps == pure.steps
    assert schedule_digest(compiled) == schedule_digest(pure)
