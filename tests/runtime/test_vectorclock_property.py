"""Property test: vectorized vector-clock kernels vs a dict reference.

:class:`repro.runtime._hotloop.VectorClock` is dense-list backed with
compiled ``vc_join``/``vc_le`` kernels when the extension built.  The
observable semantics are pinned to the historical sparse dict-backed
clock: zero components are indistinguishable from absent ones, joins are
pointwise max, ``<=`` is componentwise with implicit zero padding.  This
suite drives randomized operation histories — increments and joins over a
small set of clocks but a *large* gid space, so the dense arrays grow,
pad, and carry trailing zeros — through three implementations in
lockstep:

* the clock as shipped (compiled kernels when available),
* the same class with the kernel bindings forced off (the pure loops the
  kernels replaced),
* an independent dict-based reference reimplementing the original sparse
  semantics from scratch.

After every operation all three must agree on items, pairwise ordering,
equality, and concurrency.
"""

from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.runtime import _hotloop
from repro.runtime._hotloop import VectorClock

N_CLOCKS = 3
MAX_GID = 300  # large and sparse: the dense arrays pad hundreds of zeros


@contextmanager
def kernels_disabled():
    """Null out the module's compiled kernel bindings, restoring after.

    Exactly what a build failure (or ``REPRO_NO_CEXT=1``) leaves behind:
    ``_vc_join``/``_vc_le`` are ``None`` and the pure loops run.
    """
    saved = _hotloop._vc_join, _hotloop._vc_le
    _hotloop._vc_join = None
    _hotloop._vc_le = None
    try:
        yield
    finally:
        _hotloop._vc_join, _hotloop._vc_le = saved


class DictClock:
    """Independent reference: the historical sparse dict-backed clock."""

    def __init__(self):
        self.c = {}

    def get(self, gid):
        return self.c.get(gid, 0)

    def increment(self, gid):
        self.c[gid] = self.c.get(gid, 0) + 1

    def join(self, other):
        for gid, count in other.c.items():
            if count > self.c.get(gid, 0):
                self.c[gid] = count

    def le(self, other):
        return all(count <= other.c.get(gid, 0)
                   for gid, count in self.c.items() if count)

    def items(self):
        return sorted((g, n) for g, n in self.c.items() if n)


histories = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.integers(0, N_CLOCKS - 1),
                  st.integers(0, MAX_GID)),
        st.tuples(st.just("join"), st.integers(0, N_CLOCKS - 1),
                  st.integers(0, N_CLOCKS - 1)),
    ),
    min_size=1, max_size=50,
)


def _check_agreement(shipped, pure, reference):
    for i in range(N_CLOCKS):
        assert list(shipped[i].items()) == reference[i].items()
        assert list(pure[i].items()) == reference[i].items()
        for j in range(N_CLOCKS):
            expected_le = reference[i].le(reference[j])
            assert (shipped[i] <= shipped[j]) is expected_le, (i, j)
            with kernels_disabled():
                assert (pure[i] <= pure[j]) is expected_le, (i, j)
            expected_eq = reference[i].items() == reference[j].items()
            assert (shipped[i] == shipped[j]) is expected_eq, (i, j)
            if i != j:
                expected_conc = (not expected_le
                                 and not reference[j].le(reference[i]))
                assert (shipped[i].concurrent_with(shipped[j])
                        is expected_conc), (i, j)


@settings(max_examples=120, deadline=None)
@given(history=histories)
def test_random_histories_agree_across_implementations(history):
    shipped = [VectorClock() for _ in range(N_CLOCKS)]
    pure = [VectorClock() for _ in range(N_CLOCKS)]
    reference = [DictClock() for _ in range(N_CLOCKS)]

    for op in history:
        if op[0] == "inc":
            _, idx, gid = op
            shipped[idx].increment(gid)
            pure[idx].increment(gid)
            reference[idx].increment(gid)
        else:
            _, dst, src = op
            shipped[dst].join(shipped[src])
            with kernels_disabled():
                pure[dst].join(pure[src])
            reference[dst].join(reference[src])
        for idx in range(N_CLOCKS):
            for gid in (0, 1, MAX_GID // 2, MAX_GID):
                assert shipped[idx].get(gid) == reference[idx].get(gid)

    _check_agreement(shipped, pure, reference)


@settings(max_examples=80, deadline=None)
@given(
    a=st.dictionaries(st.integers(0, MAX_GID), st.integers(0, 40),
                      max_size=12),
    b=st.dictionaries(st.integers(0, MAX_GID), st.integers(0, 40),
                      max_size=12),
)
def test_le_and_join_match_reference_on_arbitrary_pairs(a, b):
    """Direct pair checks, including trailing-zero and length-mismatch
    shapes the dense representation must pad through."""
    ref_a, ref_b = DictClock(), DictClock()
    ref_a.c = {g: n for g, n in a.items() if n}
    ref_b.c = {g: n for g, n in b.items() if n}
    vc_a, vc_b = VectorClock(a), VectorClock(b)

    assert (vc_a <= vc_b) is ref_a.le(ref_b)
    assert (vc_b <= vc_a) is ref_b.le(ref_a)
    with kernels_disabled():
        assert (vc_a <= vc_b) is ref_a.le(ref_b)

    joined = vc_a.copy()
    joined.join(vc_b)
    ref_a.join(ref_b)
    assert list(joined.items()) == ref_a.items()
    pure_joined = VectorClock(a)
    with kernels_disabled():
        pure_joined.join(VectorClock(b))
    assert list(pure_joined.items()) == ref_a.items()


def test_compiled_kernels_are_bound_when_extension_built():
    """The wiring itself: with the extension loaded the kernels must be
    the C functions, and disabling them must actually change the callee
    (guards against silently testing pure-vs-pure above)."""
    if not _hotloop.HAS_COMPILED:
        assert _hotloop._vc_join is None and _hotloop._vc_le is None
        return
    assert _hotloop._vc_join is _hotloop._c.vc_join
    assert _hotloop._vc_le is _hotloop._c.vc_le
    with kernels_disabled():
        assert _hotloop._vc_join is None
