"""Trace timeline rendering."""

from repro import run
from repro.runtime.timeline import blocked_summary, timeline


def _leaky(rt):
    ch = rt.make_chan(0, name="results")
    rt.go(lambda: ch.send(1), name="orphan")
    rt.sleep(0.1)


def test_timeline_shows_every_goroutine_lane():
    result = run(_leaky)
    text = timeline(result)
    assert "status=leak" in text
    assert "g1" in text and "main" in text
    assert "orphan" in text
    assert "~chan.send" in text     # the blocked-forever marker


def test_timeline_shows_completed_channel_ops():
    def main(rt):
        ch = rt.make_chan(1, name="box")
        ch.send("x")
        ch.recv()

    text = timeline(run(main))
    assert "send#" in text and "recv#" in text


def test_timeline_without_trace():
    result = run(_leaky, keep_trace=False)
    assert "trace not recorded" in timeline(result)


def test_timeline_memory_accesses_optional():
    def main(rt):
        v = rt.shared("x", 0)
        v.store(1)
        v.load()

    result = run(main)
    assert " w " not in timeline(result, include_memory=False)
    assert " w " in timeline(result, include_memory=True)


def test_timeline_width_cap():
    def main(rt):
        mu = rt.mutex()
        for _ in range(200):
            mu.lock()
            mu.unlock()

    text = timeline(run(main), max_width=40)
    for line in text.splitlines()[1:]:
        assert len(line) < 100


def test_blocked_summary_lists_leaks():
    result = run(_leaky)
    text = blocked_summary(result)
    assert "orphan" in text and "chan.send" in text
    clean = run(lambda rt: None)
    assert "nothing stuck" in blocked_summary(clean)


def test_timeline_marks_panics():
    def main(rt):
        rt.go(lambda: rt.panic("boom"), name="bomber")
        rt.sleep(1.0)

    text = timeline(run(main))
    assert "PANIC" in text
    assert "panicked" in text
