"""Every blocking kernel: buggy manifests, fixed never does."""

import pytest

from repro.bugs import registry

SEEDS = tuple(range(12))

BLOCKING = registry.blocking_kernels()
IDS = [k.meta.kernel_id for k in BLOCKING]


@pytest.mark.parametrize("kernel", BLOCKING, ids=IDS)
def test_buggy_manifests_under_some_seed(kernel):
    if kernel.meta.deterministic:
        result = kernel.run_buggy(seed=0)
        assert kernel.manifested(result), result
    else:
        hits = kernel.manifestation_seeds(SEEDS)
        assert hits, f"{kernel.meta.kernel_id} never manifested over {len(SEEDS)} seeds"


@pytest.mark.parametrize("kernel", BLOCKING, ids=IDS)
def test_fixed_never_manifests(kernel):
    for seed in SEEDS:
        result = kernel.run_fixed(seed=seed)
        assert not kernel.manifested(result), (seed, result)
        assert result.status in ("ok", "timeout"), (seed, result)


@pytest.mark.parametrize("kernel", BLOCKING, ids=IDS)
def test_buggy_symptom_is_blocking_shaped(kernel):
    """Blocking kernels end in stuck goroutines, never in a panic."""
    seed = (kernel.manifestation_seeds(SEEDS) or [0])[0]
    result = kernel.run_buggy(seed=seed)
    assert result.status in ("deadlock", "leak", "timeout", "hang")
    assert result.leaked or result.status == "deadlock"


def test_figure1_fix_is_the_buffered_channel():
    """The committed Kubernetes fix: capacity 0 -> capacity 1."""
    kernel = registry.get("blocking-chan-kubernetes-5316")
    rates_buggy = len(kernel.manifestation_seeds(range(30))) / 30
    assert 0.2 < rates_buggy < 0.8  # the select picks randomly
    for seed in range(30):
        assert not kernel.manifested(kernel.run_fixed(seed=seed))


def test_rwmutex_kernel_depends_on_writer_priority():
    """Ablation: the same interleaving under pthread semantics is fine."""
    from repro import run
    from repro.bugs.blocking.rwmutex import DockerRWMutexWriterPriority

    go_result = run(DockerRWMutexWriterPriority.buggy, seed=0)
    assert go_result.status == "leak"
