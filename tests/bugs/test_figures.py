"""Direct checks of the nine figure reproductions' specific mechanics."""

import pytest

from repro import run
from repro.bugs import registry
from repro.detect import BuiltinDeadlockDetector, GoroutineLeakDetector


def _kernel(figure: str):
    return registry.figures()[figure]


def test_fig1_child_leaks_blocked_on_send():
    kernel = _kernel("1")
    seed = kernel.manifestation_seeds(range(30))[0]
    result = kernel.run_buggy(seed=seed)
    assert result.main_result == "timeout"  # the parent took the time.After case
    assert any(g.block_reason.startswith("chan.send") for g in result.leaked)


def test_fig1_buffered_fix_keeps_timeout_behavior_without_leak():
    kernel = _kernel("1")
    statuses = {kernel.run_fixed(seed=s).status for s in range(30)}
    assert statuses == {"ok"}
    results = {kernel.run_fixed(seed=s).main_result for s in range(30)}
    assert "timeout" in results  # the timeout path still happens; it just
    assert "response" in results  # no longer strands the child


def test_fig5_wait_in_loop_blocks_main_while_app_lives():
    kernel = _kernel("5")
    result = kernel.run_buggy(seed=0)
    assert result.status == "timeout"  # main stuck, heartbeat still running
    assert BuiltinDeadlockDetector().classify(result) is False
    assert GoroutineLeakDetector().classify(result) is True
    fixed = kernel.run_fixed(seed=0)
    assert fixed.status == "ok"
    assert fixed.main_result == 3  # all three plugins disabled


def test_fig6_overwritten_context_leaks_exactly_one_watcher():
    kernel = _kernel("6")
    result = kernel.run_buggy(seed=0)
    assert result.status == "leak"
    watchers = [g for g in result.leaked if g.name == "context.watcher"]
    assert len(watchers) == 1
    assert kernel.run_fixed(seed=0).status == "ok"


def test_fig7_two_goroutines_stuck_on_chan_and_lock():
    kernel = _kernel("7")
    result = kernel.run_buggy(seed=0)
    assert result.status == "leak"
    reasons = sorted(g.block_reason.split(":")[0] for g in result.leaked)
    assert reasons == ["chan.send", "mutex.lock"]
    fixed = kernel.run_fixed(seed=0)
    assert fixed.status == "ok"


def test_fig8_all_goroutines_may_see_last_i():
    kernel = _kernel("8")
    result = kernel.run_buggy(seed=0)
    assert kernel.manifested(result)


def test_fig8_static_detector_flags_the_buggy_shape():
    """The verbatim Figure 8 shape (and its fix) as seen by the static
    capture detector — the Section 7 prototype's target."""
    from repro.detect import scan_source

    figure8 = (
        "def prog(rt):\n"
        "    for i in range(17, 22):\n"
        "        def handler():\n"
        "            api_version = 'v1.%d' % i\n"
        "            serve(api_version)\n"
        "        rt.go(handler)\n"
    )
    findings = scan_source(figure8, "figure8.py")
    assert [f.loop_var for f in findings] == ["i"]

    figure8_fixed = (
        "def prog(rt):\n"
        "    for i in range(17, 22):\n"
        "        def handler(i=i):\n"
        "            serve('v1.%d' % i)\n"
        "        rt.go(handler)\n"
    )
    assert scan_source(figure8_fixed, "figure8_fixed.py") == []


def test_fig9_wait_can_return_before_add(seeds):
    kernel = _kernel("9")
    assert kernel.manifestation_seeds(range(40))
    for seed in range(20):
        assert not kernel.manifested(kernel.run_fixed(seed=seed))


def test_fig10_second_closer_panics(seeds):
    kernel = _kernel("10")
    hits = kernel.manifestation_seeds(range(40))
    assert hits
    result = kernel.run_buggy(seed=hits[0])
    assert "close of closed channel" in str(result.panic_value)


def test_fig11_extra_f_execution_after_stop():
    kernel = _kernel("11")
    rate = len(kernel.manifestation_seeds(range(40))) / 40
    assert 0.2 < rate < 0.8  # Go picks randomly between the ready cases


def test_fig12_premature_return_before_ctx_done():
    kernel = _kernel("12")
    assert kernel.manifested(kernel.run_buggy(seed=0))
    fixed_result = kernel.run_fixed(seed=0)
    assert not kernel.manifested(fixed_result)
