"""Corpus-wide integrity: registry, metadata, and coverage guarantees."""

from collections import Counter

from repro.bugs import registry
from repro.bugs.meta import SYMPTOMS
from repro.dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    Cause,
    NonBlockingSubCause,
)


def test_corpus_size_matches_paper_reproduction_scale():
    """The paper reproduced 21 blocking and 20 non-blocking bugs."""
    blocking = registry.blocking_kernels(reproduced_only=True)
    nonblocking = registry.nonblocking_kernels(reproduced_only=True)
    assert len(blocking) == 21
    assert len(nonblocking) >= 20


def test_every_blocking_subcause_covered():
    covered = {k.meta.subcause for k in registry.blocking_kernels()}
    assert covered == set(BlockingSubCause)


def test_every_nonblocking_subcause_covered():
    covered = {k.meta.subcause for k in registry.nonblocking_kernels()}
    assert covered == set(NonBlockingSubCause)


def test_every_app_represented():
    covered = {k.meta.app for k in registry.all_kernels()}
    assert covered == set(App)


def test_all_nine_paper_figures_reproduced():
    figures = registry.figures()
    assert set(figures) == {"1", "5", "6", "7", "8", "9", "10", "11", "12"}


def test_kernel_ids_unique_and_well_formed():
    ids = [k.meta.kernel_id for k in registry.all_kernels()]
    assert len(ids) == len(set(ids))
    for kernel_id in ids:
        assert kernel_id.startswith(("blocking-", "nonblocking-"))


def test_metadata_consistency():
    for kernel in registry.all_kernels():
        meta = kernel.meta
        assert meta.symptom in SYMPTOMS
        assert meta.description and meta.title
        if meta.behavior == Behavior.BLOCKING:
            assert meta.symptom in ("deadlock", "leak")
        assert meta.cause in (Cause.SHARED_MEMORY, Cause.MESSAGE_PASSING)
        assert meta.fix_primitives


def test_registry_lookup_helpers():
    kernel = registry.get("blocking-mutex-boltdb-392")
    assert kernel.meta.app == App.BOLTDB
    assert registry.by_app(App.BOLTDB)
    assert registry.by_subcause(BlockingSubCause.RWMUTEX)
    assert registry.by_cause(Cause.MESSAGE_PASSING)


def test_exactly_two_global_deadlock_kernels():
    """Table 8: only BoltDB#392 and BoltDB#240 are all-asleep deadlocks."""
    global_deadlocks = [
        k for k in registry.blocking_kernels(reproduced_only=True)
        if k.meta.symptom == "deadlock"
    ]
    assert len(global_deadlocks) == 2
    assert {k.meta.app for k in global_deadlocks} == {App.BOLTDB}
    assert {k.meta.subcause for k in global_deadlocks} == {
        BlockingSubCause.MUTEX, BlockingSubCause.CHAN_WITH_OTHER,
    }


def test_blocking_cause_mix_leans_message_passing():
    """Observation 3: more blocking bugs from message passing."""
    blocking = registry.blocking_kernels()
    mp = sum(k.meta.cause == Cause.MESSAGE_PASSING for k in blocking)
    assert mp > len(blocking) / 2


def test_duplicate_registration_rejected():
    import pytest

    kernel = registry.get("blocking-mutex-boltdb-392")
    with pytest.raises(ValueError):
        registry.register(kernel)
