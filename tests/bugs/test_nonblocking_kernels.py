"""Every non-blocking kernel: buggy manifests, fixed never does."""

import pytest

from repro.bugs import registry
from repro.detect import RaceDetector

SEEDS = tuple(range(12))

NONBLOCKING = registry.nonblocking_kernels()
IDS = [k.meta.kernel_id for k in NONBLOCKING]


@pytest.mark.parametrize("kernel", NONBLOCKING, ids=IDS)
def test_buggy_manifests_under_some_seed(kernel):
    if kernel.meta.latent:
        # Latent races never corrupt an observable output on their own; they
        # "manifest" when an unlimited-history race detector flags the
        # unsynchronized pair, under every seed.
        hits = 0
        for seed in SEEDS:
            detector = RaceDetector(shadow_words=None)
            kernel.run_buggy(seed=seed, observers=[detector])
            hits += detector.detected
        assert hits == len(SEEDS), (
            f"{kernel.meta.kernel_id}: latent race should be detected "
            f"on every seed, got {hits}/{len(SEEDS)}"
        )
        return
    if kernel.meta.deterministic:
        assert kernel.manifested(kernel.run_buggy(seed=0))
    else:
        hits = kernel.manifestation_seeds(SEEDS)
        assert hits, f"{kernel.meta.kernel_id} never manifested over {len(SEEDS)} seeds"


@pytest.mark.parametrize("kernel", NONBLOCKING, ids=IDS)
def test_fixed_never_manifests(kernel):
    for seed in SEEDS:
        result = kernel.run_fixed(seed=seed)
        assert not kernel.manifested(result), (seed, result)
        assert result.status == "ok", (seed, result)


@pytest.mark.parametrize("kernel", NONBLOCKING, ids=IDS)
def test_fixed_is_race_free(kernel):
    """The committed fixes must silence the race detector, not just hide
    the symptom (zero false positives, as in the paper)."""
    for seed in SEEDS[:6]:
        detector = RaceDetector()
        kernel.run_fixed(seed=seed, observers=[detector])
        assert not detector.detected, (kernel.meta.kernel_id, seed,
                                       [str(r) for r in detector.reports])


def test_latent_shadow_eviction_kernel_is_the_ablation():
    kernel = registry.get("nonblocking-trad-grpc-shadow-eviction")
    limited_hits = 0
    unlimited_hits = 0
    for seed in SEEDS:
        limited = RaceDetector(shadow_words=4)
        kernel.run_buggy(seed=seed, observers=[limited])
        limited_hits += limited.detected
        unlimited = RaceDetector(shadow_words=None)
        kernel.run_buggy(seed=seed, observers=[unlimited])
        unlimited_hits += unlimited.detected
    assert limited_hits == 0, "4 shadow words should miss this race"
    assert unlimited_hits == len(SEEDS), "unlimited history should catch it"


def test_double_close_panics_with_go_message():
    kernel = registry.get("nonblocking-chan-docker-24007")
    seed = kernel.manifestation_seeds(range(40))[0]
    result = kernel.run_buggy(seed=seed)
    assert result.status == "panic"
    assert "close of closed channel" in str(result.panic_value)


def test_timer_zero_kernel_returns_prematurely():
    kernel = registry.get("nonblocking-msglib-grpc-timer-zero")
    result = kernel.run_buggy(seed=0)
    assert kernel.manifested(result)
    fixed = kernel.run_fixed(seed=0)
    assert not kernel.manifested(fixed)
