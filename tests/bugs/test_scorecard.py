"""Scorecard unit tests (the bench runs the full matrix)."""

from repro.bugs.registry import get
from repro.bugs.scorecard import ScorecardRow, evaluate_kernel, render_scorecard


def test_evaluate_blocking_kernel():
    row = evaluate_kernel(get("blocking-mutex-boltdb-392"), runs=5)
    assert row.manifestation_rate == 1.0
    assert row.builtin_deadlock and row.leak_detector
    assert row.caught_by_any


def test_evaluate_race_kernel():
    row = evaluate_kernel(get("nonblocking-trad-docker-lost-update"), runs=10)
    assert row.race_detector
    assert not row.builtin_deadlock


def test_render_scorecard_shape():
    rows = [
        evaluate_kernel(get("blocking-mutex-kubernetes-abba"), runs=5),
        evaluate_kernel(get("nonblocking-anon-docker-30603"), runs=5),
    ]
    text = render_scorecard(rows)
    assert "Corpus scorecard" in text
    assert "caught by at least one detector: 2/2" in text
    assert text.count("X") >= 2
