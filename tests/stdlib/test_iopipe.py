"""io.Pipe semantics: rendezvous writes, EOF, close-with-error."""

import pytest

from repro import run
from repro.stdlib.iopipe import EOF, PipeError


def test_write_blocks_until_read():
    def main(rt):
        pr, pw = rt.pipe()
        order = []

        def writer():
            order.append("writing")
            pw.write("chunk")
            order.append("written")

        rt.go(writer)
        rt.sleep(0.5)
        order.append("reading")
        data = pr.read()
        rt.sleep(0.1)
        return order, data

    order, data = run(main).main_result
    assert data == "chunk"
    assert order == ["writing", "reading", "written"]


def test_reader_sees_eof_after_writer_close():
    def main(rt):
        pr, pw = rt.pipe()

        def writer():
            pw.write("a")
            pw.write("b")
            pw.close()

        rt.go(writer)
        out = []
        try:
            while True:
                out.append(pr.read())
        except EOF:
            out.append("EOF")
        return out

    assert run(main).main_result == ["a", "b", "EOF"]


def test_reader_close_unblocks_writer_with_error():
    def main(rt):
        pr, pw = rt.pipe()
        outcome = rt.shared("outcome", None)

        def writer():
            try:
                pw.write("never consumed")
            except PipeError:
                outcome.store("pipe-error")

        rt.go(writer)
        rt.sleep(0.3)
        pr.close()
        rt.sleep(0.3)
        return outcome.peek()

    assert run(main).main_result == "pipe-error"


def test_close_with_error_surfaces_custom_error():
    class Boom(Exception):
        pass

    def main(rt):
        pr, pw = rt.pipe()
        pw.close_with_error(Boom("upstream failed"))
        try:
            pr.read()
        except Boom as exc:
            return str(exc)

    assert run(main).main_result == "upstream failed"


def test_write_after_writer_close_fails():
    def main(rt):
        _pr, pw = rt.pipe()
        pw.close()
        with pytest.raises(PipeError):
            pw.write("late")

    assert run(main).status == "ok"


def test_read_after_reader_close_fails():
    def main(rt):
        pr, _pw = rt.pipe()
        pr.close()
        with pytest.raises(PipeError):
            pr.read()

    assert run(main).status == "ok"


def test_unclosed_pipe_leaks_blocked_writer():
    """The blocking-bug class Table 6 files under messaging libraries."""

    def main(rt):
        _pr, pw = rt.pipe()
        rt.go(lambda: pw.write("nobody reads"))
        rt.sleep(0.5)

    result = run(main)
    assert result.status == "leak"
    assert result.leak_count == 1


def test_write_returns_length():
    def main(rt):
        pr, pw = rt.pipe()
        rt.go(lambda: pr.read())
        rt.sleep(0.1)
        return pw.write("hello")

    assert run(main).main_result == 5
