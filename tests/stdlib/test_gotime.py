"""time semantics: Timer, Ticker, the zero-timer and capacity-1 rules."""

import pytest

from repro import run
from repro.chan import recv


def test_timer_fires_once_at_deadline():
    def main(rt):
        timer = rt.new_timer(1.5)
        fired_at = timer.c.recv()
        return rt.now(), fired_at

    now, fired_at = run(main).main_result
    assert now == pytest.approx(1.5)
    assert fired_at == pytest.approx(1.5)


def test_zero_timer_fires_immediately():
    """Figure 12's trigger: NewTimer(0) signals at once."""

    def main(rt):
        timer = rt.new_timer(0)
        timer.c.recv()
        return rt.now()

    assert run(main).main_result == pytest.approx(0.0)


def test_stop_before_fire():
    def main(rt):
        timer = rt.new_timer(5.0)
        stopped = timer.stop()
        rt.sleep(6.0)
        _v, _ok, received = timer.c.try_recv()
        return stopped, received, timer.fired

    assert run(main).main_result == (True, False, False)


def test_stop_after_fire_returns_false_and_does_not_drain():
    def main(rt):
        timer = rt.new_timer(0.5)
        rt.sleep(1.0)
        stopped = timer.stop()
        _v, _ok, received = timer.c.try_recv()
        return stopped, received  # value still in the channel: Go's trap

    assert run(main).main_result == (False, True)


def test_reset_rearms():
    def main(rt):
        timer = rt.new_timer(10.0)
        active = timer.reset(1.0)
        timer.c.recv()
        return active, rt.now()

    active, now = run(main).main_result
    assert active is True
    assert now == pytest.approx(1.0)


def test_after_helper():
    def main(rt):
        ch = rt.after(2.0)
        ch.recv()
        return rt.now()

    assert run(main).main_result == pytest.approx(2.0)


def test_ticker_delivers_periodically():
    def main(rt):
        ticker = rt.new_ticker(1.0)
        stamps = [ticker.c.recv() for _ in range(3)]
        ticker.stop()
        return stamps

    assert run(main).main_result == [
        pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0),
    ]


def test_slow_receiver_misses_ticks():
    """Capacity-1, non-blocking delivery: ticks are dropped, not queued."""

    def main(rt):
        ticker = rt.new_ticker(1.0)
        rt.sleep(5.5)  # five ticks elapse; only one fits the buffer
        received = []
        while True:
            value, _ok, got = ticker.c.try_recv()
            if not got:
                break
            received.append(value)
        ticker.stop()
        return len(received)

    assert run(main).main_result == 1


def test_ticker_stop_ends_delivery():
    def main(rt):
        ticker = rt.new_ticker(1.0)
        ticker.c.recv()
        ticker.stop()
        rt.sleep(5.0)
        _v, _ok, got = ticker.c.try_recv()
        return got

    assert run(main).main_result is False


def test_ticker_reset_changes_cadence():
    def main(rt):
        ticker = rt.new_ticker(5.0)
        ticker.reset(1.0)
        ticker.c.recv()
        ticker.stop()
        return rt.now()

    assert run(main).main_result == pytest.approx(1.0)


def test_ticker_rejects_nonpositive_interval():
    def main(rt):
        with pytest.raises(ValueError):
            rt.new_ticker(0)
        ticker = rt.new_ticker(1.0)
        with pytest.raises(ValueError):
            ticker.reset(-1)
        ticker.stop()

    assert run(main).status == "ok"


def test_select_timeout_pattern():
    def main(rt):
        work = rt.make_chan()
        timer = rt.new_timer(1.0)
        index, _v, _ok = rt.select(recv(work), recv(timer.c))
        return index, rt.now()

    index, now = run(main).main_result
    assert index == 1 and now == pytest.approx(1.0)
