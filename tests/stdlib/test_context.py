"""context semantics: cancellation, timeouts, values, watcher goroutines."""

import pytest

from repro import CANCELED, DEADLINE_EXCEEDED, run
from repro.chan import recv


def test_background_is_never_done():
    def main(rt):
        ctx = rt.background()
        index, _v, _ok = rt.select(recv(ctx.done()), default=True)
        return index, ctx.err(), ctx.deadline()

    assert run(main).main_result == (-1, None, (None, False))


def test_cancel_closes_done_and_sets_err():
    def main(rt):
        ctx, cancel = rt.with_cancel(rt.background())
        before = ctx.err()
        cancel()
        _v, ok = ctx.done().recv_ok()
        return before, ok, ctx.err()

    before, ok, err = run(main).main_result
    assert before is None
    assert ok is False  # done() is a closed channel
    assert err is CANCELED


def test_cancel_is_idempotent():
    def main(rt):
        ctx, cancel = rt.with_cancel(rt.background())
        cancel()
        cancel()
        return ctx.err()

    assert run(main).main_result is CANCELED


def test_timeout_fires_on_virtual_clock():
    def main(rt):
        ctx, _cancel = rt.with_timeout(rt.background(), 2.0)
        ctx.done().recv_ok()
        return rt.now(), ctx.err()

    now, err = run(main).main_result
    assert now == pytest.approx(2.0)
    assert err is DEADLINE_EXCEEDED


def test_cancel_before_deadline_wins():
    def main(rt):
        ctx, cancel = rt.with_timeout(rt.background(), 10.0)
        rt.go(lambda: (rt.sleep(1.0), cancel()))
        ctx.done().recv_ok()
        return rt.now(), ctx.err()

    now, err = run(main).main_result
    assert now == pytest.approx(1.0)
    assert err is CANCELED


def test_parent_cancellation_propagates_to_child():
    def main(rt):
        parent, pcancel = rt.with_cancel(rt.background())
        child, _ccancel = rt.with_cancel(parent)
        pcancel()
        child.done().recv_ok()
        return child.err()

    assert run(main).main_result is CANCELED


def test_uncancelled_child_of_cancellable_parent_leaks_watcher():
    """The raw material of Figure 6: the watcher goroutine needs one of
    the two contexts to finish."""

    def main(rt):
        parent, _pcancel = rt.with_cancel(rt.background())
        _child, _ccancel = rt.with_cancel(parent)
        # neither parent nor child is ever cancelled

    result = run(main)
    assert result.status == "leak"
    assert any(g.name == "context.watcher" for g in result.leaked)


def test_cancelled_child_releases_watcher():
    def main(rt):
        parent, _pcancel = rt.with_cancel(rt.background())
        _child, ccancel = rt.with_cancel(parent)
        ccancel()

    assert run(main).status == "ok"


def test_with_value_lookup_chain():
    def main(rt):
        base = rt.background()
        a = rt.with_value(base, "user", "alice")
        b = rt.with_value(a, "trace", 7)
        return b.value("user"), b.value("trace"), b.value("missing")

    assert run(main).main_result == ("alice", 7, None)


def test_value_context_inherits_cancellation():
    def main(rt):
        parent, cancel = rt.with_cancel(rt.background())
        ctx = rt.with_value(parent, "k", "v")
        cancel()
        _v, ok = ctx.done().recv_ok()
        return ok, ctx.err(), ctx.value("k")

    assert run(main).main_result == (False, CANCELED, "v")


def test_deadline_exposed():
    def main(rt):
        ctx, _cancel = rt.with_timeout(rt.background(), 5.0)
        deadline, has = ctx.deadline()
        return deadline, has

    deadline, has = run(main).main_result
    assert has and deadline == pytest.approx(5.0)


def test_nested_timeout_child_of_cancel_parent():
    def main(rt):
        parent, pcancel = rt.with_cancel(rt.background())
        child, _ = rt.with_timeout(parent, 100.0)
        rt.go(lambda: (rt.sleep(0.5), pcancel()))
        child.done().recv_ok()
        return rt.now(), child.err()

    now, err = run(main).main_result
    assert now == pytest.approx(0.5)
    assert err is CANCELED
