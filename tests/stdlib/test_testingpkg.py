"""The mini testing package: T state, failure recording, race surface."""

from repro import run
from repro.detect import RaceDetector
from repro.stdlib.testingpkg import T, run_test


def test_t_records_logs_and_failure():
    def main(rt):
        t = T(rt, "TestSomething")
        t.log("step 1")
        before = t.failed()
        t.errorf("assertion blew up")
        return before, t.failed(), t.logs

    before, failed, logs = run(main).main_result
    assert before is False and failed is True
    assert logs == ("step 1", "assertion blew up")


def test_fatalf_panics_out_of_the_test():
    def main(rt):
        t = T(rt, "TestFatal")
        t.fatalf("cannot continue")

    result = run(main)
    assert result.status == "panic"
    assert "cannot continue" in str(result.panic_value)


def test_run_test_helper():
    def main(rt):
        def body(t):
            t.log("ran")

        t = run_test(rt, "TestBody", body)
        return t.name, t.logs, t.failed()

    assert run(main).main_result == ("TestBody", ("ran",), False)


def test_concurrent_errorf_is_race_visible():
    """The three studied testing.T races exist because T's state is plain
    shared memory; the detector must see concurrent errorf calls."""

    def main(rt):
        t = T(rt, "TestRacy")
        wg = rt.waitgroup()
        for i in range(2):
            wg.add(1)

            def check(i=i):
                t.errorf(f"failure {i}")
                wg.done()

            rt.go(check)
        wg.wait()

    detected = 0
    for seed in range(10):
        det = RaceDetector()
        run(main, seed=seed, observers=[det])
        detected += det.detected
    assert detected > 0
