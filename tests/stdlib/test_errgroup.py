"""errgroup semantics: first error wins, cancellation fan-out."""

from repro import run
from repro.stdlib.errgroup import new_group, with_context


def test_all_succeed_returns_none():
    def main(rt):
        group = new_group(rt)
        done = rt.atomic_int(0)
        for _ in range(4):
            group.go(lambda: done.add(1) and None)
        err = group.wait()
        return err, done.load()

    assert run(main).main_result == (None, 4)


def test_first_error_returned():
    def main(rt):
        group = new_group(rt)

        def fails_first():
            rt.sleep(0.1)
            return "disk full"

        def fails_later():
            rt.sleep(0.5)
            return "timeout"

        group.go(fails_first)
        group.go(fails_later)
        return group.wait()

    assert run(main).main_result == "disk full"


def test_exception_counts_as_error():
    def main(rt):
        group = new_group(rt)

        def explodes():
            raise ValueError("boom")

        group.go(explodes)
        err = group.wait()
        return type(err).__name__, str(err)

    assert run(main).main_result == ("ValueError", "boom")


def test_with_context_cancels_siblings_on_first_error():
    def main(rt):
        group, ctx = with_context(rt)
        cancelled_sibling = rt.shared("cancelled", False)

        def failing():
            rt.sleep(0.2)
            return "fetch failed"

        def long_running():
            # A well-behaved sibling watches ctx and stops early.
            ctx.done().recv_ok()
            cancelled_sibling.store(True)
            return None

        group.go(failing)
        group.go(long_running)
        err = group.wait()
        return err, cancelled_sibling.peek(), rt.now()

    err, cancelled, now = run(main).main_result
    assert err == "fetch failed"
    assert cancelled is True
    assert now < 1.0  # the sibling did not run to some long deadline


def test_wait_cancels_context_even_on_success():
    """As in Go: Wait cancels the group context regardless of errors."""

    def main(rt):
        group, ctx = with_context(rt)
        group.go(lambda: None)
        err = group.wait()
        _v, ok = ctx.done().recv_ok()
        return err, ok

    assert run(main).main_result == (None, False)


def test_empty_group_wait_returns_immediately():
    def main(rt):
        group = new_group(rt)
        return group.wait()

    result = run(main)
    assert result.status == "ok"
    assert result.main_result is None


def test_concurrent_errors_keep_exactly_one():
    def main(rt):
        group = new_group(rt)
        for i in range(5):
            group.go(lambda i=i: f"err-{i}")
        err = group.wait()
        return err

    for seed in range(8):
        err = run(main, seed=seed).main_result
        assert err is not None and err.startswith("err-")


def test_no_goroutine_leaks_when_used_correctly():
    def main(rt):
        group, ctx = with_context(rt)
        for i in range(3):
            group.go(lambda i=i: None)
        group.wait()

    for seed in range(6):
        assert run(main, seed=seed).status == "ok"
