"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "request_server.py",
        "kvstore_watch.py",
        "detector_hunt.py",
        "study_report.py",
        "model_checking.py",
    }


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_quickstart_output_highlights():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert "DATA RACE" in completed.stdout
    assert "deadlock" in completed.stdout
