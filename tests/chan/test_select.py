"""select semantics: readiness, random choice, default, blocking."""

from collections import Counter

import pytest

from repro import run
from repro.chan import recv, send


def test_select_takes_the_only_ready_case():
    def main(rt):
        a = rt.make_chan(1)
        b = rt.make_chan(1)
        b.send("bee")
        index, value, ok = rt.select(recv(a), recv(b))
        return index, value, ok

    assert run(main).main_result == (1, "bee", True)


def test_select_default_when_nothing_ready():
    def main(rt):
        a = rt.make_chan()
        index, value, _ok = rt.select(recv(a), default=True)
        return index

    assert run(main).main_result == -1


def test_select_blocks_until_a_case_fires():
    def main(rt):
        a = rt.make_chan()

        def late_sender():
            rt.sleep(1.0)
            a.send("finally")

        rt.go(late_sender)
        index, value, _ok = rt.select(recv(a))
        return rt.now(), value

    now, value = run(main).main_result
    assert value == "finally"
    assert now == pytest.approx(1.0)


def test_select_random_among_ready_is_roughly_uniform():
    def main(rt):
        a = rt.make_chan(1)
        b = rt.make_chan(1)
        a.send("a")
        b.send("b")
        _i, value, _ok = rt.select(recv(a), recv(b))
        return value

    counts = Counter(run(main, seed=s).main_result for s in range(60))
    assert counts["a"] > 10 and counts["b"] > 10


def test_select_send_case():
    def main(rt):
        ch = rt.make_chan(1)
        index, _v, ok = rt.select(send(ch, 42))
        return index, ok, ch.recv()

    assert run(main).main_result == (0, True, 42)


def test_select_send_on_closed_channel_panics():
    def main(rt):
        ch = rt.make_chan()
        ch.close()
        rt.select(send(ch, 1), default=True)

    result = run(main)
    assert result.status == "panic"
    assert "send on closed channel" in str(result.panic_value)


def test_select_recv_sees_close():
    def main(rt):
        ch = rt.make_chan()

        def closer():
            rt.sleep(0.5)
            ch.close()

        rt.go(closer)
        index, value, ok = rt.select(recv(ch))
        return index, value, ok

    assert run(main).main_result == (0, None, False)


def test_blocked_select_resolved_by_peer_send():
    def main(rt):
        a = rt.make_chan()
        b = rt.make_chan()

        def sender():
            rt.sleep(0.3)
            b.send("from-b")

        rt.go(sender)
        index, value, _ok = rt.select(recv(a), recv(b))
        return index, value

    assert run(main).main_result == (1, "from-b")


def test_losing_select_case_leaves_no_ghost_waiter():
    def main(rt):
        a = rt.make_chan()
        b = rt.make_chan()

        def feed_b():
            rt.sleep(0.2)
            b.send(1)

        rt.go(feed_b)
        rt.select(recv(a), recv(b))  # wins on b; waiter on a must die
        # A later send on `a` must rendezvous with a real receiver, not the
        # stale select waiter.
        got = rt.shared("got", None)
        rt.go(lambda: got.store(a.recv()))
        rt.sleep(0.2)
        a.send("real")
        rt.sleep(0.2)
        return got.peek()

    for seed in range(8):
        assert run(main, seed=seed).main_result == "real"


def test_select_on_nil_channel_case_never_fires():
    def main(rt):
        dead = rt.nil_chan()
        live = rt.make_chan(1)
        live.send("ok")
        index, value, _ok = rt.select(recv(dead), recv(live))
        return index, value

    for seed in range(8):
        assert run(main, seed=seed).main_result == (1, "ok")


def test_select_only_nil_channels_blocks_forever():
    def main(rt):
        rt.select(recv(rt.nil_chan()))

    assert run(main).status == "deadlock"


def test_two_selects_rendezvous_with_each_other():
    def main(rt):
        ch = rt.make_chan()
        out = rt.shared("out", None)

        def selector_recv():
            _i, value, _ok = rt.select(recv(ch))
            out.store(value)

        rt.go(selector_recv)
        rt.sleep(0.2)
        index, _v, ok = rt.select(send(ch, "pair"))
        rt.sleep(0.2)
        return index, ok, out.peek()

    assert run(main).main_result == (0, True, "pair")


def test_select_rejects_non_case_arguments():
    def main(rt):
        ch = rt.make_chan()
        with pytest.raises(TypeError):
            rt.select(ch)  # must use send()/recv() wrappers

    assert run(main).status == "ok"
