"""Channel semantics against the Go specification behaviors the paper's
bugs depend on."""

import pytest

from repro import GoPanic, run


def _result(program, seed=0, **kw):
    return run(program, seed=seed, **kw)


def test_unbuffered_rendezvous_transfers_value():
    def main(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.send("payload"))
        return ch.recv()

    assert _result(main).main_result == "payload"


def test_unbuffered_send_blocks_until_receiver():
    def main(rt):
        ch = rt.make_chan()
        order = []

        def sender():
            order.append("before-send")
            ch.send(1)
            order.append("after-send")

        rt.go(sender)
        rt.sleep(1.0)  # sender must be parked by now
        order.append("receiving")
        ch.recv()
        rt.sleep(0.1)
        return order

    assert _result(main).main_result == ["before-send", "receiving", "after-send"]


def test_buffered_channel_blocks_only_when_full():
    def main(rt):
        ch = rt.make_chan(2)
        ch.send(1)
        ch.send(2)
        assert len(ch) == 2
        assert not ch.try_send(3)  # full: non-blocking send fails
        assert ch.recv() == 1
        assert ch.try_send(3)
        return [ch.recv(), ch.recv()]

    assert _result(main).main_result == [2, 3]


def test_fifo_ordering():
    def main(rt):
        ch = rt.make_chan(8)
        for i in range(8):
            ch.send(i)
        return [ch.recv() for i in range(8)]

    assert _result(main).main_result == list(range(8))


def test_recv_from_closed_drains_then_zero_value():
    def main(rt):
        ch = rt.make_chan(2)
        ch.send("x")
        ch.close()
        first = ch.recv_ok()
        second = ch.recv_ok()
        third = ch.recv_ok()  # does not block once closed
        return [first, second, third]

    assert _result(main).main_result == [("x", True), (None, False), (None, False)]


def test_close_wakes_all_blocked_receivers():
    def main(rt):
        ch = rt.make_chan()
        woke = rt.atomic_int(0)
        for _ in range(3):
            def waiter():
                _v, ok = ch.recv_ok()
                assert not ok
                woke.add(1)

            rt.go(waiter)
        rt.sleep(0.5)
        ch.close()
        rt.sleep(0.5)
        return woke.load()

    assert _result(main).main_result == 3


def test_send_on_closed_channel_panics():
    def main(rt):
        ch = rt.make_chan(1)
        ch.close()
        ch.send(1)

    result = _result(main)
    assert result.status == "panic"
    assert "send on closed channel" in str(result.panic_value)


def test_blocked_sender_panics_when_channel_closes():
    def main(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.send("stuck"))
        rt.sleep(0.5)
        ch.close()
        rt.sleep(0.5)

    result = _result(main)
    assert result.status == "panic"
    assert "send on closed channel" in str(result.panic_value)


def test_double_close_panics():
    def main(rt):
        ch = rt.make_chan()
        ch.close()
        ch.close()

    result = _result(main)
    assert result.status == "panic"
    assert "close of closed channel" in str(result.panic_value)


def test_range_iteration_ends_on_close():
    def main(rt):
        ch = rt.make_chan(4)

        def producer():
            for i in range(4):
                ch.send(i)
            ch.close()

        rt.go(producer)
        return list(ch)

    assert _result(main).main_result == [0, 1, 2, 3]


def test_try_recv_on_empty_and_closed():
    def main(rt):
        ch = rt.make_chan(1)
        empty = ch.try_recv()
        ch.send(9)
        got = ch.try_recv()
        ch.close()
        closed = ch.try_recv()
        return [empty, got, closed]

    assert _result(main).main_result == [
        (None, False, False),
        (9, True, True),
        (None, False, True),
    ]


def test_negative_capacity_rejected():
    def main(rt):
        with pytest.raises(ValueError):
            rt.make_chan(-1)

    assert _result(main).status == "ok"


def test_many_senders_one_receiver_conserves_messages():
    def main(rt):
        ch = rt.make_chan()
        for i in range(6):
            rt.go(lambda i=i: ch.send(i))
        got = sorted(ch.recv() for _ in range(6))
        return got

    for seed in range(8):
        assert _result(main, seed=seed).main_result == list(range(6))


def test_buffered_full_sender_unblocked_by_recv_preserves_order():
    def main(rt):
        ch = rt.make_chan(1)
        ch.send("first")
        rt.go(lambda: ch.send("second"))  # blocks: buffer full
        rt.sleep(0.2)
        a = ch.recv()
        rt.sleep(0.2)
        b = ch.recv()
        return [a, b]

    for seed in range(8):
        assert _result(main, seed=seed).main_result == ["first", "second"]


def test_len_and_cap():
    def main(rt):
        ch = rt.make_chan(3)
        ch.send(1)
        return len(ch), ch.cap(), ch.closed

    assert _result(main).main_result == (1, 3, False)
