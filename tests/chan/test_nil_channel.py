"""Nil channel rules: every operation blocks forever; close panics."""

from repro import run


def test_send_on_nil_blocks_forever():
    def main(rt):
        rt.nil_chan().send(1)

    assert run(main).status == "deadlock"


def test_recv_on_nil_blocks_forever():
    def main(rt):
        rt.nil_chan().recv()

    assert run(main).status == "deadlock"


def test_nil_goroutine_leaks_while_main_continues():
    def main(rt):
        dead = rt.nil_chan()
        rt.go(lambda: dead.recv())
        rt.sleep(0.1)

    result = run(main)
    assert result.status == "leak"
    assert "nil" in result.leaked[0].block_reason


def test_close_of_nil_panics():
    def main(rt):
        rt.nil_chan().close()

    result = run(main)
    assert result.status == "panic"
    assert "close of nil channel" in str(result.panic_value)


def test_nil_try_operations_never_succeed():
    def main(rt):
        dead = rt.nil_chan()
        return dead.try_send(1), dead.try_recv(), len(dead), dead.cap()

    assert run(main).main_result == (False, (None, False, False), 0, 0)
