"""select over a large fan-in: the direct-handoff fast path under stress.

64 producers on unbuffered channels means every value moves by direct
handoff inside a select; the scheduler's fast path must stay fair enough
to drain everyone and deterministic enough to replay exactly.
"""

from repro import run
from repro.chan import recv

FANIN = 64


def _fanin(values_per_producer):
    def main(rt):
        chans = [rt.make_chan(name=f"src{i}") for i in range(FANIN)]

        def producer(ch, i):
            for v in range(values_per_producer):
                ch.send((i, v))

        for i, ch in enumerate(chans):
            rt.go(producer, ch, i, name=f"prod{i}")
        cases = [recv(ch) for ch in chans]
        got = []
        while len(got) < FANIN * values_per_producer:
            _index, value, ok = rt.select(*cases)
            assert ok
            got.append(value)
        return tuple(got)

    return main


def test_large_fanin_drains_every_producer():
    result = run(_fanin(4))
    assert result.status == "ok"
    got = result.main_result
    assert len(got) == FANIN * 4
    assert set(got) == {(i, v) for i in range(FANIN) for v in range(4)}
    assert result.leaked == []


def test_large_fanin_order_is_deterministic():
    first = run(_fanin(2), seed=13).main_result
    second = run(_fanin(2), seed=13).main_result
    assert first == second
    orders = {run(_fanin(2), seed=seed).main_result for seed in range(5)}
    assert len(orders) > 1             # the choice among ready cases is seeded


def test_fanin_select_sees_closes():
    def main(rt):
        chans = [rt.make_chan(name=f"src{i}") for i in range(FANIN)]
        for ch in chans:
            ch.close()
        index, value, ok = rt.select(*[recv(ch) for ch in chans])
        return 0 <= index < FANIN, value, ok

    assert run(main).main_result == (True, None, False)
