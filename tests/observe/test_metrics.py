"""Unit tests for the metric instruments and the registry."""

import json

import pytest

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)


def test_counter_monotonic():
    c = Counter("events")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert c.to_dict() == {"type": "counter", "value": 4}


def test_gauge_tracks_extremes():
    g = Gauge("depth")
    g.set(3)
    g.add(-5)
    g.set(7)
    assert (g.value, g.min, g.max) == (7, -2, 7)


def test_gauge_first_write_initializes_extremes():
    g = Gauge("level")
    g.set(-4)
    assert g.min == -4 and g.max == -4


def test_histogram_buckets_and_stats():
    h = Histogram("wait", bounds=(1, 10, 100))
    for v in (0, 1, 5, 50, 5000):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 5056
    assert (h.min, h.max) == (0, 5000)
    assert h.bucket_counts == [2, 1, 1, 1]  # le=1, le=10, le=100, +Inf
    assert h.to_dict()["buckets"] == {"le=1": 2, "le=10": 1, "le=100": 1,
                                      "le=+Inf": 1}
    assert h.mean == pytest.approx(5056 / 5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10, 1))


def test_timeseries_change_compression_and_cap():
    ts = TimeSeries("occ", max_samples=3)
    ts.sample(0, 1)
    ts.sample(1, 1)   # unchanged: dropped silently
    ts.sample(2, 2)
    ts.sample(3, 3)
    ts.sample(4, 4)   # over cap: counted as dropped
    assert ts.samples == [(0, 1), (2, 2), (3, 3)]
    assert ts.dropped == 1


def test_registry_get_or_create_and_type_guard():
    reg = MetricsRegistry()
    c = reg.counter("a")
    assert reg.counter("a") is c
    assert "a" in reg
    with pytest.raises(TypeError):
        reg.gauge("a")
    reg.histogram("h")
    reg.timeseries("t")
    assert reg.names() == ["a", "h", "t"]


def test_registry_dump_is_sorted_valid_json():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.gauge("a").set(2)
    dumped = json.loads(reg.to_json())
    assert list(dumped) == sorted(dumped)
    assert dumped["z"]["value"] == 1


def test_registry_render_mentions_every_metric():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(1)
    reg.histogram("h").observe(2)
    reg.timeseries("t").sample(0, 1)
    text = reg.render()
    for name in ("c", "g", "h", "t"):
        assert name in text
