"""The subsystem's two load-bearing guarantees, asserted bit-for-bit:

1. **Determinism** — every dump (metrics JSON, profile dump, Chrome trace)
   is a pure function of ``(program, seed)``.
2. **Inertness** — attaching an observer does not change the schedule:
   the observed run's ``(step, gid, kind, obj)`` sequence is identical to
   the unobserved run's.
"""

import pytest

from repro import Observer, chrome_trace_json, measure_overhead, run
from repro.bugs import registry
from repro.observe import schedule_fingerprint

SEEDS = (0, 1, 7)


def busy(rt):
    mu = rt.mutex()
    ch = rt.make_chan(2, name="work")
    wg = rt.waitgroup()

    def worker(wid):
        for i in range(4):
            with mu:
                pass
            ch.send((wid, i))
        wg.done()

    def drain():
        for _ in range(8):
            ch.recv()
        wg.done()

    for wid in range(2):
        wg.add(1)
        rt.go(worker, wid, name=f"worker-{wid}")
    wg.add(1)
    rt.go(drain, name="drain")
    wg.wait()
    rt.sleep(0.1)


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_gives_byte_identical_dumps(seed):
    first = run(busy, seed=seed, observe=True)
    second = run(busy, seed=seed, observe=True)
    assert first.observation.to_json() == second.observation.to_json()
    assert (first.observation.metrics.to_json()
            == second.observation.metrics.to_json())
    assert first.observation.render() == second.observation.render()
    assert first.observation.flamegraph() == second.observation.flamegraph()
    assert (chrome_trace_json(first, first.observation)
            == chrome_trace_json(second, second.observation))


def test_different_seeds_usually_give_different_schedules():
    fingerprints = {schedule_fingerprint(run(busy, seed=s)) for s in range(6)}
    assert len(fingerprints) > 1, "busy() should be schedule-sensitive"


@pytest.mark.parametrize("seed", SEEDS)
def test_observer_is_schedule_inert(seed):
    bare = run(busy, seed=seed)
    observed = run(busy, seed=seed, observe=True)
    assert schedule_fingerprint(bare) == schedule_fingerprint(observed)


def test_observer_is_inert_on_kernels():
    kernel = registry.get("blocking-chan-kubernetes-5316")
    for seed in SEEDS:
        bare = kernel.run_buggy(seed=seed)
        observed = kernel.run_buggy(seed=seed, observe=True)
        assert schedule_fingerprint(bare) == schedule_fingerprint(observed)
        assert kernel.manifested(bare) == kernel.manifested(observed)


def test_observer_composes_with_detectors_inertly():
    from repro.detect import RaceDetector

    bare = run(busy, seed=1, observers=[RaceDetector()])
    both = run(busy, seed=1, observers=[RaceDetector()], observe=True)
    assert schedule_fingerprint(bare) == schedule_fingerprint(both)


def test_measure_overhead_reports_identical_schedule():
    report = measure_overhead(busy, seed=0, repeats=2)
    assert report.identical_schedule
    assert report.steps > 0
    assert report.base_seconds > 0
    assert "identical" in report.render()
    assert report.to_dict()["ratio"] == pytest.approx(report.ratio)


def test_fingerprint_requires_kept_trace():
    result = run(busy, seed=0, keep_trace=False)
    with pytest.raises(ValueError):
        schedule_fingerprint(result)
