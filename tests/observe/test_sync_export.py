"""The sync-event export and the goroutine fork/join flow arrows."""

import json

from repro import chrome_trace, run
from repro.observe import SYNC_EVENT_KINDS, sync_events, sync_events_json


def forked(rt):
    wg = rt.waitgroup()
    wg.add(2)

    def worker():
        rt.sleep(0.1)
        wg.done()

    rt.go(worker, name="w1")
    rt.go(worker, name="w2")
    wg.wait()


def test_fork_and_join_flows_pair_up():
    # Satellite: goroutine creation/termination must appear as paired
    # flow arrows, not just instants, so Perfetto draws the lifecycle.
    result = run(forked, seed=0)
    doc = chrome_trace(result)
    flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
    go_flows = [e for e in flows if str(e["id"]).startswith("go-")]
    join_flows = [e for e in flows if str(e["id"]).startswith("join-")]
    assert go_flows and join_flows
    for group in (go_flows, join_flows):
        starts = sorted(e["id"] for e in group if e["ph"] == "s")
        finishes = sorted(e["id"] for e in group if e["ph"] == "f")
        assert starts == finishes
    # Join arrows land on the creator's side: finish events exist for
    # every worker that ended while the parent kept running (main is
    # g1, the workers g2 and g3).
    assert {e["id"] for e in join_flows} == {"join-2", "join-3"}


def test_sync_events_cover_only_sync_kinds():
    result = run(forked, seed=0)
    events = sync_events(result)
    assert events
    kinds = {e["kind"] for e in events}
    assert kinds <= SYNC_EVENT_KINDS
    assert "go.create" in kinds and "waitgroup.wait" in kinds
    for entry in events:
        assert {"step", "time", "gid", "kind"} <= set(entry)


def test_sync_events_json_document_shape():
    result = run(forked, seed=7)
    doc = json.loads(sync_events_json(result))
    assert doc["schema"] == 1
    assert doc["seed"] == 7
    assert doc["status"] == "ok"
    assert doc["goroutines"] == {"1": "main", "2": "w1", "3": "w2"}
    assert doc["events"] == sync_events(result)
    # Stable output: serializing the same run twice is byte-identical.
    again = run(forked, seed=7)
    assert sync_events_json(result) == sync_events_json(again)


def test_select_metadata_is_exported(rt_select_program=None):
    from repro.chan import recv

    def main(rt):
        ch = rt.make_chan(1, name="ch")
        ch.send("x")
        rt.select(recv(ch), default=True)

    result = run(main, seed=0)
    begins = [e for e in sync_events(result)
              if e["kind"] == "select.begin"]
    assert begins
    info = begins[0]["info"]
    assert info["cases"] == 1
    assert info["default"] is True
    assert isinstance(info["chans"], list) and info["chans"]
