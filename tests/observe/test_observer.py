"""End-to-end Observer behavior over real runs."""

import pytest

from repro import Observer, run
from repro.bugs import registry


def contended(rt):
    mu = rt.mutex()
    wg = rt.waitgroup()

    def worker():
        for _ in range(5):
            with mu:
                pass
        wg.done()

    for _ in range(3):
        wg.add(1)
        rt.go(worker, name="worker")
    wg.wait()


def pipeline(rt):
    ch = rt.make_chan(2, name="jobs")

    def produce():
        for i in range(6):
            ch.send(i)
        ch.close()

    rt.go(produce, name="producer")
    total = 0
    while True:
        v, ok = ch.recv_ok()
        if not ok:
            break
        total += v
    return total


def test_observe_true_attaches_default_observer():
    result = run(contended, seed=0)
    assert result.observation is None
    observed = run(contended, seed=0, observe=True)
    assert isinstance(observed.observation, Observer)
    assert observed.observation.result is observed


def test_counters_match_trace_reality():
    result = run(pipeline, seed=1, observe=True)
    m = result.observation.metrics
    assert m.counter("chan.sends").value == 6
    assert m.counter("chan.recvs").value >= 6
    assert m.counter("chan.closes").value == 1
    assert m.counter("go.spawned").value == 2  # main + producer
    assert m.counter("sched.steps").value == result.steps


def test_channel_occupancy_tracked_for_buffered_channel():
    result = run(pipeline, seed=1, observe=True)
    m = result.observation.metrics
    names = [n for n in m.names() if n.startswith("chan.occupancy[jobs#")]
    assert names, m.names()
    hist = m[names[0]]
    assert hist.max <= 2  # never exceeds capacity
    assert hist.min >= 0


def test_mutex_profile_names_the_contended_lock():
    result = run(contended, seed=3, observe=True)
    prof = result.observation.mutex_profile
    assert prof.entries, "3 workers over one mutex must contend"
    lock, site = next(iter(prof.entries))
    assert "test_observer.py" in site
    assert prof.total_steps > 0


def test_goroutine_profile_counts_everyone():
    result = run(contended, seed=0, observe=True)
    gp = result.observation.goroutine_profile
    assert gp.total() == 4  # main + 3 workers
    states = {state for (state, _, _) in gp.groups}
    assert states == {"done"}


def test_block_profile_flags_leaked_goroutine_site():
    """The acceptance criterion: profiling a leaking kernel names the
    blocking call-site, still-blocked at exit."""
    kernel = registry.get("blocking-chan-kubernetes-5316")
    result = kernel.run_buggy(seed=0, observe=True)
    assert kernel.manifested(result)
    obs = result.observation
    leaked = [e for e in obs.block_profile.top() if e.still_blocked]
    assert leaked, "leaked goroutine must appear as a still-open span"
    primitive, site = leaked[0].key
    assert primitive == "chan.send"
    assert ":" in site and site != "?"
    assert "STILL BLOCKED" in obs.block_profile.render()


def test_flamegraph_contains_user_frames():
    result = run(contended, seed=3, observe=True)
    flame = result.observation.flamegraph()
    assert "mutex.lock" in flame
    assert "test_observer.py" in flame


def test_render_and_dict_cover_all_sections():
    result = run(contended, seed=0, observe=True)
    obs = result.observation
    text = obs.render()
    for section in ("run:", "goroutine profile", "block profile",
                    "mutex profile", "metrics:"):
        assert section in text
    dump = obs.to_dict()
    assert set(dump) == {"run", "metrics", "profiles", "flame"}
    assert set(dump["profiles"]) == {"goroutine", "block", "mutex"}
    assert dump["run"]["steps"] == result.steps


def test_observer_is_single_run():
    obs = Observer()
    run(contended, seed=0, observe=obs)
    with pytest.raises(Exception):
        run(contended, seed=0, observe=obs)


def test_capture_sites_off_still_profiles():
    obs = Observer(capture_sites=False)
    result = run(contended, seed=3, observe=obs)
    assert result.observation.block_profile.entries
    sites = {site for (_, site) in result.observation.block_profile.entries}
    assert sites == {"?"}
