"""CLI surface of the observe subsystem: profile, trace-export, timeline,
and the machine-readable --json variants of kernels/detect/chaos."""

import json

from repro.cli import main

LEAKY = "blocking-chan-kubernetes-5316"


def test_profile_kernel_names_blocking_site(capsys):
    assert main(["profile", LEAKY, "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert f"target: {LEAKY}[buggy]" in out
    assert "block profile" in out
    assert "STILL BLOCKED" in out
    assert "chan.send / " in out          # the leak's primitive + site
    assert "goroutine profile" in out
    assert "metrics:" in out


def test_profile_fixed_variant_has_no_leak(capsys):
    assert main(["profile", LEAKY, "--fixed", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "STILL BLOCKED" not in out


def test_profile_flame_flag_appends_flamegraph(capsys):
    assert main(["profile", LEAKY, "--flame"]) == 0
    out = capsys.readouterr().out
    assert "flamegraph" in out
    assert "total weight:" in out


def test_profile_app_target(capsys):
    assert main(["profile", "app:miniboltdb", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "target: miniboltdb" in out


def test_profile_json_dump(capsys):
    assert main(["profile", LEAKY, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["target"] == f"{LEAKY}[buggy]"
    assert "metrics" in data and "profiles" in data
    blocked = [e for e in data["profiles"]["block"]["entries"]
               if e["still_blocked"]]
    assert blocked and blocked[0]["key"][0] == "chan.send"


def test_profile_unknown_target_errors(capsys):
    assert main(["profile", "no-such-thing"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_trace_export_writes_valid_chrome_trace(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace-export", LEAKY, "-o", str(out_path)]) == 0
    summary = capsys.readouterr().out
    assert str(out_path) in summary
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]
    assert doc["otherData"]["source"] == "repro.observe"


def test_trace_export_stdout(capsys):
    assert main(["trace-export", LEAKY]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert {"traceEvents", "displayTimeUnit", "otherData"} == set(doc)


def test_timeline_renders_lanes_and_stuck_summary(capsys):
    assert main(["timeline", LEAKY, "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert f"target: {LEAKY}[buggy] seed=0" in out
    assert "g1" in out
    assert "stuck goroutines:" in out


def test_timeline_fixed_variant_has_no_stuck_section(capsys):
    assert main(["timeline", LEAKY, "--fixed"]) == 0
    out = capsys.readouterr().out
    assert "stuck goroutines:" not in out


def test_kernels_json(capsys):
    assert main(["kernels", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert isinstance(data, list) and len(data) > 20
    by_id = {k["kernel_id"]: k for k in data}
    assert LEAKY in by_id
    assert by_id[LEAKY]["behavior"] == "blocking"
    assert {"title", "app", "subcause", "fix_strategy"} <= set(by_id[LEAKY])


def test_detect_json(capsys):
    assert main(["detect", "nonblocking-trad-docker-lost-update",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kernel"] == "nonblocking-trad-docker-lost-update"
    assert data["detectors"]["race"]["hit"] is True
    assert data["detectors"]["race"]["reports"]
    assert "builtin_deadlock" in data["detectors"]
    assert data["result"]["status"]


def test_chaos_observe_adds_metric_columns(capsys):
    code = main(["chaos", "--kernel", "blocking-mutex-boltdb-392", "--fixed",
                 "--seeds", "2", "--plan", "clock-skew", "--observe"])
    out = capsys.readouterr().out
    assert code == 0
    for column in ("Steps", "CtxSw", "BlkSteps", "PeakRun"):
        assert column in out


def test_chaos_observe_json_carries_metrics(capsys):
    code = main(["chaos", "--kernel", "blocking-mutex-boltdb-392", "--fixed",
                 "--seeds", "2", "--plan", "clock-skew", "--no-baseline",
                 "--observe", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert code == 0
    cell = data["cells"][0]
    assert cell["steps"] > 0
    assert {"switches", "blocked_events", "blocked_steps",
            "peak_runnable"} <= set(cell["metrics"])
