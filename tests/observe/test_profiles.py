"""Unit tests for profile aggregation and the text flamegraph."""

from repro.observe.profiles import GoroutineProfile, Profile, flamegraph


def test_profile_aggregates_by_key():
    p = Profile("block", ("primitive", "site"))
    p.add(("chan.send", "a.py:1"), steps=10, seconds=0.1)
    p.add(("chan.send", "a.py:1"), steps=5)
    p.add(("mutex.lock", "b.py:2"), steps=40, still_blocked=1)
    assert len(p.entries) == 2
    assert p.total_steps == 55
    top = p.top()
    assert top[0].key == ("mutex.lock", "b.py:2")
    assert top[1].count == 2 and top[1].steps == 15


def test_profile_top_is_deterministic_on_ties():
    p = Profile("x", ("k",))
    p.add(("b",), steps=5)
    p.add(("a",), steps=5)
    assert [e.key for e in p.top()] == [("a",), ("b",)]


def test_profile_render_flags_still_blocked():
    p = Profile("block", ("primitive", "site"))
    p.add(("chan.send", "leak.py:9"), steps=100, still_blocked=1)
    text = p.render()
    assert "leak.py:9" in text
    assert "STILL BLOCKED" in text


def test_empty_profile_renders():
    p = Profile("mutex", ("lock", "site"))
    assert "(no samples)" in p.render()
    assert p.to_dict()["entries"] == []


def test_goroutine_profile_groups_and_ranks_blocked_first():
    gp = GoroutineProfile()
    gp.add(1, "done", "main", "m.py:1")
    gp.add(2, "blocked:chan.send", "worker", "w.py:5")
    gp.add(3, "blocked:chan.send", "worker", "w.py:5")
    assert gp.total() == 3
    text = gp.render()
    lines = text.splitlines()
    assert "3 goroutines in 2 groups" in lines[0]
    assert "blocked:chan.send" in lines[1]  # blocked group ranks first
    assert "2 ×" in lines[1].replace("  ", " ")


def test_flamegraph_merges_prefixes_deterministically():
    stacks = [
        (("main", "produce", "chan.send"), 30),
        (("main", "consume", "chan.recv"), 10),
        (("main", "produce", "chan.send"), 5),
    ]
    text = flamegraph(stacks, width=10)
    assert "total weight: 45" in text
    # produce (35) must render before consume (10) under main.
    assert text.index("produce") < text.index("consume")
    # Same input, same output.
    assert flamegraph(stacks, width=10) == text


def test_flamegraph_empty():
    assert "(no blocked stacks recorded)" in flamegraph([])
