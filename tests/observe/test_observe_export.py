"""Chrome trace_event export validity."""

import json

import pytest

from repro import chrome_trace, chrome_trace_json, run
from repro.observe.export import metrics_json

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}


def pingpong(rt):
    ping = rt.make_chan(name="ping")
    pong = rt.make_chan(name="pong")

    def echo():
        for _ in range(3):
            ping.recv()
            pong.send(None)

    rt.go(echo, name="echo")
    for _ in range(3):
        ping.send(None)
        pong.recv()


def sleeper(rt):
    rt.go(lambda: rt.sleep(0.5), name="napper")
    rt.sleep(1.0)


def test_chrome_trace_is_valid_trace_event_json():
    result = run(pingpong, seed=0, observe=True)
    doc = json.loads(chrome_trace_json(result, result.observation))
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["seed"] == 0
    for event in doc["traceEvents"]:
        assert REQUIRED_EVENT_KEYS <= set(event), event
        assert event["ph"] in {"B", "E", "M", "i", "s", "f", "C"}, event
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float))


def test_block_spans_are_balanced_per_thread():
    result = run(pingpong, seed=0)
    doc = chrome_trace(result)
    depth = {}
    for event in doc["traceEvents"]:
        if event.get("cat") != "block":
            continue
        tid = event["tid"]
        if event["ph"] == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif event["ph"] == "E":
            depth[tid] = depth.get(tid, 0) - 1
        assert depth[tid] in (0, 1), (tid, depth)
    assert all(d == 0 for d in depth.values()), depth


def test_leaked_goroutine_span_closed_at_run_end():
    def leak(rt):
        ch = rt.make_chan()
        rt.go(lambda: ch.send(1), name="stuck")

    result = run(leak, seed=0)
    doc = chrome_trace(result)
    closers = [e for e in doc["traceEvents"]
               if e["ph"] == "E" and e["args"].get("still_blocked")]
    assert len(closers) == 1


def test_flow_arrows_pair_sends_with_recvs():
    result = run(pingpong, seed=0)
    doc = chrome_trace(result)
    starts = [e["id"] for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e["id"] for e in doc["traceEvents"] if e["ph"] == "f"]
    assert starts and sorted(starts) == sorted(finishes)
    assert len(set(starts)) == len(starts)  # ids are unique per message


def test_thread_metadata_names_every_goroutine():
    result = run(pingpong, seed=0)
    doc = chrome_trace(result)
    named = {e["tid"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {g.gid for g in result.goroutines} <= named


def test_timestamps_combine_virtual_time_and_steps():
    result = run(sleeper, seed=0)
    doc = chrome_trace(result)
    sleep_events = [e for e in doc["traceEvents"]
                    if e["ph"] == "B" and "time.sleep" in e["name"]]
    assert sleep_events
    for event in sleep_events:
        expected = (event["args"]["virtual_time"] * 1e6
                    + event["args"]["step"])
        assert event["ts"] == expected


def test_observer_contributes_counter_track():
    result = run(pingpong, seed=0, observe=True)
    doc = chrome_trace(result, result.observation)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    assert all("runnable" in e["args"] for e in counters)


def test_export_requires_kept_trace():
    result = run(pingpong, seed=0, keep_trace=False)
    with pytest.raises(ValueError):
        chrome_trace(result)


def test_memory_events_are_opt_in():
    def racy(rt):
        v = rt.shared("v", 0)
        v.add(1)

    result = run(racy, seed=0)
    lean = chrome_trace(result)
    rich = chrome_trace(result, include_memory=True)
    assert not [e for e in lean["traceEvents"] if e.get("cat") == "mem"]
    assert [e for e in rich["traceEvents"] if e.get("cat") == "mem"]


def test_metrics_json_round_trips(tmp_path):
    result = run(pingpong, seed=0, observe=True)
    dumped = json.loads(metrics_json(result.observation))
    assert dumped["run"]["status"] == "ok"
    assert "sched.steps" in dumped["metrics"]
