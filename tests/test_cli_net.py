"""CLI behavior for the network subsystem: net-demo, loadgen, chaos --net-apps."""

import json

from repro.cli import main


def test_loadgen_json_single_seed(capsys):
    assert main(["loadgen", "--clients", "2", "--requests", "5",
                 "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["requests"] == 10
    assert summary["errors"] == 0
    assert summary["status"] == "ok"
    assert summary["net"]["delivered"] == summary["net"]["sent"]


def test_loadgen_text_seed_sweep(capsys):
    assert main(["loadgen", "--clients", "2", "--requests", "4",
                 "--seeds", "2", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "seed=0" in out and "seed=1" in out
    assert "latency mean=" in out
    assert "fabric: sent=" in out


def test_loadgen_closed_loop_via_rate_zero(capsys):
    assert main(["loadgen", "--clients", "1", "--requests", "3",
                 "--rate", "0", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["requests"] == 3


def test_net_demo_json_single_seed(capsys):
    assert main(["net-demo", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["healthy"] is True
    assert summary["puts"] == 6
    assert summary["watch_events"] == 6
    assert summary["range_rows"] == 6
    assert len(summary["schedule_sha256"]) == 64
    assert len(summary["message_log_sha256"]) == 64


def test_net_demo_text_replays_identically(capsys):
    assert main(["net-demo"]) == 0
    out = capsys.readouterr().out
    assert "HEALTHY" in out
    assert "replay: identical (schedule + message log)" in out


def test_net_demo_unknown_plan_rejected(capsys):
    assert main(["net-demo", "--plan", "no-such-plan"]) == 2
    assert "unknown plan" in capsys.readouterr().err


def test_chaos_net_apps_scorecard(capsys):
    assert main(["chaos", "--net-apps", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "minietcd-cluster" in out
    assert "minigrpc-cluster" in out
    assert "partition[*2]" in out
