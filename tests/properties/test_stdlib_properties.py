"""Property-based tests: pipe conservation, context trees, errgroup."""

from hypothesis import given, settings, strategies as st

from repro import run
from repro.stdlib.errgroup import new_group
from repro.stdlib.iopipe import EOF, PipeError

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(
    chunks=st.lists(st.text(min_size=1, max_size=8), max_size=12),
    seed=st.integers(min_value=0, max_value=100),
)
def test_pipe_delivers_all_chunks_in_order(chunks, seed):
    def main(rt):
        pr, pw = rt.pipe()

        def writer():
            for chunk in chunks:
                pw.write(chunk)
            pw.close()

        rt.go(writer)
        received = []
        try:
            while True:
                received.append(pr.read())
        except EOF:
            pass
        return received

    result = run(main, seed=seed)
    assert result.status == "ok"
    assert result.main_result == chunks


@settings(**SETTINGS)
@given(
    depth=st.integers(min_value=1, max_value=6),
    cancel_level=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=50),
)
def test_context_cancellation_propagates_down_only(depth, cancel_level, seed):
    """Cancelling level K cancels every descendant, never an ancestor."""
    cancel_level = min(cancel_level, depth - 1)

    def main(rt):
        contexts = []
        cancels = []
        ctx = rt.background()
        for _ in range(depth):
            ctx, cancel = rt.with_cancel(ctx)
            contexts.append(ctx)
            cancels.append(cancel)
        cancels[cancel_level]()
        rt.sleep(1.0)  # let the watcher chain propagate
        outcome = [ctx.err() is not None for ctx in contexts]
        for cancel in cancels:
            cancel()  # release every watcher before exiting
        rt.sleep(1.0)
        return outcome

    result = run(main, seed=seed)
    assert result.status == "ok", result
    done_flags = result.main_result
    for level, done in enumerate(done_flags):
        assert done == (level >= cancel_level), (level, cancel_level, done_flags)


@settings(**SETTINGS)
@given(
    errors=st.lists(st.one_of(st.none(), st.text(min_size=1, max_size=6)),
                    min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_errgroup_returns_an_error_iff_one_occurred(errors, seed):
    def main(rt):
        group = new_group(rt)
        for err in errors:
            group.go(lambda err=err: err)
        return group.wait()

    outcome = run(main, seed=seed).main_result
    real_errors = [e for e in errors if e is not None]
    if real_errors:
        assert outcome in real_errors
    else:
        assert outcome is None


@settings(**SETTINGS)
@given(
    timers=st.lists(st.floats(min_value=0.1, max_value=5.0),
                    min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_timers_fire_in_deadline_order(timers, seed):
    def main(rt):
        fired = []
        done = rt.waitgroup()
        for i, delay in enumerate(timers):
            done.add(1)

            def waiter(i=i, delay=delay):
                rt.new_timer(delay).c.recv()
                fired.append((rt.now(), i))
                done.done()

            rt.go(waiter)
        done.wait()
        return fired

    fired = run(main, seed=seed).main_result
    times = [t for t, _i in fired]
    assert times == sorted(times)
    for fire_time, index in fired:
        assert fire_time >= timers[index]


@settings(**SETTINGS)
@given(
    values=st.lists(st.integers(min_value=-50, max_value=50), max_size=15),
    workers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_worker_pool_conserves_jobs(values, workers, seed):
    from repro.patterns import worker_pool

    def main(rt):
        return worker_pool(rt, values, lambda j: j + 1, workers=workers)

    result = run(main, seed=seed)
    assert result.status == "ok"
    assert sorted(result.main_result) == sorted((v, v + 1) for v in values)


@settings(**SETTINGS)
@given(
    values=st.lists(st.integers(), max_size=12),
    n_channels=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_fan_out_fan_in_roundtrip(values, n_channels, seed):
    from repro.patterns import fan_in, fan_out, generate

    def main(rt):
        done = rt.make_chan()
        source = generate(rt, values, done)
        legs = fan_out(rt, source, done, n_channels)
        merged = fan_in(rt, done, legs)
        got = sorted(merged)
        done.close()
        return got

    result = run(main, seed=seed)
    assert result.status == "ok"
    assert result.main_result == sorted(values)
