"""Property-based tests: mutual-exclusion and barrier invariants."""

from hypothesis import given, settings, strategies as st

from repro import run

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(
    workers=st.integers(min_value=1, max_value=5),
    iterations=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_mutex_critical_sections_never_overlap(workers, iterations, seed):
    def main(rt):
        mu = rt.mutex()
        inside = rt.shared("inside", 0)
        overlaps = rt.shared("overlaps", 0)

        def worker():
            for _ in range(iterations):
                mu.lock()
                if inside.load() != 0:
                    overlaps.add(1)
                inside.store(1)
                rt.gosched()
                inside.store(0)
                mu.unlock()

        wg = rt.waitgroup()
        for _ in range(workers):
            wg.add(1)
            rt.go(lambda: (worker(), wg.done()))
        wg.wait()
        return overlaps.peek()

    assert run(main, seed=seed).main_result == 0


@settings(**SETTINGS)
@given(
    readers=st.integers(min_value=1, max_value=4),
    writers=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=100),
)
def test_rwmutex_readers_xor_writer(readers, writers, seed):
    """Invariant: never an active writer with any reader, never two
    writers."""

    def main(rt):
        mu = rt.rwmutex()
        # Atomic bookkeeping: the instrumentation itself must not race.
        active_readers = rt.atomic_int(0)
        active_writers = rt.atomic_int(0)
        violations = rt.atomic_int(0)
        wg = rt.waitgroup()

        def check():
            if active_writers.load() > 1:
                violations.add(1)
            if active_writers.load() >= 1 and active_readers.load() > 0:
                violations.add(1)

        def reader():
            mu.rlock()
            active_readers.add(1)
            check()
            rt.gosched()
            active_readers.add(-1)
            mu.runlock()
            wg.done()

        def writer():
            mu.lock()
            active_writers.add(1)
            check()
            rt.gosched()
            active_writers.add(-1)
            mu.unlock()
            wg.done()

        for _ in range(readers):
            wg.add(1)
            rt.go(reader)
        for _ in range(writers):
            wg.add(1)
            rt.go(writer)
        wg.wait()
        return violations.load()

    assert run(main, seed=seed).main_result == 0


@settings(**SETTINGS)
@given(
    tasks=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_waitgroup_barrier_sees_all_work(tasks, seed):
    def main(rt):
        wg = rt.waitgroup()
        done = rt.atomic_int(0)
        for _ in range(tasks):
            wg.add(1)

            def task():
                done.add(1)
                wg.done()

            rt.go(task)
        wg.wait()
        return done.load()

    assert run(main, seed=seed).main_result == tasks


@settings(**SETTINGS)
@given(
    callers=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_once_runs_exactly_once_for_any_caller_count(callers, seed):
    def main(rt):
        once = rt.once()
        runs = rt.atomic_int(0)
        wg = rt.waitgroup()
        for _ in range(callers):
            wg.add(1)

            def caller():
                once.do(lambda: runs.add(1))
                wg.done()

            rt.go(caller)
        wg.wait()
        return runs.load()

    assert run(main, seed=seed).main_result == 1


@settings(**SETTINGS)
@given(
    increments=st.integers(min_value=1, max_value=20),
    workers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_atomic_counter_exact_under_any_schedule(increments, workers, seed):
    def main(rt):
        counter = rt.atomic_int(0)
        wg = rt.waitgroup()
        for _ in range(workers):
            wg.add(1)

            def worker():
                for _ in range(increments):
                    counter.add(1)
                wg.done()

            rt.go(worker)
        wg.wait()
        return counter.load()

    assert run(main, seed=seed).main_result == increments * workers
