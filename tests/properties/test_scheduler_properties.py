"""Property-based tests: scheduler determinism and result sanity."""

from hypothesis import given, settings, strategies as st

from repro import run
from repro.runtime.goroutine import GState

SETTINGS = dict(max_examples=25, deadline=None)

# A tiny random program: a list of worker scripts, each a list of actions.
action = st.sampled_from(["yield", "sleep", "send", "recv", "lock"])
script = st.lists(action, min_size=1, max_size=5)
program_spec = st.lists(script, min_size=1, max_size=4)


def _build(spec):
    def main(rt):
        ch = rt.make_chan(16)
        mu = rt.mutex()
        wg = rt.waitgroup()
        log = rt.shared("log", ())

        def worker(index, actions):
            for a in actions:
                if a == "yield":
                    rt.gosched()
                elif a == "sleep":
                    rt.sleep(0.1)
                elif a == "send":
                    ch.try_send(index)
                elif a == "recv":
                    ch.try_recv()
                elif a == "lock":
                    with mu:
                        log.update(lambda t: t + (index,))
            wg.done()

        for i, actions in enumerate(spec):
            wg.add(1)
            rt.go(worker, i, list(actions))
        wg.wait()
        return log.peek()

    return main


@settings(**SETTINGS)
@given(spec=program_spec, seed=st.integers(min_value=0, max_value=500))
def test_random_programs_terminate_cleanly(spec, seed):
    result = run(_build(spec), seed=seed)
    assert result.status == "ok"
    assert all(g.state in GState.TERMINAL for g in result.goroutines)


@settings(**SETTINGS)
@given(spec=program_spec, seed=st.integers(min_value=0, max_value=500))
def test_same_seed_reproduces_everything(spec, seed):
    main = _build(spec)
    first = run(main, seed=seed)
    second = run(main, seed=seed)
    assert first.main_result == second.main_result
    assert first.steps == second.steps
    assert first.end_time == second.end_time
    assert [e.kind for e in first.trace] == [e.kind for e in second.trace]


@settings(**SETTINGS)
@given(spec=program_spec, seed=st.integers(min_value=0, max_value=500))
def test_step_count_positive_and_bounded(spec, seed):
    result = run(_build(spec), seed=seed, max_steps=100_000)
    assert 0 < result.steps < 100_000


@settings(**SETTINGS)
@given(spec=program_spec, seed=st.integers(min_value=0, max_value=500))
def test_trace_invariants_hold(spec, seed):
    """Global trace invariants: monotone steps and virtual time, valid
    gids, and every block followed by unblock-or-kill."""
    result = run(_build(spec), seed=seed)
    trace = result.trace
    steps = [e.step for e in trace]
    times = [e.time for e in trace]
    assert steps == sorted(steps)
    assert times == sorted(times)
    known_gids = {g.gid for g in result.goroutines} | {0}
    assert {e.gid for e in trace} <= known_gids


@settings(**SETTINGS)
@given(spec=program_spec, seed=st.integers(min_value=0, max_value=500))
def test_every_goroutine_reaches_a_terminal_state(spec, seed):
    result = run(_build(spec), seed=seed)
    for g in result.goroutines:
        assert g.state in GState.TERMINAL
        assert g.created_at <= (g.ended_at if g.ended_at is not None
                                else result.end_time)


@settings(**SETTINGS)
@given(spec=program_spec,
       seeds=st.lists(st.integers(min_value=0, max_value=50), min_size=2,
                      max_size=4, unique=True))
def test_all_seeds_agree_on_final_multiset(spec, seeds):
    """The mutex-logged entries differ in order across seeds but never in
    content: scheduling must not lose or duplicate work."""
    outcomes = [sorted(run(_build(spec), seed=s).main_result) for s in seeds]
    assert all(outcome == outcomes[0] for outcome in outcomes)
