"""Property-based tests: dataset record invariants and analysis laws."""

from hypothesis import given, settings, strategies as st

from repro.dataset import go171
from repro.dataset.records import Behavior, BlockingSubCause, NonBlockingSubCause
from repro.study import lifetime

RECORDS = go171.load()


def test_every_record_internally_consistent():
    for record in RECORDS:
        if record.behavior == Behavior.BLOCKING:
            assert isinstance(record.subcause, BlockingSubCause)
        else:
            assert isinstance(record.subcause, NonBlockingSubCause)
        assert record.cause == record.subcause.cause
        assert record.lifetime_days > 0
        assert record.patch_lines >= 1
        assert record.fix_primitives
        assert record.bug_id


def test_bug_ids_unique():
    ids = [r.bug_id for r in RECORDS]
    assert len(ids) == len(set(ids))


@given(values=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1,
                       max_size=60))
@settings(deadline=None)
def test_cdf_properties_on_arbitrary_data(values):
    points = lifetime.cdf(values)
    xs = [v for v, _q in points]
    qs = [q for _v, q in points]
    assert xs == sorted(xs)
    assert qs == sorted(qs)
    assert qs[-1] == 1.0
    assert all(0 < q <= 1 for q in qs)
    assert len(points) == len(values)


@given(subset_seed=st.integers(min_value=0, max_value=1000))
@settings(deadline=None, max_examples=20)
def test_lift_on_shuffled_population_is_stable(subset_seed):
    """lift is a set statistic: order must not matter."""
    import random

    from repro.dataset.records import FixStrategy
    from repro.study import lift as lift_mod

    shuffled = list(RECORDS)
    random.Random(subset_seed).shuffle(shuffled)
    original = lift_mod.cause_strategy_lift(
        RECORDS, Behavior.BLOCKING, BlockingSubCause.MUTEX, FixStrategy.MOVE_SYNC
    )
    again = lift_mod.cause_strategy_lift(
        shuffled, Behavior.BLOCKING, BlockingSubCause.MUTEX, FixStrategy.MOVE_SYNC
    )
    assert original.lift == again.lift
