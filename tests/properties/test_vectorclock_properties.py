"""Property-based tests: vector clock lattice laws."""

from hypothesis import given, strategies as st

from repro.detect import VectorClock

clock_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=6),
    values=st.integers(min_value=0, max_value=20),
    max_size=6,
)


@given(a=clock_dicts, b=clock_dicts)
def test_join_commutative(a, b):
    left = VectorClock(a)
    left.join(VectorClock(b))
    right = VectorClock(b)
    right.join(VectorClock(a))
    assert left == right


@given(a=clock_dicts, b=clock_dicts, c=clock_dicts)
def test_join_associative(a, b, c):
    bc = VectorClock(b)
    bc.join(VectorClock(c))
    left = VectorClock(a)
    left.join(bc)

    ab = VectorClock(a)
    ab.join(VectorClock(b))
    right = ab
    right.join(VectorClock(c))
    assert left == right


@given(a=clock_dicts)
def test_join_idempotent(a):
    vc = VectorClock(a)
    vc.join(VectorClock(a))
    assert vc == VectorClock(a)


@given(a=clock_dicts, b=clock_dicts)
def test_join_is_upper_bound(a, b):
    joined = VectorClock(a)
    joined.join(VectorClock(b))
    assert VectorClock(a) <= joined
    assert VectorClock(b) <= joined


@given(a=clock_dicts, b=clock_dicts)
def test_order_antisymmetry(a, b):
    va, vb = VectorClock(a), VectorClock(b)
    if va <= vb and vb <= va:
        assert va == vb


@given(a=clock_dicts, gid=st.integers(min_value=1, max_value=6))
def test_increment_strictly_increases(a, gid):
    vc = VectorClock(a)
    before = vc.copy()
    vc.increment(gid)
    assert before <= vc
    assert not (vc <= before)


@given(a=clock_dicts, gid=st.integers(min_value=1, max_value=6))
def test_epoch_dominance_matches_components(a, gid):
    vc = VectorClock(a)
    assert vc.dominates_epoch(vc.epoch(gid))
    assert not vc.dominates_epoch((gid, vc.get(gid) + 1))


@given(a=clock_dicts, b=clock_dicts)
def test_concurrency_is_symmetric_and_irreflexive(a, b):
    va, vb = VectorClock(a), VectorClock(b)
    assert va.concurrent_with(vb) == vb.concurrent_with(va)
    assert not va.concurrent_with(va.copy())
