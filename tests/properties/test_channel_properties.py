"""Property-based tests: channels against a queue model."""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro import run
from repro.chan import recv

# Every example spins up a simulator run (threads included): keep example
# counts moderate and disable the wall-clock deadline.
SETTINGS = dict(max_examples=30, deadline=None)


@settings(**SETTINGS)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("send"), st.integers(0, 99)),
            st.tuples(st.just("recv"), st.just(0)),
        ),
        max_size=30,
    ),
)
def test_buffered_channel_matches_queue_model(capacity, ops):
    """Non-blocking sends/recvs on a buffered channel behave exactly like
    a bounded FIFO queue."""

    def main(rt):
        ch = rt.make_chan(capacity)
        model = deque()
        for op, value in ops:
            if op == "send":
                accepted = ch.try_send(value)
                model_accepts = len(model) < capacity
                assert accepted == model_accepts
                if model_accepts:
                    model.append(value)
            else:
                got, _ok, received = ch.try_recv()
                if model:
                    assert received and got == model.popleft()
                else:
                    assert not received
            assert len(ch) == len(model)
        return True

    assert run(main).main_result is True


@settings(**SETTINGS)
@given(
    values=st.lists(st.integers(), min_size=1, max_size=20),
    capacity=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_messages_conserved_across_goroutines(values, capacity, seed):
    """Every sent message is received exactly once, in FIFO order per
    sender, for any capacity and schedule."""

    def main(rt):
        ch = rt.make_chan(capacity)

        def producer():
            for v in values:
                ch.send(v)
            ch.close()

        rt.go(producer)
        return list(ch)

    assert run(main, seed=seed).main_result == values


@settings(**SETTINGS)
@given(
    n_producers=st.integers(min_value=1, max_value=4),
    per_producer=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=50),
)
def test_multi_producer_conservation(n_producers, per_producer, seed):
    def main(rt):
        ch = rt.make_chan()
        wg = rt.waitgroup()

        def producer(base):
            for i in range(per_producer):
                ch.send(base * 100 + i)
            wg.done()

        expected = []
        for p in range(n_producers):
            wg.add(1)
            rt.go(producer, p)
            expected.extend(p * 100 + i for i in range(per_producer))

        got = [ch.recv() for _ in range(n_producers * per_producer)]
        wg.wait()
        return sorted(got), sorted(expected)

    got, expected = run(main, seed=seed).main_result
    assert got == expected


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_select_never_picks_unready_case(seed):
    def main(rt):
        ready = rt.make_chan(1)
        never = rt.make_chan()
        ready.send("ok")
        index, value, _ok = rt.select(recv(never), recv(ready))
        return index, value

    assert run(main, seed=seed).main_result == (1, "ok")
