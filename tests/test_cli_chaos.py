"""CLI: --json output and the chaos subcommand."""

import json

from repro.cli import main
from repro.inject import plans


def test_run_kernel_json_single(capsys):
    assert main(["run-kernel", "blocking-mutex-boltdb-392", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kernel"] == "blocking-mutex-boltdb-392"
    assert data["variant"] == "buggy"
    assert data["status"] == "deadlock"
    assert data["manifested"] is True


def test_run_kernel_json_sweep(capsys):
    assert main(["run-kernel", "blocking-chan-docker-missing-close",
                 "--sweep", "4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["sweep"] == 4
    assert data["manifested_seeds"] == [0, 1, 2, 3]
    assert data["manifestation_rate"] == 1.0


def test_explore_json(capsys):
    assert main(["explore", "nonblocking-trad-docker-lost-update",
                 "--max-runs", "200", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["found"] is True
    assert data["runs"] >= 1
    assert isinstance(data["counterexample"], list)
    assert data["statuses"]


def test_chaos_list_plans(capsys):
    assert main(["chaos", "--list-plans"]) == 0
    out = capsys.readouterr().out
    for name in plans.REGISTRY:
        assert name in out


def test_chaos_requires_a_target(capsys):
    assert main(["chaos"]) == 2
    assert "nothing to run" in capsys.readouterr().err


def test_chaos_unknown_plan_errors(capsys):
    assert main(["chaos", "--kernel", "blocking-mutex-boltdb-392",
                 "--plan", "meteor-strike"]) == 2
    assert "unknown plan" in capsys.readouterr().err


def test_chaos_kernel_sweep_scorecard(capsys):
    code = main(["chaos", "--kernel", "blocking-chan-docker-missing-close",
                 "--seeds", "3", "--plan", "wakeup-storm"])
    out = capsys.readouterr().out
    assert code == 1  # the buggy kernel manifests: not clean
    assert "Chaos resilience scorecard" in out
    assert "baseline" in out and "wakeup-storm" in out
    assert "FAILED" in out


def test_chaos_fixed_kernel_is_clean(capsys):
    code = main(["chaos", "--kernel", "blocking-chan-docker-missing-close",
                 "--fixed", "--seeds", "3", "--plan", "wakeup-storm"])
    out = capsys.readouterr().out
    assert code == 0
    assert "CLEAN" in out and "FAILED" not in out


def test_chaos_json_output(capsys):
    code = main(["chaos", "--kernel", "blocking-mutex-boltdb-392", "--fixed",
                 "--seeds", "2", "--plan", "clock-skew", "--no-baseline",
                 "--json"])
    data = json.loads(capsys.readouterr().out)
    assert code == 0
    assert data["seeds"] == [0, 1]
    assert data["clean"] is True
    assert [cell["plan"] for cell in data["cells"]] == ["clock-skew"]


def test_chaos_plan_file_round_trip(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(plans.clock_skew().to_json())
    code = main(["chaos", "--kernel", "blocking-mutex-boltdb-392", "--fixed",
                 "--seeds", "2", "--plan-file", str(plan_path),
                 "--no-baseline", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert code == 0
    assert [cell["plan"] for cell in data["cells"]] == ["clock-skew"]
