"""The benchmark document: schema-4 fields, backend comparison, perf guard."""

from repro import bench
from repro.runtime.scheduler import resolve_backend


def test_single_cell_records_backend_and_compiled():
    row = bench.bench_single(bench.WORKLOADS["pingpong"], keep_trace=False,
                             rounds=2, repeats=1)
    assert row["backend"] == resolve_backend("coroutine")
    # `compiled` is availability; `fastops_per_run` is engagement.
    assert row["compiled"] == bench.HAS_COMPILED
    if bench.HAS_COMPILED:
        assert row["fastops_per_run"] > 0
    traced = bench.bench_single(bench.WORKLOADS["pingpong"], keep_trace=True,
                                rounds=2, repeats=1)
    # A live trace consumer makes every fast op bail to the observable
    # pure primitive — the accelerators stay loaded, but engage nothing.
    assert traced["compiled"] == bench.HAS_COMPILED
    assert traced["fastops_per_run"] == 0
    thread = bench.bench_single(bench.WORKLOADS["pingpong"], keep_trace=False,
                                rounds=2, repeats=1, backend="thread")
    assert thread["backend"] == "thread"
    # The fast ops run from goroutine context, so they engage on any
    # vehicle — only the fused drive loop is continuation-only.
    assert thread["fastops_per_run"] == row["fastops_per_run"]


def test_schema_bumped_for_the_channel_fastpath():
    assert bench.SCHEMA == 4
    assert "spin" in bench.WORKLOADS
    assert "pingpong_heavy" in bench.CHANNEL_WORKLOADS


def test_backend_comparison_section(monkeypatch):
    monkeypatch.setattr(bench, "WORKLOADS",
                        {"pingpong": bench.WORKLOADS["pingpong"]})
    doc = bench.run_backend_comparison(repeats=1)
    row = doc["workloads"]["pingpong"]
    assert row["digests_equal"] is True
    assert doc["all_digests_equal"] is True
    assert row["coroutine_backend"] == resolve_backend("coroutine")
    assert row["thread_steps_per_s"] > 0
    assert row["coroutine_steps_per_s"] > 0
    rendered = bench.render({"python": "3.11", "cpus": 1,
                             "backend": row["coroutine_backend"],
                             "compiled": row["compiled"],
                             "backends": doc})
    assert "backend comparison" in rendered
    assert "all schedule digests equal: True" in rendered


def _doc(sps_fast, sps_traced, backend="tasklet"):
    return {"single": {"pingpong": {
        "fast": {"steps_per_s": sps_fast, "backend": backend},
        "traced": {"steps_per_s": sps_traced, "backend": backend},
    }}}


def test_check_regression_flags_big_drops_only():
    baseline = _doc(100_000, 50_000)
    assert bench.check_regression(_doc(85_000, 45_000), baseline) == []
    flagged = bench.check_regression(_doc(70_000, 50_000), baseline)
    assert len(flagged) == 1
    assert "pingpong/fast" in flagged[0]
    assert "-30.0%" in flagged[0]


def test_check_regression_notes_backend_changes_and_missing_cells():
    baseline = _doc(100_000, 50_000, backend="thread")
    flagged = bench.check_regression(_doc(10_000, 50_000), baseline)
    assert "backend thread -> tasklet" in flagged[0]
    # Workloads absent from the baseline (new cells) are not regressions.
    assert bench.check_regression(
        {"single": {"brand_new": {"fast": {"steps_per_s": 1},
                                  "traced": {"steps_per_s": 1}}}},
        baseline) == []


def test_repro_cli_forwards_comparison_and_guard_flags(monkeypatch):
    """`repro bench` must pass the new flags through to bench.main."""
    from repro import cli

    captured = {}

    def fake_main(argv):
        captured["argv"] = argv
        return 0

    monkeypatch.setattr("repro.bench.main", fake_main)
    assert cli.main(["bench", "--compare-backends",
                     "--guard", "BENCH_baseline.json",
                     "--guard-threshold", "35"]) == 0
    argv = captured["argv"]
    assert "--compare-backends" in argv
    assert argv[argv.index("--guard") + 1] == "BENCH_baseline.json"
    assert argv[argv.index("--guard-threshold") + 1] == "35.0"


def test_guard_cli_exit_codes(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setattr(bench, "WORKLOADS",
                        {"pingpong": bench.WORKLOADS["pingpong"]})
    monkeypatch.setattr(bench, "run_benchmarks",
                        lambda **kw: {"schema": bench.SCHEMA,
                                      "python": "3.11", "cpus": 1,
                                      **_doc(100_000, 50_000)})
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_doc(100_000, 50_000)))
    assert bench.main(["--json", "--guard", str(good)]) == 0
    assert "perf regression guard: ok" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_doc(1_000_000, 50_000)))
    assert bench.main(["--json", "--guard", str(bad)]) == 1
    assert "perf regression guard" in capsys.readouterr().out
    assert bench.main(["--json", "--guard",
                       str(tmp_path / "missing.json")]) == 1
