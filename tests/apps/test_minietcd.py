"""minietcd end-to-end: store revisions, watches, leases, compaction."""

import pytest

from repro import run
from repro.apps.minietcd import Node, Store


def test_store_revisions_and_versions():
    def main(rt):
        store = Store(rt)
        r1 = store.put("k", "v1")
        r2 = store.put("k", "v2")
        kv = store.get("k")
        return r1, r2, kv.version, kv.create_revision, kv.mod_revision

    r1, r2, version, create, mod = run(main).main_result
    assert (r1, r2) == (1, 2)
    assert version == 2 and create == 1 and mod == 2


def test_range_by_prefix():
    def main(rt):
        store = Store(rt)
        for key in ("a/1", "a/2", "b/1"):
            store.put(key, key)
        return [kv.key for kv in store.range("a/")]

    assert run(main).main_result == ["a/1", "a/2"]


def test_delete_and_tombstone_compaction():
    def main(rt):
        store = Store(rt)
        for i in range(30):
            store.put(f"k{i}", i)
            store.delete(f"k{i}")
        dropped = store.compact(keep_last=16)
        return dropped, len(store)

    dropped, size = run(main).main_result
    assert dropped == 14 and size == 0


def test_watch_receives_matching_events_only():
    def main(rt):
        node = Node(rt)
        node.start()
        watcher = node.watch("app/")
        node.put("app/a", 1)
        node.put("other/b", 2)
        node.delete("app/a")
        events = []
        while True:
            event, _ok, got = watcher.events.try_recv()
            if not got:
                break
            events.append((event.kind, event.key))
        node.watch_hub.cancel(watcher)
        node.stop()
        return events

    assert run(main).main_result == [("PUT", "app/a"), ("DELETE", "app/a")]


def test_slow_watcher_drops_not_blocks():
    def main(rt):
        node = Node(rt)
        node.start()
        watcher = node.watch("", buffer=2)
        for i in range(5):
            node.put(f"k{i}", i)
        node.watch_hub.cancel(watcher)
        node.stop()
        return watcher.dropped.load()

    result = run(main)
    assert result.status == "ok"          # the write path never blocked
    assert result.main_result == 3        # 5 events, buffer of 2


def test_lease_expiry_deletes_attached_keys():
    def main(rt):
        node = Node(rt)
        node.start()
        lease = node.grant_lease(2.0)
        node.put("session/alice", "online", lease=lease)
        before = node.get("session/alice")
        rt.sleep(3.0)
        after = node.get("session/alice")
        node.stop()
        return before, after, node.lessor.expirations

    before, after, expired = run(main).main_result
    assert before == "online" and after is None and expired == 1


def test_keepalive_defers_expiry():
    def main(rt):
        node = Node(rt)
        node.start()
        lease = node.grant_lease(2.0)
        node.put("job/worker", "alive", lease=lease)
        for _ in range(3):
            rt.sleep(1.5)
            assert node.lessor.keepalive(lease)
        value_mid = node.get("job/worker")
        rt.sleep(3.0)  # no more keepalives: expires now
        value_end = node.get("job/worker")
        node.stop()
        return value_mid, value_end

    mid, end = run(main).main_result
    assert mid == "alive" and end is None


def test_revoke_detaches_without_delete_storm():
    def main(rt):
        node = Node(rt)
        node.start()
        lease = node.grant_lease(50.0)
        node.put("cfg/x", 1, lease=lease)
        keys = node.lessor.revoke(lease)
        still_there = node.get("cfg/x")
        node.stop()
        return keys, still_there, node.lessor.active()

    keys, still_there, active = run(main).main_result
    assert keys == ["cfg/x"] and still_there == 1 and active == 0


def test_compaction_loop_runs_on_ticker():
    def main(rt):
        node = Node(rt, compaction_interval=1.0)
        node.start()
        rt.sleep(3.5)
        node.stop()
        return node.compactions

    assert run(main).main_result == 3


def test_node_shutdown_leaves_no_leaks():
    def main(rt):
        node = Node(rt)
        node.start()
        watcher = node.watch("x/")
        node.put("x/1", 1)
        node.grant_lease(100.0)
        node.watch_hub.cancel(watcher)
        node.stop()

    for seed in range(6):
        result = run(main, seed=seed)
        assert result.status == "ok", (seed, result, [g.describe() for g in result.leaked])
