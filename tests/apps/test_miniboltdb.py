"""miniboltdb end-to-end: tx isolation, single writer, batching."""

import pytest

from repro import run
from repro.apps.miniboltdb import DB, Batcher, TxClosed


def test_update_and_view():
    def main(rt):
        db = DB(rt)
        db.update(lambda tx: tx.put("k", "v"))
        seen = []
        db.view(lambda tx: seen.append(tx.get("k")))
        return seen

    assert run(main).main_result == ["v"]


def test_readonly_tx_rejects_writes():
    def main(rt):
        db = DB(rt)
        tx = db.begin(writable=False)
        try:
            tx.put("k", 1)
        except TxClosed:
            tx.rollback()
            return "rejected"

    assert run(main).main_result == "rejected"


def test_rollback_discards_pending_writes():
    def main(rt):
        db = DB(rt)
        tx = db.begin(writable=True)
        tx.put("temp", 1)
        tx.rollback()
        out = []
        db.view(lambda tx2: out.append(tx2.get("temp")))
        return out

    assert run(main).main_result == [None]


def test_finished_tx_unusable():
    def main(rt):
        db = DB(rt)
        tx = db.begin(writable=True)
        tx.commit()
        try:
            tx.get("k")
        except TxClosed:
            return "closed"

    assert run(main).main_result == "closed"


def test_single_writer_serializes_updates():
    def main(rt):
        db = DB(rt)
        wg = rt.waitgroup()

        def writer(i):
            def body(tx):
                current = tx.get("count") or 0
                rt.sleep(0.1)  # hold the writer lock across the RMW
                tx.put("count", current + 1)

            db.update(body)
            wg.done()

        for i in range(4):
            wg.add(1)
            rt.go(writer, i)
        wg.wait()
        out = []
        db.view(lambda tx: out.append(tx.get("count")))
        return out[0]

    for seed in range(6):
        assert run(main, seed=seed).main_result == 4


def test_delete_in_tx():
    def main(rt):
        db = DB(rt)
        db.update(lambda tx: tx.put("gone", 1))
        db.update(lambda tx: tx.delete("gone"))
        return db.keys()

    assert run(main).main_result == []


def test_update_exception_rolls_back_and_releases_lock():
    def main(rt):
        db = DB(rt)

        def bad(tx):
            tx.put("half", 1)
            raise ValueError("boom")

        try:
            db.update(bad)
        except ValueError:
            pass
        db.update(lambda tx: tx.put("after", 2))  # lock must be free
        return db.keys()

    assert run(main).main_result == ["after"]


def test_grow_path_does_not_self_deadlock():
    """The BoltDB#392 lesson baked into the fixed design."""

    def main(rt):
        db = DB(rt, page_size=4)

        def fill(tx):
            for i in range(10):
                tx.put(f"k{i}", i)

        db.update(fill)
        return len(db.keys())

    result = run(main)
    assert result.status == "ok"
    assert result.main_result == 10


def test_batcher_coalesces_writers():
    def main(rt):
        db = DB(rt)
        batcher = Batcher(rt, db, max_batch=4, flush_interval=1.0)
        batcher.start()
        wg = rt.waitgroup()

        def writer(i):
            batcher.batch(lambda tx, i=i: tx.put(f"b{i}", i))
            wg.done()

        for i in range(8):
            wg.add(1)
            rt.go(writer, i)
        wg.wait()
        batcher.stop()
        rt.sleep(0.5)
        _txs, commits = db.stats()
        return len(db.keys()), commits, batcher.batches.load()

    keys, commits, batches = run(main, seed=1).main_result
    assert keys == 8
    assert batches == commits
    assert commits < 8  # coalesced: fewer transactions than writers


def test_stats_and_close():
    def main(rt):
        db = DB(rt)
        db.update(lambda tx: tx.put("x", 1))
        db.view(lambda tx: tx.get("x"))
        txs, commits = db.stats()
        db.close()
        try:
            db.begin()
        except TxClosed:
            return txs, commits, "closed"

    assert run(main).main_result == (2, 1, "closed")
