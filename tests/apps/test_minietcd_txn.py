"""minietcd transactions: atomic compare-and-swap semantics."""

import pytest

from repro import run
from repro.apps.minietcd import (
    Node,
    delete,
    get,
    key_missing,
    mod_revision_equals,
    put,
    value_equals,
)


def test_then_branch_runs_when_guards_hold():
    def main(rt):
        node = Node(rt)
        node.put("config/mode", "blue")
        response = (node.txn()
                    .if_(value_equals("config/mode", "blue"))
                    .then(put("config/mode", "green"), get("config/mode"))
                    .otherwise(put("config/alert", "conflict"))
                    .commit())
        return response.succeeded, response.results[-1], node.get("config/alert")

    succeeded, mode, alert = run(main).main_result
    assert succeeded and mode == "green" and alert is None


def test_otherwise_branch_on_failed_guard():
    def main(rt):
        node = Node(rt)
        node.put("config/mode", "red")
        response = (node.txn()
                    .if_(value_equals("config/mode", "blue"))
                    .then(put("config/mode", "green"))
                    .otherwise(get("config/mode"), delete("config/mode"))
                    .commit())
        return response.succeeded, response.results[0], node.get("config/mode")

    succeeded, seen, after = run(main).main_result
    assert not succeeded and seen == "red" and after is None


def test_key_missing_guard_enables_create_if_absent():
    def main(rt):
        node = Node(rt)
        first = (node.txn().if_(key_missing("leader"))
                 .then(put("leader", "n1")).commit())
        second = (node.txn().if_(key_missing("leader"))
                  .then(put("leader", "n2")).commit())
        return first.succeeded, second.succeeded, node.get("leader")

    assert run(main).main_result == (True, False, "n1")


def test_mod_revision_guard_is_optimistic_concurrency():
    def main(rt):
        node = Node(rt)
        rev = node.put("doc", "v1")
        ok1 = (node.txn().if_(mod_revision_equals("doc", rev))
               .then(put("doc", "v2")).commit()).succeeded
        # The same stale revision must now fail.
        ok2 = (node.txn().if_(mod_revision_equals("doc", rev))
               .then(put("doc", "v3")).commit()).succeeded
        return ok1, ok2, node.get("doc")

    assert run(main).main_result == (True, False, "v2")


def test_txn_is_atomic_under_contention():
    """Distributed-lock election: exactly one contender ever wins."""

    def main(rt):
        node = Node(rt)
        winners = rt.atomic_int(0)
        wg = rt.waitgroup()

        def contender(name):
            response = (node.txn().if_(key_missing("election/leader"))
                        .then(put("election/leader", name)).commit())
            if response.succeeded:
                winners.add(1)
            wg.done()

        for i in range(5):
            wg.add(1)
            rt.go(contender, f"node-{i}")
        wg.wait()
        return winners.load(), node.get("election/leader") is not None

    for seed in range(10):
        winners, elected = run(main, seed=seed).main_result
        assert winners == 1 and elected


def test_txn_effects_reach_watchers():
    def main(rt):
        node = Node(rt)
        watcher = node.watch("jobs/")
        (node.txn().then(put("jobs/1", "queued"), delete("jobs/0")).commit())
        events = []
        while True:
            event, _ok, got = watcher.events.try_recv()
            if not got:
                break
            events.append((event.kind, event.key))
        node.watch_hub.cancel(watcher)
        return events

    assert run(main).main_result == [("PUT", "jobs/1")]


def test_double_commit_rejected():
    def main(rt):
        node = Node(rt)
        txn = node.txn().then(put("x", 1))
        txn.commit()
        with pytest.raises(ValueError):
            txn.commit()

    assert run(main).status == "ok"


def test_invalid_compare_and_op_rejected():
    from repro.apps.minietcd.txn import Compare, Op

    with pytest.raises(ValueError):
        Compare("k", "~=", "value", 1)
    with pytest.raises(ValueError):
        Compare("k", "==", "size", 1)
    with pytest.raises(ValueError):
        Op("upsert", "k")
