"""minikube end-to-end: work queue, scheduler, replica controller."""

import pytest

from repro import run
from repro.apps.minikube import (
    ApiServer,
    Node,
    Pod,
    PodPhase,
    ReplicaSet,
    ReplicaSetController,
    Scheduler,
    WorkQueue,
)


def test_workqueue_fifo_and_dedup():
    def main(rt):
        q = WorkQueue(rt)
        q.add("a")
        q.add("b")
        q.add("a")  # deduplicated against pending
        first, _ = q.get()
        second, _ = q.get()
        q.shutdown()
        _item, down = q.get()
        return first, second, down, q.adds

    first, second, down, adds = run(main).main_result
    assert (first, second) == ("a", "b")
    assert down is True
    assert adds == 3


def test_workqueue_requeues_dirty_items():
    def main(rt):
        q = WorkQueue(rt)
        q.add("x")
        item, _ = q.get()
        q.add("x")      # arrives while x is processing -> goes dirty
        q.done(item)    # processing ends -> requeued
        item2, _ = q.get()
        q.shutdown()
        return item, item2

    assert run(main).main_result == ("x", "x")


def test_workqueue_blocks_until_add():
    def main(rt):
        q = WorkQueue(rt)

        def producer():
            rt.sleep(1.0)
            q.add("late")

        rt.go(producer)
        item, _ = q.get()
        q.shutdown()
        return item, rt.now()

    item, now = run(main).main_result
    assert item == "late" and now == pytest.approx(1.0)


def test_workqueue_shutdown_releases_blocked_workers():
    def main(rt):
        q = WorkQueue(rt)
        released = rt.atomic_int(0)

        def worker():
            _item, down = q.get()
            if down:
                released.add(1)

        for _ in range(3):
            rt.go(worker)
        rt.sleep(0.5)
        q.shutdown()
        rt.sleep(0.5)
        return released.load()

    assert run(main).main_result == 3


def test_scheduler_binds_pending_pods():
    def main(rt):
        api = ApiServer(rt)
        for i in range(2):
            api.add_node(Node(f"node-{i}", capacity=2))
        scheduler = Scheduler(rt, api)
        scheduler.start()
        for i in range(3):
            api.create_pod(Pod(f"p{i}"))
        rt.sleep(2.0)
        scheduled = api.pods(phase=PodPhase.SCHEDULED)
        placements = sorted((p.name, p.node is not None) for p in scheduled)
        scheduler.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return len(scheduled), placements, scheduler.bound

    count, placements, bound = run(main, seed=1).main_result
    assert count == 3 and bound == 3
    assert all(placed for _name, placed in placements)


def test_scheduler_respects_capacity():
    def main(rt):
        api = ApiServer(rt)
        api.add_node(Node("tiny", capacity=1))
        scheduler = Scheduler(rt, api)
        scheduler.start()
        for i in range(3):
            api.create_pod(Pod(f"p{i}", cpu=1))
        rt.sleep(2.0)
        scheduled = len(api.pods(phase=PodPhase.SCHEDULED))
        unschedulable = scheduler.unschedulable
        scheduler.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return scheduled, unschedulable

    scheduled, unschedulable = run(main, seed=4).main_result
    assert scheduled == 1
    assert unschedulable >= 2


def test_replicaset_controller_reaches_desired_count():
    def main(rt):
        api = ApiServer(rt)
        controller = ReplicaSetController(rt, api)
        controller.start()
        api.apply_replicaset(ReplicaSet("web", replicas=4))
        rt.sleep(2.0)
        owned = api.pods(owner="web")
        controller.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return len(owned), controller.created

    count, created = run(main, seed=2).main_result
    assert count == 4 and created == 4


def test_scale_down_deletes_excess_pods():
    def main(rt):
        api = ApiServer(rt)
        controller = ReplicaSetController(rt, api)
        controller.start()
        api.apply_replicaset(ReplicaSet("web", replicas=4))
        rt.sleep(2.0)
        api.apply_replicaset(ReplicaSet("web", replicas=1))
        rt.sleep(2.0)
        owned = api.pods(owner="web")
        controller.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return len(owned), controller.deleted

    count, deleted = run(main, seed=3).main_result
    assert count == 1 and deleted == 3


def test_full_control_plane_schedules_replicaset():
    def main(rt):
        api = ApiServer(rt)
        for i in range(3):
            api.add_node(Node(f"node-{i}", capacity=4))
        scheduler = Scheduler(rt, api)
        controller = ReplicaSetController(rt, api)
        scheduler.start()
        controller.start()
        api.apply_replicaset(ReplicaSet("api", replicas=5))
        rt.sleep(4.0)
        scheduled = api.pods(phase=PodPhase.SCHEDULED)
        spread = {p.node for p in scheduled}
        scheduler.stop()
        controller.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return len(scheduled), len(spread)

    for seed in range(5):
        count, spread = run(main, seed=seed).main_result
        assert count == 5, seed
        assert spread >= 2, "pods should spread across nodes"
