"""minigrpc end-to-end: unary, streaming, errors, graceful stop."""

import pytest

from repro import run
from repro.apps.minigrpc import Listener, RpcError, Server, Status, dial
from repro.apps.minigrpc.bench import WORKLOADS


def _serve(rt, name="svc"):
    listener = Listener(rt)
    server = Server(rt, name=name)
    server.register("echo", lambda p: p)
    server.register("fail", lambda p: 1 / 0)

    def naturals(payload, send):
        for i in range(payload):
            send(i * i)

    server.register_stream("squares", naturals)
    server.start(listener)
    return listener, server


def test_unary_roundtrip():
    def main(rt):
        listener, server = _serve(rt)
        client = dial(rt, listener)
        out = [client.call("echo", i) for i in range(5)]
        client.close()
        server.graceful_stop(listener)
        return out, server.served

    out, served = run(main).main_result
    assert out == list(range(5))
    assert served == 5


def test_unknown_method_not_found():
    def main(rt):
        listener, server = _serve(rt)
        client = dial(rt, listener)
        try:
            client.call("nope")
        except RpcError as exc:
            code = exc.code
        client.close()
        server.graceful_stop(listener)
        return code, server.errors

    code, errors = run(main).main_result
    assert code == Status.NOT_FOUND and errors == 1


def test_handler_exception_maps_to_internal():
    def main(rt):
        listener, server = _serve(rt)
        client = dial(rt, listener)
        with pytest.raises(RpcError) as exc_info:
            client.call("fail")
        client.close()
        server.graceful_stop(listener)
        return exc_info.value.code

    assert run(main).main_result == Status.INTERNAL


def test_server_streaming():
    def main(rt):
        listener, server = _serve(rt)
        client = dial(rt, listener)
        frames = client.collect_stream("squares", 5)
        client.close()
        server.graceful_stop(listener)
        return frames

    assert run(main).main_result == [0, 1, 4, 9, 16]


def test_call_deadline_exceeded():
    def main(rt):
        listener = Listener(rt)
        server = Server(rt)

        def slow(payload):
            rt.sleep(5.0)
            return payload

        server.register("slow", slow)
        server.start(listener)
        client = dial(rt, listener)
        with pytest.raises(RpcError) as exc_info:
            client.call("slow", 1, timeout=1.0)
        code = exc_info.value.code
        client.close()
        server.graceful_stop(listener)
        return code

    result = run(main)
    assert result.main_result == Status.CANCELLED
    # The library applies the Figure 1 fix: no handler goroutine leaks even
    # though the client gave up.
    assert result.status == "ok"


def test_concurrent_clients_isolated():
    def main(rt):
        listener, server = _serve(rt)
        results = rt.shared("results", {})
        results_mu = rt.mutex("results")
        wg = rt.waitgroup()

        def client_loop(tag):
            client = dial(rt, listener)
            values = [client.call("echo", f"{tag}-{i}") for i in range(3)]
            client.close()
            with results_mu:
                results.update(lambda d: {**d, tag: values})
            wg.done()

        for tag in ("a", "b", "c"):
            wg.add(1)
            rt.go(client_loop, tag)
        wg.wait()
        server.graceful_stop(listener)
        return results.peek()

    out = run(main, seed=5).main_result
    assert out["a"] == ["a-0", "a-1", "a-2"]
    assert len(out) == 3


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_bench_workloads_clean_under_seeds(workload):
    for seed in range(4):
        go_result = run(WORKLOADS[workload]["go"], seed=seed)
        assert go_result.status == "ok", (workload, seed, go_result)
        c_result = run(WORKLOADS[workload]["c"], seed=seed)
        assert c_result.status == "ok", (workload, seed, c_result)


def test_goroutine_population_exceeds_cstyle_threads():
    """Table 3's invariant on every workload."""
    for workload, progs in WORKLOADS.items():
        go_result = run(progs["go"], seed=1)
        c_result = run(progs["c"], seed=1)
        assert len(go_result.goroutines) > len(c_result.goroutines), workload
