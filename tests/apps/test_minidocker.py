"""minidocker end-to-end: images, container lifecycle, events, logs."""

import pytest

from repro import run
from repro.apps.minidocker import ContainerState, Daemon


def _boot(rt):
    daemon = Daemon(rt)
    daemon.start()
    daemon.images.pull("alpine", [("sha-base", 5), ("sha-app", 10)])
    return daemon


def test_image_pull_and_resolve():
    def main(rt):
        daemon = _boot(rt)
        layers = daemon.images.resolve("alpine")
        usage = daemon.images.disk_usage()
        daemon.shutdown()
        return layers, usage

    layers, usage = run(main).main_result
    assert layers == ("sha-base", "sha-app")
    assert usage == 15


def test_concurrent_pulls_share_layers():
    def main(rt):
        daemon = _boot(rt)
        wg = rt.waitgroup()

        def pull(name):
            daemon.images.pull(name, [("sha-base", 5), (f"sha-{name}", 7)])
            wg.done()

        for name in ("web", "db"):
            wg.add(1)
            rt.go(pull, name)
        wg.wait()
        usage = daemon.images.disk_usage()
        daemon.shutdown()
        return len(daemon.images), usage

    count, usage = run(main, seed=3).main_result
    assert count == 3
    assert usage == 5 + 10 + 7 + 7  # base layer stored once


def test_release_frees_unreferenced_layers():
    def main(rt):
        daemon = _boot(rt)
        freed = daemon.images.release("alpine")
        daemon.shutdown()
        return freed, daemon.images.disk_usage()

    assert run(main).main_result == (2, 0)


def test_container_lifecycle_and_exit_code():
    def main(rt):
        daemon = _boot(rt)
        container = daemon.run("alpine", "build", runtime_secs=1.0)
        running = container.status()
        code = container.wait()
        exited = container.status()
        daemon.wait_all()
        daemon.shutdown()
        return running, code, exited

    assert run(main).main_result == (
        ContainerState.RUNNING, 0, ContainerState.EXITED,
    )


def test_unknown_image_rejected():
    def main(rt):
        daemon = _boot(rt)
        try:
            daemon.create("missing:latest", "sh")
        except KeyError:
            daemon.shutdown()
            return "rejected"

    assert run(main).main_result == "rejected"


def test_logs_collected_and_streamed():
    def main(rt):
        daemon = _boot(rt)
        container = daemon.run("alpine", "chatty", runtime_secs=1.0)
        lines = container.read_logs()
        daemon.wait_all()
        daemon.shutdown()
        return lines

    lines = run(main).main_result
    assert len(lines) == 4
    assert all("log" in line for line in lines)


def test_event_bus_delivers_to_subscribers():
    def main(rt):
        daemon = _boot(rt)
        sub = daemon.subscribe()
        daemon.run("alpine", "x", runtime_secs=0.5)
        rt.sleep(0.2)
        kinds = []
        while True:
            event, _ok, got = sub.try_recv()
            if not got:
                break
            kinds.append(event.kind)
        daemon.wait_all()
        daemon.shutdown()
        return kinds

    assert run(main).main_result == ["create", "start"]


def test_multiple_containers_wait_all():
    def main(rt):
        daemon = _boot(rt)
        for i in range(4):
            daemon.run("alpine", f"job-{i}", runtime_secs=0.5 + 0.25 * i)
        daemon.wait_all()
        states = sorted(state for _cid, state in daemon.ps())
        daemon.shutdown()
        return states

    assert run(main, seed=2).main_result == [ContainerState.EXITED] * 4


def test_daemon_shutdown_is_leak_free():
    def main(rt):
        daemon = _boot(rt)
        sub = daemon.subscribe()
        daemon.run("alpine", "quick", runtime_secs=0.25).wait()
        daemon.wait_all()
        daemon.shutdown()
        _v, ok = sub.recv_ok()  # drained events; then closed
        while ok:
            _v, ok = sub.recv_ok()

    for seed in range(6):
        result = run(main, seed=seed)
        assert result.status == "ok", (seed, [g.describe() for g in result.leaked])


def test_containers_get_bridge_ips_and_release_on_exit():
    def main(rt):
        daemon = _boot(rt)
        c1 = daemon.run("alpine", "svc-a", runtime_secs=0.5)
        c2 = daemon.run("alpine", "svc-b", runtime_secs=0.5)
        live = daemon.network.endpoints("bridge")
        daemon.wait_all()
        after = daemon.network.endpoints("bridge")
        daemon.shutdown()
        return len(live), len(set(live.values())), len(after)

    live, unique_ips, after = run(main, seed=1).main_result
    assert live == 2 and unique_ips == 2
    assert after == 0  # endpoints released when containers exited


def test_network_pool_exhaustion():
    from repro.apps.minidocker import NetworkController, NetworkError

    def main(rt):
        ctl = NetworkController(rt)
        ctl.create_network("tiny", subnet_hosts=2)
        ctl.connect("tiny", "c1")
        ctl.connect("tiny", "c2")
        try:
            ctl.connect("tiny", "c3")
        except NetworkError:
            return "exhausted"

    assert run(main).main_result == "exhausted"


def test_network_remove_requires_no_endpoints():
    from repro.apps.minidocker import NetworkController, NetworkError

    def main(rt):
        ctl = NetworkController(rt)
        ctl.create_network("app")
        ctl.connect("app", "c1")
        try:
            ctl.remove_network("app")
        except NetworkError:
            pass
        ctl.disconnect("app", "c1")
        ctl.remove_network("app")
        return ctl.stats()

    networks, volumes, attachments = run(main).main_result
    assert networks == 0 and attachments == 1


def test_volume_refcounting_and_prune():
    from repro.apps.minidocker import NetworkController, NetworkError

    def main(rt):
        ctl = NetworkController(rt)
        ctl.create_volume("data")
        ctl.create_volume("scratch")
        ctl.mount("data")
        pruned = ctl.prune_volumes()
        ctl.unmount("data")
        pruned_after = ctl.prune_volumes()
        try:
            ctl.unmount("data")
        except NetworkError:
            double = "rejected"
        return pruned, pruned_after, double

    pruned, pruned_after, double = run(main).main_result
    assert pruned == ["scratch"]
    assert pruned_after == ["data"]
    assert double == "rejected"


def test_concurrent_attachments_get_distinct_ips():
    def main(rt):
        daemon = _boot(rt)
        wg = rt.waitgroup()
        for i in range(4):
            wg.add(1)

            def launch(i=i):
                daemon.run("alpine", f"burst-{i}", runtime_secs=0.5)
                wg.done()

            rt.go(launch)
        wg.wait()
        live = daemon.network.endpoints("bridge")
        daemon.wait_all()
        daemon.shutdown()
        return sorted(live.values())

    for seed in range(6):
        ips = run(main, seed=seed).main_result
        assert len(ips) == 4 and len(set(ips)) == 4
