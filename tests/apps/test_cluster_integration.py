"""Cross-app integration: the cluster example's scenario across seeds."""

import sys
from pathlib import Path

from repro import run

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "examples"))
from cluster import cluster  # noqa: E402


def test_cluster_composes_apps_leak_free():
    for seed in range(5):
        result = run(cluster, seed=seed)
        assert result.status == "ok", (
            seed, result, [g.describe() for g in result.leaked]
        )
        summary = result.main_result
        assert len(summary["watched"]) == 3
        assert summary["final"] == [
            ("app/key-0", 0), ("app/key-1", 10), ("app/key-2", 20),
        ]
        assert summary["session_after_expiry"] is None
        assert summary["audit_entries"] == 4
        assert summary["audit_batches"] <= 4  # coalescing happened


def test_cluster_watch_sees_revisions_in_order():
    result = run(cluster, seed=11)
    revisions = [rev for _k, _key, rev in result.main_result["watched"]]
    assert revisions == sorted(revisions)
