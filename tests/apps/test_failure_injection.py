"""Failure-injection scenarios across the mini-apps."""

import pytest

from repro import run
from repro.apps.minidocker import Daemon
from repro.apps.minigrpc import Connection, RpcError
from repro.apps.minikube import (
    ApiServer,
    Node,
    Pod,
    PodPhase,
    Scheduler,
)


def test_minikube_node_failure_triggers_reschedule():
    def main(rt):
        api = ApiServer(rt)
        api.add_node(Node("node-a", capacity=4))
        api.add_node(Node("node-b", capacity=4))
        scheduler = Scheduler(rt, api)
        scheduler.start()
        for i in range(3):
            api.create_pod(Pod(f"p{i}"))
        rt.sleep(2.0)
        placements_before = {p.name: p.node for p in api.pods()}

        # Kill whichever node got the most pods.
        victim = max({n for n in placements_before.values()},
                     key=lambda n: sum(v == n for v in placements_before.values()))
        evicted = api.remove_node(victim)
        rt.sleep(2.0)
        placements_after = {p.name: p.node for p in api.pods()}
        scheduler.stop()
        api.close_watchers()
        rt.sleep(0.5)
        survivor = "node-b" if victim == "node-a" else "node-a"
        return len(evicted), placements_after, survivor

    for seed in (0, 3, 5):
        evicted, after, survivor = run(main, seed=seed).main_result
        assert evicted >= 1
        assert all(node == survivor for node in after.values()), (seed, after)


def test_minikube_evicted_pods_without_capacity_stay_pending():
    def main(rt):
        api = ApiServer(rt)
        api.add_node(Node("only", capacity=2))
        scheduler = Scheduler(rt, api)
        scheduler.start()
        api.create_pod(Pod("p0"))
        api.create_pod(Pod("p1"))
        rt.sleep(1.5)
        api.remove_node("only")
        rt.sleep(1.5)
        pending = api.pods(phase=PodPhase.PENDING)
        scheduler.stop()
        api.close_watchers()
        rt.sleep(0.5)
        return len(pending)

    assert run(main, seed=1).main_result == 2


def test_minidocker_restart_policy_restarts_n_times():
    def main(rt):
        daemon = Daemon(rt)
        daemon.start()
        daemon.images.pull("crashy", [("sha", 1)])
        sub = daemon.subscribe(buffer=16)
        daemon.run_with_restart("crashy", "flaky", runtime_secs=0.5,
                                max_restarts=2)
        daemon.wait_all()
        daemon.shutdown()
        kinds = []
        while True:
            event, ok, got = sub.try_recv()
            if not got or not ok:  # drained, or the channel was closed
                break
            kinds.append(event.kind)
        return kinds

    kinds = run(main, seed=2).main_result
    assert kinds.count("restart") == 2
    assert kinds.count("start") == 3  # original + two restarts


def test_minigrpc_flow_control_window_exhaustion():
    def main(rt):
        conn = Connection(rt, queue_depth=Connection.WINDOW + 8)
        sent = 0
        try:
            for i in range(Connection.WINDOW + 1):
                from repro.apps.minigrpc.transport import Request

                conn.send_request(Request(rt, "echo", i))
                sent += 1
        except RpcError as exc:
            return sent, exc.code

    sent, code = run(main).main_result
    assert sent == Connection.WINDOW
    assert code == "UNAVAILABLE"


def test_minigrpc_frame_done_returns_credit():
    def main(rt):
        from repro.apps.minigrpc.transport import Request

        conn = Connection(rt, queue_depth=Connection.WINDOW + 8)
        for i in range(Connection.WINDOW):
            conn.send_request(Request(rt, "echo", i))
        conn.frame_done()
        conn.send_request(Request(rt, "echo", "fits-again"))
        return conn.stats()

    frames_sent, in_flight = run(main).main_result
    assert frames_sent == Connection.WINDOW + 1
    assert in_flight == Connection.WINDOW


def test_minigrpc_send_after_close_fails():
    def main(rt):
        from repro.apps.minigrpc.transport import Request

        conn = Connection(rt)
        conn.close()
        try:
            conn.send_request(Request(rt, "echo", 1))
        except RpcError as exc:
            return exc.code

    assert run(main).main_result == "UNAVAILABLE"
