"""Bolt-style nested buckets."""

import pytest

from repro import run
from repro.apps.miniboltdb import DB, BucketNotFound, root


def test_bucket_put_get_isolated_namespaces():
    def main(rt):
        db = DB(rt, page_size=64)
        out = {}

        def setup(tx):
            users = root(tx).create_bucket("users")
            posts = root(tx).create_bucket("posts")
            users.put("alice", {"id": 1})
            posts.put("alice", "a post, same key, other bucket")

        db.update(setup)

        def read(tx):
            out["user"] = root(tx).bucket("users").get("alice")
            out["post"] = root(tx).bucket("posts").get("alice")

        db.view(read)
        return out

    out = run(main).main_result
    assert out["user"] == {"id": 1}
    assert out["post"].startswith("a post")


def test_nested_sub_buckets():
    def main(rt):
        db = DB(rt, page_size=64)
        found = {}

        def setup(tx):
            users = root(tx).create_bucket("users")
            alice = users.create_bucket("alice")
            alice.put("email", "alice@example.com")

        db.update(setup)

        def read(tx):
            alice = root(tx).bucket("users").bucket("alice")
            found["email"] = alice.get("email")
            found["subbuckets"] = root(tx).bucket("users").buckets()

        db.view(read)
        return found

    found = run(main).main_result
    assert found["email"] == "alice@example.com"
    assert found["subbuckets"] == ["alice"]


def test_missing_bucket_raises_and_create_if_not_exists():
    def main(rt):
        db = DB(rt, page_size=64)
        outcomes = []

        def body(tx):
            try:
                root(tx).bucket("ghost")
            except BucketNotFound:
                outcomes.append("missing")
            bucket = root(tx).create_bucket_if_not_exists("ghost")
            bucket.put("k", 1)
            again = root(tx).create_bucket_if_not_exists("ghost")
            outcomes.append(again.get("k"))

        db.update(body)
        return outcomes

    assert run(main).main_result == ["missing", 1]


def test_duplicate_create_rejected():
    def main(rt):
        db = DB(rt, page_size=64)

        def body(tx):
            root(tx).create_bucket("twice")
            with pytest.raises(ValueError):
                root(tx).create_bucket("twice")

        db.update(body)

    assert run(main).status == "ok"


def test_cursor_iterates_keys_in_order_excluding_subbuckets():
    def main(rt):
        db = DB(rt, page_size=64)
        seen = []

        def setup(tx):
            bucket = root(tx).create_bucket("inventory")
            bucket.put("cherry", 3)
            bucket.put("apple", 1)
            bucket.put("banana", 2)
            bucket.create_bucket("meta").put("hidden", True)

        db.update(setup)
        db.view(lambda tx: seen.extend(root(tx).bucket("inventory").cursor()))
        return seen

    assert run(main).main_result == [
        ("apple", 1), ("banana", 2), ("cherry", 3),
    ]


def test_cursor_sees_pending_writes_in_same_tx():
    def main(rt):
        db = DB(rt, page_size=64)
        seen = []

        def body(tx):
            bucket = root(tx).create_bucket("b")
            bucket.put("k1", "uncommitted")
            seen.extend(bucket.cursor())

        db.update(body)
        return seen

    assert run(main).main_result == [("k1", "uncommitted")]


def test_next_sequence_monotone_per_bucket():
    def main(rt):
        db = DB(rt, page_size=64)
        ids = []

        def body(tx):
            orders = root(tx).create_bucket("orders")
            invoices = root(tx).create_bucket("invoices")
            ids.append(orders.next_sequence())
            ids.append(orders.next_sequence())
            ids.append(invoices.next_sequence())

        db.update(body)
        return ids

    assert run(main).main_result == [1, 2, 1]


def test_bucket_delete():
    def main(rt):
        db = DB(rt, page_size=64)
        out = []

        def setup(tx):
            bucket = root(tx).create_bucket("b")
            bucket.put("gone", 1)
            bucket.delete("gone")

        db.update(setup)
        db.view(lambda tx: out.append(root(tx).bucket("b").get("gone")))
        return out

    assert run(main).main_result == [None]
