"""miniroach end-to-end: MVCC visibility, txn conflicts, raft-lite."""

import pytest

from repro import run
from repro.apps.miniroach import (
    MVCCStore,
    RaftGroup,
    Transaction,
    TxnCoordinator,
    TxnStatus,
    WriteConflict,
)


def test_mvcc_snapshot_reads():
    def main(rt):
        store = MVCCStore(rt)
        t1 = store.put("k", "old")
        t2 = store.put("k", "new")
        return store.get("k", timestamp=t1), store.get("k", timestamp=t2), store.get("k")

    assert run(main).main_result == ("old", "new", "new")


def test_mvcc_scan_prefix():
    def main(rt):
        store = MVCCStore(rt)
        store.put("user/1", "a")
        store.put("user/2", "b")
        store.put("sys/x", "c")
        return store.scan("user/")

    assert run(main).main_result == [("user/1", "a"), ("user/2", "b")]


def test_intents_invisible_to_other_txns_until_commit():
    def main(rt):
        store = MVCCStore(rt)
        txn = Transaction(rt, store)
        txn.put("k", "pending")
        other_view = store.get("k")
        own_view = txn.get("k")
        txn.commit()
        committed_view = store.get("k")
        return other_view, own_view, committed_view

    assert run(main).main_result == (None, "pending", "pending")


def test_abort_discards_intents():
    def main(rt):
        store = MVCCStore(rt)
        txn = Transaction(rt, store)
        txn.put("k", "doomed")
        txn.abort()
        return store.get("k"), txn.status

    assert run(main).main_result == (None, TxnStatus.ABORTED)


def test_conflicting_intent_raises():
    def main(rt):
        store = MVCCStore(rt)
        t1 = Transaction(rt, store)
        t2 = Transaction(rt, store)
        t1.put("k", 1)
        try:
            t2.put("k", 2)
        except WriteConflict:
            t1.commit()
            t2.abort()
            return "conflict"

    assert run(main).main_result == "conflict"


def test_coordinator_retries_conflicts_to_success():
    def main(rt):
        store = MVCCStore(rt)
        coordinator = TxnCoordinator(rt, store)
        wg = rt.waitgroup()

        def increment():
            def body(txn):
                current = txn.get("counter") or 0
                txn.put("counter", current + 1)

            coordinator.run(body)
            wg.done()

        for _ in range(4):
            wg.add(1)
            rt.go(increment)
        wg.wait()
        return store.get("counter"), coordinator.commits.load()

    for seed in range(6):
        counter, commits = run(main, seed=seed).main_result
        assert commits == 4
        assert counter == 4, seed  # serializable: no lost increments


def test_gc_trims_old_versions():
    def main(rt):
        store = MVCCStore(rt)
        for i in range(6):
            store.put("hot", i)
        trimmed = store.garbage_collect(keep=2)
        return trimmed, store.get("hot")

    assert run(main).main_result == (4, 5)


def test_raft_commits_with_quorum_and_replicates():
    def main(rt):
        applied = []
        group = RaftGroup(rt, n_followers=2, apply_fn=applied.append)
        group.start()
        indices = [group.propose(f"cmd-{i}") for i in range(4)]
        rt.sleep(1.0)
        group.stop()
        rt.sleep(0.5)
        return indices, group.committed.load(), group.replicated_everywhere(4)

    indices, committed, everywhere = run(main, seed=2).main_result
    assert indices == [1, 2, 3, 4]
    assert committed == 4
    assert everywhere


def test_raft_heartbeats_tick():
    def main(rt):
        group = RaftGroup(rt, n_followers=1, heartbeat_interval=1.0)
        group.start()
        rt.sleep(4.5)
        group.stop()
        rt.sleep(0.5)
        return group.heartbeats.load()

    assert run(main).main_result == 4


def test_raft_shutdown_is_leak_free():
    def main(rt):
        group = RaftGroup(rt, n_followers=3)
        group.start()
        group.propose("only")
        group.stop()
        rt.sleep(0.5)

    for seed in range(5):
        result = run(main, seed=seed)
        assert result.status == "ok", (seed, [g.describe() for g in result.leaked])
