"""Shared test helpers."""

from __future__ import annotations

import pytest

#: Default seed sweep used to explore interleavings in tests.  Large enough
#: to make nondeterministic kernels manifest, small enough to stay fast.
SEEDS = tuple(range(12))


@pytest.fixture
def seeds():
    return SEEDS
