"""Resilience primitives: seeded backoff, retry, circuit breaker."""

import pytest

from repro import run
from repro.patterns import Backoff, CircuitBreaker, CircuitOpen, retry
from repro.runtime.errors import GoPanic


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    def main(rt):
        policy = Backoff(rt, base=0.1, factor=2.0, max_delay=0.4, jitter=0.0)
        return [policy.next_delay() for _ in range(5)]

    delays = run(main).main_result
    assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]


def test_backoff_jitter_is_deterministic_per_seed_and_name():
    def main(rt):
        a = Backoff(rt, name="alpha")
        b = Backoff(rt, name="alpha")
        c = Backoff(rt, name="beta")
        return ([a.next_delay() for _ in range(3)],
                [b.next_delay() for _ in range(3)],
                [c.next_delay() for _ in range(3)])

    first_a, first_b, first_c = run(main, seed=5).main_result
    second_a, _, _ = run(main, seed=5).main_result
    other_seed_a, _, _ = run(main, seed=6).main_result

    assert first_a == first_b          # same (seed, name): same jitter
    assert first_a == second_a         # reproducible across runs
    assert first_a != first_c          # different name: independent stream
    assert first_a != other_seed_a     # different seed: different stream


def test_backoff_jitter_stays_in_band():
    def main(rt):
        policy = Backoff(rt, base=1.0, factor=1.0, max_delay=1.0, jitter=0.5)
        return [policy.next_delay() for _ in range(20)]

    for delay in run(main).main_result:
        assert 1.0 <= delay <= 1.5


def test_backoff_reset_restarts_the_schedule():
    def main(rt):
        policy = Backoff(rt, base=0.1, jitter=0.0)
        first = policy.next_delay()
        policy.next_delay()
        policy.reset()
        return first == policy.next_delay()

    assert run(main).main_result is True


def test_backoff_sleep_advances_the_virtual_clock():
    def main(rt):
        policy = Backoff(rt, base=0.5, jitter=0.0)
        policy.sleep()
        return rt.now()

    assert run(main).main_result == pytest.approx(0.5)


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------


def test_retry_succeeds_after_transient_failures():
    def main(rt):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise GoPanic("transient")
            return "recovered"

        value = retry(rt, flaky, attempts=5)
        return (value, calls["n"], rt.now())

    value, calls, elapsed = run(main).main_result
    assert value == "recovered"
    assert calls == 3
    assert elapsed > 0  # backoff sleeps actually happened


def test_retry_exhaustion_reraises_last_error():
    def main(rt):
        def always_fails():
            raise GoPanic("still broken")

        try:
            retry(rt, always_fails, attempts=3)
        except GoPanic as exc:
            return str(exc)

    assert "still broken" in str(run(main).main_result)


def test_retry_does_not_catch_unlisted_exceptions():
    def main(rt):
        def typo():
            raise KeyError("not a simulator error")

        try:
            retry(rt, typo, attempts=5)
        except KeyError:
            return "propagated"

    assert run(main).main_result == "propagated"


def test_retry_stops_early_on_cancelled_context():
    def main(rt):
        ctx, cancel = rt.with_cancel(rt.background())
        calls = {"n": 0}

        def failing():
            calls["n"] += 1
            cancel()
            raise GoPanic("nope")

        try:
            retry(rt, failing, attempts=10, ctx=ctx)
        except GoPanic:
            pass
        return calls["n"]

    assert run(main).main_result == 1  # cancelled after the first failure


def test_retry_validates_attempts():
    def main(rt):
        with pytest.raises(ValueError):
            retry(rt, lambda: None, attempts=0)
        return True

    assert run(main).main_result is True


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def test_breaker_trips_after_threshold_and_recovers():
    def main(rt):
        breaker = CircuitBreaker(rt, threshold=2, cooldown=1.0)
        states = []

        def bad():
            raise GoPanic("down")

        for _ in range(2):
            with pytest.raises(GoPanic):
                breaker.call(bad)
        states.append(breaker.state)            # open after 2 failures

        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "unreachable")  # fails fast while open

        rt.sleep(1.5)
        states.append(breaker.state)            # half-open after cooldown
        states.append(breaker.call(lambda: "ok"))
        states.append(breaker.state)            # success closes it
        return (states, breaker.trips)

    states, trips = run(main).main_result
    assert states == ["open", "half-open", "ok", "closed"]
    assert trips == 1


def test_breaker_half_open_failure_reopens():
    def main(rt):
        breaker = CircuitBreaker(rt, threshold=1, cooldown=0.5)

        def bad():
            raise GoPanic("down")

        with pytest.raises(GoPanic):
            breaker.call(bad)
        rt.sleep(0.6)
        assert breaker.state == "half-open"
        with pytest.raises(GoPanic):
            breaker.call(bad)                   # the probe fails
        return breaker.state

    assert run(main).main_result == "open"


def test_breaker_validates_threshold():
    def main(rt):
        with pytest.raises(ValueError):
            CircuitBreaker(rt, threshold=0)
        return True

    assert run(main).main_result is True
