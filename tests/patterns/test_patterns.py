"""Concurrency patterns: correctness and leak-freedom under seed sweeps."""

import pytest

from repro import run
from repro.patterns import (
    Semaphore,
    broadcast,
    fan_in,
    fan_out,
    generate,
    or_done,
    pipeline,
    take,
    worker_pool,
)

SEEDS = range(8)


def _clean(program, seeds=SEEDS):
    """Run across seeds asserting no leaks; returns last main_result."""
    result = None
    for seed in seeds:
        result = run(program, seed=seed)
        assert result.status == "ok", (
            seed, result, [g.describe() for g in result.leaked]
        )
    return result.main_result


def test_generate_produces_and_closes():
    def main(rt):
        done = rt.make_chan()
        out = generate(rt, [1, 2, 3], done)
        values = list(out)
        done.close()
        return values

    assert _clean(main) == [1, 2, 3]


def test_generate_cancellation_does_not_leak_producer():
    def main(rt):
        done = rt.make_chan()
        out = generate(rt, range(1000), done)
        first = out.recv()
        done.close()  # abandon the rest
        return first

    assert _clean(main) == 0


def test_pipeline_applies_stages_in_order():
    def main(rt):
        done = rt.make_chan()
        out = pipeline(rt, [1, 2, 3], done,
                       lambda x: x + 1,
                       lambda x: x * 10)
        values = list(out)
        done.close()
        return values

    assert _clean(main) == [20, 30, 40]


def test_pipeline_cancellation_mid_stream():
    def main(rt):
        done = rt.make_chan()
        out = pipeline(rt, range(100), done, lambda x: x * x)
        got = take(rt, done, out, 4)
        done.close()
        return got

    assert _clean(main) == [0, 1, 4, 9]


def test_fan_out_partitions_everything():
    def main(rt):
        done = rt.make_chan()
        source = generate(rt, range(9), done)
        outs = fan_out(rt, source, done, 3)
        collected = rt.shared("collected", ())
        mu = rt.mutex()
        wg = rt.waitgroup()

        def drain(ch):
            for value in ch:
                with mu:
                    collected.update(lambda t: t + (value,))
            wg.done()

        for ch in outs:
            wg.add(1)
            rt.go(drain, ch)
        wg.wait()
        done.close()
        return sorted(collected.peek())

    assert _clean(main) == list(range(9))


def test_fan_in_merges_and_closes_once_all_inputs_end():
    def main(rt):
        done = rt.make_chan()
        sources = [generate(rt, [i * 10 + j for j in range(3)], done)
                   for i in range(3)]
        merged = fan_in(rt, done, sources)
        values = sorted(merged)
        done.close()
        return values

    assert _clean(main) == sorted(
        i * 10 + j for i in range(3) for j in range(3)
    )


def test_or_done_unblocks_on_cancellation():
    def main(rt):
        done = rt.make_chan()
        never = rt.make_chan()  # nobody ever sends
        wrapped = or_done(rt, done, never)

        def canceller():
            rt.sleep(0.5)
            done.close()

        rt.go(canceller)
        _v, ok = wrapped.recv_ok()
        return ok

    assert _clean(main) is False


def test_worker_pool_processes_every_job():
    def main(rt):
        results = worker_pool(rt, range(10), lambda j: j * j, workers=3)
        return sorted(results)

    assert _clean(main) == [(j, j * j) for j in range(10)]


def test_worker_pool_bounds_concurrency():
    def main(rt):
        active = rt.atomic_int(0)
        peak = rt.atomic_int(0)

        def job(j):
            n = active.add(1)
            if n > peak.load():
                peak.store(n)
            rt.sleep(0.1)
            active.add(-1)
            return j

        worker_pool(rt, range(12), job, workers=3)
        return peak.load()

    for seed in SEEDS:
        peak = run(main, seed=seed).main_result
        assert 1 <= peak <= 3, peak


def test_semaphore_bounds_and_context_manager():
    def main(rt):
        sem = Semaphore(rt, permits=2)
        peak = rt.atomic_int(0)
        active = rt.atomic_int(0)
        wg = rt.waitgroup()

        def worker():
            with sem:
                n = active.add(1)
                if n > peak.load():
                    peak.store(n)
                rt.sleep(0.1)
                active.add(-1)
            wg.done()

        for _ in range(6):
            wg.add(1)
            rt.go(worker)
        wg.wait()
        return peak.load(), sem.in_use()

    for seed in SEEDS:
        peak, in_use = run(main, seed=seed).main_result
        assert peak <= 2 and in_use == 0


def test_semaphore_misuse_rejected():
    def main(rt):
        sem = Semaphore(rt, permits=1)
        with pytest.raises(ValueError):
            sem.release()
        with pytest.raises(ValueError):
            Semaphore(rt, permits=0)
        assert sem.try_acquire() is True
        assert sem.try_acquire() is False
        sem.release()

    assert run(main).status == "ok"


def test_broadcast_copies_to_every_subscriber():
    def main(rt):
        done = rt.make_chan()
        source = generate(rt, ["a", "b"], done)
        subs = broadcast(rt, source, done, subscribers=3)
        seen = [list(sub) for sub in subs]
        done.close()
        return seen

    assert _clean(main) == [["a", "b"]] * 3
