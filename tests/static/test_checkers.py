"""Per-checker behavior on representative corpus kernels.

Each case pins the *rule* a kernel's buggy variant must trip and
asserts its fixed variant scans clean — so a checker regression shows
up as a named rule, not just a scorecard dip.
"""

import pytest

from repro.bugs.registry import get
from repro.dataset.labels import RACY_FIXED_KERNELS
from repro.static import analyze_program

LOCKGRAPH_CASES = [
    ("blocking-mutex-docker-double-lock", "double-lock"),
    ("blocking-mutex-etcd-missing-unlock", "forgotten-unlock"),
    ("blocking-mutex-kubernetes-abba", "abba-cycle"),
    ("blocking-rwmutex-cockroach-upgrade", "rlock-upgrade"),
    ("blocking-rwmutex-docker-reentrant-rlock", "rlock-reentrant"),
    ("blocking-chanmix-docker-send-under-lock", "chan-under-lock"),
    ("blocking-wait-grpc-wait-under-lock", "wait-under-lock"),
]

CHANSHAPE_CASES = [
    ("blocking-chan-docker-missing-close", "range-no-close"),
    ("blocking-chan-cockroach-nil-channel", "nil-chan-op"),
    ("blocking-chan-etcd-error-path-no-send", "recv-no-sender"),
    ("blocking-chan-kubernetes-5316", "unbuffered-send-abandoned"),
    ("blocking-chan-cockroach-missing-case", "select-no-live-case"),
    ("blocking-msglib-cockroach-ctx-no-cancel", "ctx-cancel-leak"),
    ("blocking-msglib-docker-pipe-writer", "pipe-writer-stuck"),
    ("blocking-wait-kubernetes-cond-missed-signal", "cond-no-signal"),
    ("nonblocking-chan-docker-24007", "racy-close"),
    ("nonblocking-chan-grpc-send-on-closed", "close-then-send"),
    ("nonblocking-chan-cockroach-default-busyloop", "select-default-poll"),
    ("nonblocking-chan-etcd-select-ticker", "select-tick-vs-stop"),
    ("nonblocking-wg-docker-done-twice", "wg-extra-done"),
    ("nonblocking-wg-etcd-6371", "wg-add-concurrent-wait"),
    ("nonblocking-msglib-grpc-timer-zero", "timer-zero-duration"),
]

SHAREDRACE_CASES = [
    ("nonblocking-trad-docker-lost-update", "lockset-race"),
    ("nonblocking-anon-grpc-index-capture", "lockset-race"),
    ("nonblocking-trad-kubernetes-order-violation", "order-violation"),
    ("nonblocking-trad-etcd-split-critical-section",
     "split-critical-section"),
    ("nonblocking-lib-etcd-7816", "lockset-race"),
]


@pytest.mark.parametrize(
    "kernel_id,rule",
    LOCKGRAPH_CASES + CHANSHAPE_CASES + SHAREDRACE_CASES,
)
def test_buggy_trips_the_expected_rule(kernel_id, rule):
    report = analyze_program(get(kernel_id), "buggy")
    assert rule in report.rules(), (
        f"{kernel_id} buggy: expected {rule!r}, got {report.rules()}")


@pytest.mark.parametrize(
    "kernel_id",
    [kid for kid, _ in LOCKGRAPH_CASES + CHANSHAPE_CASES + SHAREDRACE_CASES
     if kid not in RACY_FIXED_KERNELS],
)
def test_fixed_variant_scans_clean(kernel_id):
    report = analyze_program(get(kernel_id), "fixed")
    assert not report.found, (
        f"{kernel_id} fixed: false positive {report.rules()}")


def test_findings_name_checker_rule_and_location():
    report = analyze_program(get("blocking-mutex-kubernetes-abba"), "buggy")
    assert report.found
    for finding in report.findings:
        assert finding.checker in {"lockgraph", "chanshape", "sharedrace",
                                   "capture"}
        assert finding.rule and finding.message
        assert finding.path.startswith("blocking-mutex-kubernetes-abba")
    assert "abba-cycle" in report.render()
