"""The corpus-wide static scorecard against the ground-truth labels."""

from repro.dataset.labels import RACY_FIXED_KERNELS
from repro.static import (
    build_static_scorecard,
    render_static_scorecard,
    scan_apps,
    scorecard_dict,
    static_precision,
    static_recall,
)


def test_scorecard_covers_the_corpus_and_hits_the_floors():
    rows = build_static_scorecard()
    assert len(rows) >= 54
    assert static_recall(rows) >= 0.8
    assert static_precision(rows) >= 0.8
    # Every scan is milliseconds; the full corpus stays well under the
    # cost of a single dynamic run sweep.
    assert sum(r.wall_ms for r in rows) < 5000


def test_rows_score_against_dataset_labels():
    rows = build_static_scorecard()
    by_id = {r.kernel_id: r for r in rows}
    # Known-racy fixed variants are expected (and scored) as flagged.
    for kid in RACY_FIXED_KERNELS:
        row = by_id[kid]
        assert not row.fixed_expected_clean
        assert row.fixed_flagged and row.fixed_ok
        assert row.verdict == "caught"
    clean = [r for r in rows if r.fixed_expected_clean]
    assert all(r.verdict in {"caught", "missed", "caught/fixed-noisy"}
               for r in rows)
    assert any(not r.fixed_flagged for r in clean)


def test_scorecard_dict_shape_and_apps_section():
    rows = build_static_scorecard()
    apps = scan_apps()
    document = scorecard_dict(rows, apps)
    for key in ("kernels", "caught", "missed", "false_positives", "recall",
                "precision", "wall_ms_total", "checker_seconds", "rows",
                "apps"):
        assert key in document, key
    assert document["kernels"] == len(rows)
    assert set(document["checker_seconds"]) >= {"interp", "lockgraph",
                                                "chanshape", "sharedrace",
                                                "capture"}
    assert document["apps"]["clean"] is True
    row = document["rows"][0]
    for key in ("kernel_id", "behavior", "subcause", "buggy_flagged",
                "fixed_flagged", "buggy_rules", "fixed_rules", "verdict",
                "wall_ms"):
        assert key in row, key


def test_render_mentions_the_headline_numbers():
    rows = build_static_scorecard()
    text = render_static_scorecard(rows, scan_apps())
    assert "recall" in text and "precision" in text
    assert "mini-apps" in text
    for row in rows[:3]:
        assert row.kernel_id in text
