"""Parity: whatever the dynamic or predictive tiers catch, static flags.

Satellite contract from the issue: for every kernel where the dynamic
detectors fire (over manifestation sweeps) or the predictive analyzer
fires (on one recorded run), the zero-execution static tier must flag
the buggy variant too — or the kernel must be listed here as
out-of-scope with a reason.  Fixed variants must stay clean, except the
pinned known-racy ones, whose residual race the dynamic detector
corroborates below.

The list is currently empty: static covers everything the other two
tiers catch, including the two predict-only kernels (shadow-word
eviction via the lockset race checker, WaitGroup Add-inside-child via
the wg rules).  If a future kernel legitimately cannot be flagged
without executing (e.g. the bug hides behind arithmetic no abstract
path covers), add it with an honest reason rather than weakening the
assertion.
"""

from repro import run
from repro.bugs.registry import get
from repro.dataset.labels import RACY_FIXED_KERNELS
from repro.detect import RaceDetector
from repro.predict import build_predict_scorecard
from repro.static import build_static_scorecard

#: kernel_id -> why static analysis cannot see this one.
OUT_OF_SCOPE = {}

RUNS_PER_KERNEL = 15


def test_static_covers_every_dynamic_and_predictive_detection():
    predict_rows = build_predict_scorecard(runs_per_kernel=RUNS_PER_KERNEL)
    static_rows = build_static_scorecard()
    static_by_id = {r.kernel_id: r for r in static_rows}
    assert set(static_by_id) >= {r.kernel_id for r in predict_rows}

    missed = [r.kernel_id for r in predict_rows
              if (r.dynamic_hit or r.predicted_hit)
              and not static_by_id[r.kernel_id].buggy_flagged
              and r.kernel_id not in OUT_OF_SCOPE]
    assert not missed, (
        "dynamic/predict tiers fire but static is silent (add to "
        f"OUT_OF_SCOPE only with a real reason): {missed}")

    # Out-of-scope entries must stay honest: drop them once flagged.
    stale = [kid for kid in OUT_OF_SCOPE
             if static_by_id.get(kid) and static_by_id[kid].buggy_flagged]
    assert not stale, f"now flagged, remove from OUT_OF_SCOPE: {stale}"


def test_fixed_variants_stay_clean_except_pinned_racy_ones():
    for row in build_static_scorecard():
        if row.kernel_id in RACY_FIXED_KERNELS:
            assert row.fixed_flagged, (
                f"{row.kernel_id} fixed is pinned known-racy but static "
                "scans it clean — either the kernel changed or the race "
                "checker regressed")
        else:
            assert not row.fixed_flagged, (
                f"{row.kernel_id} fixed: static false positive "
                f"{row.fixed_rules}")


def test_pinned_racy_fixed_kernels_really_race_dynamically():
    # The ground truth behind RACY_FIXED_KERNELS: their fixed variants
    # still tally results through deliberately non-atomic SharedVar.add
    # from concurrent goroutines.  The dynamic race detector agrees, so
    # static flagging them is a true positive, not noise.
    for kid in sorted(RACY_FIXED_KERNELS):
        kernel = get(kid)
        hits = 0
        for seed in range(5):
            det = RaceDetector()
            result = run(kernel.fixed, seed=seed, observers=[det],
                         **kernel.run_kwargs)
            det.finish(result)
            hits += det.detected
        assert hits, f"{kid} fixed never raced dynamically"
