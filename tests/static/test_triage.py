"""Static triage shares one verdict shape with the predictive screen."""

from repro.bugs.registry import get
from repro.detect.triage import TriageVerdict, order_sweep_queue
from repro.static import triage_kernel, triage_report, triage_sweep


def test_static_and_predict_verdicts_share_the_schema():
    from repro.predict import TriageVerdict as PredictVerdict
    from repro.predict import triage_kernel as predict_triage

    assert PredictVerdict is TriageVerdict

    kernel = get("blocking-mutex-kubernetes-abba")
    static_verdict = triage_kernel(kernel)
    predict_verdict, _seed = None, None
    predict_verdict = predict_triage(kernel)
    assert set(static_verdict.to_dict()) == set(predict_verdict.to_dict())
    assert static_verdict.source == "static"
    assert predict_verdict.source == "predict"


def test_buggy_flags_and_fixed_skips_without_any_execution():
    kernel = get("blocking-chan-docker-missing-close")
    dirty = triage_kernel(kernel)
    clean = triage_kernel(kernel, fixed=True)
    assert dirty.needs_search and "chanshape" in dirty.families
    assert not clean.needs_search and clean.families == ()


def test_sweep_orders_flagged_targets_first():
    kernels = [get("blocking-mutex-kubernetes-abba"),
               get("blocking-chan-docker-missing-close")]
    dirty = triage_sweep(kernels)
    assert all(v.needs_search for v in dirty)

    mixed = [triage_kernel(kernels[0], fixed=True),
             triage_kernel(kernels[1])]
    ordered = order_sweep_queue(mixed)
    assert ordered[0].needs_search and not ordered[-1].needs_search


def test_triage_report_round_trips_families():
    from repro.static import analyze_program

    report = analyze_program(get("nonblocking-trad-docker-lost-update"),
                             "buggy")
    verdict = triage_report(report)
    assert verdict.needs_search
    assert verdict.families == tuple(sorted(report.by_checker()))
    assert verdict.report is report
