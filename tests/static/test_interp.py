"""The abstract interpreter: kernel class -> whole-program summary model."""

from repro.bugs.registry import get
from repro.static import MANY, ONCE, build_model

KNOWN_OP_KINDS = {
    "acquire", "release", "send", "recv", "recv_ok", "try_send", "try_recv",
    "close", "range", "select", "wg_add", "wg_done", "wg_wait", "spawn",
    "load", "store", "rmw", "cond_wait", "cond_signal", "cond_broadcast",
    "pipe_read", "pipe_write", "pipe_close", "cancel", "lib_use", "timer_new",
}


def test_double_lock_kernel_model_shape():
    model = build_model(get("blocking-mutex-docker-double-lock"), "buggy")
    main = model.threads[0]
    assert main.key == "main"
    assert main.mult is ONCE
    ops = [op for path in main.paths for op in path.ops]
    acquires = [op for op in ops if op.kind == "acquire"]
    assert acquires, "no acquire recorded for a mutex kernel"
    # The helper re-locks while the entry point still holds the mutex:
    # the second acquire must carry the first lock in its lockset.
    assert any(op.obj in {mu for mu, _ in op.lockset} for op in acquires)


def test_fixed_variant_produces_a_distinct_model():
    kernel = get("blocking-mutex-docker-double-lock")
    buggy = build_model(kernel, "buggy")
    fixed = build_model(kernel, "fixed")
    def held_reacquire(model):
        return any(op.obj in {mu for mu, _ in op.lockset}
                   for t in model.threads for p in t.paths for op in p.ops
                   if op.kind == "acquire")
    assert held_reacquire(buggy)
    assert not held_reacquire(fixed)


def test_spawned_threads_and_loop_multiplicity():
    model = build_model(get("nonblocking-anon-grpc-index-capture"), "buggy")
    keys = {t.key for t in model.threads}
    assert "main" in keys and len(keys) > 1
    # Probes are spawned from a for loop: the child thread runs MANY times.
    assert any(t.mult is MANY for t in model.threads if t.key != "main")
    spawns = [op for t in model.threads for p in t.paths for op in p.ops
              if op.kind == "spawn"]
    assert spawns and all(op.detail in keys for op in spawns)


def test_op_vocabulary_is_closed():
    # Checkers pattern-match op.kind strings; an unknown kind would be
    # silently invisible to every checker.
    for kid in ("blocking-chan-docker-missing-close",
                "blocking-wait-kubernetes-cond-missed-signal",
                "nonblocking-msglib-grpc-timer-zero",
                "blocking-msglib-docker-pipe-writer"):
        model = build_model(get(kid), "buggy")
        for thread in model.threads:
            for path in thread.paths:
                for op in path.ops:
                    assert op.kind in KNOWN_OP_KINDS, (kid, op.kind)


def test_interp_parse_is_cached_per_class():
    from repro.static.interp import _INTERP_CACHE

    kernel = get("blocking-mutex-kubernetes-abba")
    build_model(kernel, "buggy")
    first = _INTERP_CACHE[kernel if isinstance(kernel, type)
                          else type(kernel)]
    build_model(kernel, "fixed")
    second = _INTERP_CACHE[kernel if isinstance(kernel, type)
                           else type(kernel)]
    assert first is second
