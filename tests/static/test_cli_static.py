"""`repro static` CLI behavior."""

import json

from repro.cli import main


def test_static_kernel_text_output(capsys):
    assert main(["static", "blocking-chan-docker-missing-close"]) == 1
    out = capsys.readouterr().out
    assert "range-no-close" in out
    assert "program mode" in out


def test_static_fixed_variant_is_clean(capsys):
    assert main(["static", "blocking-chan-docker-missing-close",
                 "--fixed"]) == 0
    assert "clean" in capsys.readouterr().out


def test_static_json_payload(capsys):
    assert main(["static", "blocking-mutex-kubernetes-abba", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["found"] is True
    assert payload["mode"] == "program"
    rules = {f["rule"] for f in payload["findings"]}
    assert "abba-cycle" in rules
    assert set(payload["timings"]) >= {"interp", "lockgraph", "chanshape",
                                       "sharedrace", "capture"}


def test_static_triage_verdicts(capsys):
    assert main(["static", "blocking-mutex-kubernetes-abba",
                 "--triage", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["needs_search"] is True
    assert payload["source"] == "static"

    assert main(["static", "blocking-mutex-kubernetes-abba",
                 "--fixed", "--triage"]) == 0
    assert "skip schedule search" in capsys.readouterr().out


def test_static_module_mode_scans_paths(tmp_path, capsys):
    bad = tmp_path / "figure8.py"
    bad.write_text(
        "def serve(rt, items):\n"
        "    for item in items:\n"
        "        rt.go(lambda: print(item))\n",
        encoding="utf-8")
    assert main(["static", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "loop-var-capture" in out
    assert "module mode" in out


def test_static_scorecard_passes_on_the_corpus(capsys):
    assert main(["static", "--scorecard"]) == 0
    out = capsys.readouterr().out
    assert "recall" in out and "precision" in out


def test_static_scorecard_json(capsys):
    assert main(["static", "--scorecard", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kernels"] >= 54
    assert payload["recall"] >= 0.8
    assert payload["apps"]["clean"] is True


def test_static_unknown_target_fails_cleanly(capsys):
    assert main(["static", "no-such-kernel"]) == 2
    assert "unknown kernel or path" in capsys.readouterr().err


def test_static_without_target_or_mode_errors(capsys):
    assert main(["static"]) == 2
    assert "give a kernel id" in capsys.readouterr().err
