"""ChaosHarness: targets, cells, the sweep grid, and the scorecard."""

from repro.inject import (
    ChaosHarness,
    ChaosTarget,
    kernel_targets,
    manifestation_rate,
    plans,
)
from repro.bugs import registry


def _ok_program(rt):
    ch = rt.make_chan(1, name="ok-ch")
    rt.go(lambda: ch.send("done"), name="worker")
    return ch.recv() == "done"


def _fragile_program(rt):
    """Deadlocks whenever its helper is killed."""
    ch = rt.make_chan(0, name="fragile")

    def helper():
        rt.sleep(1.0)
        ch.send(1)

    rt.go(helper, name="helper")
    return ch.recv() == 1


def test_target_from_program_runs_and_scores():
    target = ChaosTarget.from_program("toy", _ok_program)
    result = target.runner(0, None)
    assert target.ok(result)
    assert target.kind == "app"


def test_run_cell_counts_failures_per_seed():
    harness = ChaosHarness(seeds=range(4))
    target = ChaosTarget.from_program("fragile", _fragile_program)
    clean = harness.run_cell(target, None)
    assert clean.clean and clean.runs == 4 and clean.plan == "baseline"

    broken = harness.run_cell(
        target, plans.kill_goroutine("helper", at_step=2))
    assert not broken.clean
    assert broken.failures == [0, 1, 2, 3]
    assert broken.failure_rate == 1.0
    assert broken.faults_fired == 4
    assert broken.statuses["deadlock"] == 4


def test_sweep_grid_shape_and_to_dict():
    harness = ChaosHarness(seeds=range(2))
    targets = [ChaosTarget.from_program("toy", _ok_program)]
    cells = harness.sweep(targets, plans=[plans.wakeup_storm()])
    assert [cell.plan for cell in cells] == ["baseline", "wakeup-storm"]

    data = harness.to_dict(cells)
    assert data["seeds"] == [0, 1]
    assert data["clean"] is True
    assert {cell["plan"] for cell in data["cells"]} == {"baseline",
                                                        "wakeup-storm"}


def test_scorecard_renders_verdicts():
    harness = ChaosHarness(seeds=range(2))
    harness.sweep([ChaosTarget.from_program("toy", _ok_program)],
                  plans=[plans.clock_skew()])
    card = harness.scorecard()
    assert "Chaos resilience scorecard" in card
    assert "CLEAN" in card and "toy" in card


def test_kernel_target_ok_means_not_manifested():
    kernel = registry.get("blocking-chan-docker-missing-close")
    [target] = kernel_targets(["blocking-chan-docker-missing-close"],
                              variant="buggy")
    result = target.runner(0, None)
    assert target.ok(result) == (not kernel.manifested(result))
    assert target.kind == "kernel-buggy"

    fixed_target = ChaosTarget.from_kernel(kernel, variant="fixed")
    assert fixed_target.ok(fixed_target.runner(0, None))


def test_manifestation_rate_bounds():
    kernel = registry.get("blocking-chan-docker-missing-close")
    rate = manifestation_rate(kernel, range(4))
    assert rate == 1.0  # manifests on every seed
    fixed_rate = manifestation_rate(kernel, range(4), variant="fixed")
    assert fixed_rate == 0.0
