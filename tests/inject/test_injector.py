"""Injector semantics: each fault action observable from inside a program."""

import pytest

from repro import run
from repro.inject import Fault, FaultPlan
from repro.inject import plans
from repro.runtime.errors import GoPanic
from repro.runtime.trace import EventKind


def _plan(*faults, name="test"):
    return FaultPlan(name=name, faults=tuple(faults))


# ----------------------------------------------------------------------
# Goroutine faults
# ----------------------------------------------------------------------


def test_kill_leaves_peers_blocked_forever():
    """Killing the sender of an unbuffered channel models the paper's
    'partner goroutine died' blocking bugs: the receiver leaks."""

    def main(rt):
        ch = rt.make_chan(0, name="handoff")

        def sender():
            rt.sleep(10.0)  # parked long enough for the kill to land
            ch.send(1)

        rt.go(sender, name="sender")
        return ch.recv()

    baseline = run(main, seed=0)
    assert baseline.status == "ok" and baseline.main_result == 1

    result = run(main, seed=0, inject=plans.kill_goroutine("sender", at_step=3))
    assert result.status == "deadlock"
    assert [r.action for r in result.injected] == ["kill"]
    assert "sender" in result.injected[0].victim


def test_panic_injection_raises_gopanic_in_victim():
    def main(rt):
        caught = rt.atomic_int(0, name="caught")

        def worker():
            try:
                rt.sleep(5.0)
            except GoPanic:
                caught.add(1)

        rt.go(worker, name="worker")
        rt.sleep(1.0)
        return caught.load()

    result = run(main, seed=0,
                 inject=plans.panic_goroutine("worker", at_step=3))
    assert result.status == "ok"
    assert result.main_result == 1
    assert [r.action for r in result.injected] == ["panic"]


def test_wakeup_is_harmless_under_wait_loop_discipline():
    """Spurious wakeups may only add interleavings: a mutex-guarded counter
    still ends up exact."""

    def main(rt):
        mu = rt.mutex("mu")
        wg = rt.waitgroup("wg")
        box = {"n": 0}

        def worker():
            for _ in range(5):
                with mu:
                    box["n"] += 1
                rt.gosched()
            wg.done()

        for i in range(4):
            wg.add(1)
            rt.go(worker, name=f"worker-{i}")
        wg.wait()
        return box["n"]

    result = run(main, seed=1,
                 inject=plans.wakeup_storm(every=3, probability=1.0))
    assert result.status == "ok"
    assert result.main_result == 20
    assert any(r.action == "wakeup" for r in result.injected)


def test_delay_parks_runnable_goroutine_but_preserves_results():
    def main(rt):
        ch = rt.make_chan(4, name="out")

        def producer():
            for i in range(4):
                ch.send(i)

        rt.go(producer, name="producer")
        return [ch.recv() for _ in range(4)]

    result = run(main, seed=0,
                 inject=_plan(Fault("delay", target="producer", every=2,
                                    value=0.01, times=3)))
    assert result.status == "ok"
    assert result.main_result == [0, 1, 2, 3]
    assert sum(1 for r in result.injected if r.action == "delay") >= 1


# ----------------------------------------------------------------------
# Environment faults
# ----------------------------------------------------------------------


def test_chan_close_panics_unhardened_sender():
    def main(rt):
        ch = rt.make_chan(2, name="pipe")

        def sender():
            for i in range(50):
                ch.send(i)

        rt.go(sender, name="sender")
        for _ in range(50):
            ch.recv()

    result = run(main, seed=0,
                 inject=plans.close_channels("pipe", at_step=10))
    assert result.status == "panic"
    assert "closed" in str(result.panic_value)
    assert [r.action for r in result.injected] == ["chan_close"]


def test_chan_fill_makes_assumed_nonblocking_send_block():
    """The paper's buffered-channel misuse: capacity sized to the number of
    sends, so sends 'cannot block' — until chaos stuffs the buffer."""

    def main(rt):
        ch = rt.make_chan(2, name="results")

        def worker():
            rt.sleep(0.2)  # the fill lands while we are parked here
            ch.send("late")  # blocks forever once the buffer was stuffed

        rt.go(worker, name="worker")
        rt.sleep(1.0)
        return True

    result = run(main, seed=0,
                 inject=plans.fill_channels("results", at_step=2, value="junk"))
    assert result.status == "leak"
    assert any("chan.send" in g.describe() for g in result.leaked)
    record = result.injected[0]
    assert record.action == "chan_fill" and record.detail["stuffed"] >= 1


def test_cancel_storm_cancels_live_contexts():
    def main(rt):
        ctx, _cancel = rt.with_cancel(rt.background())

        def waiter():
            ctx.done().recv()

        rt.go(waiter, name="waiter")
        rt.sleep(5.0)
        return ctx.err() is not None

    result = run(main, seed=0,
                 inject=_plan(Fault("cancel_ctx", after_time=1.0)))
    assert result.status == "ok"
    assert result.main_result is True
    assert [r.action for r in result.injected] == ["cancel_ctx"]


def test_clock_jump_expires_timeout_early():
    def main(rt):
        timer = rt.new_timer(60.0)
        timer.c.recv()
        return rt.now()

    result = run(main, seed=0, inject=plans.clock_jump(100.0, after_time=0.0))
    assert result.status == "ok"
    assert result.main_result >= 60.0
    jump = [r for r in result.injected if r.action == "clock_jump"]
    assert jump and jump[0].detail["timers_fired"] >= 1


# ----------------------------------------------------------------------
# Trigger bookkeeping
# ----------------------------------------------------------------------


def test_times_budget_caps_firings():
    def main(rt):
        def spin():
            for _ in range(100):
                rt.gosched()

        rt.go(spin, name="spin")
        for _ in range(100):
            rt.gosched()

    plan = _plan(Fault("wakeup", every=5, times=2))
    result = run(main, seed=0, inject=plans.delay_storm(
        every=3, probability=1.0, target="spin") + plan)
    delays = [r for r in result.injected if r.action == "delay"]
    wakeups = [r for r in result.injected if r.action == "wakeup"]
    assert len(wakeups) <= 2
    assert len(delays) >= 5  # times=None storms keep firing


def test_no_victim_does_not_consume_the_budget():
    """An at_step fault whose victim appears later still fires."""

    def main(rt):
        rt.sleep(0.5)  # plenty of steps before the worker exists

        def worker():
            rt.sleep(10.0)

        rt.go(worker, name="late-worker")
        rt.sleep(0.1)
        return True

    result = run(main, seed=0,
                 inject=plans.kill_goroutine("late-worker", at_step=1))
    assert [r.action for r in result.injected] == ["kill"]
    assert "late-worker" in result.injected[0].victim


def test_inject_events_appear_in_trace():
    def main(rt):
        rt.sleep(2.0)

    result = run(main, seed=0, inject=plans.clock_jump(0.5, after_time=0.1))
    kinds = [e.kind for e in result.trace]
    assert EventKind.INJECT in kinds


def test_attach_only_plan_that_never_fires_keeps_base_schedule():
    """Merely attaching a plan whose faults never trigger must not change
    the schedule: the injector RNG is separate from the scheduler RNG."""

    def main(rt):
        out = []
        wg = rt.waitgroup("wg")

        def worker(i):
            out.append(i)
            wg.done()

        for i in range(5):
            wg.add(1)
            rt.go(worker, i, name=f"w{i}")
        wg.wait()
        return tuple(out)

    inert = _plan(Fault("kill", target="no-such-goroutine", at_step=10**6))
    for seed in range(6):
        bare = run(main, seed=seed)
        chaotic = run(main, seed=seed, inject=inert)
        assert chaotic.main_result == bare.main_result
        assert chaotic.steps == bare.steps
        assert not chaotic.injected
