"""FaultPlan / Fault: validation, composition, serialization, fingerprints."""

import pytest

from repro.inject import ACTIONS, Fault, FaultPlan
from repro.inject import plans


def test_every_action_is_constructible():
    for action in ACTIONS:
        fault = Fault(action, at_step=1)
        assert fault.action == action


def test_unknown_action_rejected():
    with pytest.raises(ValueError, match="unknown fault action"):
        Fault("fork-bomb", at_step=1)


def test_trigger_required():
    with pytest.raises(ValueError, match="needs a trigger"):
        Fault("kill")


@pytest.mark.parametrize("kwargs", [
    dict(probability=1.5),
    dict(probability=-0.1),
    dict(every=0),
    dict(times=0),
    dict(count=0),
])
def test_invalid_parameters_rejected(kwargs):
    base = dict(action="wakeup", at_step=1)
    base.update(kwargs)
    if "every" in kwargs:
        base.pop("at_step")
        with pytest.raises(ValueError):
            Fault(**base)
    else:
        with pytest.raises(ValueError):
            Fault(**base)


def test_fault_round_trips_through_dict():
    fault = Fault("chan_fill", target="jobs-*", at_step=10, value=99, count=3)
    assert Fault.from_dict(fault.to_dict()) == fault


def test_plan_addition_concatenates():
    combined = plans.wakeup_storm() + plans.delay_storm()
    assert combined.name == "wakeup-storm+delay-storm"
    assert len(combined) == 2
    assert combined.faults[0].action == "wakeup"
    assert combined.faults[1].action == "delay"


def test_combine_and_with_name():
    suite = FaultPlan.combine(
        [plans.wakeup_storm(), plans.clock_skew()], name="mix"
    )
    assert suite.name == "mix"
    assert len(suite) == 2
    assert FaultPlan.combine([]).name == "empty"


def test_plan_json_round_trip():
    plan = plans.perturb()
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.fingerprint() == plan.fingerprint()


def test_net_fault_plan_round_trips_through_json():
    plan = (plans.partition(target="n2", at_step=100, heal_after=300)
            + plans.flaky_links(drop=0.1)
            + plans.slow_links(extra=0.02))
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.fingerprint() == plan.fingerprint()
    assert [fault.action for fault in clone.faults] == [
        "net_partition", "net_heal",
        "net_drop", "net_dup", "net_reorder",
        "net_delay",
    ]
    assert clone.faults[0].target == "n2"


def test_fingerprint_is_content_sensitive():
    a = plans.wakeup_storm()
    b = plans.wakeup_storm(probability=0.25)
    c = plans.wakeup_storm().with_name("renamed")
    assert a.fingerprint() == plans.wakeup_storm().fingerprint()
    assert a.fingerprint() != b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_registry_covers_named_plans():
    for name in sorted(plans.REGISTRY):
        plan = plans.get(name)
        assert plan.name == name
        assert len(plan) >= 1


def test_registry_unknown_name_lists_available():
    with pytest.raises(KeyError, match="wakeup-storm"):
        plans.get("no-such-plan")
