"""The tentpole guarantee: a chaos run is a pure function of (seed, plan).

Property-based: random plans drawn from the storm space, random seeds —
re-running must reproduce the status, step count, and the exact fault log.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run
from repro.inject import Fault, FaultInjector, FaultPlan


def workload(rt):
    """A small but fault-rich program: channels, waitgroup, sleeps, select."""
    out = rt.make_chan(4, name="out")
    wg = rt.waitgroup("wg")

    def producer(i):
        rt.sleep(0.01 * i)
        out.send(i)
        wg.done()

    for i in range(3):
        wg.add(1)
        rt.go(producer, i, name=f"prod-{i}")

    got = []
    for _ in range(3):
        got.append(out.recv())
    wg.wait()
    return tuple(sorted(got))


_actions = st.sampled_from(["wakeup", "delay", "clock_jump", "kill", "panic"])


@st.composite
def fault_plans(draw):
    faults = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        action = draw(_actions)
        faults.append(Fault(
            action,
            every=draw(st.integers(min_value=2, max_value=20)),
            probability=draw(st.sampled_from([0.25, 0.5, 1.0])),
            times=draw(st.sampled_from([1, 3, None])),
            value=0.02 if action in ("delay", "clock_jump") else None,
        ))
    return FaultPlan(name=draw(st.sampled_from(["a", "b", "chaos"])),
                     faults=tuple(faults))


def _signature(result):
    return (
        result.status,
        result.steps,
        result.main_result,
        result.end_time,
        [(r.step, r.time, r.action, r.fault_index, r.victim)
         for r in result.injected],
    )


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_same_seed_and_plan_reproduce_exactly(plan, seed):
    first = _signature(run(workload, seed=seed, inject=plan))
    second = _signature(run(workload, seed=seed, inject=plan))
    assert first == second


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=10_000))
def test_prebuilt_injector_equals_plan_argument(plan, seed):
    via_plan = _signature(run(workload, seed=seed, inject=plan))
    via_injector = _signature(
        run(workload, seed=seed, inject=FaultInjector(plan, seed=seed)))
    assert via_plan == via_injector


def test_fault_log_replay_is_stable_across_many_repeats():
    from repro.inject import plans

    plan = plans.perturb()
    baseline = _signature(run(workload, seed=7, inject=plan))
    for _ in range(5):
        assert _signature(run(workload, seed=7, inject=plan)) == baseline


def test_different_seeds_usually_diverge():
    from repro.inject import plans

    plan = plans.perturb()
    signatures = {
        str(_signature(run(workload, seed=seed, inject=plan)))
        for seed in range(8)
    }
    assert len(signatures) > 1  # chaos actually varies with the seed
