"""Crash-recovery faults: serialization, globs, replay, memo identity."""

import hashlib

from repro import run
from repro.inject import ChaosHarness, ChaosTarget, Fault, FaultPlan, plans
from repro.net import Node, RestartPolicy, Supervisor


def test_restart_and_crash_restart_round_trip_json():
    plan = FaultPlan(
        name="recovery-mix",
        faults=(
            Fault("restart", target="n2/*", after_time=1.5),
            Fault("crash_restart", target="n2/*", after_time=0.5,
                  value=0.35),
            Fault("crash", target="n?", after_time=0.25, times=2),
        ),
    )
    recovered = FaultPlan.from_json(plan.to_json())
    assert recovered == plan
    assert recovered.faults[1].value == 0.35  # the restart delay survives
    assert recovered.fingerprint() == plan.fingerprint()


def test_machine_glob_matches_node_name():
    """``"n2/*"`` — the kill action's machine glob — also selects node n2
    for crash faults, so kill plans port to crash plans unchanged."""

    def main(rt):
        net = rt.network(name="t")
        n1, n2 = Node(net, "n1"), Node(net, "n2")
        rt.sleep(1.0)
        return n1.stopped, n2.stopped

    plan = FaultPlan(
        name="crash-n2",
        faults=(Fault("crash", target="n2/*", after_time=0.5),),
    )
    result = run(main, seed=0, inject=plan)
    assert result.main_result == (False, True)
    assert [f.victim for f in result.injected] == ["node:n2"]


def test_crash_restart_fault_revives_after_delay():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        rt.sleep(0.7)
        mid = node.stopped         # crashed at 0.5, restart due at 0.9
        rt.sleep(0.5)
        return mid, node.stopped, node.incarnation

    plan = plans.crash_restart(target="n1", after_time=0.5, delay=0.4)
    mid, final, incarnation = run(main, seed=0, inject=plan).main_result
    assert mid is True
    assert final is False
    assert incarnation == 1


def test_restart_action_revives_a_crashed_node():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        rt.sleep(2.0)
        return node.stopped, node.incarnation

    plan = plans.crash_node(target="n1", after_time=0.5) \
        + plans.restart_node(target="n1", after_time=1.0)
    stopped, incarnation = run(main, seed=0, inject=plan).main_result
    assert stopped is False
    assert incarnation == 1


def test_crash_plan_replay_is_byte_identical():
    """Acceptance bar: two runs of one (seed, plan) with crash_restart on
    the durable cluster produce byte-identical message logs and the same
    convergence verdict."""
    from repro.inject.scenarios import net_etcd_recovery_scenario

    def program(rt):
        out = net_etcd_recovery_scenario(rt, chaos_window=1.5, budget=5.0)
        net = rt._networks[0]
        out["log_sha"] = hashlib.sha256(
            net.format_message_log().encode("utf-8")).hexdigest()
        return out

    plan = plans.crash_restart(delay=0.3)
    first = run(program, seed=3, inject=plan, max_steps=600_000)
    second = run(program, seed=3, inject=plan, max_steps=600_000)
    assert first.status == second.status == "ok"
    assert first.main_result["verdict"] == second.main_result["verdict"]
    assert first.main_result["log_sha"] == second.main_result["log_sha"]
    assert first.steps == second.steps
    assert ([(f.step, f.action, f.victim) for f in first.injected]
            == [(f.step, f.action, f.victim) for f in second.injected])


def test_crash_log_lines_record_loss_and_incarnation():
    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        disk = node.disk()
        disk.append(("put", "a", 1))
        node.crash()
        node.restart()
        return net.format_message_log()

    log = run(main).main_result
    assert "CRSH n1 lost=1" in log
    assert "BOOT n1 #1" in log


def test_supervised_recovery_under_injected_crash():
    """End to end: the injector crashes a machine, the supervisor brings
    it back, and the run records both the fault and the restart."""

    def main(rt):
        net = rt.network(name="t")
        node = Node(net, "n1")
        sup = Supervisor(rt, RestartPolicy.always(delay=0.05)).watch(node)
        rt.sleep(1.0)
        out = (node.stopped, node.incarnation, sup.total_restarts)
        sup.stop()
        return out

    plan = plans.crash_node(target="n1", after_time=0.3)
    stopped, incarnation, restarts = run(main, seed=1,
                                         inject=plan).main_result
    assert stopped is False
    assert incarnation == 1
    assert restarts == 1


def test_memo_key_distinguishes_same_named_plans():
    """The RunMemo satellite fix: two plans sharing a name but differing
    in a restart delay must not share cached chaos records."""
    from repro.parallel import memo as memo_mod

    calls = []

    def make_runner(tag):
        def runner(seed, plan, observe=None):
            calls.append(tag)
            return run(lambda rt: True, seed=seed, inject=plan)
        return runner

    fast = plans.crash_restart(target="nope", delay=0.1)
    slow = plans.crash_restart(target="nope", delay=0.9)
    assert repr(fast) == repr(slow)            # the old key collided
    assert fast.cache_key() != slow.cache_key()  # the new one cannot

    memo_mod.memo.clear()
    try:
        harness = ChaosHarness(seeds=(0,), memo=True)
        target = ChaosTarget(name="memo-probe", runner=make_runner("a"),
                             ok=lambda r: True)
        harness.run_cell(target, fast)
        before = len(calls)
        harness.run_cell(target, slow)   # different content: must re-run
        assert len(calls) == before + 1
        harness.run_cell(target, fast)   # identical content: memo hit
        assert len(calls) == before + 1
    finally:
        memo_mod.memo.clear()
