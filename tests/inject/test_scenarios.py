"""The hardened mini-app workloads: clean under perturbation, and the
app-specific recovery machinery (resync, redial, lease re-acquire) actually
engages under targeted destructive plans."""

import pytest

from repro import run
from repro.inject import plans
from repro.inject.scenarios import all_scenarios

SEEDS = (0, 1)


@pytest.mark.parametrize("name,program,kwargs",
                         all_scenarios(),
                         ids=[n for n, _, _ in all_scenarios()])
def test_scenario_clean_at_baseline(name, program, kwargs):
    for seed in SEEDS:
        result = run(program, seed=seed, **kwargs)
        assert result.status == "ok", (name, seed, result)
        assert result.main_result is True, (name, seed)


@pytest.mark.parametrize("name,program,kwargs",
                         all_scenarios(),
                         ids=[n for n, _, _ in all_scenarios()])
def test_scenario_clean_under_perturbation(name, program, kwargs):
    plan = plans.perturb()
    for seed in SEEDS:
        result = run(program, seed=seed, inject=plan, **kwargs)
        assert result.status == "ok", (name, seed, result)
        assert result.main_result is True, (name, seed)


# ----------------------------------------------------------------------
# Targeted destructive chaos: the hardening must visibly engage
# ----------------------------------------------------------------------


def test_minietcd_reliable_watch_resyncs_after_connection_drop():
    """Closing the upstream watch channel mid-stream forces a re-subscribe
    plus revision-based resync — and the workload still sees every PUT."""
    from repro.apps.minietcd import Node

    def main(rt):
        node = Node(rt)
        node.start()
        watch = node.reliable_watch("job/")
        keys = [f"job/{i}" for i in range(8)]

        def writer():
            for value, key in enumerate(keys):
                node.put(key, value)
                rt.sleep(0.05)

        rt.go(writer, name="etcd-writer")
        seen = set()
        deadline = rt.now() + 30.0
        while len(seen) < len(keys) and rt.now() < deadline:
            event, ok, got = watch.events.try_recv()
            if got and ok:
                seen.add(event.key)
            elif not got:
                rt.sleep(0.05)
        resyncs = watch.resyncs.load()
        watch.cancel()
        node.stop()
        rt.sleep(0.2)
        return (seen == set(keys), resyncs)

    plan = plans.close_channels("watch-*", at_step=80, times=2)
    result = run(main, seed=0, inject=plan)
    assert result.status == "ok"
    complete, resyncs = result.main_result
    assert complete, "a PUT was lost across the watch teardown"
    assert resyncs >= 1, "the destructive plan never engaged the resync path"
    assert any(r.action == "chan_close" for r in result.injected)


def test_minigrpc_client_redials_after_connection_drop():
    """Closing the client connection's request pipe makes in-flight calls
    fail UNAVAILABLE; call_with_retry must redial and finish the workload."""
    from repro.apps.minigrpc import Listener, Server, dial

    def main(rt):
        listener = Listener(rt)
        server = Server(rt)
        server.register("echo", lambda payload: payload)
        server.start(listener)
        client = dial(rt, listener)

        replies = []
        for i in range(6):
            replies.append(client.call_with_retry("echo", i, timeout=2.0))
            rt.sleep(0.05)
        redials = client._redials.load()
        client.close()
        server.graceful_stop(listener)
        return (replies, redials)

    plan = plans.close_channels("conn-*", at_step=60, times=1)
    result = run(main, seed=0, inject=plan)
    assert result.status == "ok", result
    replies, redials = result.main_result
    assert replies == list(range(6))
    assert redials >= 1, "the chaos never forced a redial"


def test_minikube_elector_reacquires_after_clock_jump():
    """A clock jump past the lease TTL expires the current lease; some
    elector must notice, step down, and re-acquire leadership."""
    from repro.apps.minikube import LeaderElector, LeaseLock

    def main(rt):
        lock = LeaseLock(rt, ttl=0.5)
        electors = [LeaderElector(rt, lock, f"ctrl-{i}") for i in range(2)]
        for elector in electors:
            elector.start()
        rt.sleep(6.0)
        healthy = sum(1 for e in electors if e.leading) <= 1
        acquisitions = sum(e.acquisitions.load() for e in electors)
        losses = sum(e.losses.load() for e in electors)
        for elector in electors:
            elector.stop()
        rt.sleep(1.0)
        return (healthy, acquisitions, losses)

    plan = plans.clock_jump(2.0, after_time=1.0)
    result = run(main, seed=0, inject=plan)
    assert result.status == "ok", result
    healthy, acquisitions, losses = result.main_result
    assert healthy
    assert losses >= 1, "the clock jump never expired the lease"
    assert acquisitions >= 2, "leadership was never re-acquired after expiry"
