"""CLI behavior (invoked in-process via cli.main)."""

import pytest

from repro.cli import main


def test_kernels_lists_corpus(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "blocking-chan-kubernetes-5316" in out
    assert "figure 1" in out
    assert "kernels" in out.splitlines()[-1]


def test_kernels_filters(capsys):
    main(["kernels", "--blocking"])
    out = capsys.readouterr().out
    assert "nonblocking-" not in out
    main(["kernels", "--nonblocking"])
    out = capsys.readouterr().out
    assert "\nblocking-" not in out


def test_run_kernel_buggy_and_fixed(capsys):
    assert main(["run-kernel", "blocking-mutex-boltdb-392", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "status=deadlock" in out
    assert "manifested=True" in out

    assert main(["run-kernel", "blocking-mutex-boltdb-392", "--fixed"]) == 0
    out = capsys.readouterr().out
    assert "status=ok" in out
    assert "manifested=False" in out


def test_run_kernel_sweep(capsys):
    assert main(["run-kernel", "blocking-chan-kubernetes-5316",
                 "--sweep", "10"]) == 0
    out = capsys.readouterr().out
    assert "manifested on" in out and "/10 seeds" in out


def test_detect_runs_all_detectors(capsys):
    assert main(["detect", "blocking-mutex-kubernetes-abba"]) == 0
    out = capsys.readouterr().out
    assert "built-in deadlock detector: miss" in out
    assert "goroutine-leak detector:    HIT" in out
    assert "lock-order detector:        HIT" in out
    assert "POTENTIAL DEADLOCK" in out


def test_detect_race_kernel(capsys):
    assert main(["detect", "nonblocking-trad-docker-lost-update"]) == 0
    out = capsys.readouterr().out
    assert "race detector:              HIT" in out
    assert "DATA RACE" in out


def test_scan_flags_capture_bug(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def prog(rt):\n"
        "    for i in range(3):\n"
        "        rt.go(lambda: print(i))\n"
    )
    assert main(["scan", str(bad)]) == 1  # findings -> nonzero, grep-style
    out = capsys.readouterr().out
    assert "captures loop variable 'i'" in out


def test_scan_clean_file_returns_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main(["scan", str(good)]) == 0


def test_report_prints_tables(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "Table 5. Taxonomy" in out
    assert "Table 11. Fix primitives" in out
    assert "headline findings" in out


def test_unknown_kernel_id_errors():
    with pytest.raises(KeyError):
        main(["run-kernel", "no-such-kernel"])


def test_explore_finds_counterexample(capsys):
    assert main(["explore", "nonblocking-trad-docker-lost-update",
                 "--max-runs", "200"]) == 0
    out = capsys.readouterr().out
    assert "counterexample after" in out
    assert "ScriptedChoices" in out


def test_explore_fixed_variant_is_clean(capsys):
    assert main(["explore", "nonblocking-trad-etcd-check-then-act",
                 "--fixed", "--max-runs", "150"]) == 0
    out = capsys.readouterr().out
    assert "counterexample after" not in out
    assert ("property holds" in out) or ("without a counterexample" in out)


def test_usage_profiles_a_package(capsys):
    from pathlib import Path

    pkg = Path(__file__).resolve().parents[1] / "src" / "repro" / "apps" / "minigrpc"
    assert main(["usage", str(pkg)]) == 0
    out = capsys.readouterr().out
    assert "goroutine creation sites" in out
    assert "Mutex" in out and "chan" in out
