"""miniboltdb — a scaled-down BoltDB: single-writer embedded KV store
with nested buckets and write batching."""

from .batch import Batcher
from .buckets import Bucket, BucketNotFound, root
from .db import DB, Tx, TxClosed

__all__ = ["Batcher", "Bucket", "BucketNotFound", "DB", "Tx", "TxClosed", "root"]
