"""miniboltdb buckets: Bolt's nested key namespaces over the flat store.

Buckets map onto the flat transactional store with path-prefixed keys
(``bucket/sub/\x00key``), which keeps the Tx machinery untouched while
providing the real Bolt API surface: create/get/delete buckets, nested
sub-buckets, cursors over a bucket's keys, and per-bucket sequences.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from .db import Tx, TxClosed

_SEP = "\x00"           # joins a bucket path to a key
_BUCKET_MARK = "\x01b"  # flat-store key marking a bucket's existence
_SEQ_MARK = "\x01s"     # flat-store key holding a bucket's sequence


class BucketNotFound(Exception):
    """Operation on a bucket that does not exist."""


class Bucket:
    """A named namespace inside a transaction."""

    def __init__(self, tx: Tx, path: str):
        self._tx = tx
        self.path = path

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def _key(self, key: str) -> str:
        return f"{self.path}{_SEP}{key}"

    def put(self, key: str, value: Any) -> None:
        self._tx.put(self._key(key), value)

    def get(self, key: str) -> Optional[Any]:
        return self._tx.get(self._key(key))

    def delete(self, key: str) -> None:
        self._tx.delete(self._key(key))

    def cursor(self) -> Iterator[Tuple[str, Any]]:
        """Iterate this bucket's direct keys in order (Bolt's Cursor)."""
        prefix = f"{self.path}{_SEP}"
        # Pending writes first, then committed state under them.
        merged = dict(self._tx.db._data)
        merged.update({k: v for k, v in self._tx._pending.items()})
        for flat_key in sorted(merged):
            if not flat_key.startswith(prefix):
                continue
            rest = flat_key[len(prefix):]
            if _SEP in rest or rest.startswith("\x01"):
                continue  # a sub-bucket's content or metadata
            value = merged[flat_key]
            if value is not None:
                yield rest, value

    # ------------------------------------------------------------------
    # Sub-buckets
    # ------------------------------------------------------------------

    def _child_path(self, name: str) -> str:
        return f"{self.path}{_SEP}{name}"

    def create_bucket(self, name: str) -> "Bucket":
        marker = f"{self._child_path(name)}{_SEP}{_BUCKET_MARK}"
        if self._tx.get(marker) is not None:
            raise ValueError(f"bucket exists: {name}")
        self._tx.put(marker, True)
        return Bucket(self._tx, self._child_path(name))

    def bucket(self, name: str) -> "Bucket":
        marker = f"{self._child_path(name)}{_SEP}{_BUCKET_MARK}"
        if self._tx.get(marker) is None:
            raise BucketNotFound(name)
        return Bucket(self._tx, self._child_path(name))

    def create_bucket_if_not_exists(self, name: str) -> "Bucket":
        try:
            return self.bucket(name)
        except BucketNotFound:
            return self.create_bucket(name)

    def buckets(self) -> List[str]:
        """Names of direct sub-buckets."""
        prefix = f"{self.path}{_SEP}"
        suffix = f"{_SEP}{_BUCKET_MARK}"
        merged = dict(self._tx.db._data)
        merged.update(self._tx._pending)
        names = []
        for flat_key, value in merged.items():
            if value is None or not flat_key.startswith(prefix):
                continue
            if not flat_key.endswith(suffix):
                continue
            middle = flat_key[len(prefix):-len(suffix)]
            # Exclude this bucket's own marker (empty middle, overlapping
            # the prefix) and grandchildren (separator inside the middle).
            if middle and _SEP not in middle:
                names.append(middle)
        return sorted(names)

    # ------------------------------------------------------------------
    # Sequence (Bolt's NextSequence)
    # ------------------------------------------------------------------

    def next_sequence(self) -> int:
        marker = f"{self.path}{_SEP}{_SEQ_MARK}"
        current = self._tx.get(marker) or 0
        self._tx.put(marker, current + 1)
        return current + 1


def root(tx: Tx) -> Bucket:
    """The transaction's root bucket."""
    return Bucket(tx, "root")
