"""miniboltdb: a single-writer embedded KV store.

BoltDB's concurrency shape (and Table 4 profile): mutex-dominated, almost
no channels — one writer transaction at a time under ``writer_mu``, many
concurrent readers under an RWMutex, and a freelist guarded by the meta
lock.  BoltDB#392's deadlock lived exactly in the meta-lock re-entry this
module's ``_grow`` path carefully avoids.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple


class TxClosed(Exception):
    """Operation on a finished transaction."""


class Tx:
    """One transaction; writable transactions are exclusive."""

    _ids = itertools.count(1)

    def __init__(self, db: "DB", writable: bool):
        self.id = next(Tx._ids)
        self.db = db
        self.writable = writable
        self._pending: Dict[str, Optional[Any]] = {}
        self._open = True

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        self._check_open()
        if key in self._pending:
            return self._pending[key]
        return self.db._read(key)

    def put(self, key: str, value: Any) -> None:
        self._check_open()
        if not self.writable:
            raise TxClosed("put on a read-only transaction")
        self._pending[key] = value

    def delete(self, key: str) -> None:
        self._check_open()
        if not self.writable:
            raise TxClosed("delete on a read-only transaction")
        self._pending[key] = None

    def commit(self) -> None:
        self._check_open()
        self._open = False
        if self.writable:
            self.db._apply(self._pending)
            self.db._release_writer()
        else:
            self.db._release_reader()

    def rollback(self) -> None:
        if not self._open:
            return
        self._open = False
        if self.writable:
            self.db._release_writer()
        else:
            self.db._release_reader()

    def _check_open(self) -> None:
        if not self._open:
            raise TxClosed(f"tx {self.id} already finished")


class DB:
    """The embedded database handle."""

    def __init__(self, rt, page_size: int = 16):
        self._rt = rt
        self.writer_mu = rt.mutex("db.writer")     # one writable tx at a time
        self.data_mu = rt.rwmutex("db.data")       # readers vs. commit
        self.meta_mu = rt.mutex("db.meta")         # freelist / mmap metadata
        self._data: Dict[str, Any] = {}
        self._pages = page_size
        self._tx_count = rt.atomic_int(0, name="db.txs")
        self._commits = rt.atomic_int(0, name="db.commits")
        self._closed = False

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self, writable: bool = False) -> Tx:
        if self._closed:
            raise TxClosed("database closed")
        if writable:
            self.writer_mu.lock()
        else:
            self.data_mu.rlock()
        self._tx_count.add(1)
        return Tx(self, writable)

    def update(self, fn) -> None:
        """Run ``fn(tx)`` in a writable transaction, like ``db.Update``."""
        tx = self.begin(writable=True)
        try:
            fn(tx)
        except BaseException:
            tx.rollback()
            raise
        tx.commit()

    def view(self, fn) -> None:
        """Run ``fn(tx)`` read-only, like ``db.View``."""
        tx = self.begin(writable=False)
        try:
            fn(tx)
        finally:
            tx.rollback()

    def update_with_retry(self, fn, attempts: int = 6,
                          lock_timeout: float = 0.25) -> bool:
        """A chaos-tolerant ``update``: poll for the writer lock with seeded
        backoff instead of parking unboundedly on it.

        A writer that blocks forever on ``writer_mu`` (because the previous
        holder was killed mid-transaction by a fault) would deadlock the
        whole app; bounded polling degrades that to a ``False`` return the
        caller can retry at its own level.  Returns True once committed.
        """
        from ...patterns.resilience import Backoff

        policy = Backoff(self._rt, base=lock_timeout / 4.0,
                         max_delay=lock_timeout, name="db.update-retry")
        for attempt in range(attempts):
            if self._closed:
                raise TxClosed("database closed")
            if self.writer_mu.try_lock():
                self._tx_count.add(1)
                tx = Tx(self, True)
                try:
                    fn(tx)
                except BaseException:
                    tx.rollback()
                    raise
                tx.commit()
                return True
            if attempt < attempts - 1:
                policy.sleep()
        return False

    # ------------------------------------------------------------------
    # Internals called by Tx
    # ------------------------------------------------------------------

    def _read(self, key: str) -> Optional[Any]:
        return self._data.get(key)

    def _apply(self, pending: Dict[str, Optional[Any]]) -> None:
        if len(self._data) + len(pending) > self._pages:
            self._grow()
        self.data_mu.lock()
        try:
            for key, value in pending.items():
                if value is None:
                    self._data.pop(key, None)
                else:
                    self._data[key] = value
        finally:
            self.data_mu.unlock()
        self._commits.add(1)

    def _grow(self) -> None:
        # BoltDB#392's lesson: the grow path must *not* re-take a lock the
        # caller already holds; meta_mu is only ever taken here.
        self.meta_mu.lock()
        try:
            self._pages *= 2
        finally:
            self.meta_mu.unlock()

    def _release_writer(self) -> None:
        self.writer_mu.unlock()

    def _release_reader(self) -> None:
        self.data_mu.runlock()

    # ------------------------------------------------------------------

    def stats(self) -> Tuple[int, int]:
        return self._tx_count.load(), self._commits.load()

    def keys(self) -> List[str]:
        self.data_mu.rlock()
        try:
            return sorted(self._data)
        finally:
            self.data_mu.runlock()

    def close(self) -> None:
        self.writer_mu.lock()
        try:
            self._closed = True
        finally:
            self.writer_mu.unlock()
