"""miniboltdb batching: coalesce writers into one transaction.

``db.Batch``'s idea: concurrent small writers queue their functions on a
channel; a batch goroutine drains the queue and commits them together,
amortizing the exclusive writer lock.  The one channel in BoltDB's
otherwise lock-only profile (Table 4: chan 23.40%).
"""

from __future__ import annotations

from typing import Callable, List

from ...chan.cases import recv
from .db import DB, Tx


class Batcher:
    """Coalesces write closures into shared transactions."""

    def __init__(self, rt, db: DB, max_batch: int = 8,
                 flush_interval: float = 0.5):
        self._rt = rt
        self.db = db
        self.max_batch = max_batch
        self.flush_interval = flush_interval
        self._queue = rt.make_chan(32, name="batch.queue")
        self._stop = rt.make_chan(0, name="batch.stop")
        self.batches = rt.atomic_int(0, name="batch.count")
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._rt.go(self._loop, name="batcher")

    def _loop(self) -> None:
        ticker = self._rt.new_ticker(self.flush_interval)
        pending: List = []
        while True:
            index, item, ok = self._rt.select(
                recv(self._stop), recv(self._queue), recv(ticker.c)
            )
            if index == 0:
                ticker.stop()
                self._flush(pending)
                return
            if index == 2:
                pending = self._flush(pending)
                continue
            if not ok:
                continue
            pending.append(item)
            if len(pending) >= self.max_batch:
                pending = self._flush(pending)

    def _flush(self, pending: List) -> List:
        if not pending:
            return []

        def apply_all(tx: Tx) -> None:
            for fn, _done in pending:
                fn(tx)

        self.db.update(apply_all)
        self.batches.add(1)
        for _fn, done in pending:
            done.close()
        return []

    def batch(self, fn: Callable[[Tx], None]) -> None:
        """Queue ``fn`` and wait until the batch containing it commits."""
        done = self._rt.make_chan(0, name="batch.done")
        self._queue.send((fn, done))
        done.recv_ok()

    def stop(self) -> None:
        self._stop.close()
