"""minigrpc — a scaled-down gRPC-Go, plus the gRPC-C style comparator."""

from . import bench, cstyle
from .client import Client, dial
from .server import Server
from .transport import Connection, Listener, Request, Response, RpcError, Status

__all__ = [
    "Client",
    "Connection",
    "Listener",
    "Request",
    "Response",
    "RpcError",
    "Server",
    "Status",
    "bench",
    "cstyle",
    "dial",
]
