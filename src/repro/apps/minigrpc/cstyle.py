"""The gRPC-C comparator: a C-style fixed-thread-pool RPC server.

The paper contrasts gRPC-Go with gRPC-C (Section 3): gRPC-C has five
thread creation sites (0.03/KLOC), uses exactly one synchronization
primitive kind (locks, in 746 places), and its threads run from program
start to program end (100% normalized lifetime).  This module reproduces
that *structure* on the same simulator so Table 3's ratios can be
measured:

* a fixed pool of worker threads created once at startup,
* one lock-guarded work list polled by the pool (C completion-queue
  style — no channels anywhere),
* mutex-only synchronization, matching gRPC-C's single primitive kind.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class CStyleServer:
    """Fixed-pool server: all threads live for the whole program."""

    POOL_SIZE = 4
    POLL_INTERVAL = 0.01
    SERVICE_TIME = 0.05

    def __init__(self, rt, handlers: Optional[Dict[str, Callable]] = None):
        self._rt = rt
        self.handlers: Dict[str, Callable] = dict(handlers or {})
        self.mu = rt.mutex("cstyle.cq")
        self._work: List = []          # the completion-queue analogue
        self._served = 0
        self._shutdown = False
        self._workers_started = False

    def register(self, method: str, handler: Callable) -> None:
        with self.mu:
            self.handlers[method] = handler

    def start(self) -> None:
        """Spawn the fixed worker pool (the single creation site)."""
        if self._workers_started:
            return
        self._workers_started = True
        for i in range(self.POOL_SIZE):
            self._rt.go(self._worker_loop, name=f"cq-worker-{i}")

    def _worker_loop(self) -> None:
        """Runs from startup to shutdown: 100% of program lifetime."""
        while True:
            self.mu.lock()
            if self._shutdown and not self._work:
                self.mu.unlock()
                return
            item = self._work.pop(0) if self._work else None
            self.mu.unlock()
            if item is None:
                self._rt.sleep(self.POLL_INTERVAL)  # timed cq_next poll
                continue
            method, payload, reply = item
            self._rt.sleep(self.SERVICE_TIME)
            handler = self.handlers.get(method)
            result = handler(payload) if handler else None
            self.mu.lock()
            self._served += 1
            self.mu.unlock()
            reply.append(result)

    def submit(self, method: str, payload: Any) -> List[Any]:
        """Enqueue a call; returns the (lock-published) reply slot."""
        reply: List[Any] = []
        self.mu.lock()
        if self._shutdown:
            self.mu.unlock()
            raise RuntimeError("server shut down")
        self._work.append((method, payload, reply))
        self.mu.unlock()
        return reply

    def call_sync(self, method: str, payload: Any) -> Any:
        """Blocking call: poll the reply slot like a C completion tag."""
        reply = self.submit(method, payload)
        while not reply:
            self._rt.sleep(self.POLL_INTERVAL)
        return reply[0]

    @property
    def served(self) -> int:
        with self.mu:
            return self._served

    def shutdown(self) -> None:
        with self.mu:
            self._shutdown = True


def run_cstyle_workload(rt, n_requests: int) -> int:
    """The C-side benchmark driver used for Table 3's comparison."""
    server = CStyleServer(rt, handlers={"echo": lambda p: p})
    server.start()
    for i in range(n_requests):
        result = server.call_sync("echo", i)
        assert result == i
    served = server.served
    server.shutdown()
    return served
