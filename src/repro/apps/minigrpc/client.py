"""minigrpc client: unary calls, streaming calls, deadlines."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ...chan.cases import recv
from ...patterns.resilience import Backoff
from .transport import Connection, Listener, Request, Response, RpcError, Status


class Client:
    """A client bound to one connection; built via :func:`dial` it can
    redial, so a dropped connection is a retryable ``UNAVAILABLE``."""

    def __init__(self, rt, conn: Connection,
                 listener: Optional[Listener] = None):
        self._rt = rt
        self.conn = conn
        self._listener = listener
        self._calls = rt.atomic_int(0, name="client.calls")
        self._redials = rt.atomic_int(0, name="client.redials")

    # ------------------------------------------------------------------
    # Unary
    # ------------------------------------------------------------------

    def call(self, method: str, payload: Any = None,
             timeout: Optional[float] = None) -> Any:
        """Issue a unary RPC; raises :class:`RpcError` on failure. With a
        ``timeout``, waits on the response *or* the deadline — Figure 1's
        pattern, leak-free because the response channel is buffered."""
        request = Request(self._rt, method, payload)
        self.conn.send_request(request)
        self._calls.add(1)
        if timeout is None:
            response, ok = request.response.recv_ok()
        else:
            timer = self._rt.new_timer(timeout)
            index, response, ok = self._rt.select(
                recv(request.response), recv(timer.c)
            )
            if index == 1:
                raise RpcError(Status.CANCELLED, f"deadline {timeout}s exceeded")
            timer.stop()
        if not ok:
            # Response channel closed without a reply: the connection died.
            raise RpcError(Status.UNAVAILABLE, "response channel closed")
        if not response.ok:
            raise RpcError(response.code, str(response.payload))
        return response.payload

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------

    def redial(self) -> bool:
        """Replace a dead connection with a fresh one (if we can)."""
        if self._listener is None:
            return False
        if not self.conn.closed:
            return True
        try:
            self.conn = self._listener.dial()
        except RpcError:
            return False
        self._redials.add(1)
        return True

    def _retry_rpc(self, fn, transient, name: str, attempts: int,
                   backoff: Optional[Backoff]) -> Any:
        """Retry ``fn`` on ``transient`` codes, redialing + backing off."""
        policy = backoff if backoff is not None else Backoff(self._rt, name=name)
        last: Optional[RpcError] = None
        for attempt in range(attempts):
            try:
                return fn()
            except RpcError as exc:
                if exc.code not in transient:
                    raise
                last = exc
                if attempt == attempts - 1:
                    break
                self.redial()
                policy.sleep()
        assert last is not None
        raise last

    def call_with_retry(self, method: str, payload: Any = None,
                        timeout: Optional[float] = None, attempts: int = 4,
                        backoff: Optional[Backoff] = None) -> Any:
        """A unary call retrying transient ``UNAVAILABLE`` (redialed before
        the next try) and ``CANCELLED`` failures with seeded backoff."""
        return self._retry_rpc(
            lambda: self.call(method, payload, timeout=timeout),
            (Status.UNAVAILABLE, Status.CANCELLED),
            f"client.retry.{method}", attempts, backoff)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def stream(self, method: str, payload: Any = None) -> Iterator[Any]:
        """Open a server-streaming RPC and iterate its frames."""
        request = Request(self._rt, method, payload, streaming=True)
        self.conn.send_request(request)
        self._calls.add(1)
        for frame in request.stream:
            yield frame
        response, ok = request.response.recv_ok()
        if not ok:
            # End-of-frames with no status: the stream was torn down
            # mid-flight, so the frames above may be truncated.
            raise RpcError(Status.UNAVAILABLE, "stream torn down")
        if not response.ok:
            raise RpcError(response.code, str(response.payload))

    def collect_stream(self, method: str, payload: Any = None) -> List[Any]:
        return list(self.stream(method, payload))

    def collect_stream_with_retry(self, method: str, payload: Any = None,
                                  attempts: int = 4,
                                  backoff: Optional[Backoff] = None) -> List[Any]:
        """Collect a full stream, re-issuing it from scratch after transient
        teardown; only a run ending with an OK status is returned."""
        return self._retry_rpc(
            lambda: self.collect_stream(method, payload),
            (Status.UNAVAILABLE, Status.CANCELLED, Status.INTERNAL),
            f"client.stream-retry.{method}", attempts, backoff)

    @property
    def calls_issued(self) -> int:
        return self._calls.load()

    def close(self) -> None:
        self.conn.close()


def dial(rt, listener: Listener) -> Client:
    """Connect a new client to a server's listener (redial-capable)."""
    return Client(rt, listener.dial(), listener=listener)
