"""minigrpc client: unary calls, streaming calls, deadlines."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ...chan.cases import recv
from .transport import Connection, Listener, Request, Response, RpcError, Status


class Client:
    """A client bound to one connection."""

    def __init__(self, rt, conn: Connection):
        self._rt = rt
        self.conn = conn
        self._calls = rt.atomic_int(0, name="client.calls")

    # ------------------------------------------------------------------
    # Unary
    # ------------------------------------------------------------------

    def call(self, method: str, payload: Any = None,
             timeout: Optional[float] = None) -> Any:
        """Issue a unary RPC; raises :class:`RpcError` on failure.

        With a ``timeout``, waits on the response *or* the deadline — the
        library-safe version of Figure 1's pattern (the response channel
        is buffered, so an abandoned handler never leaks).
        """
        request = Request(self._rt, method, payload)
        self.conn.send_request(request)
        self._calls.add(1)
        if timeout is None:
            response = request.response.recv()
        else:
            timer = self._rt.new_timer(timeout)
            index, value, _ok = self._rt.select(
                recv(request.response), recv(timer.c)
            )
            if index == 1:
                raise RpcError(Status.CANCELLED, f"deadline {timeout}s exceeded")
            timer.stop()
            response = value
        if not response.ok:
            raise RpcError(response.code, str(response.payload))
        return response.payload

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def stream(self, method: str, payload: Any = None) -> Iterator[Any]:
        """Open a server-streaming RPC and iterate its frames."""
        request = Request(self._rt, method, payload, streaming=True)
        self.conn.send_request(request)
        self._calls.add(1)
        for frame in request.stream:
            yield frame
        response = request.response.recv()
        if not response.ok:
            raise RpcError(response.code, str(response.payload))

    def collect_stream(self, method: str, payload: Any = None) -> List[Any]:
        return list(self.stream(method, payload))

    @property
    def calls_issued(self) -> int:
        return self._calls.load()

    def close(self) -> None:
        self.conn.close()


def dial(rt, listener: Listener) -> Client:
    """Connect a new client to a server's listener."""
    return Client(rt, listener.dial())
