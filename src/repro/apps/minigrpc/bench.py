"""minigrpc benchmark workloads — the Table 3 drivers.

Three workloads mirroring the gRPC performance benchmarks the paper runs
(different message shapes, connection counts, sync vs. streaming), each
available for the Go-style server and for the C-style fixed pool.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .client import dial
from .cstyle import run_cstyle_workload
from .server import Server
from .transport import Listener


#: Simulated per-request service time: handlers "work" on the virtual
#: clock, so goroutine lifetimes are a small fraction of total runtime —
#: the property Table 3 measures.
SERVICE_TIME = 0.05


def _echo_handlers(rt, server: Server) -> None:
    def echo(payload):
        rt.sleep(SERVICE_TIME)
        return payload

    def add(payload):
        rt.sleep(SERVICE_TIME)
        return sum(payload)

    def counter(payload, send):
        for i in range(payload):
            rt.sleep(SERVICE_TIME / 5)
            send(i)

    server.register("echo", echo)
    server.register("sum", add)
    server.register_stream("count", counter)


def ping_pong(rt, n_requests: int = 30):
    """Sync unary ping-pong over one connection."""
    listener = Listener(rt)
    server = Server(rt, name="pingpong")
    _echo_handlers(rt, server)
    server.start(listener)
    client = dial(rt, listener)
    for i in range(n_requests):
        assert client.call("echo", i) == i
    client.close()
    server.graceful_stop(listener)
    return server.served


def streaming(rt, n_streams: int = 6, n_messages: int = 15):
    """Concurrent server-streaming calls, one goroutine per stream."""
    listener = Listener(rt)
    server = Server(rt, name="streaming")
    _echo_handlers(rt, server)
    server.start(listener)
    done = rt.waitgroup("streams")
    total = rt.atomic_int(0, name="frames")

    def stream_client(index):
        rt.sleep(0.4 * index)  # staggered arrivals, as in the benchmark mix
        client = dial(rt, listener)
        frames = client.collect_stream("count", n_messages)
        assert frames == list(range(n_messages))
        total.add(len(frames))
        client.close()
        done.done()

    for s in range(n_streams):
        done.add(1)
        rt.go(stream_client, s, name=f"stream-{s}")
    done.wait()
    server.graceful_stop(listener)
    return total.load()


def multi_connection(rt, n_connections: int = 4, requests_each: int = 8):
    """Several concurrent clients, each issuing unary calls."""
    listener = Listener(rt)
    server = Server(rt, name="multiconn")
    _echo_handlers(rt, server)
    server.start(listener)
    done = rt.waitgroup("clients")

    def client_loop(index):
        rt.sleep(0.2 * index)  # staggered arrivals
        client = dial(rt, listener)
        for i in range(requests_each):
            assert client.call("sum", [index, i]) == index + i
        client.close()
        done.done()

    for c in range(n_connections):
        done.add(1)
        rt.go(client_loop, c, name=f"client-{c}")
    done.wait()
    server.graceful_stop(listener)
    return server.served


#: workload name -> (go_program(rt), c_program(rt)) pairs for Table 3.
WORKLOADS: Dict[str, Dict[str, Callable]] = {
    "ping-pong": {
        "go": lambda rt: ping_pong(rt, 30),
        "c": lambda rt: run_cstyle_workload(rt, 30),
    },
    "streaming": {
        "go": lambda rt: streaming(rt, 6, 15),
        "c": lambda rt: run_cstyle_workload(rt, 90),
    },
    "multi-connection": {
        "go": lambda rt: multi_connection(rt, 4, 8),
        "c": lambda rt: run_cstyle_workload(rt, 32),
    },
}
