"""minigrpc transport: in-memory connections and frames.

The "network" is a pair of channels per connection, mirroring how gRPC-Go
multiplexes streams over one HTTP/2 transport.  Requests carry their own
response channel — the common Go RPC idiom that Figure 1's bug lives in.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ...runtime.errors import GoPanic


class Status:
    """RPC status codes (a tiny subset of gRPC's)."""

    OK = "OK"
    NOT_FOUND = "NOT_FOUND"
    CANCELLED = "CANCELLED"
    UNAVAILABLE = "UNAVAILABLE"
    INTERNAL = "INTERNAL"


class RpcError(Exception):
    """Raised on the client for non-OK statuses."""

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class Request:
    """One unary or stream-opening request frame."""

    _ids = itertools.count(1)

    def __init__(self, rt, method: str, payload: Any, streaming: bool = False):
        self.id = next(Request._ids)
        self.method = method
        self.payload = payload
        self.streaming = streaming
        # Buffered by one so a late server response never blocks the
        # handler goroutine if the client gave up (the Figure 1 fix,
        # applied as library policy).
        self.response = rt.make_chan(1, name=f"resp-{self.id}")
        # Stream frames flow on their own channel, closed at end-of-stream.
        self.stream = rt.make_chan(4, name=f"stream-{self.id}") if streaming else None


class Response:
    """A unary response frame."""

    def __init__(self, code: str, payload: Any = None):
        self.code = code
        self.payload = payload

    @property
    def ok(self) -> bool:
        return self.code == Status.OK


class Connection:
    """One client<->server connection carrying request frames.

    Flow-control accounting (frames/bytes in flight) lives under the
    connection mutex, mirroring gRPC-Go's transport where HTTP/2 window
    bookkeeping makes Mutex the most-used primitive (Table 4).
    """

    _ids = itertools.count(1)
    WINDOW = 64  # outstanding-frame budget, like an HTTP/2 window

    def __init__(self, rt, queue_depth: int = 16):
        self.id = next(Connection._ids)
        self._rt = rt
        self.requests = rt.make_chan(queue_depth, name=f"conn-{self.id}")
        self.mu = rt.mutex(f"conn-{self.id}.flow")
        self._closed = False
        self._frames_sent = 0
        self._in_flight = 0

    def send_request(self, request: Request) -> None:
        self.mu.lock()
        if self._closed:
            self.mu.unlock()
            raise RpcError(Status.UNAVAILABLE, "connection closed")
        if self._in_flight >= self.WINDOW:
            self.mu.unlock()
            raise RpcError(Status.UNAVAILABLE, "flow-control window exhausted")
        self._frames_sent += 1
        self._in_flight += 1
        self.mu.unlock()
        try:
            self.requests.send(request)
        except GoPanic:
            # The connection dropped between the window check and the send
            # (fault injection, server-side close): surface a retryable
            # status instead of crashing the caller.
            with self.mu:
                self._closed = True
                if self._in_flight > 0:
                    self._in_flight -= 1
            raise RpcError(Status.UNAVAILABLE, "connection closed") from None

    @property
    def closed(self) -> bool:
        """True once either side (or a fault) tore the connection down."""
        return self._closed or self.requests.closed

    def frame_done(self) -> None:
        """Return window credit once a request's response was produced."""
        with self.mu:
            if self._in_flight > 0:
                self._in_flight -= 1

    def stats(self):
        with self.mu:
            return self._frames_sent, self._in_flight

    def close(self) -> None:
        """Half-close from the client: no more requests will arrive."""
        with self.mu:
            if self._closed:
                return
            self._closed = True
        if not self.requests.closed:  # a fault may have closed it already
            self.requests.close()


class Listener:
    """The server's accept queue, like ``net.Listener``."""

    def __init__(self, rt, backlog: int = 8):
        self._rt = rt
        self.incoming = rt.make_chan(backlog, name="listener")
        self._closed = False

    def dial(self) -> Connection:
        """Client side: create a connection and hand it to the server."""
        conn = Connection(self._rt)
        try:
            self.incoming.send(conn)
        except GoPanic:
            raise RpcError(Status.UNAVAILABLE, "listener closed") from None
        return conn

    def accept_loop(self):
        """Iterate accepted connections until :meth:`shutdown`."""
        return iter(self.incoming)

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            if not self.incoming.closed:
                self.incoming.close()
