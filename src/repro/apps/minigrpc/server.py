"""minigrpc server: goroutine-per-connection, goroutine-per-request.

This is the structure Table 3 measures: every accepted connection gets a
serving goroutine and every request gets a handler goroutine, so the
goroutine population scales with load and each goroutine's lifetime is a
small fraction of the program's (unlike the C-style fixed pool in
:mod:`repro.apps.minigrpc.cstyle`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ...runtime.errors import GoPanic
from .transport import Connection, Listener, Request, Response, Status

Handler = Callable[..., Any]


class Server:
    """An RPC server dispatching registered handlers."""

    def __init__(self, rt, name: str = "server"):
        self._rt = rt
        self.name = name
        self._handlers: Dict[str, Handler] = {}
        self._stream_handlers: Dict[str, Handler] = {}
        self.mu = rt.mutex(f"{name}.state")
        self.wg = rt.waitgroup(f"{name}.inflight")
        self.start_once = rt.once(f"{name}.start")
        self._served = rt.atomic_int(0, name=f"{name}.served")
        self._errors = rt.atomic_int(0, name=f"{name}.errors")
        self._stopping = rt.shared(f"{name}.stopping", False)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, method: str, handler: Handler) -> None:
        """Register a unary handler: ``handler(payload) -> payload``."""
        with self.mu:
            self._handlers[method] = handler

    def register_stream(self, method: str, handler: Handler) -> None:
        """Register a streaming handler: ``handler(payload, send)``."""
        with self.mu:
            self._stream_handlers[method] = handler

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(self, listener: Listener) -> None:
        """Accept connections until the listener shuts down (blocking)."""
        for conn in listener.accept_loop():
            self.wg.add(1)

            def serve_conn(conn=conn):
                self._serve_connection(conn)
                self.wg.done()

            self._rt.go(serve_conn, name=f"{self.name}.conn")

    def start(self, listener: Listener) -> None:
        """Run :meth:`serve` in its own goroutine (idempotent)."""

        def accept_loop():
            self.serve(listener)

        self.start_once.do(
            lambda: self._rt.go(accept_loop, name=f"{self.name}.accept")
        )

    def _serve_connection(self, conn: Connection) -> None:
        for request in conn.requests:
            self.wg.add(1)

            def handle(request=request):
                self._dispatch(request)
                conn.frame_done()  # return flow-control credit
                self.wg.done()

            self._rt.go(handle, name=f"{self.name}.handler")

    def _respond(self, request: Request, response: Response) -> None:
        """Deliver a response; a closed response channel (client vanished,
        fault injection) is a dropped reply, not a crash."""
        try:
            request.response.send(response)
        except GoPanic:
            self._errors.add(1)

    @staticmethod
    def _close_stream(request: Request) -> None:
        """Idempotent end-of-stream (the injector may close streams first)."""
        if request.stream is not None and not request.stream.closed:
            request.stream.close()

    def _dispatch(self, request: Request) -> None:
        if request.streaming:
            handler = self._stream_handlers.get(request.method)
            if handler is None:
                self._close_stream(request)
                self._respond(request, Response(Status.NOT_FOUND, request.method))
                self._errors.add(1)
                return
            try:
                handler(request.payload, request.stream.send)
                self._close_stream(request)
                self._respond(request, Response(Status.OK))
            except Exception as exc:  # handler bug -> INTERNAL, as in gRPC
                self._close_stream(request)
                self._respond(request, Response(Status.INTERNAL, str(exc)))
                self._errors.add(1)
                return
        else:
            handler = self._handlers.get(request.method)
            if handler is None:
                self._respond(request, Response(Status.NOT_FOUND, request.method))
                self._errors.add(1)
                return
            try:
                result = handler(request.payload)
            except Exception as exc:
                self._respond(request, Response(Status.INTERNAL, str(exc)))
                self._errors.add(1)
                return
            self._respond(request, Response(Status.OK, result))
        self._served.add(1)

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------

    @property
    def served(self) -> int:
        return self._served.load()

    @property
    def errors(self) -> int:
        return self._errors.load()

    def graceful_stop(self, listener: Listener) -> None:
        """Stop accepting and wait for in-flight work, like GracefulStop."""
        self._stopping.store(True)
        listener.shutdown()
        self.wg.wait()
