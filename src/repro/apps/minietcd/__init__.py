"""minietcd — a scaled-down etcd: revisioned KV store, watches, leases,
and compare-and-swap transactions."""

from .lease import Lease, Lessor
from .node import Node
from .store import KeyValue, Store
from .txn import (
    Compare,
    Op,
    Txn,
    TxnResponse,
    delete,
    get,
    key_missing,
    mod_revision_equals,
    put,
    value_equals,
)
from .watch import Event, ReliableWatch, WatchHub, Watcher

__all__ = [
    "Compare",
    "Event",
    "KeyValue",
    "Lease",
    "Lessor",
    "Node",
    "Op",
    "ReliableWatch",
    "Store",
    "Txn",
    "TxnResponse",
    "WatchHub",
    "Watcher",
    "delete",
    "get",
    "key_missing",
    "mod_revision_equals",
    "put",
    "value_equals",
]
