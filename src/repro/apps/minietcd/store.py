"""minietcd key-value store: an MVCC-flavored map under an RWMutex.

Reads take the read lock; writes take the write lock and bump the
revision.  This is the RWMutex-heavy usage profile Table 4 reports for
etcd's shared-memory side.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class KeyValue:
    """One stored value with its create/mod revisions."""

    __slots__ = ("key", "value", "create_revision", "mod_revision", "version")

    def __init__(self, key: str, value: Any, revision: int):
        self.key = key
        self.value = value
        self.create_revision = revision
        self.mod_revision = revision
        self.version = 1

    def update(self, value: Any, revision: int) -> None:
        self.value = value
        self.mod_revision = revision
        self.version += 1


class Store:
    """Revisioned KV map, the heart of the node."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.rwmutex("store")
        self._data: Dict[str, KeyValue] = {}
        self._revision = rt.atomic_int(0, name="store.revision")
        self._tombstones: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[KeyValue]:
        self.mu.rlock()
        try:
            return self._data.get(key)
        finally:
            self.mu.runlock()

    def range(self, prefix: str = "") -> List[KeyValue]:
        """All live keys with the given prefix, sorted."""
        self.mu.rlock()
        try:
            return [self._data[k] for k in sorted(self._data) if k.startswith(prefix)]
        finally:
            self.mu.runlock()

    @property
    def revision(self) -> int:
        return self._revision.load()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Insert or update; returns the new store revision."""
        self.mu.lock()
        try:
            revision = self._revision.add(1)
            existing = self._data.get(key)
            if existing is None:
                self._data[key] = KeyValue(key, value, revision)
            else:
                existing.update(value, revision)
            return revision
        finally:
            self.mu.unlock()

    def delete(self, key: str) -> Optional[int]:
        """Remove a key; returns the deletion revision if it existed."""
        self.mu.lock()
        try:
            if key not in self._data:
                return None
            revision = self._revision.add(1)
            del self._data[key]
            self._tombstones.append((key, revision))
            return revision
        finally:
            self.mu.unlock()

    def compact(self, keep_last: int = 16) -> int:
        """Drop old tombstones (the compactor's job); returns dropped count."""
        self.mu.lock()
        try:
            excess = max(len(self._tombstones) - keep_last, 0)
            if excess:
                self._tombstones = self._tombstones[excess:]
            return excess
        finally:
            self.mu.unlock()

    def __len__(self) -> int:
        self.mu.rlock()
        try:
            return len(self._data)
        finally:
            self.mu.runlock()
