"""minietcd leases: TTL-bound key ownership on the virtual clock.

A lease attaches keys; when its timer fires without a keep-alive the
lessor's expiry goroutine revokes it and deletes the attached keys.  Timer
callbacks run in scheduler context where blocking is illegal, so they only
push the lease onto the expiry channel — the expiry goroutine does the
locked work (exactly how etcd's lessor separates its timer heap from its
``runLoop``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set

from ...chan.cases import recv


class Lease:
    """One granted lease."""

    _ids = itertools.count(1)

    def __init__(self, ttl: float):
        self.id = next(Lease._ids)
        self.ttl = ttl
        self.keys: Set[str] = set()
        self.expired = False
        self.revoked = False


class Lessor:
    """Grants, renews and expires leases."""

    def __init__(self, rt, on_expire: Optional[Callable[[Lease], None]] = None):
        self._rt = rt
        self.mu = rt.mutex("lessor")
        self._leases: Dict[int, Lease] = {}
        self._handles: Dict[int, object] = {}
        self._on_expire = on_expire
        self._expired_ch = rt.make_chan(32, name="lessor.expired")
        self._stop = rt.make_chan(0, name="lessor.stop")
        self._expirations = rt.atomic_int(0, name="lessor.expired.count")
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the expiry goroutine (idempotent)."""
        if self._running:
            return
        self._running = True

        def expiry_loop():
            self._expiry_loop()

        self._rt.go(expiry_loop, name="lessor.expiry")

    def _expiry_loop(self) -> None:
        while True:
            index, lease, ok = self._rt.select(
                recv(self._stop), recv(self._expired_ch)
            )
            if index == 0 or not ok:
                return
            self._expire(lease)

    def _expire(self, lease: Lease) -> None:
        with self.mu:
            if lease.revoked or lease.expired:
                return
            lease.expired = True
            self._leases.pop(lease.id, None)
            self._handles.pop(lease.id, None)
        self._expirations.add(1)
        if self._on_expire is not None:
            self._on_expire(lease)

    def shutdown(self) -> None:
        with self.mu:
            handles = list(self._handles.values())
            self._handles.clear()
            self._leases.clear()
        for handle in handles:
            handle.cancel()
        if self._running:
            self._running = False
            self._stop.close()

    # ------------------------------------------------------------------
    # Lease API
    # ------------------------------------------------------------------

    def grant(self, ttl: float) -> Lease:
        lease = Lease(ttl)
        with self.mu:
            self._leases[lease.id] = lease
        self._arm(lease)
        return lease

    def attach(self, lease: Lease, key: str) -> None:
        with self.mu:
            if lease.expired or lease.revoked:
                raise ValueError(f"lease {lease.id} is gone")
            lease.keys.add(key)

    def keepalive(self, lease: Lease) -> bool:
        """Reset the TTL timer; False when the lease already expired."""
        with self.mu:
            if lease.expired or lease.revoked:
                return False
            handle = self._handles.pop(lease.id, None)
        if handle is not None:
            handle.cancel()
        self._arm(lease)
        return True

    def revoke(self, lease: Lease) -> List[str]:
        """Explicitly end a lease; returns the detached keys."""
        with self.mu:
            lease.revoked = True
            self._leases.pop(lease.id, None)
            keys = sorted(lease.keys)
            handle = self._handles.pop(lease.id, None)
        if handle is not None:
            handle.cancel()
        return keys

    def _arm(self, lease: Lease) -> None:
        def on_timer():
            # Scheduler context: a non-blocking push only.
            self._expired_ch.poll_send(lease, gid=0)

        handle = self._rt.sched.clock.call_after(lease.ttl, on_timer)
        with self.mu:
            self._handles[lease.id] = handle

    # ------------------------------------------------------------------

    @property
    def expirations(self) -> int:
        return self._expirations.load()

    def active(self) -> int:
        with self.mu:
            return len(self._leases)
