"""minietcd node: store + watch hub + lessor + compactor, wired together."""

from __future__ import annotations

from typing import Any, List, Optional

from ...chan.cases import recv
from .lease import Lease, Lessor
from .store import KeyValue, Store
from .watch import Event, ReliableWatch, WatchHub, Watcher


class Node:
    """A single-member minietcd "cluster"."""

    def __init__(self, rt, compaction_interval: float = 5.0):
        self._rt = rt
        self.store = Store(rt)
        self.watch_hub = WatchHub(rt)
        self.lessor = Lessor(rt, on_expire=self._expire_lease)
        self.init_once = rt.once("node.init")
        self._stop = rt.make_chan(0, name="node.stop")
        self._compaction_interval = compaction_interval
        self._compactions = rt.atomic_int(0, name="node.compactions")
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start background loops (idempotent via Once)."""
        self.init_once.do(self._start_loops)

    def _start_loops(self) -> None:
        self._started = True
        self.lessor.start()

        def compaction_loop():
            self._compaction_loop()

        self._rt.go(compaction_loop, name="compactor")

    def _compaction_loop(self) -> None:
        ticker = self._rt.new_ticker(self._compaction_interval)
        while True:
            index, _value, _ok = self._rt.select(
                recv(self._stop), recv(ticker.c)
            )
            if index == 0:
                ticker.stop()
                return
            self.store.compact()
            self._compactions.add(1)

    def stop(self) -> None:
        if self._started:
            self._stop.close()
            self._started = False
        self.watch_hub.close_all()
        self.lessor.shutdown()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any, lease: Optional[Lease] = None) -> int:
        revision = self.store.put(key, value)
        if lease is not None:
            self.lessor.attach(lease, key)
        self.watch_hub.broadcast(Event("PUT", key, value, revision))
        return revision

    def get(self, key: str) -> Optional[Any]:
        kv = self.store.get(key)
        return kv.value if kv else None

    def delete(self, key: str) -> bool:
        revision = self.store.delete(key)
        if revision is None:
            return False
        self.watch_hub.broadcast(Event("DELETE", key, None, revision))
        return True

    def range(self, prefix: str = "") -> List[KeyValue]:
        return self.store.range(prefix)

    def watch(self, prefix: str = "", buffer: int = 8) -> Watcher:
        return self.watch_hub.watch(prefix, buffer)

    def reliable_watch(self, prefix: str = "", buffer: int = 8) -> "ReliableWatch":
        """A watch that re-subscribes and resyncs if its subscription dies."""
        return ReliableWatch(self._rt, self, prefix, buffer)

    def grant_lease(self, ttl: float) -> Lease:
        return self.lessor.grant(ttl)

    def txn(self) -> "Txn":
        """Start an atomic compare-then-else transaction."""
        from .txn import Txn

        return Txn(self.store, self.watch_hub)

    @property
    def compactions(self) -> int:
        return self._compactions.load()

    # ------------------------------------------------------------------

    def _expire_lease(self, lease: Lease) -> None:
        for key in sorted(lease.keys):
            self.delete(key)
