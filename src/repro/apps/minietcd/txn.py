"""minietcd transactions: etcd's compare-and-swap mini-language.

``Txn(compare).then(ops).otherwise(ops).commit()`` — the primitive every
etcd-based lock/election recipe builds on.  The whole transaction runs
under the store's write lock, so it is atomic with respect to every other
reader and writer.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .store import Store
from .watch import Event, WatchHub


class Compare:
    """One guard clause: compare a key's value or mod revision."""

    def __init__(self, key: str, op: str, target: str, value: Any):
        if op not in ("==", "!=", ">", "<"):
            raise ValueError(f"unsupported comparison {op!r}")
        if target not in ("value", "mod_revision", "version"):
            raise ValueError(f"unsupported target {target!r}")
        self.key = key
        self.op = op
        self.target = target
        self.value = value

    def evaluate(self, store: Store) -> bool:
        kv = store._data.get(self.key)  # caller holds the store lock
        if self.target == "value":
            actual = kv.value if kv else None
        elif self.target == "mod_revision":
            actual = kv.mod_revision if kv else 0
        else:
            actual = kv.version if kv else 0
        if self.op == "==":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if actual is None:
            return False
        return actual > self.value if self.op == ">" else actual < self.value


def value_equals(key: str, value: Any) -> Compare:
    return Compare(key, "==", "value", value)


def key_missing(key: str) -> Compare:
    """True when the key does not exist (create-if-absent guards)."""
    return Compare(key, "==", "version", 0)


def mod_revision_equals(key: str, revision: int) -> Compare:
    return Compare(key, "==", "mod_revision", revision)


class Op:
    """One effect: put or delete (get results come from the response)."""

    def __init__(self, kind: str, key: str, value: Any = None):
        if kind not in ("put", "delete", "get"):
            raise ValueError(f"unsupported op {kind!r}")
        self.kind = kind
        self.key = key
        self.value = value


def put(key: str, value: Any) -> Op:
    return Op("put", key, value)


def delete(key: str) -> Op:
    return Op("delete", key)


def get(key: str) -> Op:
    return Op("get", key)


class TxnResponse:
    """Transaction outcome: which branch ran and the get results."""

    def __init__(self, succeeded: bool, results: List[Any], revision: int):
        self.succeeded = succeeded
        self.results = results
        self.revision = revision


class Txn:
    """Builder for one atomic compare-then-else transaction."""

    def __init__(self, store: Store, hub: Optional[WatchHub] = None):
        self._store = store
        self._hub = hub
        self._compares: List[Compare] = []
        self._then: List[Op] = []
        self._otherwise: List[Op] = []
        self._committed = False

    def if_(self, *compares: Compare) -> "Txn":
        self._compares.extend(compares)
        return self

    def then(self, *ops: Op) -> "Txn":
        self._then.extend(ops)
        return self

    def otherwise(self, *ops: Op) -> "Txn":
        self._otherwise.extend(ops)
        return self

    def commit(self) -> TxnResponse:
        """Evaluate guards and apply one branch, atomically."""
        if self._committed:
            raise ValueError("transaction already committed")
        self._committed = True
        store = self._store
        events: List[Event] = []
        store.mu.lock()
        try:
            succeeded = all(c.evaluate(store) for c in self._compares)
            ops = self._then if succeeded else self._otherwise
            results: List[Any] = []
            for op in ops:
                if op.kind == "get":
                    kv = store._data.get(op.key)
                    results.append(kv.value if kv else None)
                elif op.kind == "put":
                    revision = store._revision.add(1)
                    existing = store._data.get(op.key)
                    if existing is None:
                        from .store import KeyValue

                        store._data[op.key] = KeyValue(op.key, op.value, revision)
                    else:
                        existing.update(op.value, revision)
                    results.append(revision)
                    events.append(Event("PUT", op.key, op.value, revision))
                else:  # delete
                    if op.key in store._data:
                        revision = store._revision.add(1)
                        del store._data[op.key]
                        results.append(revision)
                        events.append(Event("DELETE", op.key, None, revision))
                    else:
                        results.append(None)
            revision = store._revision.load()
        finally:
            store.mu.unlock()
        if self._hub is not None:
            for event in events:
                self._hub.broadcast(event)
        return TxnResponse(succeeded, results, revision)
