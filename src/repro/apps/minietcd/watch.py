"""minietcd watch hub: the channel fan-out that dominates etcd's
message-passing usage (chan is 42.99% of etcd's primitives in Table 4).

Every watcher owns a buffered event channel; the hub broadcasts store
events with a non-blocking send so one slow watcher cannot stall the
write path (slow watchers observe a ``compacted``-style gap instead,
as real etcd does).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple


class Event:
    """A store mutation delivered to watchers."""

    __slots__ = ("kind", "key", "value", "revision")

    def __init__(self, kind: str, key: str, value: Any, revision: int):
        self.kind = kind            # "PUT" | "DELETE"
        self.key = key
        self.value = value
        self.revision = revision

    def __repr__(self) -> str:
        return f"<Event {self.kind} {self.key}@{self.revision}>"


class Watcher:
    """One subscription: a prefix filter plus a delivery channel."""

    _ids = itertools.count(1)

    def __init__(self, rt, prefix: str, buffer: int = 8):
        self.id = next(Watcher._ids)
        self.prefix = prefix
        self.events = rt.make_chan(buffer, name=f"watch-{self.id}")
        self.dropped = rt.atomic_int(0, name=f"watch-{self.id}.dropped")
        self._cancelled = False

    def matches(self, event: Event) -> bool:
        return event.key.startswith(self.prefix)


class WatchHub:
    """Registry + broadcaster for watchers."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.mutex("watchhub")
        self._watchers: Dict[int, Watcher] = {}

    def watch(self, prefix: str = "", buffer: int = 8) -> Watcher:
        watcher = Watcher(self._rt, prefix, buffer)
        with self.mu:
            self._watchers[watcher.id] = watcher
        return watcher

    def cancel(self, watcher: Watcher) -> None:
        """Unregister and close the watcher's channel (ends its range loop)."""
        with self.mu:
            removed = self._watchers.pop(watcher.id, None)
        if removed is not None and not watcher._cancelled:
            watcher._cancelled = True
            watcher.events.close()

    def broadcast(self, event: Event) -> int:
        """Deliver to every matching watcher; returns the delivery count."""
        with self.mu:
            targets = [w for w in self._watchers.values() if w.matches(event)]
        delivered = 0
        for watcher in targets:
            if watcher.events.try_send(event):
                delivered += 1
            else:
                watcher.dropped.add(1)
        return delivered

    def active(self) -> int:
        with self.mu:
            return len(self._watchers)

    def close_all(self) -> None:
        with self.mu:
            watchers = list(self._watchers.values())
            self._watchers.clear()
        for watcher in watchers:
            if not watcher._cancelled:
                watcher._cancelled = True
                watcher.events.close()
