"""minietcd watch hub: the channel fan-out that dominates etcd's
message-passing usage (chan is 42.99% of etcd's primitives in Table 4).

Every watcher owns a buffered event channel; the hub broadcasts store
events with a non-blocking send so one slow watcher cannot stall the
write path (slow watchers observe a ``compacted``-style gap instead,
as real etcd does).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from ...chan.cases import recv, send
from ...runtime.errors import GoPanic


class Event:
    """A store mutation delivered to watchers."""

    __slots__ = ("kind", "key", "value", "revision")

    def __init__(self, kind: str, key: str, value: Any, revision: int):
        self.kind = kind            # "PUT" | "DELETE"
        self.key = key
        self.value = value
        self.revision = revision

    def __repr__(self) -> str:
        return f"<Event {self.kind} {self.key}@{self.revision}>"


class Watcher:
    """One subscription: a prefix filter plus a delivery channel."""

    _ids = itertools.count(1)

    def __init__(self, rt, prefix: str, buffer: int = 8):
        self.id = next(Watcher._ids)
        self.prefix = prefix
        self.events = rt.make_chan(buffer, name=f"watch-{self.id}")
        self.dropped = rt.atomic_int(0, name=f"watch-{self.id}.dropped")
        self._cancelled = False

    def matches(self, event: Event) -> bool:
        return event.key.startswith(self.prefix)


class WatchHub:
    """Registry + broadcaster for watchers."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.mutex("watchhub")
        self._watchers: Dict[int, Watcher] = {}

    def watch(self, prefix: str = "", buffer: int = 8) -> Watcher:
        watcher = Watcher(self._rt, prefix, buffer)
        with self.mu:
            self._watchers[watcher.id] = watcher
        return watcher

    def cancel(self, watcher: Watcher) -> None:
        """Unregister and close the watcher's channel (ends its range loop)."""
        with self.mu:
            removed = self._watchers.pop(watcher.id, None)
        if removed is not None and not watcher._cancelled:
            watcher._cancelled = True
            if not watcher.events.closed:  # may already be closed by a fault
                watcher.events.close()

    def broadcast(self, event: Event) -> int:
        """Deliver to every matching watcher; returns the delivery count.

        A watcher whose channel was closed underneath us (fault injection,
        a crashed consumer) is dropped from the registry instead of letting
        the send-on-closed panic take down the write path.
        """
        with self.mu:
            targets = [w for w in self._watchers.values() if w.matches(event)]
        delivered = 0
        for watcher in targets:
            try:
                if watcher.events.try_send(event):
                    delivered += 1
                else:
                    watcher.dropped.add(1)
            except GoPanic:
                watcher._cancelled = True
                with self.mu:
                    self._watchers.pop(watcher.id, None)
        return delivered

    def active(self) -> int:
        with self.mu:
            return len(self._watchers)

    def close_all(self) -> None:
        with self.mu:
            watchers = list(self._watchers.values())
            self._watchers.clear()
        for watcher in watchers:
            if not watcher._cancelled:
                watcher._cancelled = True
                if not watcher.events.closed:
                    watcher.events.close()


class ReliableWatch:
    """A watch that survives its upstream subscription dying.

    Graceful degradation for the chaos suite: when the underlying watcher's
    channel is closed underneath it (connection drop, fault injection), the
    pump re-subscribes and **resyncs** — it re-lists the store under the
    prefix and replays every key whose ``mod_revision`` is newer than the
    last revision the consumer saw, so no PUT is lost across the gap.
    (Deletes that happened entirely inside a gap are not replayed, matching
    an etcd client re-list.)

    Consumers read :attr:`events`, which stays open across re-subscriptions,
    and call :meth:`cancel` when done.
    """

    _ids = itertools.count(1)

    def __init__(self, rt, node, prefix: str = "", buffer: int = 8):
        self._rt = rt
        self._node = node
        self.prefix = prefix
        self.buffer = buffer
        self.id = next(ReliableWatch._ids)
        self.events = rt.make_chan(buffer, name=f"rwatch-{self.id}")
        self._stop = rt.make_chan(0, name=f"rwatch-{self.id}.stop")
        self.resyncs = rt.atomic_int(0, name=f"rwatch-{self.id}.resyncs")
        self.last_revision = 0
        # Subscribe synchronously so no event published between construction
        # and the pump's first run can be missed.
        self._watcher = self._subscribe()
        rt.go(self._pump, name=f"rwatch-{self.id}.pump")

    def _subscribe(self) -> Watcher:
        return self._node.watch_hub.watch(self.prefix, self.buffer)

    def _resync(self) -> List[Event]:
        """Replay store state newer than the last delivered revision."""
        return [
            Event("PUT", kv.key, kv.value, kv.mod_revision)
            for kv in self._node.store.range(self.prefix)
            if kv.mod_revision > self.last_revision
        ]

    def _deliver(self, event: Event) -> bool:
        """Forward one event; returns False when the consumer cancelled."""
        index, _v, _ok = self._rt.select(recv(self._stop), send(self.events, event))
        if index == 0:
            return False
        self.last_revision = max(self.last_revision, event.revision)
        return True

    def _pump(self) -> None:
        watcher = self._watcher
        drops_handled = 0
        try:
            while True:
                index, value, ok = self._rt.select(
                    recv(self._stop), recv(watcher.events)
                )
                if index == 0:
                    return
                if not ok:
                    # Upstream died: re-subscribe first (so nothing published
                    # during the resync is missed), then replay the gap.
                    self.resyncs.add(1)
                    watcher = self._subscribe()
                    drops_handled = 0
                    for event in self._resync():
                        if not self._deliver(event):
                            return
                    continue
                if not isinstance(value, Event):
                    continue  # junk injected into the pipe: ignore
                if not self._deliver(value):
                    return
                if watcher.dropped.load() > drops_handled:
                    # The hub dropped events while our buffer was full:
                    # replay the gap from the store, like an etcd client
                    # recovering from a "compacted" watch error.
                    drops_handled = watcher.dropped.load()
                    self.resyncs.add(1)
                    for event in self._resync():
                        if not self._deliver(event):
                            return
        except GoPanic:
            return  # our own output channel was closed underneath us
        finally:
            self._node.watch_hub.cancel(watcher)
            if not self.events.closed:
                self.events.close()

    def cancel(self) -> None:
        if not self._stop.closed:
            self._stop.close()
