"""A multi-node minietcd cluster over :mod:`repro.net`.

Three (by default) members, each a full single-node :class:`Node` (store +
watch hub + lessor) running an RPC server on its own simulated machine.
Member ``n1`` is the static leader — this models etcd's steady state, not
its election protocol: writes go to the leader, which applies locally and
replicates asynchronously to each follower over the wire through a
per-follower queue + replicator goroutine that retries with seeded backoff
until the follower acknowledges.

That replication loop is exactly the paper's hardened-communication shape:
a partition stalls a follower's queue (calls time out, backoff grows), and
after ``heal()`` the replicator drains and the cluster re-converges — no
goroutine leaks, no stranded handlers, because every blocking path hangs
off a ``Conn`` or channel that node shutdown closes.

Reads are served locally by any member (followers may lag: etcd's
serializable-not-linearizable read).  Watches and range queries stream
over the RPC layer; leases are granted by the leader and expire on its
virtual clock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ...net.fabric import NetError, Network
from ...net.node import Node as NetNode
from ...net.rpc import RpcClient, RpcError, RpcServer, Status, connect_with_retry
from ...patterns.resilience import Backoff
from ...runtime.errors import GoPanic
from .lease import Lease
from .node import Node as KvNode

#: Listener port every member binds.
PORT = "etcd"


class ClusterMember:
    """One cluster machine: a kv node fronted by an RPC server."""

    def __init__(self, rt, net: Network, name: str,
                 compaction_interval: float = 5.0):
        self._rt = rt
        self.name = name
        self.kv = KvNode(rt, compaction_interval=compaction_interval)
        self.kv.start()
        self.node = NetNode(net, name)
        self.addr = self.node.addr(PORT)
        self.is_leader = False
        self._leases: Dict[int, Lease] = {}
        self._next_lease = 0
        self._repl_queues: Dict[str, Any] = {}
        self.replicated = rt.atomic_int(0, name=f"{name}.replicated")

        server = RpcServer(self.node, name="etcd")
        server.register("get", lambda key: self.kv.get(key))
        server.register("put", self._rpc_put)
        server.register("replicate", self._rpc_replicate)
        server.register("lease_grant", self._rpc_lease_grant)
        server.register_streaming("range", self._rpc_range)
        server.register_streaming("watch", self._rpc_watch)
        self.server = server
        server.serve(self.node.listen(PORT))

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _rpc_put(self, payload: Dict[str, Any]) -> int:
        if not self.is_leader:
            raise RpcError(Status.FAILED_PRECONDITION,
                           f"{self.name} is not the leader")
        key, value = payload["key"], payload["value"]
        lease = self._leases.get(payload["lease"]) \
            if payload.get("lease") is not None else None
        revision = self.kv.put(key, value, lease=lease)
        for queue in self._repl_queues.values():
            queue.send((key, value))
        return revision

    def _rpc_replicate(self, payload: Any) -> bool:
        key, value = payload
        self.kv.put(key, value)
        self.replicated.add(1)
        return True

    def _rpc_lease_grant(self, ttl: float) -> int:
        if not self.is_leader:
            raise RpcError(Status.FAILED_PRECONDITION,
                           f"{self.name} is not the leader")
        lease = self.kv.grant_lease(ttl)
        self._next_lease += 1
        self._leases[self._next_lease] = lease
        return self._next_lease

    def _rpc_range(self, prefix: str, send: Callable[[Any], None]) -> None:
        for kv in self.kv.range(prefix or ""):
            send((kv.key, kv.value, kv.mod_revision))

    def _rpc_watch(self, payload: Dict[str, Any],
                   send: Callable[[Any], None]) -> None:
        prefix = payload.get("prefix", "")
        count = payload.get("count")
        watcher = self.kv.watch(prefix, buffer=16)
        sent = 0
        try:
            for event in watcher.events:
                send((event.kind, event.key, event.value, event.revision))
                sent += 1
                if count is not None and sent >= count:
                    return
        finally:
            self.kv.watch_hub.cancel(watcher)

    # ------------------------------------------------------------------
    # Leader-side replication
    # ------------------------------------------------------------------

    def become_leader(self, follower_addrs: List[str]) -> None:
        self.is_leader = True
        for addr in follower_addrs:
            queue = self._rt.make_chan(256, name=f"repl:{self.name}->{addr}")
            self._repl_queues[addr] = queue

            # etcd-style anonymous closure; defaults pin the loop variables
            # (the Figure 8 hazard, done right).
            def replicate(addr=addr, queue=queue):
                self._replicate_loop(addr, queue)

            self.node.go(replicate, name=f"repl->{addr}")

    def _replicate_loop(self, addr: str, queue: Any) -> None:
        """Drain one follower's queue; retry each entry until acked.

        A partition makes every call time out — the entry is retried with
        growing seeded backoff until the fabric heals, so the follower
        eventually converges without ever dropping a write.
        """
        client: Optional[RpcClient] = None
        backoff = Backoff(self._rt, max_delay=1.0,
                          name=f"{self.name}->{addr}")
        for entry in queue:
            while not self.node.stopping:
                try:
                    if client is None:
                        client = RpcClient(self.node, addr,
                                           name=f"repl:{addr}")
                    client.call("replicate", entry, timeout=0.5)
                    backoff.reset()
                    break
                except (RpcError, NetError, GoPanic):
                    if client is not None and client.conn.closed:
                        client = None
                    backoff.sleep()
            if self.node.stopping:
                return

    # ------------------------------------------------------------------

    def dump(self, prefix: str = "") -> Dict[str, Any]:
        """Local key -> value snapshot (for convergence checks)."""
        return {kv.key: kv.value for kv in self.kv.range(prefix)}

    def stop(self) -> None:
        for queue in self._repl_queues.values():
            if not queue.closed:
                queue.close()
        self.node.stop(wait=False)
        self.kv.stop()
        self.node.wg.wait()

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "follower"
        return f"<ClusterMember {self.name} {role}>"


class EtcdCluster:
    """A static-leader minietcd cluster on one fabric."""

    def __init__(self, rt, size: int = 3, net: Optional[Network] = None,
                 latency: float = 0.002, compaction_interval: float = 5.0):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self._rt = rt
        self.net = net if net is not None else rt.network(
            name="etcdnet", default_latency=latency)
        self.members = [
            ClusterMember(rt, self.net, f"n{i + 1}",
                          compaction_interval=compaction_interval)
            for i in range(size)
        ]
        self.leader = self.members[0]
        self.leader.become_leader([m.addr for m in self.members[1:]])
        self._clients: List["ClusterClient"] = []

    def client(self, name: str = "client") -> "ClusterClient":
        client = ClusterClient(self._rt, self, name=name)
        self._clients.append(client)
        return client

    # ------------------------------------------------------------------

    def converged(self, prefix: str = "") -> bool:
        """True when every member holds the same key -> value map."""
        reference = self.members[0].dump(prefix)
        return all(m.dump(prefix) == reference for m in self.members[1:])

    def await_convergence(self, prefix: str = "", timeout: float = 30.0,
                          poll: float = 0.05) -> bool:
        """Poll (virtual time) until converged or the deadline passes."""
        deadline = self._rt.now() + timeout
        while True:
            if self.converged(prefix):
                return True
            if self._rt.now() >= deadline:
                return False
            self._rt.sleep(poll)

    def stop(self) -> None:
        for client in self._clients:
            client.close()
        for member in self.members:
            member.stop()

    def __repr__(self) -> str:
        return f"<EtcdCluster size={len(self.members)} net={self.net.name!r}>"


class ClusterClient:
    """A client machine talking to the cluster over the fabric."""

    def __init__(self, rt, cluster: EtcdCluster, name: str = "client"):
        self._rt = rt
        self._cluster = cluster
        self.node = NetNode(cluster.net, name)
        self._rpc = connect_with_retry(self.node, cluster.leader.addr,
                                       name=f"{name}.rpc")

    def put(self, key: str, value: Any, lease: Optional[int] = None,
            timeout: float = 0.5, attempts: int = 8) -> int:
        """Write through the leader, retrying across partitions."""
        return self._rpc.call_with_retry(
            "put", {"key": key, "value": value, "lease": lease},
            timeout=timeout, attempts=attempts)

    def get(self, key: str, member: Optional[int] = None) -> Any:
        """Read from the leader, or any member (may lag) by index."""
        if member is None:
            return self._rpc.call_with_retry("get", key)
        target = self._cluster.members[member]
        rpc = connect_with_retry(self.node, target.addr,
                                 name=f"get.{target.name}")
        try:
            return rpc.call_with_retry("get", key)
        finally:
            rpc.close()

    def grant_lease(self, ttl: float) -> int:
        return self._rpc.call_with_retry("lease_grant", ttl)

    def range(self, prefix: str = "",
              timeout: Optional[float] = None) -> List[Any]:
        return list(self._rpc.stream("range", prefix, timeout=timeout))

    def watch(self, prefix: str = "", count: Optional[int] = None,
              timeout: Optional[float] = None):
        """Server-streaming watch: yields (kind, key, value, revision).

        ``timeout`` is the per-event deadline (virtual clock); a stalled
        watch then raises DEADLINE_EXCEEDED instead of blocking forever.
        """
        return self._rpc.stream("watch", {"prefix": prefix, "count": count},
                                timeout=timeout)

    def close(self) -> None:
        self._rpc.close()
        self.node.stop(wait=False)
