"""A multi-node minietcd cluster over :mod:`repro.net`.

Three (by default) members, each a full single-node :class:`Node` (store +
watch hub + lessor) running an RPC server on its own simulated machine.
Member ``n1`` is the static leader — this models etcd's steady state, not
its election protocol: writes go to the leader, which applies locally and
replicates asynchronously to each follower over the wire through a
per-follower queue + replicator goroutine that retries with seeded backoff
until the follower acknowledges.

That replication loop is exactly the paper's hardened-communication shape:
a partition stalls a follower's queue (calls time out, backoff grows), and
after ``heal()`` the replicator drains and the cluster re-converges — no
goroutine leaks, no stranded handlers, because every blocking path hangs
off a ``Conn`` or channel that node shutdown closes.

Reads are served locally by any member (followers may lag: etcd's
serializable-not-linearizable read).  Watches and range queries stream
over the RPC layer; leases are granted by the leader and expire on its
virtual clock.

**Crash recovery** (opt-in, ``EtcdCluster(durable=True, elect=True)``):
durable members write every applied put to a per-machine
:class:`repro.net.disk.Disk` WAL (append + fsync) and recover by replaying
it from a fresh boot goroutine after ``node.restart()`` — whatever was not
fsynced at crash time is gone, exactly like a real power cut.  With
``elect=True`` an election watchdog promotes the lowest-indexed live member
when the leader dies; promotion union-merges live peers' state (the
simulator's stand-in for Raft log catch-up — the new leader pulls follower
dumps directly, keeping its own value on conflict) and then resyncs every
follower through the ordinary replication queues.  Durable members skip the
single-node background loops (compactor, lessor expiry): those goroutines
are owned by the runtime, not the member's machine, and would outlive a
crash to operate on a dead incarnation's store.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ...net.fabric import NetError, Network
from ...net.node import Node as NetNode
from ...net.rpc import RpcClient, RpcError, RpcServer, Status, connect_with_retry
from ...patterns.resilience import Backoff
from ...runtime.errors import GoPanic
from .lease import Lease
from .node import Node as KvNode

#: Listener port every member binds.
PORT = "etcd"


class ClusterMember:
    """One cluster machine: a kv node fronted by an RPC server.

    With ``durable=True`` every applied put is WAL-logged (append + fsync)
    to the machine's disk, the node gets an ``on_restart`` recovery hook,
    and the single-node background loops are not started (see the module
    docstring) — leases on a durable member are granted but never expire.
    """

    def __init__(self, rt, net: Network, name: str,
                 compaction_interval: float = 5.0, durable: bool = False,
                 fsync_latency: float = 0.0,
                 cluster: Optional["EtcdCluster"] = None):
        self._rt = rt
        self.name = name
        self.durable = durable
        self._cluster = cluster
        self._compaction_interval = compaction_interval
        self.kv = KvNode(rt, compaction_interval=compaction_interval)
        if not durable:
            self.kv.start()
        self.node = NetNode(net, name)
        self.addr = self.node.addr(PORT)
        self.disk = self.node.disk(fsync_latency=fsync_latency) \
            if durable else None
        if durable:
            self.node.on_restart = self._on_restart
        self.is_leader = False
        self._leases: Dict[int, Lease] = {}
        self._next_lease = 0
        self._repl_queues: Dict[str, Any] = {}
        self.replicated = rt.atomic_int(0, name=f"{name}.replicated")
        self._wire_server()

    def _wire_server(self) -> None:
        """Build the RPC server and bind the listener (also the restart
        path: the old incarnation's listener died with the crash)."""
        server = RpcServer(self.node, name="etcd")
        server.register("get", lambda key: self.kv.get(key))
        server.register("put", self._rpc_put)
        server.register("replicate", self._rpc_replicate)
        server.register("lease_grant", self._rpc_lease_grant)
        server.register_streaming("range", self._rpc_range)
        server.register_streaming("watch", self._rpc_watch)
        self.server = server
        server.serve(self.node.listen(PORT))

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _apply(self, key: str, value: Any,
               lease: Optional[Lease] = None) -> int:
        """Apply a put locally; durable members WAL it (append + fsync).

        The fsync sits *after* the in-memory apply: with a non-zero fsync
        latency there is a window where the store has the write but the
        disk does not — a crash in that window loses it, the real
        lost-update anatomy convergence checkers must catch.
        """
        revision = self.kv.put(key, value, lease=lease)
        if self.disk is not None:
            self.disk.append(("put", key, value))
            self.disk.fsync()
        return revision

    def _rpc_put(self, payload: Dict[str, Any]) -> int:
        if not self.is_leader:
            raise RpcError(Status.FAILED_PRECONDITION,
                           f"{self.name} is not the leader")
        key, value = payload["key"], payload["value"]
        lease = self._leases.get(payload["lease"]) \
            if payload.get("lease") is not None else None
        revision = self._apply(key, value, lease=lease)
        for queue in self._repl_queues.values():
            queue.send((key, value))
        return revision

    def _rpc_replicate(self, payload: Any) -> bool:
        key, value = payload
        self._apply(key, value)
        self.replicated.add(1)
        return True

    def _rpc_lease_grant(self, ttl: float) -> int:
        if not self.is_leader:
            raise RpcError(Status.FAILED_PRECONDITION,
                           f"{self.name} is not the leader")
        lease = self.kv.grant_lease(ttl)
        self._next_lease += 1
        self._leases[self._next_lease] = lease
        return self._next_lease

    def _rpc_range(self, prefix: str, send: Callable[[Any], None]) -> None:
        for kv in self.kv.range(prefix or ""):
            send((kv.key, kv.value, kv.mod_revision))

    def _rpc_watch(self, payload: Dict[str, Any],
                   send: Callable[[Any], None]) -> None:
        prefix = payload.get("prefix", "")
        count = payload.get("count")
        watcher = self.kv.watch(prefix, buffer=16)
        sent = 0
        try:
            for event in watcher.events:
                send((event.kind, event.key, event.value, event.revision))
                sent += 1
                if count is not None and sent >= count:
                    return
        finally:
            self.kv.watch_hub.cancel(watcher)

    # ------------------------------------------------------------------
    # Leader-side replication
    # ------------------------------------------------------------------

    def become_leader(self, follower_addrs: List[str]) -> None:
        self.is_leader = True
        for addr in follower_addrs:
            self._add_follower(addr)

    def _add_follower(self, addr: str) -> None:
        """Create a replication queue + replicator for ``addr`` if this
        leader does not already have one (re-promotion must not spawn a
        second replicator over the same queue)."""
        if addr in self._repl_queues:
            return
        queue = self._rt.make_chan(256, name=f"repl:{self.name}->{addr}")
        self._repl_queues[addr] = queue

        # etcd-style anonymous closure; defaults pin the loop variables
        # (the Figure 8 hazard, done right).
        def replicate(addr=addr, queue=queue):
            self._replicate_loop(addr, queue)

        self.node.go(replicate, name=f"repl->{addr}")

    def resync(self, addr: str) -> int:
        """Push the full local dump into one follower's replication queue
        (non-blocking: the replicator delivers it like ordinary entries).
        The catch-up path for a follower that rejoined after a crash —
        its WAL replay restored only what it had fsynced.  Returns the
        number of entries enqueued."""
        queue = self._repl_queues.get(addr)
        if queue is None or queue.closed:
            return 0
        pushed = 0
        for key, value in sorted(self.dump().items()):
            if queue.try_send((key, value)):
                pushed += 1
        return pushed

    def _replicate_loop(self, addr: str, queue: Any) -> None:
        """Drain one follower's queue; retry each entry until acked.

        A partition makes every call time out — the entry is retried with
        growing seeded backoff until the fabric heals, so the follower
        eventually converges without ever dropping a write.
        """
        client: Optional[RpcClient] = None
        backoff = Backoff(self._rt, max_delay=1.0,
                          name=f"{self.name}->{addr}")
        for entry in queue:
            while not self.node.stopping:
                try:
                    if client is None:
                        client = RpcClient(self.node, addr,
                                           name=f"repl:{addr}")
                    client.call("replicate", entry, timeout=0.5)
                    backoff.reset()
                    break
                except (RpcError, NetError, GoPanic):
                    # A broken client (peer crashed: pump saw EOF) fails
                    # every call instantly — drop it so the next attempt
                    # redials the follower's new incarnation.
                    if client is not None and (client.conn.closed
                                               or client.broken):
                        client = None
                    backoff.sleep()
            if self.node.stopping:
                return

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _on_restart(self, node: NetNode) -> None:
        """Recovery, run in the restarted node's boot goroutine.

        The old incarnation's store, queues and leadership are gone with
        its goroutines; state comes back only through the WAL.  Replay
        goes through ``kv.put`` directly (not :meth:`_apply`) so recovery
        does not re-log records the disk already holds.
        """
        self.kv = KvNode(self._rt,
                         compaction_interval=self._compaction_interval)
        for record in self.disk.replay():
            op, key, value = record
            if op == "put":
                self.kv.put(key, value)
        self.is_leader = False
        self._repl_queues = {}
        self._leases = {}
        self._wire_server()
        if self._cluster is not None:
            self._cluster._member_restarted(self)

    # ------------------------------------------------------------------

    def dump(self, prefix: str = "") -> Dict[str, Any]:
        """Local key -> value snapshot (for convergence checks)."""
        return {kv.key: kv.value for kv in self.kv.range(prefix)}

    def stop(self) -> None:
        for queue in self._repl_queues.values():
            if not queue.closed:
                queue.close()
        self.node.stop(wait=False)
        self.kv.stop()
        self.node.wg.wait()

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "follower"
        return f"<ClusterMember {self.name} {role}>"


class EtcdCluster:
    """A static-leader minietcd cluster on one fabric.

    ``durable=True`` gives every member a WAL-backed disk and a restart
    recovery path; ``elect=True`` adds an election watchdog that promotes
    the lowest-indexed live member when the leader dies (requires
    ``durable``).  Defaults preserve the original static, crash-naive
    cluster exactly.
    """

    def __init__(self, rt, size: int = 3, net: Optional[Network] = None,
                 latency: float = 0.002, compaction_interval: float = 5.0,
                 durable: bool = False, elect: bool = False,
                 fsync_latency: float = 0.0, elect_poll: float = 0.05):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        if elect and not durable:
            raise ValueError("elect=True requires durable=True")
        self._rt = rt
        self.durable = durable
        self.elect = elect
        self.net = net if net is not None else rt.network(
            name="etcdnet", default_latency=latency)
        self.members = [
            ClusterMember(rt, self.net, f"n{i + 1}",
                          compaction_interval=compaction_interval,
                          durable=durable, fsync_latency=fsync_latency,
                          cluster=self if durable else None)
            for i in range(size)
        ]
        self.leader = self.members[0]
        self.leader.become_leader([m.addr for m in self.members[1:]])
        self._clients: List["ClusterClient"] = []
        self._elect_stop = None
        if elect:
            self._elect_poll = elect_poll
            self._elect_stop = rt.make_chan(0, name="etcd.elect.stop")
            rt.go(self._election_loop, name="etcd.elect")

    def client(self, name: str = "client",
               failover: bool = False) -> "ClusterClient":
        client = ClusterClient(self._rt, self, name=name, failover=failover)
        self._clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Leadership and recovery
    # ------------------------------------------------------------------

    def _election_loop(self) -> None:
        """Watchdog: promote the lowest-indexed live member when no live
        leader exists.  One goroutine, virtual-clock polling — the same
        crash, same seed, elects the same successor at the same time."""
        from ...chan.cases import recv as recv_case

        while True:
            timer = self._rt.new_timer(self._elect_poll)
            index, _, _ = self._rt.select(recv_case(self._elect_stop),
                                          recv_case(timer.c))
            if index == 0:
                timer.stop()
                return
            if any(m.is_leader and not m.node.stopped
                   for m in self.members):
                continue
            live = [m for m in self.members if not m.node.stopped]
            if live:
                self._promote(live[0])

    def _promote(self, member: ClusterMember) -> None:
        """Make ``member`` the leader: union-merge live peers' state into
        it (it may have lost un-fsynced writes a follower already
        applied; its own value wins on conflict), start replicators, and
        resync every live follower to the merged view."""
        merged: Dict[str, Any] = {}
        for peer in self.members:
            if peer is member or peer.node.stopped:
                continue
            for key, value in sorted(peer.dump().items()):
                merged.setdefault(key, value)
        own = member.dump()
        for key, value in sorted(merged.items()):
            if key not in own:
                member._apply(key, value)
        self.leader = member
        member.become_leader(
            [m.addr for m in self.members if m is not member])
        for peer in self.members:
            if peer is not member and not peer.node.stopped:
                member.resync(peer.addr)

    def _member_restarted(self, member: ClusterMember) -> None:
        """Called from a restarted member's boot goroutine after its WAL
        replay: rejoin the cluster."""
        live_leader = next(
            (m for m in self.members
             if m.is_leader and not m.node.stopped), None)
        if live_leader is not None:
            # Rejoin as a follower; the leader pushes the writes this
            # member missed (or lost un-fsynced) through its queue.
            self.leader = live_leader
            live_leader._add_follower(member.addr)
            live_leader.resync(member.addr)
        elif not self.elect and member is self.leader:
            # Static leadership: the original leader resumes its role.
            self._promote(member)
        # else: the election watchdog promotes on its next tick.

    # ------------------------------------------------------------------

    def converged(self, prefix: str = "", live_only: bool = False) -> bool:
        """True when every member holds the same key -> value map.
        ``live_only`` skips crashed/stopped members — the consistency
        probe while some machine is down."""
        members = [m for m in self.members
                   if not (live_only and m.node.stopped)]
        if len(members) <= 1:
            return True
        reference = members[0].dump(prefix)
        return all(m.dump(prefix) == reference for m in members[1:])

    def await_convergence(self, prefix: str = "", timeout: float = 30.0,
                          poll: float = 0.05) -> bool:
        """Poll (virtual time) until converged or the deadline passes."""
        deadline = self._rt.now() + timeout
        while True:
            if self.converged(prefix):
                return True
            if self._rt.now() >= deadline:
                return False
            self._rt.sleep(poll)

    def stop(self) -> None:
        if self._elect_stop is not None and not self._elect_stop.closed:
            self._elect_stop.close()
        for client in self._clients:
            client.close()
        for member in self.members:
            member.stop()

    def __repr__(self) -> str:
        return f"<EtcdCluster size={len(self.members)} net={self.net.name!r}>"


class ClusterClient:
    """A client machine talking to the cluster over the fabric.

    ``failover=True`` makes the client crash-aware: before every call it
    drops a broken RPC client (its peer crashed — the pump saw the reset)
    or one pinned to a demoted leader, and redials the cluster's current
    leader.  The default stays pinned to the construction-time leader,
    preserving the static cluster's behavior.
    """

    def __init__(self, rt, cluster: EtcdCluster, name: str = "client",
                 failover: bool = False):
        self._rt = rt
        self._cluster = cluster
        self._name = name
        self._failover = failover
        self.node = NetNode(cluster.net, name)
        self.redials = 0
        self._rpc = connect_with_retry(self.node, cluster.leader.addr,
                                       name=f"{name}.rpc")

    def _leader_rpc(self) -> RpcClient:
        """The RPC client to use for leader calls, redialing a stale one
        in failover mode."""
        if not self._failover:
            return self._rpc
        want = self._cluster.leader.addr
        if self._rpc.broken or self._rpc.addr != want:
            self._rpc.close()
            self.redials += 1
            self._rpc = connect_with_retry(self.node, want,
                                           name=f"{self._name}.rpc")
        return self._rpc

    def put(self, key: str, value: Any, lease: Optional[int] = None,
            timeout: float = 0.5, attempts: int = 8) -> int:
        """Write through the leader, retrying across partitions (and, in
        failover mode, across leader crashes and elections)."""
        payload = {"key": key, "value": value, "lease": lease}
        if not self._failover:
            return self._rpc.call_with_retry("put", payload, timeout=timeout,
                                             attempts=attempts)
        backoff = Backoff(self._rt, max_delay=0.5,
                          name=f"{self._name}.put.{key}")
        last: Optional[RpcError] = None
        for attempt in range(attempts):
            try:
                return self._leader_rpc().call("put", payload,
                                               timeout=timeout)
            except RpcError as err:
                # FAILED_PRECONDITION = "not the leader": the member we
                # dialed was demoted while we slept; redial and retry.
                if not (err.retryable
                        or err.code == Status.FAILED_PRECONDITION):
                    raise
                last = err
                if attempt + 1 < attempts:
                    backoff.sleep()
            except NetError as err:
                # Dial failed outright (target down, no listener yet).
                last = RpcError(Status.UNAVAILABLE, str(err))
                if attempt + 1 < attempts:
                    backoff.sleep()
        assert last is not None
        raise last

    def get(self, key: str, member: Optional[int] = None) -> Any:
        """Read from the leader, or any member (may lag) by index."""
        if member is None:
            return self._leader_rpc().call_with_retry("get", key)
        target = self._cluster.members[member]
        rpc = connect_with_retry(self.node, target.addr,
                                 name=f"get.{target.name}")
        try:
            return rpc.call_with_retry("get", key)
        finally:
            rpc.close()

    def grant_lease(self, ttl: float) -> int:
        return self._leader_rpc().call_with_retry("lease_grant", ttl)

    def range(self, prefix: str = "",
              timeout: Optional[float] = None) -> List[Any]:
        return list(self._rpc.stream("range", prefix, timeout=timeout))

    def watch(self, prefix: str = "", count: Optional[int] = None,
              timeout: Optional[float] = None):
        """Server-streaming watch: yields (kind, key, value, revision).

        ``timeout`` is the per-event deadline (virtual clock); a stalled
        watch then raises DEADLINE_EXCEEDED instead of blocking forever.
        """
        return self._rpc.stream("watch", {"prefix": prefix, "count": count},
                                timeout=timeout)

    def close(self) -> None:
        self._rpc.close()
        self.node.stop(wait=False)
