"""miniroach transactions: intents, commit/abort, automatic retry."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ...patterns.resilience import Backoff
from .mvcc import MVCCStore, WriteConflict


class TxnStatus:
    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction coordinated against the MVCC store."""

    def __init__(self, rt, store: MVCCStore):
        self._rt = rt
        self.id = rt.fresh_id("txn")
        self.store = store
        self.read_timestamp = store.now()
        self.status = TxnStatus.PENDING
        self._writes: List[str] = []
        self._reads: List[str] = []

    def get(self, key: str) -> Optional[Any]:
        self._check_pending()
        if key not in self._reads:
            self._reads.append(key)
        return self.store.get(key, self.read_timestamp, txn_id=self.id)

    def put(self, key: str, value: Any) -> None:
        self._check_pending()
        self.store.put_intent(key, value, self.id)
        self._writes.append(key)

    def commit(self) -> None:
        """Validate reads and commit; raises WriteConflict on staleness."""
        self._check_pending()
        try:
            self.store.commit_transaction(self.id, self._reads,
                                          self.read_timestamp)
        except WriteConflict:
            self.abort()
            raise
        self.status = TxnStatus.COMMITTED

    def abort(self) -> None:
        if self.status == TxnStatus.PENDING:
            self.store.resolve_intents(self.id, commit=False)
            self.status = TxnStatus.ABORTED

    def _check_pending(self) -> None:
        if self.status != TxnStatus.PENDING:
            raise ValueError(f"txn {self.id} is {self.status}")


class TxnCoordinator:
    """Runs closures transactionally with bounded conflict retries."""

    def __init__(self, rt, store: MVCCStore, max_retries: int = 8,
                 backoff: float = 0.05):
        self._rt = rt
        # Per-run id: it names the retry-jitter RNG, so a process-global
        # counter would leak cross-run state into the schedule.
        self.id = rt.fresh_id("txn.coordinator")
        self.store = store
        self.max_retries = max_retries
        self.backoff = backoff
        self.retries = rt.atomic_int(0, name="txn.retries")
        self.commits = rt.atomic_int(0, name="txn.commits")
        self.aborts = rt.atomic_int(0, name="txn.aborts")

    def run(self, fn: Callable[[Transaction], Any], ctx=None) -> Any:
        """Execute ``fn(txn)``, retrying on write conflicts.

        Retries back off exponentially with seeded jitter so colliding
        coordinators don't re-collide in lockstep (CockroachDB's txn retry
        loop does the same).  A cancelled ``ctx`` stops the retry loop.
        """
        policy = Backoff(self._rt, base=self.backoff,
                         name=f"txn.retry.{self.id}")
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries):
            txn = Transaction(self._rt, self.store)
            try:
                result = fn(txn)
                txn.commit()
                self.commits.add(1)
                return result
            except WriteConflict as exc:
                txn.abort()
                self.aborts.add(1)
                self.retries.add(1)
                last_error = exc
                if ctx is not None and ctx.err() is not None:
                    break
                policy.sleep()
        raise last_error  # type: ignore[misc]
