"""miniroach — a scaled-down CockroachDB: MVCC, transactions, raft-lite."""

from .mvcc import MVCCStore, Version, WriteConflict
from .raftlite import Follower, Proposal, RaftGroup
from .txn import Transaction, TxnCoordinator, TxnStatus

__all__ = [
    "Follower",
    "MVCCStore",
    "Proposal",
    "RaftGroup",
    "Transaction",
    "TxnCoordinator",
    "TxnStatus",
    "Version",
    "WriteConflict",
]
