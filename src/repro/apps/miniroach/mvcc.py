"""miniroach MVCC layer: multi-version keys with timestamp reads.

Versions accumulate per key; reads at a timestamp see the newest version
at or below it.  Write intents (uncommitted versions owned by a
transaction) block conflicting writers, CockroachDB-style.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class Version:
    __slots__ = ("timestamp", "value", "txn_id")

    def __init__(self, timestamp: float, value: Any, txn_id: Optional[int] = None):
        self.timestamp = timestamp
        self.value = value
        self.txn_id = txn_id  # non-None => uncommitted intent

    @property
    def is_intent(self) -> bool:
        return self.txn_id is not None


class WriteConflict(Exception):
    """A write ran into another transaction's intent."""


class MVCCStore:
    """RWMutex-guarded multi-version map."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.rwmutex("mvcc")
        self._versions: Dict[str, List[Version]] = {}
        self._hlc = rt.atomic_int(0, name="mvcc.hlc")  # hybrid logical clock

    def now(self) -> float:
        """Next HLC timestamp (monotonic, unique)."""
        return float(self._hlc.add(1))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: str, timestamp: Optional[float] = None,
            txn_id: Optional[int] = None) -> Optional[Any]:
        """Read the newest visible version at ``timestamp``."""
        self.mu.rlock()
        try:
            versions = self._versions.get(key, [])
            for version in reversed(versions):
                if version.is_intent:
                    if version.txn_id == txn_id:
                        return version.value  # own intents always visible
                    continue  # other txns' intents are invisible
                if timestamp is not None and version.timestamp > timestamp:
                    continue
                return version.value
            return None
        finally:
            self.mu.runlock()

    def scan(self, prefix: str, timestamp: Optional[float] = None
             ) -> List[Tuple[str, Any]]:
        self.mu.rlock()
        try:
            keys = [k for k in sorted(self._versions) if k.startswith(prefix)]
        finally:
            self.mu.runlock()
        out = []
        for key in keys:
            value = self.get(key, timestamp)
            if value is not None:
                out.append((key, value))
        return out

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put_intent(self, key: str, value: Any, txn_id: int) -> float:
        """Lay a write intent; conflicts with other txns' intents."""
        self.mu.lock()
        try:
            versions = self._versions.setdefault(key, [])
            for version in versions:
                if version.is_intent and version.txn_id != txn_id:
                    raise WriteConflict(f"{key}: intent held by txn {version.txn_id}")
            timestamp = float(self._hlc.add(1))
            versions.append(Version(timestamp, value, txn_id))
            return timestamp
        finally:
            self.mu.unlock()

    def commit_transaction(self, txn_id: int, read_keys: "List[str]",
                           read_timestamp: float) -> int:
        """Validate the read set and commit intents atomically.

        Serializability check: if any key the transaction read gained a
        newer *committed* version after the transaction's read timestamp,
        the commit fails with :class:`WriteConflict` (and the coordinator
        retries) — CockroachDB's read-refresh failure, scaled down.
        """
        self.mu.lock()
        try:
            for key in read_keys:
                for version in reversed(self._versions.get(key, [])):
                    if version.is_intent:
                        continue
                    if version.timestamp > read_timestamp:
                        raise WriteConflict(
                            f"{key}: committed write at {version.timestamp} "
                            f"after read timestamp {read_timestamp}"
                        )
                    break  # newest committed version is old enough
            committed = 0
            for key, versions in list(self._versions.items()):
                for version in versions:
                    if version.txn_id == txn_id:
                        version.txn_id = None
                        version.timestamp = float(self._hlc.add(1))
                        committed += 1
            return committed
        finally:
            self.mu.unlock()

    def resolve_intents(self, txn_id: int, commit: bool) -> int:
        """Commit (strip ownership) or abort (remove) a txn's intents."""
        self.mu.lock()
        try:
            touched = 0
            for key, versions in list(self._versions.items()):
                kept: List[Version] = []
                for version in versions:
                    if version.txn_id == txn_id:
                        touched += 1
                        if commit:
                            version.txn_id = None
                            kept.append(version)
                    else:
                        kept.append(version)
                if kept:
                    self._versions[key] = kept
                else:
                    del self._versions[key]
            return touched
        finally:
            self.mu.unlock()

    def put(self, key: str, value: Any) -> float:
        """Non-transactional write (a committed single version)."""
        self.mu.lock()
        try:
            timestamp = float(self._hlc.add(1))
            self._versions.setdefault(key, []).append(Version(timestamp, value))
            return timestamp
        finally:
            self.mu.unlock()

    def garbage_collect(self, keep: int = 3) -> int:
        """Trim old committed versions per key; returns trimmed count."""
        self.mu.lock()
        try:
            trimmed = 0
            for key, versions in self._versions.items():
                committed = [v for v in versions if not v.is_intent]
                intents = [v for v in versions if v.is_intent]
                if len(committed) > keep:
                    trimmed += len(committed) - keep
                    committed = committed[-keep:]
                self._versions[key] = committed + intents
            return trimmed
        finally:
            self.mu.unlock()
