"""miniroach raft-lite: single-range replication over channels.

A deliberately small replication layer: a leader goroutine serializes
proposals from a channel, appends them to its log, fans them out to
follower goroutines over per-follower channels, and acknowledges once a
quorum applied.  Heartbeats ride a ticker.  This is where CockroachDB's
channel-heavy concurrency lives in our corpus.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ...chan.cases import recv


class Proposal:
    __slots__ = ("command", "done")

    def __init__(self, rt, command: Any):
        self.command = command
        self.done = rt.make_chan(1, name="proposal.done")


class Follower:
    """A follower replica applying entries from its stream."""

    def __init__(self, rt, name: str, apply_fn: Optional[Callable] = None):
        self._rt = rt
        self.name = name
        self.entries = rt.make_chan(16, name=f"{name}.entries")
        self.acks = rt.make_chan(16, name=f"{name}.acks")
        self.log: List[Any] = []
        self._apply_fn = apply_fn

    def run(self) -> None:
        for index, command in self.entries:
            self.log.append(command)
            if self._apply_fn is not None:
                self._apply_fn(command)
            self.acks.send(index)


class RaftGroup:
    """Leader + followers for one range."""

    def __init__(self, rt, n_followers: int = 2,
                 apply_fn: Optional[Callable] = None,
                 heartbeat_interval: float = 1.0):
        self._rt = rt
        self.proposals = rt.make_chan(8, name="raft.proposals")
        self.followers = [
            Follower(rt, f"follower-{i}", apply_fn) for i in range(n_followers)
        ]
        self.log: List[Any] = []
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats = rt.atomic_int(0, name="raft.heartbeats")
        self.committed = rt.atomic_int(0, name="raft.committed")
        self._stop = rt.make_chan(0, name="raft.stop")
        self._apply_fn = apply_fn
        # Leader state (term, commit index) read by status RPCs while the
        # leader loop mutates it: classic mutex-guarded bookkeeping.
        self.mu = rt.mutex("raft.status")
        self._term = 1
        self._commit_index = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        for follower in self.followers:
            def replica_loop(follower=follower):
                follower.run()

            self._rt.go(replica_loop, name=follower.name)

        def leader_loop():
            self._leader_loop()

        self._rt.go(leader_loop, name="raft.leader")

    def _leader_loop(self) -> None:
        ticker = self._rt.new_ticker(self.heartbeat_interval)
        while True:
            index, value, ok = self._rt.select(
                recv(self._stop), recv(self.proposals), recv(ticker.c)
            )
            if index == 0:
                ticker.stop()
                for follower in self.followers:
                    follower.entries.close()
                return
            if index == 2:
                self.heartbeats.add(1)
                continue
            if not ok:
                continue
            self._replicate(value)

    def _replicate(self, proposal: Proposal) -> None:
        self.log.append(proposal.command)
        entry_index = len(self.log)
        if self._apply_fn is not None:
            self._apply_fn(proposal.command)
        for follower in self.followers:
            follower.entries.send((entry_index, proposal.command))
        quorum = (len(self.followers) + 1) // 2 + 1
        acked = 1  # the leader itself
        while acked < quorum:
            cases = [recv(f.acks) for f in self.followers]
            _i, _v, _ok = self._rt.select(*cases)
            acked += 1
        self.committed.add(1)
        with self.mu:
            self._commit_index = entry_index
        proposal.done.send(entry_index)

    # ------------------------------------------------------------------

    def propose(self, command: Any) -> int:
        """Submit a command; blocks until a quorum committed it."""
        proposal = Proposal(self._rt, command)
        self.proposals.send(proposal)
        return proposal.done.recv()

    def stop(self) -> None:
        self._stop.close()

    def status(self):
        """Leader status snapshot, like a /_status RPC."""
        with self.mu:
            return {"term": self._term, "commit_index": self._commit_index}

    def replicated_everywhere(self, min_entries: int) -> bool:
        return all(len(f.log) >= min_entries for f in self.followers)
