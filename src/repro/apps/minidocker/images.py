"""minidocker image store: layers, reference counts, concurrent pulls."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Layer:
    """One content-addressed layer with a reference count."""

    __slots__ = ("digest", "size", "refs")

    def __init__(self, digest: str, size: int):
        self.digest = digest
        self.size = size
        self.refs = 0


class ImageStore:
    """Layer registry guarded by one mutex (Docker's graph lock)."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.mutex("images")
        self._layers: Dict[str, Layer] = {}
        self._images: Dict[str, Tuple[str, ...]] = {}
        self.pull_once = rt.once("images.warmup")

    def pull(self, name: str, layers: List[Tuple[str, int]]) -> None:
        """Register an image; simulated download latency per layer."""
        for digest, size in layers:
            self._rt.sleep(0.01)  # network fetch
            with self.mu:
                layer = self._layers.get(digest)
                if layer is None:
                    layer = Layer(digest, size)
                    self._layers[digest] = layer
                layer.refs += 1
        with self.mu:
            self._images[name] = tuple(digest for digest, _ in layers)

    def resolve(self, name: str) -> Optional[Tuple[str, ...]]:
        with self.mu:
            return self._images.get(name)

    def release(self, name: str) -> int:
        """Drop an image's layer references; returns freed layer count."""
        freed = 0
        with self.mu:
            digests = self._images.pop(name, ())
            for digest in digests:
                layer = self._layers.get(digest)
                if layer is None:
                    continue
                layer.refs -= 1
                if layer.refs <= 0:
                    del self._layers[digest]
                    freed += 1
        return freed

    def disk_usage(self) -> int:
        with self.mu:
            return sum(layer.size for layer in self._layers.values())

    def __len__(self) -> int:
        with self.mu:
            return len(self._images)
