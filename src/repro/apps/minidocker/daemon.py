"""minidocker daemon: the event bus and the container supervisor."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...chan.cases import recv
from ...patterns.resilience import Backoff
from ...runtime.errors import GoPanic
from .container import Container, ContainerState
from .images import ImageStore
from .network import NetworkController


class DaemonEvent:
    __slots__ = ("kind", "container_id")

    def __init__(self, kind: str, container_id: str):
        self.kind = kind
        self.container_id = container_id


class Daemon:
    """The dockerd stand-in: owns images, containers, and the event bus."""

    def __init__(self, rt):
        self._rt = rt
        self.images = ImageStore(rt)
        self.network = NetworkController(rt)
        self.network.create_network("bridge")
        self.mu = rt.mutex("daemon")
        self._containers: Dict[str, Container] = {}
        self.teardown = rt.waitgroup("daemon.teardown")
        self.events = rt.make_chan(32, name="daemon.events")
        self._bus_stop = rt.make_chan(0, name="daemon.bus-stop")
        self.init_once = rt.once("daemon.init")
        self._subscribers: List = []
        self._event_count = rt.atomic_int(0, name="daemon.events.count")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.init_once.do(self._boot)

    def _boot(self) -> None:
        def event_loop():
            self._event_loop()

        self._rt.go(event_loop, name="event-bus")

    def _event_loop(self) -> None:
        while True:
            index, event, ok = self._rt.select(
                recv(self._bus_stop), recv(self.events)
            )
            if index == 0 or not ok:
                return
            self._event_count.add(1)
            with self.mu:
                subscribers = list(self._subscribers)
            for subscriber in subscribers:
                try:
                    subscriber.try_send(event)  # slow subscribers drop events
                except GoPanic:
                    # Subscriber channel closed underneath the bus (fault
                    # injection / dead consumer): unsubscribe, keep pumping.
                    with self.mu:
                        if subscriber in self._subscribers:
                            self._subscribers.remove(subscriber)

    def subscribe(self, buffer: int = 8):
        ch = self._rt.make_chan(buffer, name="events.sub")
        with self.mu:
            self._subscribers.append(ch)
        return ch

    def shutdown(self) -> None:
        """Graceful stop: wait for containers, then stop the bus."""
        self.teardown.wait()
        if not self._bus_stop.closed:
            self._bus_stop.close()
        with self.mu:
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for subscriber in subscribers:
            if not subscriber.closed:
                subscriber.close()

    def _publish(self, event: DaemonEvent) -> None:
        """Fire-and-forget event publication; a bus torn down by a fault
        loses events (as a crashed dockerd would) instead of crashing the
        container path."""
        try:
            self.events.try_send(event)
        except GoPanic:
            pass

    # ------------------------------------------------------------------
    # Container API
    # ------------------------------------------------------------------

    def create(self, image: str, command: str, runtime_secs: float = 1.0
               ) -> Container:
        if self.images.resolve(image) is None:
            raise KeyError(f"image not found: {image}")
        container = Container(self._rt, image, command, runtime_secs)
        with self.mu:
            self._containers[container.id] = container
        self._publish(DaemonEvent("create", container.id))
        return container

    def start_container(self, container: Container) -> None:
        self.network.connect("bridge", container.id)
        container.start(self.teardown)
        self._publish(DaemonEvent("start", container.id))
        self.teardown.add(1)

        def release_endpoint():
            container.wait()
            self.network.disconnect("bridge", container.id)
            self.teardown.done()

        self._rt.go(release_endpoint, name=f"netns-{container.id}")

    def run(self, image: str, command: str, runtime_secs: float = 1.0
            ) -> Container:
        container = self.create(image, command, runtime_secs)
        self.start_container(container)
        return container

    def run_with_restart(self, image: str, command: str,
                         runtime_secs: float = 1.0,
                         max_restarts: int = 2) -> "Container":
        """Run under a restart policy: a supervisor goroutine restarts the
        container (up to ``max_restarts`` times) each time it exits —
        dockerd's ``--restart=on-failure:N``."""
        first = self.run(image, command, runtime_secs)
        self.teardown.add(1)
        # Crash-loop protection: seeded exponential backoff between restarts,
        # as dockerd applies to on-failure policies.
        policy = Backoff(self._rt, base=0.05, max_delay=1.0,
                         name=f"restart.{first.id}")

        def supervisor():
            current = first
            restarts = 0
            while True:
                current.wait()
                if restarts >= max_restarts:
                    break
                restarts += 1
                policy.sleep()
                current = self.run(image, command, runtime_secs)
                self._publish(DaemonEvent("restart", current.id))
            self.teardown.done()

        self._rt.go(supervisor, name=f"supervise-{first.id}")
        return first

    def wait_all(self) -> None:
        self.teardown.wait()

    def ps(self) -> List[Tuple[str, str]]:
        with self.mu:
            containers = list(self._containers.values())
        return [(c.id, c.status()) for c in containers]

    @property
    def events_published(self) -> int:
        return self._event_count.load()
