"""minidocker — a scaled-down Docker daemon: images, containers, events."""

from .container import Container, ContainerState
from .daemon import Daemon, DaemonEvent
from .images import ImageStore, Layer
from .network import Network, NetworkController, NetworkError, Volume

__all__ = [
    "Container",
    "ContainerState",
    "Daemon",
    "DaemonEvent",
    "ImageStore",
    "Layer",
    "Network",
    "NetworkController",
    "NetworkError",
    "Volume",
]
