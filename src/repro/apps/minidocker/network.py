"""minidocker networks and volumes: endpoint attachment, IPAM, mounts.

The libnetwork/volume-plugin slice of the daemon: mutex-guarded state,
reference-counted volumes, and an IP allocator — the subsystems whose
locking interplay produced several of Docker's studied Mutex bugs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple


class NetworkError(Exception):
    """Invalid network/volume operation."""


class Network:
    """One bridge network with a tiny IPAM pool."""

    def __init__(self, name: str, subnet_hosts: int = 8):
        self.name = name
        self.subnet_hosts = subnet_hosts
        self.endpoints: Dict[str, str] = {}  # container id -> ip

    def _next_ip(self) -> Optional[str]:
        used = set(self.endpoints.values())
        for host in range(2, 2 + self.subnet_hosts):
            ip = f"10.89.0.{host}"
            if ip not in used:
                return ip
        return None


class Volume:
    """A named volume with a reference count."""

    def __init__(self, name: str):
        self.name = name
        self.refs = 0
        self.data: Dict[str, str] = {}


class NetworkController:
    """Owns networks and volumes; all state under one mutex."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.mutex("netctl")
        self._networks: Dict[str, Network] = {}
        self._volumes: Dict[str, Volume] = {}
        self._attachments = rt.atomic_int(0, name="net.attachments")

    # ------------------------------------------------------------------
    # Networks
    # ------------------------------------------------------------------

    def create_network(self, name: str, subnet_hosts: int = 8) -> Network:
        with self.mu:
            if name in self._networks:
                raise NetworkError(f"network exists: {name}")
            network = Network(name, subnet_hosts)
            self._networks[name] = network
            return network

    def connect(self, network_name: str, container_id: str) -> str:
        """Attach a container; allocates and returns its IP."""
        with self.mu:
            network = self._networks.get(network_name)
            if network is None:
                raise NetworkError(f"no such network: {network_name}")
            if container_id in network.endpoints:
                raise NetworkError(f"{container_id} already attached")
            ip = network._next_ip()
            if ip is None:
                raise NetworkError(f"{network_name}: address pool exhausted")
            network.endpoints[container_id] = ip
        self._attachments.add(1)
        return ip

    def disconnect(self, network_name: str, container_id: str) -> None:
        with self.mu:
            network = self._networks.get(network_name)
            if network is None or container_id not in network.endpoints:
                raise NetworkError(f"{container_id} not attached to {network_name}")
            del network.endpoints[container_id]

    def endpoints(self, network_name: str) -> Dict[str, str]:
        with self.mu:
            network = self._networks.get(network_name)
            return dict(network.endpoints) if network else {}

    def remove_network(self, name: str) -> None:
        with self.mu:
            network = self._networks.get(name)
            if network is None:
                raise NetworkError(f"no such network: {name}")
            if network.endpoints:
                raise NetworkError(f"{name} has active endpoints")
            del self._networks[name]

    # ------------------------------------------------------------------
    # Volumes
    # ------------------------------------------------------------------

    def create_volume(self, name: str) -> Volume:
        with self.mu:
            volume = self._volumes.get(name)
            if volume is None:
                volume = Volume(name)
                self._volumes[name] = volume
            return volume

    def mount(self, name: str) -> Volume:
        with self.mu:
            volume = self._volumes.get(name)
            if volume is None:
                raise NetworkError(f"no such volume: {name}")
            volume.refs += 1
            return volume

    def unmount(self, name: str) -> None:
        with self.mu:
            volume = self._volumes.get(name)
            if volume is None or volume.refs == 0:
                raise NetworkError(f"{name}: unmount without mount")
            volume.refs -= 1

    def prune_volumes(self) -> List[str]:
        """Remove unreferenced volumes; returns their names."""
        with self.mu:
            removable = [n for n, v in self._volumes.items() if v.refs == 0]
            for name in removable:
                del self._volumes[name]
            return sorted(removable)

    def stats(self) -> Tuple[int, int, int]:
        with self.mu:
            return (len(self._networks), len(self._volumes),
                    self._attachments.load())
