"""minidocker containers: lifecycle goroutines, log streaming, teardown.

Each running container has a monitor goroutine (the ``containerd`` shim
stand-in) and a logger goroutine appending to a mutex-guarded ring buffer.
``attach()`` streams the buffer through an ``io.Pipe`` fed by its own
goroutine — which always closes the pipe, the committed fix for Docker's
studied pipe-leak bugs.
"""

from __future__ import annotations

from typing import List, Optional

from ...stdlib.iopipe import EOF, PipeError


class ContainerState:
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"


class Container:
    """One container and its helper goroutines."""

    def __init__(self, rt, image: str, command: str, runtime_secs: float = 1.0):
        self._rt = rt
        # Per-run id: it names the restart-backoff RNG (daemon.py), so a
        # process-global counter would leak cross-run state into schedules.
        self.id = f"c{rt.fresh_id('container'):04d}"
        self.image = image
        self.command = command
        self.runtime_secs = runtime_secs
        self.mu = rt.mutex(f"{self.id}.state")
        self.state = ContainerState.CREATED
        self.exit_code: Optional[int] = None
        self.exited = rt.make_chan(0, name=f"{self.id}.exited")
        self._logs: List[str] = []
        self._log_lines = max(int(runtime_secs / 0.25), 1)

    # ------------------------------------------------------------------

    def start(self, teardown_group) -> None:
        """Start the monitor and logger goroutines."""
        with self.mu:
            if self.state != ContainerState.CREATED:
                raise ValueError(f"{self.id} already started")
            self.state = ContainerState.RUNNING
        teardown_group.add(2)

        def monitor():
            self._rt.sleep(self.runtime_secs)  # the workload runs
            with self.mu:
                self.state = ContainerState.EXITED
                self.exit_code = 0
            self.exited.close()  # close = broadcast to every waiter
            teardown_group.done()

        def logger():
            for i in range(self._log_lines):
                self._rt.sleep(0.25)
                with self.mu:
                    self._logs.append(f"{self.id} log {i}")
            teardown_group.done()

        self._rt.go(monitor, name=f"{self.id}.monitor")
        self._rt.go(logger, name=f"{self.id}.logger")

    def wait(self) -> int:
        """Block until exit, like ``docker wait``."""
        self.exited.recv_ok()
        with self.mu:
            return self.exit_code if self.exit_code is not None else -1

    def status(self) -> str:
        with self.mu:
            return self.state

    # ------------------------------------------------------------------
    # Logs
    # ------------------------------------------------------------------

    def logs_snapshot(self) -> List[str]:
        with self.mu:
            return list(self._logs)

    def attach(self):
        """Stream the current log buffer through a pipe.

        Returns the read end; the feeder goroutine always closes the write
        end (and tolerates the reader going away first).
        """
        reader, writer = self._rt.pipe()
        lines = self.logs_snapshot()

        def feed():
            try:
                for line in lines:
                    writer.write(line)
                writer.close()
            except PipeError:
                pass  # reader closed early: nothing leaks either way

        self._rt.go(feed, name=f"{self.id}.attach")
        return reader

    def read_logs(self) -> List[str]:
        """Wait for exit, then attach and drain the stream to EOF."""
        self.wait()
        reader = self.attach()
        lines: List[str] = []
        try:
            while True:
                lines.append(reader.read())
        except (EOF, PipeError):
            return lines
