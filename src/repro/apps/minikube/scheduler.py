"""minikube scheduler: binds pending pods to nodes from a watch-fed queue."""

from __future__ import annotations

from typing import Optional

from ...chan.cases import recv
from .apiserver import ApiServer
from .objects import Node, Pod, PodPhase
from .queue import WorkQueue


class Scheduler:
    """Watches for pending pods and binds them to the emptiest node."""

    def __init__(self, rt, api: ApiServer):
        self._rt = rt
        self.api = api
        self.queue = WorkQueue(rt, name="scheduler")
        self.cache_mu = rt.mutex("scheduler.cache")
        self._stop = rt.make_chan(0, name="scheduler.stop")
        self._bound = rt.atomic_int(0, name="scheduler.bound")
        self._unschedulable = rt.atomic_int(0, name="scheduler.unschedulable")

    def start(self) -> None:
        # Register the watch *before* returning (list+watch discipline):
        # events published between start() and the loop's first receive
        # must not be lost.
        events = self.api.watch()
        self._rt.go(self._watch_loop, events, name="scheduler.watch")
        self._rt.go(self._bind_loop, name="scheduler.bind")

    def _watch_loop(self, events) -> None:
        # Initial list: pick up pods that predate the watch.
        for pod in self.api.pods(phase=PodPhase.PENDING):
            self.queue.add(pod.uid)
        while True:
            index, event, ok = self._rt.select(recv(self._stop), recv(events))
            if index == 0 or not ok:
                return
            kind, _name = event
            if kind in ("pod", "node"):
                for pod in self.api.pods(phase=PodPhase.PENDING):
                    self.queue.add(pod.uid)

    def _bind_loop(self) -> None:
        while True:
            uid, shutdown = self.queue.get()
            if shutdown:
                return
            self._schedule_one(uid)
            self.queue.done(uid)

    def _schedule_one(self, uid: str) -> None:
        pods = {p.uid: p for p in self.api.pods()}
        pod = pods.get(uid)
        if pod is None or pod.phase != PodPhase.PENDING:
            return
        node = self._pick_node(pod)
        if node is None:
            self._unschedulable.add(1)
            return
        with self.cache_mu:
            node.allocated += pod.cpu
        pod.node = node.name
        pod.phase = PodPhase.SCHEDULED
        self.api.update_pod(pod)
        self._bound.add(1)

    def _pick_node(self, pod: Pod) -> Optional[Node]:
        with self.cache_mu:
            candidates = [n for n in self.api.nodes() if n.free >= pod.cpu]
            if not candidates:
                return None
            return max(candidates, key=lambda n: (n.free, n.name))

    def stop(self) -> None:
        self._stop.close()
        self.queue.shutdown()

    @property
    def bound(self) -> int:
        return self._bound.load()

    @property
    def unschedulable(self) -> int:
        return self._unschedulable.load()
