"""minikube work queue: the Cond-based rate-limited queue every Kubernetes
controller drains (client-go's ``workqueue``, scaled down).

Deduplicating add, blocking get via ``sync.Cond``, and a shutdown
broadcast — the canonical Cond usage profile behind Kubernetes' Table 4
numbers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple


class WorkQueue:
    """Deduplicating FIFO with Cond-blocking Get and shutdown."""

    def __init__(self, rt, name: str = "workqueue"):
        self._rt = rt
        self.name = name
        self.mu = rt.mutex(f"{name}.mu")
        self.cond = rt.cond(self.mu, f"{name}.cond")
        self._queue: List[Any] = []
        self._dirty: Set[Any] = set()
        self._processing: Set[Any] = set()
        self._shutting_down = False
        self._adds = rt.atomic_int(0, name=f"{name}.adds")

    def add(self, item: Any) -> None:
        """Enqueue (dedup against pending and re-queue after processing)."""
        self.mu.lock()
        try:
            if self._shutting_down:
                return
            self._adds.add(1)
            if item in self._dirty:
                return
            self._dirty.add(item)
            if item in self._processing:
                return  # re-queued when processing finishes
            self._queue.append(item)
            self.cond.signal()
        finally:
            self.mu.unlock()

    def get(self) -> Tuple[Optional[Any], bool]:
        """Block for the next item; ``(None, True)`` once shut down."""
        self.mu.lock()
        try:
            while not self._queue and not self._shutting_down:
                self.cond.wait()
            if not self._queue:
                return None, True
            item = self._queue.pop(0)
            self._dirty.discard(item)
            self._processing.add(item)
            return item, False
        finally:
            self.mu.unlock()

    def done(self, item: Any) -> None:
        """Mark processing finished; re-queue if it went dirty meanwhile."""
        self.mu.lock()
        try:
            self._processing.discard(item)
            if item in self._dirty:
                self._queue.append(item)
                self.cond.signal()
        finally:
            self.mu.unlock()

    def shutdown(self) -> None:
        self.mu.lock()
        try:
            self._shutting_down = True
            self.cond.broadcast()
        finally:
            self.mu.unlock()

    def __len__(self) -> int:
        self.mu.lock()
        try:
            return len(self._queue)
        finally:
            self.mu.unlock()

    @property
    def adds(self) -> int:
        return self._adds.load()
