"""minikube API server: the shared object store plus watch broadcast.

Controllers and the scheduler communicate exclusively through this store
(level-triggered watches), mirroring Kubernetes' architecture.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...runtime.errors import GoPanic
from .objects import Node, Pod, PodPhase, ReplicaSet


class ApiServer:
    """RWMutex-guarded object store with watch channels."""

    def __init__(self, rt):
        self._rt = rt
        self.mu = rt.rwmutex("apiserver")
        self._pods: Dict[str, Pod] = {}
        self._nodes: Dict[str, Node] = {}
        self._replicasets: Dict[str, ReplicaSet] = {}
        self._watchers: List = []
        self._version = rt.atomic_int(0, name="apiserver.version")

    # ------------------------------------------------------------------
    # Watch plumbing
    # ------------------------------------------------------------------

    def watch(self, buffer: int = 16):
        ch = self._rt.make_chan(buffer, name="api.watch")
        self.mu.lock()
        try:
            self._watchers.append(ch)
        finally:
            self.mu.unlock()
        return ch

    def _notify(self, kind: str, name: str) -> None:
        self._version.add(1)
        self.mu.rlock()
        try:
            watchers = list(self._watchers)
        finally:
            self.mu.runlock()
        for ch in watchers:
            try:
                ch.try_send((kind, name))
            except GoPanic:
                # Watch channel closed underneath us (fault injection /
                # crashed watcher): drop the subscription, keep notifying.
                self.mu.lock()
                try:
                    if ch in self._watchers:
                        self._watchers.remove(ch)
                finally:
                    self.mu.unlock()

    def close_watchers(self) -> None:
        self.mu.lock()
        try:
            watchers = list(self._watchers)
            self._watchers.clear()
        finally:
            self.mu.unlock()
        for ch in watchers:
            if not ch.closed:
                ch.close()

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        self.mu.lock()
        try:
            self._nodes[node.name] = node
        finally:
            self.mu.unlock()
        self._notify("node", node.name)

    def remove_node(self, name: str) -> List[Pod]:
        """Drop a node (failure injection): its pods go back to Pending.

        Returns the evicted pods.  The scheduler picks them up again via
        the pod notifications — the reschedule loop every controller
        manager runs in production.
        """
        self.mu.lock()
        try:
            self._nodes.pop(name, None)
            evicted = [p for p in self._pods.values() if p.node == name]
            for pod in evicted:
                pod.node = None
                pod.phase = PodPhase.PENDING
        finally:
            self.mu.unlock()
        self._notify("node", name)
        for pod in evicted:
            self._notify("pod", pod.uid)
        return evicted

    def create_pod(self, pod: Pod) -> None:
        self.mu.lock()
        try:
            self._pods[pod.uid] = pod
        finally:
            self.mu.unlock()
        self._notify("pod", pod.uid)

    def update_pod(self, pod: Pod) -> None:
        self._notify("pod", pod.uid)

    def delete_pod(self, uid: str) -> Optional[Pod]:
        self.mu.lock()
        try:
            pod = self._pods.pop(uid, None)
        finally:
            self.mu.unlock()
        if pod is not None:
            self._notify("pod", uid)
        return pod

    def apply_replicaset(self, rs: ReplicaSet) -> None:
        self.mu.lock()
        try:
            self._replicasets[rs.name] = rs
        finally:
            self.mu.unlock()
        self._notify("replicaset", rs.name)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def pods(self, phase: Optional[str] = None, owner: Optional[str] = None
             ) -> List[Pod]:
        self.mu.rlock()
        try:
            out = [
                p for p in self._pods.values()
                if (phase is None or p.phase == phase)
                and (owner is None or p.owner == owner)
            ]
        finally:
            self.mu.runlock()
        return sorted(out, key=lambda p: p.uid)

    def nodes(self) -> List[Node]:
        self.mu.rlock()
        try:
            return sorted(self._nodes.values(), key=lambda n: n.name)
        finally:
            self.mu.runlock()

    def replicasets(self) -> List[ReplicaSet]:
        self.mu.rlock()
        try:
            return sorted(self._replicasets.values(), key=lambda r: r.name)
        finally:
            self.mu.runlock()

    @property
    def resource_version(self) -> int:
        return self._version.load()
