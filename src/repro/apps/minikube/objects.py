"""minikube API objects: pods, nodes, replica sets (plain data)."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional


class PodPhase:
    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    RUNNING = "Running"
    FAILED = "Failed"


class Pod:
    _ids = itertools.count(1)

    def __init__(self, name: str, owner: Optional[str] = None, cpu: int = 1):
        self.uid = f"pod-{next(Pod._ids):04d}"
        self.name = name
        self.owner = owner          # replica set name
        self.cpu = cpu
        self.phase = PodPhase.PENDING
        self.node: Optional[str] = None

    def __repr__(self) -> str:
        return f"<Pod {self.name} {self.phase} on={self.node}>"


class Node:
    def __init__(self, name: str, capacity: int = 4):
        self.name = name
        self.capacity = capacity
        self.allocated = 0

    @property
    def free(self) -> int:
        return self.capacity - self.allocated

    def __repr__(self) -> str:
        return f"<Node {self.name} {self.allocated}/{self.capacity}>"


class ReplicaSet:
    def __init__(self, name: str, replicas: int, cpu_per_pod: int = 1):
        self.name = name
        self.replicas = replicas
        self.cpu_per_pod = cpu_per_pod
