"""minikube replica-set controller: reconcile desired vs. actual pods."""

from __future__ import annotations

from ...chan.cases import recv
from .apiserver import ApiServer
from .objects import Pod, PodPhase, ReplicaSet
from .queue import WorkQueue


class ReplicaSetController:
    """Level-triggered reconciler for ReplicaSet objects."""

    def __init__(self, rt, api: ApiServer):
        self._rt = rt
        self.api = api
        self.queue = WorkQueue(rt, name="rs-controller")
        self._stop = rt.make_chan(0, name="rsc.stop")
        self._created = rt.atomic_int(0, name="rsc.created")
        self._deleted = rt.atomic_int(0, name="rsc.deleted")

    def start(self, workers: int = 2) -> None:
        # list+watch: register before returning so no event is missed.
        events = self.api.watch()
        self._rt.go(self._watch_loop, events, name="rsc.watch")
        for i in range(workers):
            self._rt.go(self._worker, name=f"rsc.worker-{i}")

    def _watch_loop(self, events) -> None:
        for rs in self.api.replicasets():  # initial list
            self.queue.add(rs.name)
        while True:
            index, event, ok = self._rt.select(recv(self._stop), recv(events))
            if index == 0 or not ok:
                return
            kind, name = event
            if kind == "replicaset":
                self.queue.add(name)
            elif kind == "pod":
                # Re-reconcile every owner whose pod changed.
                for rs in self.api.replicasets():
                    self.queue.add(rs.name)

    def _worker(self) -> None:
        while True:
            name, shutdown = self.queue.get()
            if shutdown:
                return
            self._reconcile(name)
            self.queue.done(name)

    def _reconcile(self, name: str) -> None:
        rs = next((r for r in self.api.replicasets() if r.name == name), None)
        if rs is None:
            return
        owned = self.api.pods(owner=name)
        live = [p for p in owned if p.phase != PodPhase.FAILED]
        diff = rs.replicas - len(live)
        if diff > 0:
            for i in range(diff):
                pod = Pod(f"{name}-{len(owned) + i}", owner=name,
                          cpu=rs.cpu_per_pod)
                self.api.create_pod(pod)
                self._created.add(1)
        elif diff < 0:
            for pod in sorted(live, key=lambda p: p.uid, reverse=True)[: -diff]:
                self.api.delete_pod(pod.uid)
                self._deleted.add(1)

    def stop(self) -> None:
        self._stop.close()
        self.queue.shutdown()

    @property
    def created(self) -> int:
        return self._created.load()

    @property
    def deleted(self) -> int:
        return self._deleted.load()
