"""minikube leader election: lease locks with re-acquisition.

Kubernetes controllers coordinate through a lease object in the API server;
a controller that loses its lease (clock skew, a stalled renew loop — both
of which the chaos suite injects) must notice, step down, and campaign
again.  This module provides that loop as graceful degradation: under a
``clock_jump`` fault the current leader's lease expires early, renewal
fails, and the elector re-acquires instead of either crashing or — worse —
continuing to act as a leader it no longer is.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...chan.cases import recv


class LeaseLock:
    """A TTL lease on the virtual clock; mutual exclusion with expiry."""

    def __init__(self, rt, name: str = "leader", ttl: float = 1.0):
        self._rt = rt
        self.name = name
        self.ttl = ttl
        self.mu = rt.mutex(f"lease.{name}")
        self.holder: Optional[str] = None
        self._expires_at = 0.0
        self.transitions = 0  # distinct acquisitions (handovers included)

    def try_acquire(self, identity: str) -> bool:
        """Take the lease if free, expired, or already ours."""
        with self.mu:
            now = self._rt.now()
            if self.holder is None or now >= self._expires_at \
                    or self.holder == identity:
                if self.holder != identity:
                    self.transitions += 1
                self.holder = identity
                self._expires_at = now + self.ttl
                return True
            return False

    def renew(self, identity: str) -> bool:
        """Extend our lease; fails if it expired (we must re-campaign)."""
        with self.mu:
            if self.holder != identity or self._rt.now() >= self._expires_at:
                return False
            self._expires_at = self._rt.now() + self.ttl
            return True

    def release(self, identity: str) -> None:
        with self.mu:
            if self.holder == identity:
                self.holder = None
                self._expires_at = 0.0

    def current_holder(self) -> Optional[str]:
        """The live (unexpired) holder, if any."""
        with self.mu:
            if self.holder is not None and self._rt.now() < self._expires_at:
                return self.holder
            return None


class LeaderElector:
    """Campaign for a :class:`LeaseLock`, renew it, re-acquire after loss."""

    def __init__(self, rt, lock: LeaseLock, identity: str,
                 renew_interval: Optional[float] = None,
                 retry_interval: Optional[float] = None,
                 on_started: Optional[Callable[[], None]] = None,
                 on_stopped: Optional[Callable[[], None]] = None):
        self._rt = rt
        self.lock = lock
        self.identity = identity
        self.renew_interval = renew_interval if renew_interval is not None \
            else lock.ttl / 3.0
        self.retry_interval = retry_interval if retry_interval is not None \
            else lock.ttl / 2.0
        self.on_started = on_started
        self.on_stopped = on_stopped
        self.leading = False
        self.acquisitions = rt.atomic_int(0, name=f"elector-{identity}.acquired")
        self.losses = rt.atomic_int(0, name=f"elector-{identity}.lost")
        self._stop = rt.make_chan(0, name=f"elector-{identity}.stop")
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._rt.go(self._loop, name=f"elector-{self.identity}")

    def stop(self) -> None:
        if self._started and not self._stop.closed:
            self._stop.close()

    # ------------------------------------------------------------------

    def _sleep_or_stop(self, duration: float) -> bool:
        """Wait ``duration``; True when the elector was stopped meanwhile."""
        timer = self._rt.new_timer(duration)
        index, _v, _ok = self._rt.select(recv(self._stop), recv(timer.c))
        if index == 0:
            timer.stop()
            return True
        return False

    def _step_down(self) -> None:
        if self.leading:
            self.leading = False
            if self.on_stopped is not None:
                self.on_stopped()

    def _loop(self) -> None:
        try:
            while True:
                if not self.lock.try_acquire(self.identity):
                    if self._sleep_or_stop(self.retry_interval):
                        return
                    continue
                # We are the leader: renew until stopped or the lease slips.
                self.leading = True
                self.acquisitions.add(1)
                if self.on_started is not None:
                    self.on_started()
                while True:
                    if self._sleep_or_stop(self.renew_interval):
                        self.lock.release(self.identity)
                        return
                    if not self.lock.renew(self.identity):
                        # Lost the lease (expired under clock skew or a
                        # delayed renew): degrade and campaign again.
                        self.losses.add(1)
                        break
                self._step_down()
        finally:
            self._step_down()
