"""minikube — a scaled-down Kubernetes: API server, scheduler, controller."""

from .apiserver import ApiServer
from .controller import ReplicaSetController
from .lease import LeaderElector, LeaseLock
from .objects import Node, Pod, PodPhase, ReplicaSet
from .queue import WorkQueue
from .scheduler import Scheduler

__all__ = [
    "ApiServer",
    "LeaderElector",
    "LeaseLock",
    "Node",
    "Pod",
    "PodPhase",
    "ReplicaSet",
    "ReplicaSetController",
    "Scheduler",
    "WorkQueue",
]
