"""Six mini-applications mirroring the paper's studied systems.

Written against the public simulator API in idiomatic "Go-in-Python"
style, these are the corpus for the usage-pattern experiments (Tables 1,
2 and 4; Figures 2–3), the dynamic goroutine benchmark (Table 3), the
integration tests, and the domain examples.

=============  =======================  =================================
Package        Mirrors                  Concurrency idioms exercised
=============  =======================  =================================
minidocker     Docker                   event bus, log pipes, WaitGroup
                                        teardown, Once init
minikube       Kubernetes               Cond work queue, informers,
                                        scheduler cache locking
minietcd       etcd                     watch hubs, leases on timers,
                                        RWMutex store, compaction loops
miniroach      CockroachDB              MVCC under RWMutex, txn intents,
                                        raft-lite proposal channel
minigrpc       gRPC-Go                  per-request goroutines, streams,
                                        context cancellation
minigrpc.      gRPC-C (the paper's      fixed thread pool, lock-only
  cstyle       C/C++ comparator)        synchronization
miniboltdb     BoltDB                   single-writer embedded store,
                                        batch goroutine
=============  =======================  =================================
"""

from . import miniboltdb, minidocker, minietcd, minigrpc, minikube, miniroach

#: Directory-name -> paper application, for the usage analyzers.
APP_PACKAGES = {
    "minidocker": "Docker",
    "minikube": "Kubernetes",
    "minietcd": "etcd",
    "miniroach": "CockroachDB",
    "minigrpc": "gRPC",
    "miniboltdb": "BoltDB",
}

__all__ = [
    "APP_PACKAGES",
    "miniboltdb",
    "minidocker",
    "minietcd",
    "minigrpc",
    "minikube",
    "miniroach",
]
