"""Published numbers from the paper, used by benchmarks for side-by-side
"paper vs. measured" reporting.

Cells the source text garbles are ``None`` and flagged in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .records import App

#: Table 1 — application inventory: app -> (lines_of_code, dev_history_years).
#: Stars/commits/contributors for Docker and Kubernetes appear in the text
#: (48.9K / 36.5K stars); the rest of those columns are illegible.
TABLE1_LOC: Dict[App, Tuple[int, float]] = {
    App.DOCKER: (786_000, 4.2),
    App.KUBERNETES: (2_297_000, 3.9),
    App.ETCD: (441_000, 4.9),
    App.COCKROACHDB: (520_000, 4.2),
    App.GRPC: (53_000, 3.3),
    App.BOLTDB: (9_000, 4.4),
}

TABLE1_STARS: Dict[App, Optional[int]] = {
    App.DOCKER: 48_900,
    App.KUBERNETES: 36_500,
    App.ETCD: None,
    App.COCKROACHDB: None,
    App.GRPC: None,
    App.BOLTDB: None,
}

#: Table 2 — goroutine creation sites per KLOC: the text gives the range
#: across the six apps and the gRPC-C comparison point.
TABLE2_SITES_PER_KLOC_RANGE: Tuple[float, float] = (0.18, 0.83)
TABLE2_GRPC_C_SITES_PER_KLOC: float = 0.03
TABLE2_GRPC_C_CREATION_SITES: int = 5
#: Apps where *normal* (named) functions outnumber anonymous ones.
TABLE2_NORMAL_DOMINANT_APPS = (App.KUBERNETES, App.BOLTDB)

#: Table 3 — dynamic goroutine facts the text states: gRPC-Go creates more
#: goroutines than gRPC-C creates threads on every workload (ratio > 1),
#: gRPC-C threads live for 100% of the program, and gRPC-Go goroutines'
#: normalized lifetime is < 100% on every workload.
TABLE3_GRPC_C_THREAD_LIFETIME_PCT = 100.0

#: Table 4 — concurrency primitive usage proportions (percent).
#: Columns: Mutex (incl. RWMutex), atomic, Once, WaitGroup, Cond, chan, Misc.
TABLE4: Dict[App, Dict[str, float]] = {
    App.DOCKER: {"Mutex": 62.62, "atomic": 1.06, "Once": 4.75,
                 "WaitGroup": 1.70, "Cond": 0.99, "chan": 27.87, "Misc": 0.99},
    App.KUBERNETES: {"Mutex": 70.34, "atomic": 1.21, "Once": 6.13,
                     "WaitGroup": 2.68, "Cond": 0.96, "chan": 18.48, "Misc": 0.20},
    App.ETCD: {"Mutex": 45.01, "atomic": 0.63, "Once": 7.18,
               "WaitGroup": 3.95, "Cond": 0.24, "chan": 42.99, "Misc": 0.0},
    App.COCKROACHDB: {"Mutex": 55.90, "atomic": 0.49, "Once": 3.76,
                      "WaitGroup": 8.57, "Cond": 1.48, "chan": 28.23, "Misc": 1.57},
    App.GRPC: {"Mutex": 61.20, "atomic": 1.15, "Once": 4.20,
               "WaitGroup": 7.00, "Cond": 1.65, "chan": 23.03, "Misc": 1.78},
    App.BOLTDB: {"Mutex": 70.21, "atomic": 2.13, "Once": 0.0,
                 "WaitGroup": 0.0, "Cond": 0.0, "chan": 23.40, "Misc": 4.26},
}

#: Table 4's only legible absolute count: etcd used 2075 primitives.
TABLE4_ETCD_TOTAL = 2075

#: gRPC-C vs gRPC-Go primitive-usage comparison (Section 3.2 text).
GRPC_C_PRIMITIVE_USES = 746
GRPC_C_PRIMITIVE_KINDS = 1          # lock only
GRPC_C_USES_PER_KLOC = 5.3
GRPC_GO_PRIMITIVE_USES = 786
GRPC_GO_PRIMITIVE_KINDS = 8
GRPC_GO_USES_PER_KLOC = 14.8

#: Shared-memory proportion of all primitive uses per app (derived from
#: Table 4), the stable level Figures 2 and 3 plot over time.
SHARED_MEMORY_PROPORTION: Dict[App, float] = {
    app: round(sum(v for k, v in row.items() if k not in ("chan", "Misc")) / 100.0, 4)
    for app, row in TABLE4.items()
}

#: Table 8 — built-in deadlock detector evaluation: 21 reproduced blocking
#: bugs, 2 detected (BoltDB#392 and BoltDB#240), zero false positives.
TABLE8_REPRODUCED = 21
TABLE8_DETECTED = 2
TABLE8_DETECTED_PER_CAUSE = {"Mutex": 1, "Chan": 0, "Chan w/": 1, "Lib": 0}

#: Table 12 — data race detector evaluation: 20 reproduced non-blocking
#: bugs, 100 runs each; 7/13 traditional and 3/4 anonymous-function bugs
#: detected; zero false positives; six bugs detected on every run, four
#: needed ~100 runs.
TABLE12_REPRODUCED = 20
TABLE12_RUNS = 100
TABLE12_DETECTED_TRADITIONAL = (7, 13)
TABLE12_DETECTED_ANONYMOUS = (3, 4)

#: Section 5.2 — average blocking-bug patch size.
MEAN_BLOCKING_PATCH_LINES = 6.8

#: Section 5.2 / 6.2 lift statistics.
LIFT_BLOCKING_MUTEX_MOVE = 1.52
LIFT_BLOCKING_CHAN_ADD = 1.42
LIFT_NONBLOCKING_CHAN_CHANNEL = 2.7
LIFT_NONBLOCKING_ANON_PRIVATE = 2.23
LIFT_NONBLOCKING_CHAN_MOVE = 2.21
