"""Typed records for the paper's bug taxonomy (Section 4).

Two orthogonal dimensions:

* **Behavior** — blocking (goroutines stuck forever; broader than deadlock)
  vs. non-blocking.
* **Cause** — misuse of shared memory vs. misuse of message passing.

Sub-causes, fix strategies and fix primitives follow Tables 6, 7, 9, 10
and 11.  The same enums annotate both the 171-bug metadata dataset
(:mod:`repro.dataset.go171`) and the executable kernels
(:mod:`repro.bugs`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class App(enum.Enum):
    """The six studied applications."""

    DOCKER = "Docker"
    KUBERNETES = "Kubernetes"
    ETCD = "etcd"
    COCKROACHDB = "CockroachDB"
    GRPC = "gRPC"
    BOLTDB = "BoltDB"

    def __str__(self) -> str:
        return self.value


class Behavior(enum.Enum):
    BLOCKING = "blocking"
    NONBLOCKING = "non-blocking"

    def __str__(self) -> str:
        return self.value


class Cause(enum.Enum):
    SHARED_MEMORY = "shared memory"
    MESSAGE_PASSING = "message passing"

    def __str__(self) -> str:
        return self.value


class BlockingSubCause(enum.Enum):
    """Root causes of blocking bugs (Table 6 columns)."""

    MUTEX = "Mutex"
    RWMUTEX = "RWMutex"
    WAIT = "Wait"                    # Cond.Wait / WaitGroup.Wait
    CHAN = "Chan"
    CHAN_WITH_OTHER = "Chan w/"      # channel combined with locks/waits
    MSG_LIBRARY = "Lib"              # Pipe, context, other messaging libs

    @property
    def cause(self) -> Cause:
        if self in (BlockingSubCause.MUTEX, BlockingSubCause.RWMUTEX,
                    BlockingSubCause.WAIT):
            return Cause.SHARED_MEMORY
        return Cause.MESSAGE_PASSING

    def __str__(self) -> str:
        return self.value


class NonBlockingSubCause(enum.Enum):
    """Root causes of non-blocking bugs (Table 9 rows)."""

    TRADITIONAL = "traditional"          # atomicity/order violation, race
    ANONYMOUS_FUNCTION = "anonymous function"
    WAITGROUP = "misusing WaitGroup"
    SHARED_LIBRARY = "lib (shared memory)"   # testing.T, shared ctx objects
    CHAN = "misusing channel"
    MSG_LIBRARY = "lib (message passing)"    # time.Timer etc.

    @property
    def cause(self) -> Cause:
        if self in (NonBlockingSubCause.CHAN, NonBlockingSubCause.MSG_LIBRARY):
            return Cause.MESSAGE_PASSING
        return Cause.SHARED_MEMORY

    def __str__(self) -> str:
        return self.value


class FixStrategy(enum.Enum):
    """Fix strategies (Tables 7 and 10; subscript *s* = synchronization)."""

    ADD_SYNC = "Add_s"        # add a missing sync op (unlock, send, close...)
    MOVE_SYNC = "Move_s"      # move a misplaced sync op
    CHANGE_SYNC = "Change_s"  # change a sync op (e.g. unbuffered -> buffered)
    REMOVE_SYNC = "Remove_s"  # remove an extra sync op
    BYPASS = "Bypass"         # eliminate/bypass the shared accesses
    PRIVATIZE = "Private"     # make a private copy of the shared data
    MISC = "Misc"

    def __str__(self) -> str:
        return self.value


#: Strategies that "restrict timing" in Table 10's terms.
TIMING_STRATEGIES = (FixStrategy.ADD_SYNC, FixStrategy.MOVE_SYNC,
                     FixStrategy.CHANGE_SYNC)


class FixPrimitive(enum.Enum):
    """Primitive used by the fixing patch (Table 11 columns)."""

    MUTEX = "Mutex"
    CHANNEL = "Channel"
    ATOMIC = "Atomic"
    WAITGROUP = "WaitGroup"
    COND = "Cond"
    MISC = "Misc"
    NONE = "None"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BugRecord:
    """One studied bug's metadata, as mined from a fixing commit.

    ``reconstructed`` marks records whose per-cell placement was not legible
    in our source text and was filled in to satisfy the published marginals
    (see DESIGN.md §6 and EXPERIMENTS.md).
    """

    bug_id: str
    app: App
    behavior: Behavior
    subcause: object  # BlockingSubCause | NonBlockingSubCause
    fix_strategy: FixStrategy
    fix_primitives: Tuple[FixPrimitive, ...]
    lifetime_days: float
    patch_lines: int
    reconstructed: bool = True
    description: str = ""
    figure: Optional[str] = None
    #: Days from the bug report to the fixing commit.  Section 4: "the time
    #: when these bugs were reported [is] close to when they were fixed" —
    #: the bugs are hard to trigger, not hard to fix.
    report_lag_days: float = 7.0

    def __post_init__(self) -> None:
        if self.behavior == Behavior.BLOCKING:
            if not isinstance(self.subcause, BlockingSubCause):
                raise TypeError(f"{self.bug_id}: blocking bug needs a BlockingSubCause")
        else:
            if not isinstance(self.subcause, NonBlockingSubCause):
                raise TypeError(f"{self.bug_id}: non-blocking bug needs a NonBlockingSubCause")
        if not self.fix_primitives:
            raise ValueError(f"{self.bug_id}: fix_primitives may not be empty (use NONE)")

    @property
    def cause(self) -> Cause:
        return self.subcause.cause

    def __str__(self) -> str:
        return (f"{self.bug_id} [{self.app}] {self.behavior}/{self.subcause} "
                f"fixed by {self.fix_strategy}")
