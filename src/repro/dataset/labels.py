"""Ground-truth taxonomy labels for the executable kernel corpus.

One stable accessor that the static, predictive, and dynamic scorecards
all read, so "what is this kernel, and which detector family *should*
catch it" lives in exactly one place.  The labels are derived from each
kernel's :class:`~repro.bugs.meta.KernelMeta` — the taxonomy the paper's
Section 5/6 study assigns (behavior x cause x subcause, fix strategy and
primitive) — plus the expected-detector mapping from Tables 8 and 12:
blocking bugs are the deadlock/leak detectors' turf, non-blocking bugs
the race detector's and rule checkers'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from .records import Behavior, BlockingSubCause, Cause, NonBlockingSubCause

#: Detector families a scorecard may claim coverage for.
FAMILIES = ("dynamic", "predict", "static")

#: Kernels whose *fixed* variant still contains a dynamically confirmed
#: data race on its observation counters (two goroutines both
#: ``shared.add`` the symptom tally with no ordering between them — the
#: repaired bug is the blocking one, the tally race is incidental but
#: real; the happens-before race detector flags it on every seed).  A
#: scorecard must not count flagging these fixed variants as a false
#: positive.
RACY_FIXED_KERNELS = frozenset({
    "blocking-chan-grpc-double-recv",
    "blocking-wait-cockroach-miscounted-add",
})


@dataclass(frozen=True)
class KernelLabels:
    """The ground truth one corpus kernel is scored against."""

    kernel_id: str
    behavior: str                 # "blocking" | "non-blocking"
    cause: str                    # shared memory vs message passing
    subcause: str                 # Table 5/9 subcategory
    fix_strategy: str
    fix_primitives: Tuple[str, ...]
    symptom: str                  # deadlock | leak | panic | wrong-value
    deterministic: bool
    latent: bool
    #: Dynamic detectors (scorecard columns) expected to fire, from the
    #: paper's evaluation: blocking -> blocked-goroutine detectors,
    #: non-blocking -> the race detector and runtime rule checks.
    expected_detectors: Tuple[str, ...]
    #: False only for RACY_FIXED_KERNELS: the fixed variant carries a
    #: real (confirmed) residual race, so a screen flagging it is right.
    fixed_expected_clean: bool = True

    @property
    def blocking(self) -> bool:
        return self.behavior == "blocking"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel_id": self.kernel_id,
            "behavior": self.behavior,
            "cause": self.cause,
            "subcause": self.subcause,
            "fix_strategy": self.fix_strategy,
            "fix_primitives": list(self.fix_primitives),
            "symptom": self.symptom,
            "deterministic": self.deterministic,
            "latent": self.latent,
            "expected_detectors": list(self.expected_detectors),
            "fixed_expected_clean": self.fixed_expected_clean,
        }


def _expected_detectors(meta) -> Tuple[str, ...]:
    if meta.behavior is Behavior.BLOCKING:
        expected = ["leak"]
        if meta.subcause in (BlockingSubCause.MUTEX, BlockingSubCause.RWMUTEX):
            expected.append("lockorder")
        if not meta.latent:
            expected.append("builtin")
        return tuple(expected)
    expected = ["race"]
    if meta.subcause is NonBlockingSubCause.CHAN:
        expected.append("rules")
    return tuple(expected)


def labels_for(meta) -> KernelLabels:
    """Labels from one :class:`KernelMeta` (no registry import needed)."""
    cause = meta.subcause.cause if hasattr(meta.subcause, "cause") else \
        (Cause.MESSAGE_PASSING
         if meta.subcause in (NonBlockingSubCause.CHAN,
                              NonBlockingSubCause.MSG_LIBRARY)
         else Cause.SHARED_MEMORY)
    return KernelLabels(
        kernel_id=meta.kernel_id,
        behavior=str(meta.behavior),
        cause=str(cause),
        subcause=str(meta.subcause),
        fix_strategy=str(meta.fix_strategy),
        fix_primitives=tuple(str(p) for p in meta.fix_primitives),
        symptom=meta.symptom,
        deterministic=meta.deterministic,
        latent=meta.latent,
        expected_detectors=_expected_detectors(meta),
        fixed_expected_clean=meta.kernel_id not in RACY_FIXED_KERNELS,
    )


def kernel_labels(kernel_or_id: Union[str, object]) -> KernelLabels:
    """Labels for a kernel instance, class, or kernel id."""
    if isinstance(kernel_or_id, str):
        from ..bugs import registry          # lazy: avoid import cycles
        kernel = registry.get(kernel_or_id)
    else:
        kernel = kernel_or_id
    return labels_for(kernel.meta)


def all_labels() -> List[KernelLabels]:
    """Labels for the whole registered corpus, sorted by kernel id."""
    from ..bugs import registry
    return [labels_for(k.meta) for k in registry.all_kernels()]


def labels_by_id() -> Dict[str, KernelLabels]:
    return {lab.kernel_id: lab for lab in all_labels()}
