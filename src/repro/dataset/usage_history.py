"""Primitive-usage time series for Figures 2 and 3.

The paper plots, for each application, the proportion of shared-memory
(Figure 2) and message-passing (Figure 3) primitives over all primitive
usages, monthly from Feb 2015 to May 2018, and finds the mix *stable over
time* (Observation 2's setup).

We cannot replay six git histories offline, so the series are synthesized:
each app's curve converges from a mildly different starting mix to its
published Table 4 level, with a small deterministic wobble (< ±2.5
percentage points) — preserving exactly the property the figure exists to
show.  The substitution is recorded in DESIGN.md §2 and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .paper_values import SHARED_MEMORY_PROPORTION
from .records import App

#: Monthly snapshots, "YY-MM" as in the paper's x axis.
SNAPSHOTS: Tuple[str, ...] = tuple(
    f"{year % 100:02d}-{month:02d}"
    for year in range(2015, 2019)
    for month in range(1, 13)
    if not (year == 2015 and month < 2) and not (year == 2018 and month > 5)
)

#: Starting offsets (proportion points) per app: every history drifts a
#: little toward its final mix.
_START_OFFSET: Dict[App, float] = {
    App.DOCKER: +0.035,
    App.KUBERNETES: -0.030,
    App.ETCD: +0.045,
    App.COCKROACHDB: -0.025,
    App.GRPC: +0.030,
    App.BOLTDB: 0.000,  # tiny, essentially frozen project
}


def shared_memory_series(app: App) -> List[float]:
    """Figure 2's series for one app: shared-memory proportion per month."""
    final = SHARED_MEMORY_PROPORTION[app]
    start = final + _START_OFFSET[app]
    n = len(SNAPSHOTS)
    series = []
    for i in range(n):
        t = i / (n - 1)
        level = start + (final - start) * t
        wobble = 0.018 * math.sin(2.1 * i + hash(app.value) % 7) * (1 - t * 0.5)
        series.append(round(min(max(level + wobble, 0.0), 1.0), 4))
    return series


def message_passing_series(app: App) -> List[float]:
    """Figure 3's series: the complement of the shared-memory proportion."""
    return [round(1.0 - v, 4) for v in shared_memory_series(app)]


def all_series() -> Dict[App, Dict[str, List[float]]]:
    return {
        app: {
            "shared": shared_memory_series(app),
            "message": message_passing_series(app),
        }
        for app in App
    }


def stability(series: List[float]) -> float:
    """Max absolute deviation from the series mean (the 'stable' check)."""
    mean = sum(series) / len(series)
    return max(abs(v - mean) for v in series)
