"""The 171-bug study dataset.

The paper's raw artifact is a set of GitHub commits; offline we rebuild the
*dataset the analysis pipeline consumes*: 171 :class:`BugRecord`s whose
marginals equal every count legible in the paper text:

* Table 5 per-application behavior/cause cells (85/86 and 105/66 totals),
* Table 6 blocking sub-cause cells (all 36 cells),
* Section 5.2's fix counts (8 add-unlock / 9 move / 11 remove among the 33
  Mutex+RWMutex bugs; ~90% of blocking fixes adjust synchronization;
  average blocking patch 6.8 lines),
* the blocking lift targets lift(Mutex, Move_s)=1.52 and
  lift(Chan, Add_s)=1.42,
* Table 9/10's non-blocking structure (46 traditional, 11 anonymous,
  6 WaitGroup, 6 shared-lib, 16 channel, 1 mp-lib; ~69% timing fixes,
  10 bypass, 14 private-copy),
* Table 11's fix-primitive cells verbatim (94 primitive uses over 86 bugs),
* the non-blocking lift targets lift(chan, Channel)=2.7 (over uses),
  lift(anonymous, Private)=2.23 and lift(chan, Move_s)=2.21.

Cells the source text garbles (per-app non-blocking sub-causes, the full
Table 7 grid) are *reconstructed* to satisfy the constraints above;
``BugRecord.reconstructed`` marks them, and thirteen bugs named in the
paper (the figure bugs, BoltDB#392/#240, Docker#22985, CockroachDB#6111,
etcd#7816) are seeded explicitly.  ``validate()`` re-checks every
constraint and is exercised by the test suite.
"""

from __future__ import annotations

import itertools
from statistics import NormalDist
from typing import Dict, Iterable, List, Optional, Tuple

from .records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)

# ----------------------------------------------------------------------
# Published marginals
# ----------------------------------------------------------------------

#: Table 5: app -> (blocking, non-blocking, shared memory, message passing)
TABLE5: Dict[App, Tuple[int, int, int, int]] = {
    App.DOCKER: (21, 23, 28, 16),
    App.KUBERNETES: (17, 17, 20, 14),
    App.ETCD: (21, 16, 18, 19),
    App.COCKROACHDB: (12, 16, 23, 5),
    App.GRPC: (11, 12, 12, 11),
    App.BOLTDB: (3, 2, 4, 1),
}

#: Table 6: app -> blocking sub-cause counts (all cells published).
TABLE6: Dict[App, Dict[BlockingSubCause, int]] = {
    App.DOCKER: {BlockingSubCause.MUTEX: 9, BlockingSubCause.RWMUTEX: 0,
                 BlockingSubCause.WAIT: 3, BlockingSubCause.CHAN: 5,
                 BlockingSubCause.CHAN_WITH_OTHER: 2, BlockingSubCause.MSG_LIBRARY: 2},
    App.KUBERNETES: {BlockingSubCause.MUTEX: 6, BlockingSubCause.RWMUTEX: 2,
                     BlockingSubCause.WAIT: 0, BlockingSubCause.CHAN: 3,
                     BlockingSubCause.CHAN_WITH_OTHER: 6, BlockingSubCause.MSG_LIBRARY: 0},
    App.ETCD: {BlockingSubCause.MUTEX: 5, BlockingSubCause.RWMUTEX: 0,
               BlockingSubCause.WAIT: 0, BlockingSubCause.CHAN: 10,
               BlockingSubCause.CHAN_WITH_OTHER: 5, BlockingSubCause.MSG_LIBRARY: 1},
    App.COCKROACHDB: {BlockingSubCause.MUTEX: 4, BlockingSubCause.RWMUTEX: 3,
                      BlockingSubCause.WAIT: 0, BlockingSubCause.CHAN: 5,
                      BlockingSubCause.CHAN_WITH_OTHER: 0, BlockingSubCause.MSG_LIBRARY: 0},
    App.GRPC: {BlockingSubCause.MUTEX: 2, BlockingSubCause.RWMUTEX: 0,
               BlockingSubCause.WAIT: 0, BlockingSubCause.CHAN: 6,
               BlockingSubCause.CHAN_WITH_OTHER: 2, BlockingSubCause.MSG_LIBRARY: 1},
    App.BOLTDB: {BlockingSubCause.MUTEX: 2, BlockingSubCause.RWMUTEX: 0,
                 BlockingSubCause.WAIT: 0, BlockingSubCause.CHAN: 0,
                 BlockingSubCause.CHAN_WITH_OTHER: 1, BlockingSubCause.MSG_LIBRARY: 0},
}

#: Reconstructed: app -> non-blocking sub-cause counts.  Row sums match
#: Table 5's non-blocking column; column sums match Table 9's published
#: totals (traditional 46, anonymous 11, WaitGroup 6, shared-lib 6,
#: channel 16, mp-lib 1) and the per-app shared/message split implied by
#: Tables 5 and 6.
TABLE9_BY_APP: Dict[App, Dict[NonBlockingSubCause, int]] = {
    App.DOCKER: {NonBlockingSubCause.TRADITIONAL: 11,
                 NonBlockingSubCause.ANONYMOUS_FUNCTION: 3,
                 NonBlockingSubCause.WAITGROUP: 1,
                 NonBlockingSubCause.SHARED_LIBRARY: 1,
                 NonBlockingSubCause.CHAN: 7,
                 NonBlockingSubCause.MSG_LIBRARY: 0},
    App.KUBERNETES: {NonBlockingSubCause.TRADITIONAL: 8,
                     NonBlockingSubCause.ANONYMOUS_FUNCTION: 2,
                     NonBlockingSubCause.WAITGROUP: 1,
                     NonBlockingSubCause.SHARED_LIBRARY: 1,
                     NonBlockingSubCause.CHAN: 5,
                     NonBlockingSubCause.MSG_LIBRARY: 0},
    App.ETCD: {NonBlockingSubCause.TRADITIONAL: 7,
               NonBlockingSubCause.ANONYMOUS_FUNCTION: 2,
               NonBlockingSubCause.WAITGROUP: 2,
               NonBlockingSubCause.SHARED_LIBRARY: 2,
               NonBlockingSubCause.CHAN: 3,
               NonBlockingSubCause.MSG_LIBRARY: 0},
    App.COCKROACHDB: {NonBlockingSubCause.TRADITIONAL: 12,
                      NonBlockingSubCause.ANONYMOUS_FUNCTION: 2,
                      NonBlockingSubCause.WAITGROUP: 1,
                      NonBlockingSubCause.SHARED_LIBRARY: 1,
                      NonBlockingSubCause.CHAN: 0,
                      NonBlockingSubCause.MSG_LIBRARY: 0},
    App.GRPC: {NonBlockingSubCause.TRADITIONAL: 6,
               NonBlockingSubCause.ANONYMOUS_FUNCTION: 2,
               NonBlockingSubCause.WAITGROUP: 1,
               NonBlockingSubCause.SHARED_LIBRARY: 1,
               NonBlockingSubCause.CHAN: 1,
               NonBlockingSubCause.MSG_LIBRARY: 1},
    App.BOLTDB: {NonBlockingSubCause.TRADITIONAL: 2,
                 NonBlockingSubCause.ANONYMOUS_FUNCTION: 0,
                 NonBlockingSubCause.WAITGROUP: 0,
                 NonBlockingSubCause.SHARED_LIBRARY: 0,
                 NonBlockingSubCause.CHAN: 0,
                 NonBlockingSubCause.MSG_LIBRARY: 0},
}

#: Reconstructed Table 7: blocking sub-cause -> fix-strategy counts.
#: Satisfies the Section 5.2 text (8 Add / 9 Move / 11 Remove among the 33
#: Mutex+RWMutex bugs) and the published lifts
#: lift(Mutex, Move_s)=1.52, lift(Chan, Add_s)=1.42.
TABLE7: Dict[BlockingSubCause, Dict[FixStrategy, int]] = {
    BlockingSubCause.MUTEX: {FixStrategy.ADD_SYNC: 6, FixStrategy.MOVE_SYNC: 9,
                             FixStrategy.REMOVE_SYNC: 10, FixStrategy.CHANGE_SYNC: 2,
                             FixStrategy.MISC: 1},
    BlockingSubCause.RWMUTEX: {FixStrategy.ADD_SYNC: 2, FixStrategy.REMOVE_SYNC: 1,
                               FixStrategy.CHANGE_SYNC: 2},
    BlockingSubCause.WAIT: {FixStrategy.MOVE_SYNC: 3},
    BlockingSubCause.CHAN: {FixStrategy.ADD_SYNC: 16, FixStrategy.MOVE_SYNC: 3,
                            FixStrategy.REMOVE_SYNC: 8, FixStrategy.CHANGE_SYNC: 2},
    BlockingSubCause.CHAN_WITH_OTHER: {FixStrategy.ADD_SYNC: 7, FixStrategy.MOVE_SYNC: 2,
                                       FixStrategy.REMOVE_SYNC: 5, FixStrategy.CHANGE_SYNC: 1,
                                       FixStrategy.MISC: 1},
    BlockingSubCause.MSG_LIBRARY: {FixStrategy.ADD_SYNC: 2, FixStrategy.MOVE_SYNC: 1,
                                   FixStrategy.REMOVE_SYNC: 1},
}

#: Reconstructed Table 10: non-blocking sub-cause -> fix-strategy counts.
#: Satisfies ~69% timing (59/86), 10 bypass, 14 private-copy (all shared
#: memory), and the lifts lift(anonymous, Private)=2.23 and
#: lift(chan, Move_s)=2.21.
TABLE10: Dict[NonBlockingSubCause, Dict[FixStrategy, int]] = {
    NonBlockingSubCause.TRADITIONAL: {FixStrategy.ADD_SYNC: 27, FixStrategy.MOVE_SYNC: 5,
                                      FixStrategy.BYPASS: 4, FixStrategy.PRIVATIZE: 10},
    NonBlockingSubCause.ANONYMOUS_FUNCTION: {FixStrategy.ADD_SYNC: 4, FixStrategy.MOVE_SYNC: 2,
                                             FixStrategy.BYPASS: 1, FixStrategy.PRIVATIZE: 4},
    NonBlockingSubCause.WAITGROUP: {FixStrategy.ADD_SYNC: 3, FixStrategy.MOVE_SYNC: 3},
    NonBlockingSubCause.SHARED_LIBRARY: {FixStrategy.ADD_SYNC: 2, FixStrategy.BYPASS: 2,
                                         FixStrategy.MISC: 2},
    NonBlockingSubCause.CHAN: {FixStrategy.ADD_SYNC: 6, FixStrategy.MOVE_SYNC: 7,
                               FixStrategy.BYPASS: 2, FixStrategy.MISC: 1},
    NonBlockingSubCause.MSG_LIBRARY: {FixStrategy.BYPASS: 1},
}

#: Table 11 (published verbatim): non-blocking sub-cause -> per-bug fix
#: primitive tuples.  Row totals are primitive *uses* (94 over 86 bugs).
TABLE11_TUPLES: Dict[NonBlockingSubCause, List[Tuple[FixPrimitive, ...]]] = {
    NonBlockingSubCause.TRADITIONAL: (
        [(FixPrimitive.MUTEX,)] * 24
        + [(FixPrimitive.CHANNEL,)] * 3
        + [(FixPrimitive.ATOMIC,)] * 6
        + [(FixPrimitive.NONE,)] * 13
    ),
    NonBlockingSubCause.ANONYMOUS_FUNCTION: (
        [(FixPrimitive.MUTEX,)] * 3
        + [(FixPrimitive.CHANNEL,)] * 2
        + [(FixPrimitive.ATOMIC,)] * 3
        + [(FixPrimitive.NONE,)] * 3
    ),
    NonBlockingSubCause.WAITGROUP: [
        (FixPrimitive.WAITGROUP, FixPrimitive.COND),
        (FixPrimitive.WAITGROUP, FixPrimitive.COND),
        (FixPrimitive.WAITGROUP, FixPrimitive.MUTEX),
        (FixPrimitive.WAITGROUP,),
        (FixPrimitive.COND,),
        (FixPrimitive.MUTEX,),
    ],
    NonBlockingSubCause.SHARED_LIBRARY: [
        (FixPrimitive.CHANNEL, FixPrimitive.WAITGROUP),
        (FixPrimitive.CHANNEL,),
        (FixPrimitive.ATOMIC,),
        (FixPrimitive.MISC,),
        (FixPrimitive.NONE,),
        (FixPrimitive.NONE,),
    ],
    NonBlockingSubCause.CHAN: (
        [(FixPrimitive.CHANNEL,)] * 10
        + [
            (FixPrimitive.CHANNEL, FixPrimitive.MISC),
            (FixPrimitive.MUTEX, FixPrimitive.WAITGROUP),
            (FixPrimitive.MUTEX, FixPrimitive.WAITGROUP),
            (FixPrimitive.MUTEX, FixPrimitive.COND),
            (FixPrimitive.MISC,),
            (FixPrimitive.NONE,),
        ]
    ),
    NonBlockingSubCause.MSG_LIBRARY: [(FixPrimitive.CHANNEL,)],
}

#: Blocking fixes adjust the primitive their cause involves (Section 5.2:
#: "all Mutex-related bugs were fixed by adjusting Mutex primitives").
BLOCKING_FIX_PRIMITIVE: Dict[BlockingSubCause, Tuple[FixPrimitive, ...]] = {
    BlockingSubCause.MUTEX: (FixPrimitive.MUTEX,),
    BlockingSubCause.RWMUTEX: (FixPrimitive.MUTEX,),
    BlockingSubCause.WAIT: (FixPrimitive.WAITGROUP,),
    BlockingSubCause.CHAN: (FixPrimitive.CHANNEL,),
    BlockingSubCause.CHAN_WITH_OTHER: (FixPrimitive.CHANNEL, FixPrimitive.MUTEX),
    BlockingSubCause.MSG_LIBRARY: (FixPrimitive.MISC,),
}

#: Mean blocking patch size (Section 5.2).
MEAN_BLOCKING_PATCH_LINES = 6.8

# ----------------------------------------------------------------------
# Named bugs the paper discusses individually
# ----------------------------------------------------------------------

_KNOWN_BLOCKING = [
    # (bug_id, app, subcause, strategy, figure, description)
    ("kubernetes#5316", App.KUBERNETES, BlockingSubCause.CHAN,
     FixStrategy.CHANGE_SYNC, "1",
     "finishReq's child goroutine blocks sending the result after the "
     "parent times out; fixed by a buffered channel."),
    ("docker#25384", App.DOCKER, BlockingSubCause.WAIT,
     FixStrategy.MOVE_SYNC, "5",
     "WaitGroup.Wait() inside the plugin loop; fixed by moving it out."),
    ("grpc#1460", App.GRPC, BlockingSubCause.MSG_LIBRARY,
     FixStrategy.MOVE_SYNC, "6",
     "context.WithCancel overwritten when timeout > 0, leaking the "
     "attached goroutine; fixed by creating one context via if/else."),
    ("docker#12002", App.DOCKER, BlockingSubCause.CHAN_WITH_OTHER,
     FixStrategy.ADD_SYNC, "7",
     "Channel send inside a critical section vs. a lock waiter; fixed by "
     "a select with default."),
    ("boltdb#392", App.BOLTDB, BlockingSubCause.MUTEX,
     FixStrategy.REMOVE_SYNC, None,
     "Remap path re-locks the held meta lock: a true global deadlock, "
     "one of two caught by the built-in detector."),
    ("boltdb#240", App.BOLTDB, BlockingSubCause.CHAN_WITH_OTHER,
     FixStrategy.MOVE_SYNC, None,
     "Receive under the lock the only sender needs: the other built-in "
     "detector catch."),
]

_KNOWN_NONBLOCKING = [
    # (bug_id, app, subcause, strategy, primitives, figure, description)
    ("docker#30603", App.DOCKER, NonBlockingSubCause.ANONYMOUS_FUNCTION,
     FixStrategy.PRIVATIZE, (FixPrimitive.NONE,), "8",
     "Goroutine closures capture the loop variable i; fixed by passing a "
     "private copy."),
    ("etcd#6371", App.ETCD, NonBlockingSubCause.WAITGROUP,
     FixStrategy.MOVE_SYNC, (FixPrimitive.WAITGROUP, FixPrimitive.MUTEX), "9",
     "Add races with Wait; fixed by moving Add into the critical section."),
    ("docker#24007", App.DOCKER, NonBlockingSubCause.CHAN,
     FixStrategy.BYPASS, (FixPrimitive.MISC,), "10",
     "Concurrent teardowns both close c.closed; fixed with sync.Once."),
    ("etcd#3487", App.ETCD, NonBlockingSubCause.CHAN,
     FixStrategy.ADD_SYNC, (FixPrimitive.CHANNEL,), "11",
     "select may service the ticker although stopCh fired; fixed by a "
     "stop pre-check select at the loop top."),
    ("grpc#1741", App.GRPC, NonBlockingSubCause.MSG_LIBRARY,
     FixStrategy.BYPASS, (FixPrimitive.CHANNEL,), "12",
     "time.NewTimer(0) fires immediately; fixed by a nil-able timeout "
     "channel created only when dur > 0."),
    ("docker#22985", App.DOCKER, NonBlockingSubCause.TRADITIONAL,
     FixStrategy.ADD_SYNC, (FixPrimitive.MUTEX,), None,
     "Data race on a variable whose reference crossed a channel."),
    ("cockroach#6111", App.COCKROACHDB, NonBlockingSubCause.TRADITIONAL,
     FixStrategy.PRIVATIZE, (FixPrimitive.NONE,), None,
     "Sender mutates the info struct after passing its reference through "
     "a channel; fixed by sending a copy."),
    ("etcd#7816", App.ETCD, NonBlockingSubCause.SHARED_LIBRARY,
     FixStrategy.ADD_SYNC, (FixPrimitive.ATOMIC,), None,
     "Data race on a string field of a context object shared by the "
     "goroutines attached to it."),
]

# ----------------------------------------------------------------------
# Deterministic generators for unconstrained attributes
# ----------------------------------------------------------------------


def _lifetimes(count: int, median_days: float, sigma: float) -> List[float]:
    """Deterministic log-normal quantile samples (Figure 4's long tails)."""
    normal = NormalDist(mu=0.0, sigma=sigma)
    values = []
    for i in range(count):
        p = (i + 0.5) / count
        values.append(round(median_days * pow(2.718281828459045, normal.inv_cdf(p)), 1))
    # Interleave so early/late quantiles spread across apps and categories.
    half = (len(values) + 1) // 2
    front, back = values[:half], values[half:]
    mixed: List[float] = []
    for a, b in itertools.zip_longest(front, reversed(back)):
        mixed.append(a)
        if b is not None:
            mixed.append(b)
    return mixed


def _patch_lines(count: int, mean: float) -> List[int]:
    """Deterministic integers with an exact mean (blocking: 6.8 lines)."""
    target_total = round(mean * count)
    cycle = itertools.cycle([3, 4, 5, 6, 7, 9, 11])
    values = [next(cycle) for _ in range(count - 1)]
    values.append(max(1, target_total - sum(values)))
    return values


# ----------------------------------------------------------------------
# Dataset construction
# ----------------------------------------------------------------------

_CACHE: Optional[List[BugRecord]] = None


def load() -> List[BugRecord]:
    """Build (once) and return the 171 records."""
    global _CACHE
    if _CACHE is None:
        _CACHE = _build()
    return list(_CACHE)


def _build() -> List[BugRecord]:
    records: List[BugRecord] = []

    # Strategy quota pools per sub-cause (consumed known-bugs-first).
    blocking_strategies = {
        sub: [s for s, n in TABLE7[sub].items() for _ in range(n)]
        for sub in TABLE7
    }
    nonblocking_strategies = {
        sub: [s for s, n in TABLE10[sub].items() for _ in range(n)]
        for sub in TABLE10
    }
    nonblocking_primitives = {
        sub: list(TABLE11_TUPLES[sub]) for sub in TABLE11_TUPLES
    }

    def take_strategy(pool: List[FixStrategy], wanted: FixStrategy) -> FixStrategy:
        pool.remove(wanted)  # raises if the reconstruction is inconsistent
        return wanted

    def take_primitives(sub: NonBlockingSubCause,
                        wanted: Optional[Tuple[FixPrimitive, ...]]
                        ) -> Tuple[FixPrimitive, ...]:
        pool = nonblocking_primitives[sub]
        if wanted is not None and wanted in pool:
            pool.remove(wanted)
            return wanted
        return pool.pop(0)

    # --- blocking ------------------------------------------------------
    blocking_quota = {app: dict(TABLE6[app]) for app in TABLE6}
    known_blocking_ids = set()
    blocking_records: List[Tuple] = []

    for bug_id, app, sub, strategy, figure, description in _KNOWN_BLOCKING:
        blocking_quota[app][sub] -= 1
        assert blocking_quota[app][sub] >= 0, bug_id
        take_strategy(blocking_strategies[sub], strategy)
        blocking_records.append((bug_id, app, sub, strategy, figure, description, False))
        known_blocking_ids.add(bug_id)

    serial = itertools.count(1)
    for app in TABLE6:
        for sub, remaining in blocking_quota[app].items():
            for _ in range(remaining):
                strategy = blocking_strategies[sub].pop(0)
                bug_id = f"{app.value.lower()}-b{next(serial):03d}"
                blocking_records.append(
                    (bug_id, app, sub, strategy, None,
                     f"{app} blocking bug: {sub} misuse fixed by {strategy}.",
                     True)
                )
    assert all(not pool for pool in blocking_strategies.values())

    lifetimes_shared = _lifetimes(105, median_days=380.0, sigma=0.8)
    lifetimes_mp = _lifetimes(66, median_days=360.0, sigma=0.85)
    patch_pool = _patch_lines(85, MEAN_BLOCKING_PATCH_LINES)
    nb_patch_cycle = itertools.cycle([4, 6, 8, 10, 12, 16])
    # Report→fix lags are short (days, not the months the bug lay dormant).
    report_lag_cycle = itertools.cycle([1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 14.0])

    def next_lifetime(cause: Cause) -> float:
        pool = lifetimes_shared if cause == Cause.SHARED_MEMORY else lifetimes_mp
        return pool.pop(0)

    for i, (bug_id, app, sub, strategy, figure, description, recon) in enumerate(
        blocking_records
    ):
        records.append(
            BugRecord(
                bug_id=bug_id,
                app=app,
                behavior=Behavior.BLOCKING,
                subcause=sub,
                fix_strategy=strategy,
                fix_primitives=BLOCKING_FIX_PRIMITIVE[sub],
                lifetime_days=next_lifetime(sub.cause),
                patch_lines=patch_pool[i],
                reconstructed=recon,
                description=description,
                figure=figure,
                report_lag_days=next(report_lag_cycle),
            )
        )

    # --- non-blocking ---------------------------------------------------
    nonblocking_quota = {app: dict(TABLE9_BY_APP[app]) for app in TABLE9_BY_APP}
    nonblocking_records: List[Tuple] = []

    for bug_id, app, sub, strategy, prims, figure, description in _KNOWN_NONBLOCKING:
        nonblocking_quota[app][sub] -= 1
        assert nonblocking_quota[app][sub] >= 0, bug_id
        take_strategy(nonblocking_strategies[sub], strategy)
        prims = take_primitives(sub, prims)
        nonblocking_records.append(
            (bug_id, app, sub, strategy, prims, figure, description, False)
        )

    for app in TABLE9_BY_APP:
        for sub, remaining in nonblocking_quota[app].items():
            for _ in range(remaining):
                strategy = nonblocking_strategies[sub].pop(0)
                prims = take_primitives(sub, None)
                bug_id = f"{app.value.lower()}-n{next(serial):03d}"
                nonblocking_records.append(
                    (bug_id, app, sub, strategy, prims, None,
                     f"{app} non-blocking bug: {sub} fixed by {strategy}.",
                     True)
                )
    assert all(not pool for pool in nonblocking_strategies.values())
    assert all(not pool for pool in nonblocking_primitives.values())

    for bug_id, app, sub, strategy, prims, figure, description, recon in nonblocking_records:
        records.append(
            BugRecord(
                bug_id=bug_id,
                app=app,
                behavior=Behavior.NONBLOCKING,
                subcause=sub,
                fix_strategy=strategy,
                fix_primitives=prims,
                lifetime_days=next_lifetime(sub.cause),
                patch_lines=next(nb_patch_cycle),
                reconstructed=recon,
                description=description,
                figure=figure,
                report_lag_days=next(report_lag_cycle),
            )
        )

    return records


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate(records: Optional[Iterable[BugRecord]] = None) -> None:
    """Assert every encoded marginal; raises AssertionError on drift."""
    recs = list(records) if records is not None else load()
    assert len(recs) == 171

    blocking = [r for r in recs if r.behavior == Behavior.BLOCKING]
    nonblocking = [r for r in recs if r.behavior == Behavior.NONBLOCKING]
    assert len(blocking) == 85 and len(nonblocking) == 86

    shared = [r for r in recs if r.cause == Cause.SHARED_MEMORY]
    assert len(shared) == 105 and len(recs) - len(shared) == 66

    for app, (b, nb, sm, mp) in TABLE5.items():
        app_recs = [r for r in recs if r.app == app]
        assert sum(r.behavior == Behavior.BLOCKING for r in app_recs) == b, app
        assert sum(r.behavior == Behavior.NONBLOCKING for r in app_recs) == nb, app
        assert sum(r.cause == Cause.SHARED_MEMORY for r in app_recs) == sm, app
        assert sum(r.cause == Cause.MESSAGE_PASSING for r in app_recs) == mp, app

    for app, cells in TABLE6.items():
        for sub, n in cells.items():
            got = sum(1 for r in recs
                      if r.app == app and r.behavior == Behavior.BLOCKING
                      and r.subcause == sub)
            assert got == n, (app, sub, got, n)

    # Section 5.2 fix-count text constraints.
    mutexish = [r for r in blocking
                if r.subcause in (BlockingSubCause.MUTEX, BlockingSubCause.RWMUTEX)]
    assert len(mutexish) == 33
    assert sum(r.fix_strategy == FixStrategy.ADD_SYNC for r in mutexish) == 8
    assert sum(r.fix_strategy == FixStrategy.MOVE_SYNC for r in mutexish) == 9
    assert sum(r.fix_strategy == FixStrategy.REMOVE_SYNC for r in mutexish) == 11

    sync_adjust = sum(r.fix_strategy != FixStrategy.MISC for r in blocking)
    assert sync_adjust / len(blocking) >= 0.90

    mean_patch = sum(r.patch_lines for r in blocking) / len(blocking)
    assert abs(mean_patch - MEAN_BLOCKING_PATCH_LINES) < 0.05, mean_patch

    # Table 11 column totals over primitive uses.
    uses = [p for r in nonblocking for p in r.fix_primitives]
    expected_uses = {FixPrimitive.MUTEX: 32, FixPrimitive.CHANNEL: 19,
                     FixPrimitive.ATOMIC: 10, FixPrimitive.WAITGROUP: 7,
                     FixPrimitive.COND: 4, FixPrimitive.MISC: 3,
                     FixPrimitive.NONE: 19}
    for prim, n in expected_uses.items():
        assert uses.count(prim) == n, (prim, uses.count(prim), n)
    assert len(uses) == 94

    # Table 10 structure.
    timing = sum(r.fix_strategy in (FixStrategy.ADD_SYNC, FixStrategy.MOVE_SYNC,
                                    FixStrategy.CHANGE_SYNC)
                 for r in nonblocking)
    assert timing == 59
    assert sum(r.fix_strategy == FixStrategy.BYPASS for r in nonblocking) == 10
    privates = [r for r in nonblocking if r.fix_strategy == FixStrategy.PRIVATIZE]
    assert len(privates) == 14
    assert all(r.cause == Cause.SHARED_MEMORY for r in privates)
