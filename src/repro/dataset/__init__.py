"""The study dataset: taxonomy records, the 171-bug dataset, published
reference values, and the Figure 2/3 usage-history series."""

from . import go171, paper_values, usage_history
from .records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
    TIMING_STRATEGIES,
)

__all__ = [
    "App",
    "Behavior",
    "BlockingSubCause",
    "BugRecord",
    "Cause",
    "FixPrimitive",
    "FixStrategy",
    "NonBlockingSubCause",
    "TIMING_STRATEGIES",
    "go171",
    "paper_values",
    "usage_history",
]
