"""The study dataset: taxonomy records, the 171-bug dataset, published
reference values, the Figure 2/3 usage-history series, and the
ground-truth kernel labels every scorecard reads."""

from . import go171, paper_values, usage_history
from .labels import (
    FAMILIES,
    KernelLabels,
    RACY_FIXED_KERNELS,
    all_labels,
    kernel_labels,
    labels_by_id,
    labels_for,
)
from .records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
    TIMING_STRATEGIES,
)

__all__ = [
    "App",
    "FAMILIES",
    "KernelLabels",
    "RACY_FIXED_KERNELS",
    "all_labels",
    "kernel_labels",
    "labels_by_id",
    "labels_for",
    "Behavior",
    "BlockingSubCause",
    "BugRecord",
    "Cause",
    "FixPrimitive",
    "FixStrategy",
    "NonBlockingSubCause",
    "TIMING_STRATEGIES",
    "go171",
    "paper_values",
    "usage_history",
]
