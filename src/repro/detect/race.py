"""The happens-before data race detector.

A reimplementation of the detector the paper evaluates in Section 6.3: Go's
``-race`` mode, which "uses the same happen-before algorithm as
ThreadSanitizer" and keeps **up to four shadow words per memory object**.
Both properties are reproduced:

* Happens-before edges are derived from the trace: goroutine creation,
  channel send/recv/close (with the bidirectional rendezvous edge for
  unbuffered channels), mutex and RWMutex transfer, WaitGroup Done→Wait,
  Once execution→return, Cond signal, and atomic operations.
* Each :class:`~repro.sync.shared.SharedVar` keeps at most
  ``shadow_words`` recent accesses; older ones are evicted, so long
  histories can hide races — the paper's third miss cause in Table 12.
  Pass ``shadow_words=None`` for the unlimited-history ablation.

Usage::

    det = RaceDetector()
    result = run(program, seed=3, observers=[det])
    for report in det.reports: print(report)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..runtime.trace import EventKind, TraceEvent
from .report import Access, RaceReport
from .vectorclock import VectorClock


class _Shadow:
    """One shadow word: a stamped access to a memory object."""

    __slots__ = ("gid", "epoch", "is_write", "step")

    def __init__(self, gid: int, epoch: Tuple[int, int], is_write: bool, step: int):
        self.gid = gid
        self.epoch = epoch
        self.is_write = is_write
        self.step = step


class RaceDetector:
    """Vector-clock data race detector (observer for :func:`repro.run`)."""

    name = "go-race-detector"

    def __init__(self, shadow_words: Optional[int] = 4,
                 max_reports_per_var: int = 1):
        self.shadow_words = shadow_words
        self.max_reports_per_var = max_reports_per_var
        self.reports: List[RaceReport] = []
        self._clocks: Dict[int, VectorClock] = {}
        self._chan_msgs: Dict[Tuple[int, int], VectorClock] = {}
        self._chan_close: Dict[int, VectorClock] = {}
        self._lock_rel: Dict[int, VectorClock] = {}
        self._rw_read_rel: Dict[int, VectorClock] = {}
        self._wg_rel: Dict[int, VectorClock] = {}
        self._once_rel: Dict[int, VectorClock] = {}
        self._cond_rel: Dict[int, VectorClock] = {}
        self._atomic_rel: Dict[int, VectorClock] = {}
        self._shadows: Dict[int, Deque[_Shadow]] = {}
        self._var_names: Dict[int, str] = {}
        self._reported_vars: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------

    def attach(self, rt) -> None:
        rt.sched.trace.subscribe(self.on_event)

    def finish(self, result) -> None:
        # Expose reports on the result for convenience.
        setattr(result, "races", list(self.reports))

    @property
    def detected(self) -> bool:
        return bool(self.reports)

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------

    def final_clocks(self) -> Dict[int, VectorClock]:
        """Per-goroutine clocks after the run (copies).

        The observable happens-before closure: the offline replay in
        :mod:`repro.predict.hb` must reproduce these clock-for-clock
        from the exported sync-event stream (round-trip test).
        """
        return {gid: clock.copy() for gid, clock in self._clocks.items()}

    def _clock(self, gid: int) -> VectorClock:
        clock = self._clocks.get(gid)
        if clock is None:
            clock = VectorClock()
            clock.increment(gid)
            self._clocks[gid] = clock
        return clock

    def _release(self, store: Dict[int, VectorClock], obj: int, gid: int) -> None:
        clock = self._clock(gid)
        slot = store.get(obj)
        if slot is None:
            store[obj] = clock.copy()
        else:
            slot.join(clock)
        clock.increment(gid)

    def _acquire(self, store: Dict[int, VectorClock], obj: int, gid: int) -> None:
        slot = store.get(obj)
        if slot is not None:
            self._clock(gid).join(slot)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        gid = event.gid
        obj = event.obj

        if kind == EventKind.GO_CREATE:
            child = int(obj)  # type: ignore[arg-type]
            parent_clock = self._clock(gid)
            child_clock = parent_clock.copy()
            child_clock.increment(child)
            self._clocks[child] = child_clock
            parent_clock.increment(gid)

        elif kind == EventKind.CHAN_SEND:
            seq = event.info["seq"]
            self._chan_msgs[(obj, seq)] = self._clock(gid).copy()
            self._clock(gid).increment(gid)

        elif kind == EventKind.CHAN_RECV:
            if event.info.get("closed"):
                self._acquire(self._chan_close, obj, gid)
            else:
                seq = event.info.get("seq")
                msg_clock = self._chan_msgs.pop((obj, seq), None)
                if event.info.get("sync") and event.info.get("partner") is not None:
                    # Unbuffered rendezvous synchronizes both directions.
                    partner = int(event.info["partner"])
                    recv_pre = self._clock(gid).copy()
                    self._clock(gid).join(msg_clock)
                    self._clock(partner).join(recv_pre)
                    self._clock(partner).increment(partner)
                else:
                    self._clock(gid).join(msg_clock)
            self._clock(gid).increment(gid)

        elif kind == EventKind.CHAN_CLOSE:
            self._release(self._chan_close, obj, gid)

        elif kind in (EventKind.MU_LOCK, EventKind.RW_RLOCK):
            self._acquire(self._lock_rel, obj, gid)

        elif kind == EventKind.RW_LOCK:
            self._acquire(self._lock_rel, obj, gid)
            self._acquire(self._rw_read_rel, obj, gid)

        elif kind in (EventKind.MU_UNLOCK, EventKind.RW_UNLOCK):
            self._release(self._lock_rel, obj, gid)

        elif kind == EventKind.RW_RUNLOCK:
            self._release(self._rw_read_rel, obj, gid)

        elif kind == EventKind.WG_ADD:
            if event.info.get("delta", 0) > 0:
                self._release(self._wg_rel, obj, gid)

        elif kind == EventKind.WG_DONE:
            self._release(self._wg_rel, obj, gid)

        elif kind == EventKind.WG_WAIT:
            self._acquire(self._wg_rel, obj, gid)

        elif kind == EventKind.ONCE_DO:
            if event.info.get("ran"):
                self._release(self._once_rel, obj, gid)
            else:
                self._acquire(self._once_rel, obj, gid)

        elif kind in (EventKind.COND_SIGNAL, EventKind.COND_BROADCAST):
            self._release(self._cond_rel, obj, gid)

        elif kind == EventKind.COND_WAIT:
            self._acquire(self._cond_rel, obj, gid)

        elif kind == EventKind.ATOMIC_OP:
            self._acquire(self._atomic_rel, obj, gid)
            self._release(self._atomic_rel, obj, gid)

        elif kind in (EventKind.MEM_READ, EventKind.MEM_WRITE):
            self._check_access(event)

    # ------------------------------------------------------------------
    # Shadow-word race checking
    # ------------------------------------------------------------------

    def _check_access(self, event: TraceEvent) -> None:
        gid = event.gid
        obj = int(event.obj)  # type: ignore[arg-type]
        is_write = event.kind == EventKind.MEM_WRITE
        name = str(event.info.get("name", f"var#{obj}"))
        self._var_names[obj] = name
        clock = self._clock(gid)

        shadows = self._shadows.get(obj)
        if shadows is None:
            shadows = deque()
            self._shadows[obj] = shadows

        for shadow in shadows:
            if shadow.gid == gid:
                continue
            if not (is_write or shadow.is_write):
                continue  # two reads never race
            if clock.dominates_epoch(shadow.epoch):
                continue  # ordered by happens-before
            self._report(obj, name, shadow, event, is_write)

        shadows.append(
            _Shadow(gid, clock.epoch(gid), is_write, event.step)
        )
        if self.shadow_words is not None:
            # TSan keeps a small fixed shadow per object and evicts old
            # cells; FIFO eviction keeps the simulator deterministic.
            while len(shadows) > self.shadow_words:
                shadows.popleft()

        # The access itself advances the accessor's epoch so later accesses
        # by the same goroutine are distinguishable.
        clock.increment(gid)

    def _report(self, obj: int, name: str, shadow: _Shadow,
                event: TraceEvent, is_write: bool) -> None:
        count = self._reported_vars.get(obj, 0)
        if count >= self.max_reports_per_var:
            return
        self._reported_vars[obj] = count + 1
        first = Access(
            gid=shadow.gid,
            kind="write" if shadow.is_write else "read",
            step=shadow.step,
            var_name=name,
        )
        second = Access(
            gid=event.gid,
            kind="write" if is_write else "read",
            step=event.step,
            var_name=name,
        )
        self.reports.append(RaceReport(var_id=obj, var_name=name,
                                       first=first, second=second))
