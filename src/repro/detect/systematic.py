"""Systematic schedule exploration — bounded stateless model checking.

Random seed sweeps (the paper's "run the buggy program a lot of times")
can miss rare interleavings; Implication 4 asks for *novel blocking bug
detection techniques*.  This module is the classic systematic answer:
every source of scheduling nondeterminism in a run is a sequence of
``randrange(n)`` draws, so a schedule **is** a list of choice indices.
The explorer runs the program under scripted choices and enumerates the
tree of schedules depth-first:

* each run records its choice log ``(n, taken)`` per decision point;
* every untried alternative at every decision point becomes a new prefix
  to explore (beyond the prefix, choices default to index 0, keeping the
  suffix deterministic);
* exploration stops at a counterexample (``stop_on``), at ``max_runs``,
  or when the tree is exhausted — in which case the program is *verified*
  over all schedules within the depth bound.

Most schedules differ only in the order of *commuting* steps, so the raw
tree is massively redundant.  Two optimizations (both on by default)
shrink the work without shrinking coverage:

* **Sleep-set pruning** (``prune=True``) — the scheduler reports, per
  decision, which goroutines were offered and what the chosen one then
  touched (:mod:`repro.detect.annotate`).  After exploring a branch, its
  first transition goes to "sleep" for the sibling branches: inside a
  sibling's subtree that same transition is skipped until some dependent
  step (overlapping footprint) wakes it, because taking it sooner only
  reorders independent steps.  This is the classic sleep-set reduction
  (Godefroid): it prunes redundant *interleavings* while still visiting
  every reachable program state, so exhaustion verdicts and the set of
  reachable outcomes (deadlocks, panics, wrong values) are preserved.
  Anything the footprint cannot fully describe — blocked attempts,
  selects, timers, injected faults — poisons its segment and disables
  the pruning it would have justified, keeping the rule conservative.
* **Cross-run memoization** (``memo=True``) — completed runs are stored
  in a per-``(program, stop_on, options)`` schedule trie shared through
  :mod:`repro.parallel.memo`.  A prefix whose replay walks entirely
  through stored decisions short-circuits without running; repeated
  explorations (growing budgets, benchmark rounds, CLI re-invocations)
  pay only for schedules they have never seen.  ``runs`` still counts
  memoized visits — verdicts and statuses are unchanged — while
  ``runs_saved`` reports how many executions were avoided.

For small programs exhaustion is reachable and gives a real guarantee;
for larger ones the explorer is a directed bug-finder that needs no luck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.runtime import RunResult, run
from .annotate import ChoiceAnnotator, PickAnnotation


class ScriptedChoices:
    """A ``randrange`` source replaying a fixed prefix, then picking 0.

    A prefix entry can exceed the live range when the program is
    nondeterministic w.r.t. its schedule (its decision structure changed
    between the recording run and this replay).  The draw is clamped to
    ``n - 1`` as before, but the mismatch is recorded in
    :attr:`divergences` — a clamped replay explores a *different* subtree
    than the one it was branched from, and the explorer must know.
    """

    def __init__(self, prefix: Sequence[int] = ()):
        self.prefix = list(prefix)
        self.log: List[Tuple[int, int]] = []
        #: ``(position, intended, n)`` per clamped draw.
        self.divergences: List[Tuple[int, int, int]] = []

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def randrange(self, n: int) -> int:
        position = len(self.log)
        if position < len(self.prefix):
            intended = self.prefix[position]
            choice = intended if intended < n else n - 1
            if choice != intended:
                self.divergences.append((position, intended, n))
        else:
            choice = 0
        self.log.append((n, choice))
        return choice


@dataclass
class Exploration:
    """Outcome of a systematic exploration."""

    runs: int
    exhausted: bool                      # whole bounded tree covered
    counterexample: Optional[List[int]] = None
    counterexample_result: Optional[RunResult] = None
    statuses: dict = field(default_factory=dict)
    #: Runs actually executed (``runs - runs_saved``).
    runs_executed: int = 0
    #: Visits satisfied from the cross-run memo without executing.
    runs_saved: int = 0
    #: Sibling branches skipped by sleep-set pruning.
    pruned: int = 0
    #: Runs whose scripted replay diverged from the recorded schedule
    #: (nondeterministic program); their subtrees are not expanded.
    divergences: int = 0
    #: Individual clamped draws behind the count: ``(position, intended,
    #: n)`` per divergence recorded by :class:`ScriptedChoices`, capped
    #: at :data:`_MAX_DIVERGENCE_EVENTS` across the exploration.
    divergence_events: List[Tuple[int, int, int]] = field(
        default_factory=list)
    #: Longest choice log observed (depth of the explored tree).
    max_depth: int = 0
    #: Wall-clock seconds spent exploring.
    wall_s: float = 0.0

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def to_stats(self) -> Dict[str, Any]:
        """The ``--stats`` payload: work accounting next to the verdict."""
        return {
            "runs": self.runs,
            "runs_executed": self.runs_executed,
            "runs_saved": self.runs_saved,
            "pruned": self.pruned,
            "divergences": self.divergences,
            "divergence_events": [list(event)
                                  for event in self.divergence_events],
            "max_depth": self.max_depth,
            "wall_s": round(self.wall_s, 4),
            "exhausted": self.exhausted,
            "found": self.found,
            "statuses": dict(self.statuses),
        }

    def _extras(self) -> str:
        parts = []
        if self.pruned:
            parts.append(f"{self.pruned} branches pruned")
        if self.runs_saved:
            parts.append(f"{self.runs_saved} runs memoized")
        if self.divergences:
            parts.append(f"{self.divergences} replay divergences")
        return f" [{', '.join(parts)}]" if parts else ""

    def __str__(self) -> str:
        if self.found:
            return (f"counterexample after {self.runs} runs: "
                    f"schedule {self.counterexample} -> "
                    f"{self.counterexample_result.status}{self._extras()}")
        verdict = "exhausted: property holds on every schedule" \
            if self.exhausted else "bound reached without a counterexample"
        return (f"{self.runs} runs, {verdict} "
                f"(statuses: {self.statuses}){self._extras()}")


def _explore_unit(
    program: Callable,
    prefix: List[int],
    stop_on: Optional[Callable[[RunResult], bool]],
    run_kwargs: dict,
    annotate: bool,
) -> Tuple[List[Tuple[int, int]], Any, bool,
           Optional[List[PickAnnotation]], List[Tuple[int, int, int]]]:
    """One scheduled run of one prefix; picklable outcome for sweep workers.

    Returns ``(choice log, result-or-summary, stop hit, pick annotations,
    clamp divergences)``.  The full :class:`RunResult` cannot cross a
    process boundary, so workers reduce it to a
    :class:`repro.parallel.RunSummary`; ``stop_on`` is evaluated here,
    where the rich result still exists.
    """
    from ..parallel import summarize_result

    choices, result, picks = _run_scripted(program, prefix, run_kwargs,
                                           annotate)
    hit = stop_on is not None and bool(stop_on(result))
    return (choices.log, summarize_result(result), hit, picks,
            choices.divergences)


def _run_scripted(program: Callable, prefix: Sequence[int],
                  run_kwargs: dict, annotate: bool):
    """Run ``program`` under a scripted schedule, optionally annotated.

    ``run_kwargs`` may carry ``observer_factories`` — zero-argument
    callables building a *fresh* observer per run (detectors are
    stateful, so a shared instance would bleed reports across the
    exploration).  This is the hook :mod:`repro.predict.confirm` uses to
    let ``stop_on`` predicates see detector verdicts (e.g.
    ``result.races``) during systematic search.
    """
    choices = ScriptedChoices(prefix)
    kwargs = dict(run_kwargs)
    observers = list(kwargs.pop("observers", ()))
    observers.extend(factory()
                     for factory in kwargs.pop("observer_factories", ()))
    annotator = None
    if annotate:
        annotator = ChoiceAnnotator()
        observers.append(annotator)
    result = run(program, rng=choices, observers=observers, **kwargs)
    picks = annotator.picks if annotator is not None else None
    return choices, result, picks


# ----------------------------------------------------------------------
# Explorer internals
# ----------------------------------------------------------------------

#: Upper bound on runs stored per memo trie (backstop, not a tuning knob).
_TRIE_MAX_RUNS = 50_000

#: Individual clamp records kept on an :class:`Exploration` (the count in
#: ``divergences`` is never capped; only the per-event detail is).
_MAX_DIVERGENCE_EVENTS = 100

# Sleep entries are ``(gid, footprint)`` pairs: "goroutine ``gid``'s next
# transition need not be taken here — an explored sibling already covers
# every schedule that starts with it."  ``footprint`` is the transition's
# token set; a dependent (overlapping) step wakes the entry by dropping it.


class _Node:
    """One branch point with unexplored siblings, explored lazily in order
    so each sibling inherits the footprints of the previous ones."""

    __slots__ = ("base", "position", "sleep0", "pending", "entries",
                 "expected")

    def __init__(self, base, position, sleep0, pending, first_entry,
                 expected):
        self.base = base                  # takens up to the branch point
        self.position = position
        self.sleep0 = sleep0              # sleep set in effect at the node
        self.pending = pending            # alternative indices left to try
        self.entries = [first_entry]      # explored transitions' footprints
        self.expected = expected          # expected (n, ...) for the replay


class _Work:
    """A prefix scheduled for exploration."""

    __slots__ = ("prefix", "sleep", "node", "filter_from", "expected")

    def __init__(self, prefix, sleep, node, filter_from, expected):
        self.prefix = prefix
        self.sleep = sleep
        self.node = node                  # origin _Node to report back to
        self.filter_from = filter_from    # first position to re-filter from
        self.expected = expected


class _Explorer:
    """Shared driver for the serial and parallel exploration loops."""

    def __init__(self, program, stop_on, max_runs, max_branch_depth,
                 prune, memo, run_kwargs):
        self.program = program
        self.stop_on = stop_on
        self.max_runs = max_runs
        self.max_branch_depth = max_branch_depth
        # An attached injector mutates runs beyond what choice replay
        # controls; both optimizations stand down.
        hazardous = "inject" in run_kwargs
        self.prune = prune and not hazardous
        self.run_kwargs = run_kwargs
        self.stack: List[_Work] = [_Work([], (), None, 0, ())]
        self.statuses: dict = {}
        self.runs = 0
        self.runs_saved = 0
        self.pruned = 0
        self.divergences = 0
        self.divergence_events: List[Tuple[int, int, int]] = []
        self.max_depth = 0
        self.trie = None if (not memo or hazardous) else self._get_trie()

    # -- memoization ---------------------------------------------------

    def _get_trie(self) -> Optional[dict]:
        from ..parallel import memo as memo_mod

        if not memo_mod.enabled:
            return None
        try:
            key = ("explore-trie", self.program, self.stop_on,
                   memo_mod.fingerprint(self.run_kwargs))
            hash(key)
        except TypeError:
            return None
        trie = memo_mod.memo.get(key)
        if trie is None:
            trie = {"_runs": 0}
            memo_mod.memo.put(key, trie)
        return trie

    def lookup(self, prefix: List[int]):
        """Replay ``prefix`` through the trie; a stored payload on full
        match, else None."""
        if self.trie is None:
            return None
        node = self.trie
        depth = 0
        while True:
            n = node.get("n")
            if n is None:
                return node.get("end")
            intended = prefix[depth] if depth < len(prefix) else 0
            effective = intended if intended < n else n - 1
            node = node["children"].get(effective)
            if node is None:
                return None
            depth += 1

    def store(self, log, payload) -> None:
        if self.trie is None or self.trie["_runs"] >= _TRIE_MAX_RUNS:
            return
        node = self.trie
        for n, taken in log:
            if "n" not in node:
                node["n"] = n
                node["children"] = {}
            elif node["n"] != n:  # nondeterminism: refuse to corrupt
                return
            node = node["children"].setdefault(taken, {})
        if "end" not in node:
            node["end"] = payload
            self.trie["_runs"] += 1

    # -- outcome processing --------------------------------------------

    def diverged(self, work: _Work, choices: ScriptedChoices) -> bool:
        """Did the replay follow the recorded schedule it branched from?"""
        log = choices.log
        if choices.diverged or len(log) < len(work.prefix):
            return True
        return any(n != expected
                   for (n, _taken), expected in zip(log, work.expected))

    def counterexample_from(self, work: _Work, log) -> List[int]:
        return [taken for _n, taken in log[:len(work.prefix)]] \
            or list(work.prefix)

    def process(self, work: _Work, log, status: str, hit: bool,
                picks, diverged: bool,
                clamps: Sequence[Tuple[int, int, int]] = ()) -> None:
        """Account one visited run and expand its branches (unless it
        produced the counterexample — the caller returns before this)."""
        if clamps and len(self.divergence_events) < _MAX_DIVERGENCE_EVENTS:
            room = _MAX_DIVERGENCE_EVENTS - len(self.divergence_events)
            self.divergence_events.extend(
                tuple(clamp) for clamp in list(clamps)[:room])
        self.max_depth = max(self.max_depth, len(log))
        self.statuses[status] = self.statuses.get(status, 0) + 1
        picks_by_pos = {p.position: p for p in picks} if picks else {}
        self._report_to_node(work, picks_by_pos, diverged)
        if diverged:
            # The run did not follow the schedule it was branched from:
            # its log describes some other subtree.  Expanding it would
            # explore blind; count it and stop here.
            self.divergences += 1
            return
        self._expand(work, log, picks_by_pos)

    def _report_to_node(self, work: _Work, picks_by_pos, diverged) -> None:
        node = work.node
        if node is None:
            return
        ann = picks_by_pos.get(len(work.prefix) - 1)
        entry = None
        if not diverged and ann is not None and not ann.poisoned:
            entry = (ann.gids[ann.chosen], ann.tokens)
        node.entries.append(entry)
        if node.pending:
            self._push_next(node)

    def _push_next(self, node: _Node) -> None:
        alternative = node.pending.pop(0)
        sleep = node.sleep0 + tuple(e for e in node.entries if e is not None)
        self.stack.append(_Work(node.base + [alternative], sleep, node,
                                node.position, node.expected))

    def _expand(self, work: _Work, log, picks_by_pos) -> None:
        prefix = work.prefix
        limit = min(len(log), self.max_branch_depth)
        takens = [taken for _n, taken in log]
        ns = [n for n, _taken in log]
        cur = list(work.sleep)
        # Sleep snapshot for divergences *inside* the current segment
        # (select draws): the state before the governing pick applied.
        governing_sleep: Tuple = tuple(work.sleep)
        governing_pos = work.filter_from
        for q in range(work.filter_from, limit):
            n, taken = log[q]
            ann = picks_by_pos.get(q)
            branchable = q >= len(prefix)
            if ann is None:
                # A select draw (or pruning is off): expand eagerly.  The
                # child diverges inside the governing pick's segment, so it
                # inherits the pre-pick sleep set and re-filters from there.
                if branchable and n > 1:
                    base = takens[:q]
                    expected = tuple(ns[:q + 1])
                    for alternative in range(n - 1, -1, -1):
                        if alternative != taken:
                            self.stack.append(_Work(
                                base + [alternative], governing_sleep, None,
                                governing_pos, expected))
                continue
            gid_taken = ann.gids[ann.chosen]
            sleeping = {gid for gid, _ in cur}
            if gid_taken in sleeping:
                # The run's own continuation took a sleeping transition:
                # everything *below* reorders schedules already covered.
                # The state at q itself is still new, though — classic
                # sleep-set search explores enabled-minus-sleeping at every
                # state, so the non-sleeping alternatives get their own
                # runs.  (Their sleep sets inherit the taken transition's
                # entry through ``cur`` itself.)
                self.pruned += 1
                if branchable and n > 1:
                    pending = []
                    for alternative in range(n - 1, -1, -1):
                        if alternative == taken:
                            continue
                        if ann.gids[alternative] in sleeping:
                            self.pruned += 1
                            continue
                        pending.append(alternative)
                    if pending:
                        node = _Node(takens[:q], q, tuple(cur), pending,
                                     None, tuple(ns[:q + 1]))
                        self._push_next(node)
                return
            if branchable and n > 1:
                pending = []
                for alternative in range(n - 1, -1, -1):
                    if alternative == taken:
                        continue
                    if ann.gids[alternative] in sleeping:
                        self.pruned += 1
                        continue
                    pending.append(alternative)
                if pending:
                    first = None if ann.poisoned \
                        else (gid_taken, ann.tokens)
                    node = _Node(takens[:q], q, tuple(cur), pending, first,
                                 tuple(ns[:q + 1]))
                    self._push_next(node)
            governing_sleep = tuple(cur)
            governing_pos = q
            if ann.poisoned:
                cur = []
            else:
                tokens = ann.tokens
                cur = [(gid, fp) for gid, fp in cur
                       if gid != gid_taken and fp.isdisjoint(tokens)]

    def exploration(self, **overrides) -> Exploration:
        fields = dict(
            runs=self.runs,
            exhausted=False,
            statuses=self.statuses,
            runs_executed=self.runs - self.runs_saved,
            runs_saved=self.runs_saved,
            pruned=self.pruned,
            divergences=self.divergences,
            divergence_events=list(self.divergence_events),
            max_depth=self.max_depth,
        )
        fields.update(overrides)
        return Exploration(**fields)


def explore_systematic(
    program: Callable,
    stop_on: Optional[Callable[[RunResult], bool]] = None,
    max_runs: int = 1000,
    max_branch_depth: int = 400,
    jobs: int = 1,
    prune: bool = True,
    memo: bool = True,
    **run_kwargs: Any,
) -> Exploration:
    """Depth-first enumeration of the program's schedule tree.

    Args:
        program: a ``main(rt)`` program.
        stop_on: predicate over :class:`RunResult`; the first run
            satisfying it ends exploration as a counterexample.  Without
            it, the explorer simply covers schedules (useful with
            ``statuses`` for coverage summaries).
        max_runs: total visit budget (memoized visits count: verdicts are
            independent of what happened to be cached).
        max_branch_depth: only branch on the first N decision points of
            each run (bounds the tree; later choices stay at the default).
        jobs: worker processes (:mod:`repro.parallel`).  With ``jobs > 1``
            up to ``jobs`` frontier prefixes run concurrently per round and
            their branches merge in submission order.  Schedule *coverage*
            is unchanged — pruning decisions depend only on each branch
            point's own runs, in a fixed sibling order — so exploration to
            exhaustion visits exactly the same tree; only the visiting
            order (and, with ``stop_on``, which counterexample is found
            first) can differ.  The parallel counterexample result is a
            :class:`repro.parallel.RunSummary` rather than a full
            :class:`RunResult`.
        prune: sleep-set equivalence pruning (see the module docstring).
            Coverage of reachable outcomes is preserved; schedules visited
            shrink.  Disabled automatically when a fault injector is
            attached.
        memo: cross-run memoization through :mod:`repro.parallel.memo`.
        run_kwargs: forwarded to :func:`repro.run` (e.g. ``time_limit``).
    """
    explorer = _Explorer(program, stop_on, max_runs, max_branch_depth,
                         prune, memo, run_kwargs)
    t0 = time.perf_counter()

    def finish(**overrides) -> Exploration:
        return explorer.exploration(wall_s=time.perf_counter() - t0,
                                    **overrides)

    if jobs > 1:
        from ..parallel import map_units

        while explorer.stack and explorer.runs < explorer.max_runs:
            width = min(jobs, len(explorer.stack),
                        explorer.max_runs - explorer.runs)
            batch = [explorer.stack.pop() for _ in range(width)]
            outcomes: List[Any] = []
            to_run: List[int] = []
            for i, work in enumerate(batch):
                payload = explorer.lookup(work.prefix)
                if payload is not None:
                    outcomes.append(payload)
                else:
                    outcomes.append(None)
                    to_run.append(i)
            if to_run:
                executed = map_units(
                    [partial(_explore_unit, program, batch[i].prefix,
                             stop_on, run_kwargs, explorer.prune)
                     for i in to_run],
                    jobs=jobs,
                )
                for i, outcome in zip(to_run, executed):
                    outcomes[i] = outcome
                    log, summary, hit, picks, clamps = outcome
                    diverged = bool(clamps) or _log_mismatch(batch[i], log)
                    if not diverged:
                        explorer.store(log, outcome)
            memoized = set(range(width)) - set(to_run)
            for i, (work, outcome) in enumerate(zip(batch, outcomes)):
                log, summary, hit, picks, clamps = outcome
                diverged = bool(clamps) or _log_mismatch(work, log)
                explorer.runs += 1
                if i in memoized:
                    explorer.runs_saved += 1
                if hit:
                    # First hit in submission order wins; the rest of this
                    # speculative batch is discarded uncounted.
                    explorer.statuses[summary.status] = \
                        explorer.statuses.get(summary.status, 0) + 1
                    explorer.max_depth = max(explorer.max_depth, len(log))
                    return finish(
                        counterexample=explorer.counterexample_from(work, log),
                        counterexample_result=summary,
                    )
                explorer.process(work, log, summary.status, hit, picks,
                                 diverged, clamps)
        return finish(exhausted=not explorer.stack)

    while explorer.stack and explorer.runs < explorer.max_runs:
        work = explorer.stack.pop()
        payload = explorer.lookup(work.prefix)
        if payload is not None and not payload[2]:
            # Memo hit on a non-counterexample run: reuse it outright.
            # (Hits replay live so the caller gets a full RunResult.)
            log, summary, hit, picks, clamps = payload
            explorer.runs += 1
            explorer.runs_saved += 1
            diverged = bool(clamps) or _log_mismatch(work, log)
            explorer.process(work, log, summary.status, hit, picks,
                             diverged, clamps)
            continue

        choices, result, picks = _run_scripted(program, work.prefix,
                                               run_kwargs, explorer.prune)
        explorer.runs += 1
        diverged = explorer.diverged(work, choices)
        hit = stop_on is not None and bool(stop_on(result))
        if not diverged and explorer.trie is not None:
            from ..parallel import summarize_result

            explorer.store(choices.log,
                           (choices.log, summarize_result(result), hit,
                            picks, []))
        if hit:
            explorer.statuses[result.status] = \
                explorer.statuses.get(result.status, 0) + 1
            explorer.max_depth = max(explorer.max_depth, len(choices.log))
            return finish(
                counterexample=explorer.counterexample_from(work, choices.log),
                counterexample_result=result,
            )
        explorer.process(work, choices.log, result.status, hit, picks,
                         diverged, choices.divergences)

    return finish(exhausted=not explorer.stack)


def _log_mismatch(work: _Work, log) -> bool:
    if len(log) < len(work.prefix):
        return True
    return any(n != expected
               for (n, _taken), expected in zip(log, work.expected))


def replay_schedule(program: Callable, schedule: Sequence[int],
                    **run_kwargs: Any) -> RunResult:
    """Replay one explored schedule (a witness) to a full ``RunResult``.

    The schedule is a choice-index prefix exactly as produced in
    :attr:`Exploration.counterexample`; beyond the prefix, choices
    default to index 0 like the explorer's own replays.  Accepts the
    same ``observer_factories`` hook as exploration, so detector-based
    predicates can be re-evaluated on the replayed run.
    """
    choices, result, _picks = _run_scripted(program, list(schedule),
                                            dict(run_kwargs), False)
    setattr(result, "replay_divergences", list(choices.divergences))
    return result


def verify_no_manifestation(kernel, variant: str = "fixed",
                            max_runs: int = 500, **run_kwargs: Any
                            ) -> Exploration:
    """Exhaustively (within bounds) check a kernel variant never manifests."""
    program = kernel.fixed if variant == "fixed" else kernel.buggy
    merged = dict(kernel.run_kwargs)
    merged.update(run_kwargs)
    return explore_systematic(
        program,
        stop_on=kernel.manifested,
        max_runs=max_runs,
        **merged,
    )
