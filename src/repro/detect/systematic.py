"""Systematic schedule exploration — bounded stateless model checking.

Random seed sweeps (the paper's "run the buggy program a lot of times")
can miss rare interleavings; Implication 4 asks for *novel blocking bug
detection techniques*.  This module is the classic systematic answer:
every source of scheduling nondeterminism in a run is a sequence of
``randrange(n)`` draws, so a schedule **is** a list of choice indices.
The explorer runs the program under scripted choices and enumerates the
tree of schedules depth-first:

* each run records its choice log ``(n, taken)`` per decision point;
* every untried alternative at every decision point becomes a new prefix
  to explore (beyond the prefix, choices default to index 0, keeping the
  suffix deterministic);
* exploration stops at a counterexample (``stop_on``), at ``max_runs``,
  or when the tree is exhausted — in which case the program is *verified*
  over all schedules within the depth bound.

For small programs exhaustion is reachable and gives a real guarantee;
for larger ones the explorer is a directed bug-finder that needs no luck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..runtime.runtime import RunResult, run


class ScriptedChoices:
    """A ``randrange`` source replaying a fixed prefix, then picking 0."""

    def __init__(self, prefix: Sequence[int] = ()):
        self.prefix = list(prefix)
        self.log: List[Tuple[int, int]] = []

    def randrange(self, n: int) -> int:
        position = len(self.log)
        if position < len(self.prefix):
            choice = min(self.prefix[position], n - 1)
        else:
            choice = 0
        self.log.append((n, choice))
        return choice


@dataclass
class Exploration:
    """Outcome of a systematic exploration."""

    runs: int
    exhausted: bool                      # whole bounded tree covered
    counterexample: Optional[List[int]] = None
    counterexample_result: Optional[RunResult] = None
    statuses: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def __str__(self) -> str:
        if self.found:
            return (f"counterexample after {self.runs} runs: "
                    f"schedule {self.counterexample} -> "
                    f"{self.counterexample_result.status}")
        verdict = "exhausted: property holds on every schedule" \
            if self.exhausted else "bound reached without a counterexample"
        return f"{self.runs} runs, {verdict} (statuses: {self.statuses})"


def _explore_unit(
    program: Callable,
    prefix: List[int],
    stop_on: Optional[Callable[[RunResult], bool]],
    run_kwargs: dict,
) -> Tuple[List[Tuple[int, int]], Any, bool]:
    """One scheduled run of one prefix; picklable outcome for sweep workers.

    Returns ``(choice log, result-or-summary, stop hit)``.  The full
    :class:`RunResult` cannot cross a process boundary, so workers reduce
    it to a :class:`repro.parallel.RunSummary`; ``stop_on`` is evaluated
    here, where the rich result still exists.
    """
    from ..parallel import summarize_result

    choices = ScriptedChoices(prefix)
    result = run(program, rng=choices, **run_kwargs)
    hit = stop_on is not None and bool(stop_on(result))
    return choices.log, summarize_result(result), hit


def explore_systematic(
    program: Callable,
    stop_on: Optional[Callable[[RunResult], bool]] = None,
    max_runs: int = 1000,
    max_branch_depth: int = 400,
    jobs: int = 1,
    **run_kwargs: Any,
) -> Exploration:
    """Depth-first enumeration of the program's schedule tree.

    Args:
        program: a ``main(rt)`` program.
        stop_on: predicate over :class:`RunResult`; the first run
            satisfying it ends exploration as a counterexample.  Without
            it, the explorer simply covers schedules (useful with
            ``statuses`` for coverage summaries).
        max_runs: total run budget.
        max_branch_depth: only branch on the first N decision points of
            each run (bounds the tree; later choices stay at the default).
        jobs: worker processes (:mod:`repro.parallel`).  With ``jobs > 1``
            up to ``jobs`` frontier prefixes run concurrently per round and
            their branches merge in submission order.  Schedule *coverage*
            is unchanged — each prefix's children depend only on its own
            run — so exploration to exhaustion visits exactly the same
            tree; only the visiting order (and, with ``stop_on``, which
            counterexample is found first) can differ.  The parallel
            counterexample result is a :class:`repro.parallel.RunSummary`
            rather than a full :class:`RunResult`.
        run_kwargs: forwarded to :func:`repro.run` (e.g. ``time_limit``).
    """
    stack: List[List[int]] = [[]]
    seen_prefixes = 0
    statuses: dict = {}
    runs = 0

    def branch(prefix: List[int], log: List[Tuple[int, int]]) -> None:
        # Branch: every untried alternative after the replayed prefix.
        nonlocal seen_prefixes
        limit = min(len(log), max_branch_depth)
        for position in range(len(prefix), limit):
            n, taken = log[position]
            if n <= 1:
                continue
            base = [choice for _n, choice in log[:position]]
            for alternative in range(n - 1, -1, -1):
                if alternative != taken:
                    stack.append(base + [alternative])
                    seen_prefixes += 1

    if jobs > 1:
        from ..parallel import map_units

        while stack and runs < max_runs:
            width = min(jobs, len(stack), max_runs - runs)
            prefixes = [stack.pop() for _ in range(width)]
            outcomes = map_units(
                [partial(_explore_unit, program, prefix, stop_on, run_kwargs)
                 for prefix in prefixes],
                jobs=jobs,
            )
            for prefix, (log, summary, hit) in zip(prefixes, outcomes):
                runs += 1
                statuses[summary.status] = statuses.get(summary.status, 0) + 1
                if hit:
                    # First hit in submission order wins; the rest of this
                    # speculative batch is discarded uncounted.
                    return Exploration(
                        runs=runs,
                        exhausted=False,
                        counterexample=[taken for _n, taken in
                                        log[: len(prefix)]] or list(prefix),
                        counterexample_result=summary,
                        statuses=statuses,
                    )
                branch(prefix, log)
        return Exploration(runs=runs, exhausted=not stack, statuses=statuses)

    while stack and runs < max_runs:
        prefix = stack.pop()
        choices = ScriptedChoices(prefix)
        result = run(program, rng=choices, **run_kwargs)
        runs += 1
        statuses[result.status] = statuses.get(result.status, 0) + 1

        if stop_on is not None and stop_on(result):
            return Exploration(
                runs=runs,
                exhausted=False,
                counterexample=[taken for _n, taken in
                                choices.log[: len(prefix)]] or list(prefix),
                counterexample_result=result,
                statuses=statuses,
            )

        branch(prefix, choices.log)

    return Exploration(
        runs=runs,
        exhausted=not stack,
        statuses=statuses,
    )


def verify_no_manifestation(kernel, variant: str = "fixed",
                            max_runs: int = 500, **run_kwargs: Any
                            ) -> Exploration:
    """Exhaustively (within bounds) check a kernel variant never manifests."""
    program = kernel.fixed if variant == "fixed" else kernel.buggy
    merged = dict(kernel.run_kwargs)
    merged.update(run_kwargs)
    return explore_systematic(
        program,
        stop_on=kernel.manifested,
        max_runs=max_runs,
        **merged,
    )
