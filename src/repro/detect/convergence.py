"""Convergence checking: liveness verdicts for crash-recovery chaos.

The paper's detectors judge *single-process* health (deadlock, leak,
race).  Under node crashes the question changes: after the fault, does
the **cluster** return to a consistent, progressing state within a
virtual-time budget?  :func:`await_recovery` answers it from inside a
workload goroutine, polling two caller-supplied probes on the virtual
clock, and classifies the outcome into a three-way verdict:

* ``recovered`` — the cluster made progress after the fault *and* its
  replicas agree: liveness and safety both hold.
* ``diverged`` — progress resumed but the replicas never agreed within
  the budget: a safety failure (lost un-fsynced writes that the leader
  still serves, a stale follower that rejoined without catch-up).
* ``stuck`` — no progress within the budget: a liveness failure (the
  cluster-level analogue of the paper's blocking bugs — everyone is
  waiting on a machine that will never answer).

Because both probes run on the virtual clock inside the deterministic
run, the verdict is a pure function of ``(program, seed, plan)`` and is
replayable like any other outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime

__all__ = ["ConvergenceReport", "await_recovery", "classify",
           "recovery_verdict"]

#: The three-way liveness/safety verdict values.
VERDICTS = ("recovered", "diverged", "stuck")


def classify(*, consistent: bool, progressed: bool) -> str:
    """Fold the two probe outcomes into a verdict.

    Progress without consistency is ``diverged`` (safety broke);
    consistency without progress is still ``stuck`` (a frozen cluster
    trivially "agrees" — liveness is the bar)."""
    if progressed and consistent:
        return "recovered"
    if progressed:
        return "diverged"
    return "stuck"


@dataclass
class ConvergenceReport:
    """Outcome of one :func:`await_recovery` watch."""

    verdict: str                       # one of VERDICTS
    recovery_s: Optional[float] = None  # virtual seconds to recovery
    polls: int = 0
    budget: float = 0.0
    detail: str = ""

    @property
    def recovered(self) -> bool:
        return self.verdict == "recovered"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "recovery_s": self.recovery_s,
            "polls": self.polls,
            "budget": self.budget,
            "detail": self.detail,
        }


def await_recovery(rt: "Runtime", *,
                   consistent: Callable[[], bool],
                   progress: Callable[[], Any],
                   budget: float = 5.0,
                   poll: float = 0.05) -> ConvergenceReport:
    """Watch a cluster until it recovers, or the budget runs out.

    Call from a workload goroutine after (or while) faults fire.
    ``progress()`` must return a monotonically comparable progress
    counter (committed writes, acked requests); ``consistent()`` must
    return True when the replicas agree.  The watch polls every ``poll``
    virtual seconds for up to ``budget`` virtual seconds and returns the
    first moment both probes hold — so ``recovery_s`` is the cluster's
    recovery time, quantized to the poll interval.
    """
    start = rt.now()
    baseline = progress()
    polls = 0
    while True:
        elapsed = rt.now() - start
        if elapsed >= budget:
            break
        rt.sleep(min(poll, budget - elapsed))
        polls += 1
        moved = progress() > baseline
        if moved and consistent():
            return ConvergenceReport(
                verdict="recovered", recovery_s=rt.now() - start,
                polls=polls, budget=budget,
                detail=f"consistent and progressing after {polls} polls")
    moved = progress() > baseline
    agree = consistent()
    verdict = classify(consistent=agree, progressed=moved)
    return ConvergenceReport(
        verdict=verdict, recovery_s=None, polls=polls, budget=budget,
        detail=(f"budget {budget:g}s exhausted: "
                f"progressed={moved} consistent={agree}"))


def recovery_verdict(result: Any) -> Optional[str]:
    """Extract a convergence verdict from a finished run, if one exists.

    Recovery scenarios return a dict carrying ``"verdict"`` from main;
    anything else (plain workloads, kernels) yields ``None`` so the
    chaos scorecard only grows verdict columns for targets that emit
    them."""
    main = getattr(result, "main_result", None)
    if isinstance(main, dict):
        verdict = main.get("verdict")
        if verdict in VERDICTS:
            return verdict
    return None
