"""Bug detectors: the two the paper evaluates, plus the extensions it calls for.

* :class:`RaceDetector` — Go's ``-race`` happens-before detector with the
  4-shadow-word limit (Table 12).
* :class:`BuiltinDeadlockDetector` — the runtime's all-asleep detector
  (Table 8).
* :class:`GoroutineLeakDetector` — partial-deadlock/leak detection
  (Implication 4 extension).
* :class:`ChannelRuleChecker` — runtime rule-violation diagnostics
  (Section 7 extension).
* :class:`AnonymousCaptureDetector` — the static loop-capture detector the
  authors prototype in Section 7.
* :func:`await_recovery` — cluster-level convergence/liveness verdicts
  for crash-recovery chaos (recovered / diverged / stuck).
"""

from .capture import AnonymousCaptureDetector, scan_file, scan_paths, scan_source
from .convergence import (
    ConvergenceReport,
    await_recovery,
    classify,
    recovery_verdict,
)
from .deadlock import BuiltinDeadlockDetector, GoroutineLeakDetector
from .leak import leak_reports, leaks_under_any_seed, manifestation_rate
from .lockorder import LockOrderDetector, LockOrderViolation
from .race import RaceDetector
from .report import (
    Access,
    CaptureFinding,
    Detection,
    LeakReport,
    RaceReport,
    RuleViolation,
)
from .rules import ChannelRuleChecker
from .systematic import (
    Exploration,
    ScriptedChoices,
    explore_systematic,
    replay_schedule,
    verify_no_manifestation,
)
from .vectorclock import VectorClock

__all__ = [
    "Access",
    "AnonymousCaptureDetector",
    "BuiltinDeadlockDetector",
    "CaptureFinding",
    "ChannelRuleChecker",
    "ConvergenceReport",
    "Detection",
    "Exploration",
    "GoroutineLeakDetector",
    "LeakReport",
    "LockOrderDetector",
    "LockOrderViolation",
    "RaceDetector",
    "RaceReport",
    "RuleViolation",
    "ScriptedChoices",
    "VectorClock",
    "explore_systematic",
    "leak_reports",
    "leaks_under_any_seed",
    "manifestation_rate",
    "scan_file",
    "scan_paths",
    "replay_schedule",
    "scan_source",
    "await_recovery",
    "classify",
    "recovery_verdict",
    "verify_no_manifestation",
]
