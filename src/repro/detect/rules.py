"""Runtime channel-rule checker.

The paper observes (Section 7) that "the violation of rules Go enforces
with its concurrency primitives is one major reason for concurrency bugs"
and suggests "a novel dynamic technique can try to enforce such rules and
detect violation at runtime."  This observer is that technique for the
simulator: it watches the trace and the run outcome and produces structured
:class:`~repro.detect.report.RuleViolation` diagnostics for

* panics that encode rule violations (double close, send on closed channel,
  negative WaitGroup, unlock of unlocked mutex),
* goroutines blocked forever on nil channels,
* goroutines leaked while parked on channel operations (with the channel's
  identity), and
* deadlocks involving channel operations.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.errors import GoPanic
from ..runtime.runtime import RunResult
from ..runtime.trace import TraceEvent
from .report import RuleViolation

_PANIC_RULES = {
    "close of closed channel": "close-of-closed-channel",
    "close of nil channel": "close-of-nil-channel",
    "send on closed channel": "send-on-closed-channel",
    "sync: negative WaitGroup counter": "negative-waitgroup-counter",
    "sync: unlock of unlocked mutex": "unlock-of-unlocked-mutex",
    "sync: RUnlock of unlocked RWMutex": "runlock-of-unlocked-rwmutex",
    "sync: Unlock of unlocked RWMutex": "unlock-of-unlocked-rwmutex",
}


class ChannelRuleChecker:
    """Observer producing rule-violation diagnostics for one run."""

    name = "channel-rule-checker"

    def __init__(self) -> None:
        self.violations: List[RuleViolation] = []
        self._rt = None

    def attach(self, rt) -> None:
        self._rt = rt

    def finish(self, result: RunResult) -> None:
        self._check_panic(result)
        self._check_stuck(result)
        setattr(result, "rule_violations", list(self.violations))

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    # ------------------------------------------------------------------

    def _check_panic(self, result: RunResult) -> None:
        if not isinstance(result.panic_value, GoPanic):
            return
        message = str(result.panic_value.value)
        rule = _PANIC_RULES.get(message)
        if rule is None:
            return
        gid = result.panic_goroutine.gid if result.panic_goroutine else None
        self.violations.append(
            RuleViolation(rule=rule, message=message, gid=gid)
        )

    def _check_stuck(self, result: RunResult) -> None:
        # result.leaked covers leaks, deadlocks, hangs and timeouts alike.
        for g in result.leaked:
            reason = g.block_reason or ""
            if reason.endswith(":nil") or reason == "select.nil":
                self.violations.append(
                    RuleViolation(
                        rule="operation-on-nil-channel",
                        message=f"goroutine {g.gid} ({g.name}) blocked forever: {reason}",
                        gid=g.gid,
                    )
                )
            elif reason.startswith("chan.send"):
                self.violations.append(
                    RuleViolation(
                        rule="missing-receiver",
                        message=(f"goroutine {g.gid} ({g.name}) blocked sending on "
                                 f"{reason.split(':', 1)[1]}: nobody receives or closes"),
                        gid=g.gid,
                    )
                )
            elif reason.startswith("chan.recv"):
                self.violations.append(
                    RuleViolation(
                        rule="missing-sender-or-close",
                        message=(f"goroutine {g.gid} ({g.name}) blocked receiving on "
                                 f"{reason.split(':', 1)[1]}: nobody sends or closes"),
                        gid=g.gid,
                    )
                )
