"""The built-in runtime deadlock detector, as evaluated in Table 8.

Go's scheduler reports ``fatal error: all goroutines are asleep -
deadlock!`` only when *no* goroutine in the process can make progress, and
only counts goroutines parked at Go concurrency primitives.  Our runtime
classifies runs the same way, so this detector simply executes the program
and checks for that terminal status.  Its two documented blind spots fall
out naturally:

1. A *partial* deadlock — some goroutines stuck while main (or anything
   else) keeps running — ends the run with status ``leak``, not
   ``deadlock``: the detector stays silent (19 of the paper's 21
   reproduced blocking bugs).
2. A goroutine waiting on an external resource (``rt.external_wait``)
   keeps the run in status ``hang``: the detector stays silent.

It reports no false positives, matching the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..runtime.runtime import RunResult, run
from .report import Detection


class BuiltinDeadlockDetector:
    """Replica of Go's always-on runtime deadlock detector."""

    name = "builtin-deadlock-detector"

    def classify(self, result: RunResult) -> bool:
        """Would Go's runtime have printed the fatal deadlock report?"""
        return result.status == "deadlock"

    def detect(self, program: Callable, seed: int = 0, **run_kwargs: Any) -> Detection:
        """Run ``program`` once (the paper runs each reproduced blocking bug
        once, since the blocking triggers deterministically) and report."""
        result = run(program, seed=seed, **run_kwargs)
        detected = self.classify(result)
        reports = list(result.deadlock.blocked) if result.deadlock else []
        return Detection(
            detector=self.name,
            detected=detected,
            reports=reports,
            runs=1,
            detecting_runs=1 if detected else 0,
        )


class GoroutineLeakDetector:
    """The extension the paper's Implication 4 calls for.

    Flags *any* goroutine blocked forever — partial deadlocks and leaks
    included — by inspecting the post-drain blocked set.  The ablation
    benchmark contrasts its recall with the built-in detector's on the same
    blocking-kernel corpus.
    """

    name = "goroutine-leak-detector"

    def classify(self, result: RunResult) -> bool:
        if result.status in ("deadlock", "hang"):
            return True
        return bool(result.leaked)

    def detect(self, program: Callable, seed: int = 0, **run_kwargs: Any) -> Detection:
        result = run(program, seed=seed, **run_kwargs)
        detected = self.classify(result)
        reports = result.blocked_forever
        return Detection(
            detector=self.name,
            detected=detected,
            reports=list(reports),
            runs=1,
            detecting_runs=1 if detected else 0,
        )
