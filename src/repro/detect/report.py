"""Shared report types for all detectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Access:
    """One memory access as seen by the race detector."""

    gid: int
    kind: str          # "read" | "write"
    step: int
    var_name: str

    def __str__(self) -> str:
        return f"{self.kind} of {self.var_name} by goroutine {self.gid} at step {self.step}"


@dataclass(frozen=True)
class RaceReport:
    """A detected data race between two unordered conflicting accesses."""

    var_id: int
    var_name: str
    first: Access
    second: Access

    def __str__(self) -> str:
        return (f"DATA RACE on {self.var_name}: {self.second} "
                f"is concurrent with previous {self.first}")


@dataclass(frozen=True)
class RuleViolation:
    """A violation of Go's channel/primitive usage rules."""

    rule: str            # e.g. "close-of-closed-channel"
    message: str
    gid: Optional[int] = None
    step: Optional[int] = None

    def __str__(self) -> str:
        where = f" (goroutine {self.gid}, step {self.step})" if self.gid else ""
        return f"{self.rule}: {self.message}{where}"


@dataclass(frozen=True)
class LeakReport:
    """A goroutine blocked forever (the paper's goroutine-leak symptom)."""

    gid: int
    name: str
    reason: str
    creation_site: Optional[str]

    def __str__(self) -> str:
        site = f" created at {self.creation_site}" if self.creation_site else ""
        return f"LEAK: goroutine {self.gid} ({self.name}){site} blocked on {self.reason}"


@dataclass(frozen=True)
class CaptureFinding:
    """A loop variable captured by a goroutine closure (Figure 8's pattern)."""

    path: str
    line: int
    loop_var: str
    function: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: goroutine closure {self.function!r} "
                f"captures loop variable {self.loop_var!r} by reference")


@dataclass
class Detection:
    """Outcome of running one detector against one program."""

    detector: str
    detected: bool
    reports: List[object] = field(default_factory=list)
    runs: int = 1
    detecting_runs: int = 0

    def __str__(self) -> str:
        verdict = "DETECTED" if self.detected else "missed"
        return f"[{self.detector}] {verdict} ({self.detecting_runs}/{self.runs} runs)"
