"""Static detector for loop-variable capture by goroutine closures.

Section 7 of the paper: "As a preliminary effort, we built a detector
targeting the non-blocking bugs caused by anonymous functions (e.g.
Figure 8).  Our detector has already discovered a few new bugs."

Figure 8's pattern exists verbatim in Python: a closure created inside a
loop captures the loop variable *by reference*, so every goroutine started
with ``rt.go(closure)`` may observe the final value.  This module scans
Python source (kernels, apps, user code) with :mod:`ast` and flags
goroutine closures that read a surrounding loop variable without rebinding
it (the fix — a default-argument copy, ``def w(i=i)`` — is the exact
analogue of Docker's "pass i as a parameter" patch).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from .report import CaptureFinding


def _loop_target_names(node: ast.For) -> Set[str]:
    names: Set[str] = set()
    for target in ast.walk(node.target):
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _free_reads(fn: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]) -> Set[str]:
    """Names read inside ``fn`` that are neither params nor locally bound."""
    params: Set[str] = set()
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        params.add(arg.arg)
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)

    bound: Set[str] = set(params)
    reads: Set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    reads.add(node.id)
    return reads - bound


class _GoCallCollector(ast.NodeVisitor):
    """Finds ``<anything>.go(fn, ...)`` calls and local function defs."""

    def __init__(self) -> None:
        self.go_calls: List[ast.Call] = []
        self.local_defs: Dict[str, ast.FunctionDef] = {}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "go":
            self.go_calls.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_defs[node.name] = node
        self.generic_visit(node)


def _scan_loop(loop: ast.For, path: str, findings: List[CaptureFinding]) -> None:
    loop_vars = _loop_target_names(loop)
    if not loop_vars:
        return
    collector = _GoCallCollector()
    for stmt in loop.body + loop.orelse:
        collector.visit(stmt)
    for call in collector.go_calls:
        if not call.args:
            continue
        target = call.args[0]
        fn_node: Optional[Union[ast.FunctionDef, ast.Lambda]] = None
        fn_name = "<lambda>"
        if isinstance(target, ast.Lambda):
            fn_node = target
        elif isinstance(target, ast.Name) and target.id in collector.local_defs:
            fn_node = collector.local_defs[target.id]
            fn_name = target.id
        if fn_node is None:
            continue
        # Default arguments rebind the loop variable: the standard fix.
        defaults: Set[str] = set()
        for arg, default in zip(
            reversed(fn_node.args.args), reversed(fn_node.args.defaults)
        ):
            if default is not None:
                defaults.add(arg.arg)
        captured = (_free_reads(fn_node) & loop_vars) - defaults
        # A parameter with the same name shadows the loop variable entirely.
        params = {a.arg for a in fn_node.args.args}
        captured -= params
        for var in sorted(captured):
            findings.append(
                CaptureFinding(
                    path=path,
                    line=call.lineno,
                    loop_var=var,
                    function=fn_name,
                )
            )


def scan_source(source: str, path: str = "<string>") -> List[CaptureFinding]:
    """Scan one module's source text for goroutine loop-capture bugs."""
    tree = ast.parse(source, filename=path)
    findings: List[CaptureFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            _scan_loop(node, path, findings)
    return findings


def scan_file(path: Union[str, Path]) -> List[CaptureFinding]:
    path = Path(path)
    return scan_source(path.read_text(encoding="utf-8"), str(path))


def scan_paths(paths: Iterable[Union[str, Path]]) -> List[CaptureFinding]:
    """Scan files and directories (recursively, ``*.py``)."""
    findings: List[CaptureFinding] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                findings.extend(scan_file(file))
        else:
            findings.extend(scan_file(entry))
    return findings


class AnonymousCaptureDetector:
    """Object-style facade matching the other detectors' interfaces."""

    name = "anonymous-capture-detector"

    def detect_source(self, source: str, path: str = "<string>"):
        from .report import Detection

        findings = scan_source(source, path)
        return Detection(
            detector=self.name,
            detected=bool(findings),
            reports=list(findings),
            runs=1,
            detecting_runs=1 if findings else 0,
        )

    def detect_paths(self, paths: Iterable[Union[str, Path]]):
        from .report import Detection

        findings = scan_paths(paths)
        return Detection(
            detector=self.name,
            detected=bool(findings),
            reports=list(findings),
            runs=1,
            detecting_runs=1 if findings else 0,
        )
