"""Back-compat shim: the loop-capture detector moved to the static tier.

The scanner now lives in :mod:`repro.static.capture` as one checker
among the static-analysis peers, emitting the shared
:class:`~repro.static.model.StaticFinding` schema.  This module keeps
the original ``repro.detect`` surface — ``scan_source``/``scan_file``/
``scan_paths`` returning :class:`~repro.detect.report.CaptureFinding`
and the :class:`AnonymousCaptureDetector` facade — so existing callers
and recorded tooling keep working unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from ..static import capture as _capture
from .report import CaptureFinding


def scan_source(source: str, path: str = "<string>") -> List[CaptureFinding]:
    """Scan one module's source text for goroutine loop-capture bugs."""
    return [_capture.to_capture_finding(f)
            for f in _capture.check_source(source, path)]


def scan_file(path: Union[str, Path]) -> List[CaptureFinding]:
    return [_capture.to_capture_finding(f)
            for f in _capture.check_file(path)]


def scan_paths(paths: Iterable[Union[str, Path]]) -> List[CaptureFinding]:
    """Scan files and directories (recursively, ``*.py``)."""
    return [_capture.to_capture_finding(f)
            for f in _capture.check_paths(paths)]


class AnonymousCaptureDetector:
    """Object-style facade matching the other detectors' interfaces."""

    name = "anonymous-capture-detector"

    def detect_source(self, source: str, path: str = "<string>"):
        from .report import Detection

        findings = scan_source(source, path)
        return Detection(
            detector=self.name,
            detected=bool(findings),
            reports=list(findings),
            runs=1,
            detecting_runs=1 if findings else 0,
        )

    def detect_paths(self, paths: Iterable[Union[str, Path]]):
        from .report import Detection

        findings = scan_paths(paths)
        return Detection(
            detector=self.name,
            detected=bool(findings),
            reports=list(findings),
            runs=1,
            detecting_runs=1 if findings else 0,
        )
