"""Vector clocks for happens-before reasoning.

The implementation lives in :mod:`repro.runtime._hotloop` (array-backed,
shared with the predictive engine's :class:`repro.predict.hb.HBEngine`);
this module keeps the historical import location for the detectors.  Epoch
pairs ``(gid, count)`` give FastTrack-style O(1) ordered-with-current
checks.
"""

from __future__ import annotations

from ..runtime._hotloop import VectorClock

__all__ = ["VectorClock"]
