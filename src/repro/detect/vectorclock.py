"""Vector clocks for happens-before reasoning.

Sparse (dict-backed) clocks keyed by goroutine id.  Epoch pairs
``(gid, count)`` give FastTrack-style O(1) ordered-with-current checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class VectorClock:
    """A sparse vector clock over goroutine ids."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self._counts: Dict[int, int] = dict(counts) if counts else {}

    def get(self, gid: int) -> int:
        return self._counts.get(gid, 0)

    def increment(self, gid: int) -> None:
        self._counts[gid] = self._counts.get(gid, 0) + 1

    def join(self, other: Optional["VectorClock"]) -> None:
        """Pointwise maximum: ``self = self ⊔ other``."""
        if other is None:
            return
        for gid, count in other._counts.items():
            if count > self._counts.get(gid, 0):
                self._counts[gid] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self._counts)

    def epoch(self, gid: int) -> Tuple[int, int]:
        """The ``(gid, count)`` epoch of this clock's own component."""
        return gid, self._counts.get(gid, 0)

    def dominates_epoch(self, epoch: Tuple[int, int]) -> bool:
        """True when the access stamped ``epoch`` happens-before this clock."""
        gid, count = epoch
        return self._counts.get(gid, 0) >= count

    def __le__(self, other: "VectorClock") -> bool:
        return all(count <= other._counts.get(gid, 0)
                   for gid, count in self._counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {g: c for g, c in self._counts.items() if c} == \
               {g: c for g, c in other._counts.items() if c}

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(frozenset(self._counts.items()))

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._counts.items())

    def __repr__(self) -> str:
        inner = ",".join(f"g{g}:{c}" for g, c in sorted(self._counts.items()))
        return f"VC({inner})"
