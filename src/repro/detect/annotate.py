"""Choice-point annotation for the systematic explorer.

The explorer's schedule tree branches on raw ``randrange`` indices; to
prune equivalent branches it must know what each choice *did*.  This
module answers that with two inert runtime hooks:

* :attr:`Scheduler.annotate_pick` reports, for every scheduling decision,
  the runnable goroutines offered and the index chosen — aligned to the
  scripted choice log by position (the hook fires right after the draw).
* a trace listener buckets the events each picked goroutine then performs
  into that decision's *segment* and reduces them to a **footprint**: the
  set of synchronization objects and goroutines the segment touched.

Footprints drive the sleep-set pruning rule in
:mod:`repro.detect.systematic`: two segments on different goroutines with
disjoint footprints commute, so schedules differing only in their order
are equivalent.  Soundness demands the footprint never *understate* a
segment's interactions.  The scheduler therefore names the wait queues a
blocked attempt registers on (``GO_BLOCK`` carries the primitive id, or
the full case-channel set for a select) and ``select.begin`` carries
every case channel it consults, so those reduce to ordinary object
tokens.  Sleeps reduce to a single shared timer token ``("t", 0)``: two
sleeps may contend on wake order, but a sleep commutes with any channel
or lock operation (clock *advances* still poison, see below).

Anything the event stream cannot fully describe poisons the segment
(treated as dependent on everything):

* ``GO_BLOCK`` without a named object (external waits, nil channels);
* timer fires (the clock advance reorders every deadline), external
  waits, injected faults, panics, the main goroutine ending (changes run
  length), network fabric activity, and any event kind this table does
  not know.

Everything else contributes tokens: ``("o", id)`` for a primitive object,
``("g", gid)`` for goroutine-directed effects (spawn, unblock, completing
a peer's parked operation).  Every segment also carries its own
goroutine's ``("g", gid)`` token, so two segments of the same goroutine
never commute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Tuple

from ..runtime.trace import EventKind, TraceEvent

__all__ = ["ChoiceAnnotator", "PickAnnotation"]

#: Event kinds whose segment cannot be summarized by object tokens alone.
_POISON_KINDS = frozenset({
    EventKind.GO_PANIC,
    EventKind.TIMER_FIRE,
    EventKind.EXTERNAL_WAIT,
    EventKind.INJECT,
})

#: The shared virtual-clock token: all sleep registrations conflict with
#: each other (wake order) but commute with channel/lock traffic.
_TIMER_TOKEN = ("t", 0)

#: Event kinds that carry no cross-goroutine information at all.
_INERT_KINDS = frozenset({
    EventKind.GO_START,
    EventKind.SELECT_COMMIT,
})

#: Event kinds whose ``obj`` is a goroutine id, not a primitive id.
_GID_OBJ_KINDS = frozenset({
    EventKind.GO_CREATE,
    EventKind.GO_UNBLOCK,
})

#: Event kinds whose ``obj`` names a synchronization primitive.
_OBJ_KINDS = frozenset({
    EventKind.CHAN_MAKE, EventKind.CHAN_SEND, EventKind.CHAN_RECV,
    EventKind.CHAN_CLOSE,
    EventKind.MU_REQUEST, EventKind.MU_LOCK, EventKind.MU_UNLOCK,
    EventKind.RW_RLOCK, EventKind.RW_RUNLOCK, EventKind.RW_REQUEST,
    EventKind.RW_LOCK, EventKind.RW_UNLOCK,
    EventKind.WG_ADD, EventKind.WG_DONE, EventKind.WG_WAIT,
    EventKind.ONCE_DO,
    EventKind.COND_WAIT, EventKind.COND_SIGNAL, EventKind.COND_BROADCAST,
    EventKind.ATOMIC_OP,
    EventKind.MEM_READ, EventKind.MEM_WRITE,
})

#: gid of the program's main goroutine (first spawned by ``run``).
MAIN_GID = 1


@dataclass(frozen=True)
class PickAnnotation:
    """One scheduling decision: who was offered, who ran, what they touched.

    Attributes:
        position: index into the scripted choice log (which ``randrange``
            call this pick was).
        gids: runnable goroutine ids offered, in runnable-list order
            (``gids[chosen]`` ran).
        chosen: the index drawn.
        tokens: footprint of the segment the chosen goroutine then
            executed, as ``("o", id)`` / ``("g", gid)`` pairs.
        poisoned: True when the footprint may be incomplete; a poisoned
            segment never justifies pruning.
    """

    position: int
    gids: Tuple[int, ...]
    chosen: int
    tokens: FrozenSet[Tuple[str, int]]
    poisoned: bool


class _Segment:
    __slots__ = ("position", "gids", "chosen", "gid", "tokens", "poisoned")

    def __init__(self, position: int, gids: Tuple[int, ...], chosen: int):
        self.position = position
        self.gids = gids
        self.chosen = chosen
        self.gid = gids[chosen]
        self.tokens = {("g", self.gid)}
        self.poisoned = False


class ChoiceAnnotator:
    """Observer recording pick offers and segment footprints for one run.

    Pass in ``observers=[annotator]`` to :func:`repro.run` alongside the
    scripted ``rng``; read :attr:`picks` afterwards.  Attaching subscribes
    a trace listener (events are delivered even with ``keep_trace=False``)
    and installs the ``annotate_pick`` scheduler hook.
    """

    def __init__(self) -> None:
        self.picks: List[PickAnnotation] = []
        self._segments: List[_Segment] = []
        self._current: Optional[_Segment] = None
        self._rng: Any = None

    # -- observer protocol -------------------------------------------------

    def attach(self, rt: Any) -> None:
        sched = rt.sched
        self._rng = sched.rng
        sched.annotate_pick = self._on_pick
        sched.trace.subscribe(self._on_event)

    def finish(self, result: Any) -> None:
        self._flush()
        self.picks = [
            PickAnnotation(seg.position, seg.gids, seg.chosen,
                           frozenset(seg.tokens), seg.poisoned)
            for seg in self._segments
        ]

    # -- hooks -------------------------------------------------------------

    def _on_pick(self, runnable: List[Any], idx: int) -> None:
        # The draw just happened, so its log entry is the last one.
        position = len(self._rng.log) - 1
        self._flush()
        self._current = _Segment(
            position, tuple(g.gid for g in runnable), idx)

    def _on_event(self, event: TraceEvent) -> None:
        seg = self._current
        if seg is None:
            # Pre-first-pick setup (main's GO_CREATE): nothing to prune.
            return
        kind = event.kind
        if kind in _OBJ_KINDS:
            if event.obj is not None:
                seg.tokens.add(("o", event.obj))
            else:  # pragma: no cover - defensive
                seg.poisoned = True
            if event.gid != seg.gid:
                # Completing a parked peer's operation touches that peer.
                seg.tokens.add(("g", event.gid))
        elif kind in _GID_OBJ_KINDS:
            seg.tokens.add(("g", event.obj))
        elif kind == EventKind.GO_BLOCK:
            info = event.info or {}
            objs = info.get("objs")
            if event.obj is not None:
                seg.tokens.add(("o", event.obj))
            elif objs:
                seg.tokens.update(("o", obj) for obj in objs)
            elif info.get("reason") == "time.sleep":
                seg.tokens.add(_TIMER_TOKEN)
            else:
                # External waits, nil channels: wait queue unnamed.
                seg.poisoned = True
        elif kind == EventKind.SELECT_BEGIN:
            chans = (event.info or {}).get("chans")
            if chans is None:  # pragma: no cover - defensive
                seg.poisoned = True
            else:
                seg.tokens.update(("o", obj) for obj in chans)
        elif kind == EventKind.SLEEP:
            seg.tokens.add(_TIMER_TOKEN)
        elif kind == EventKind.GO_END:
            if event.gid == MAIN_GID:
                # Main ending flips the run into drain mode.
                seg.poisoned = True
            else:
                seg.tokens.add(("g", event.gid))
        elif kind in _INERT_KINDS:
            pass
        else:
            # Timer fires, faults, panics, net.*, unknown kinds.
            seg.poisoned = True

    # -- internals ---------------------------------------------------------

    def _flush(self) -> None:
        if self._current is not None:
            self._segments.append(self._current)
            self._current = None
