"""Leak reporting helpers.

Turns a finished :class:`~repro.runtime.runtime.RunResult` into structured
:class:`~repro.detect.report.LeakReport` records, and sweeps seeds to
estimate how often a nondeterministic leak manifests (the simulator's
analogue of the paper's "run the buggy program a lot of times").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence

from ..runtime.goroutine import Goroutine
from ..runtime.runtime import RunResult, run
from .report import LeakReport


def leak_reports(result: RunResult) -> List[LeakReport]:
    """Extract one report per goroutine stuck at the end of the run.

    ``result.leaked`` already covers every terminal flavor of "stuck":
    post-drain leaks, all-asleep deadlocks, external-wait hangs, and
    blocked-at-timeout suspects.
    """
    stuck: Sequence[Goroutine] = result.leaked
    return [
        LeakReport(
            gid=g.gid,
            name=g.name,
            reason=g.block_reason or "unknown",
            creation_site=g.creation_site,
        )
        for g in stuck
    ]


def manifestation_rate(
    program: Callable,
    seeds: Iterable[int],
    manifests: Callable[[RunResult], bool],
    jobs: int = 1,
    **run_kwargs: Any,
) -> float:
    """Fraction of seeds under which ``manifests(result)`` is true.

    ``jobs > 1`` fans the sweep across worker processes
    (:mod:`repro.parallel`); the predicate runs worker-side against each
    full result, and the rate is identical to a serial sweep.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("manifestation_rate needs at least one seed")
    if jobs > 1:
        from ..parallel import sweep_seeds

        summaries = sweep_seeds(program, seed_list, jobs=jobs,
                                predicate=manifests, **run_kwargs)
        hits = sum(1 for s in summaries if s.manifested)
    else:
        hits = sum(1 for seed in seed_list
                   if manifests(run(program, seed=seed, **run_kwargs)))
    return hits / len(seed_list)


def _stuck(result: Any) -> bool:
    return result.status in ("deadlock", "hang") or bool(result.leaked)


def leaks_under_any_seed(program: Callable, seeds: Iterable[int],
                         jobs: int = 1, **run_kwargs: Any) -> bool:
    """True when some seed makes the program leak or deadlock.

    Serial sweeps stop at the first hit; with ``jobs > 1`` every seed runs
    (speculatively, in parallel) and the verdicts are OR-ed — same answer,
    different wall-clock trade-off.
    """
    if jobs > 1:
        from ..parallel import sweep_seeds

        summaries = sweep_seeds(program, seeds, jobs=jobs,
                                predicate=_stuck, **run_kwargs)
        return any(s.manifested for s in summaries)
    for seed in seeds:
        if _stuck(run(program, seed=seed, **run_kwargs)):
            return True
    return False
