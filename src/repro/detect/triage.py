"""The shared triage verdict: one report shape for every screening tier.

Both cheap screens — ``repro predict --triage`` (offline analysis of one
recorded run) and ``repro static --triage`` (no execution at all) — feed
the same consumer: the dynamic sweep queue.  A clean verdict skips the
expensive ``explore_systematic`` pass; a dirty one redirects it toward
the families that fired.  Keeping the verdict type here, in the detector
layer both tiers already depend on, lets the queue consume either stream
without caring which screen produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class TriageVerdict:
    """Screening outcome for one target.

    ``source`` names the screen that produced the verdict ("predict" or
    "static"); ``report`` carries the tier-specific evidence (a
    :class:`~repro.predict.report.PredictReport` or a
    :class:`~repro.static.model.StaticReport`) and is deliberately
    excluded from ``repr`` and the dict form.
    """

    target: str
    needs_search: bool
    families: Tuple[str, ...]            # which predictors/checkers fired
    report: Any = field(repr=False, default=None)
    seed: int = 0
    source: str = "predict"

    @property
    def reason(self) -> str:
        if not self.needs_search:
            if self.source == "static":
                return "no findings from the static screen"
            return "no predictions from the recorded trace"
        verb = "flagged" if self.source == "static" else "predicted"
        return f"{verb}: " + ", ".join(self.families)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "needs_search": self.needs_search,
            "families": list(self.families),
            "seed": self.seed,
            "source": self.source,
            "reason": self.reason,
        }

    def __str__(self) -> str:
        verdict = "needs schedule search" if self.needs_search \
            else "skip schedule search"
        return f"{self.target}: {verdict} ({self.reason})"


def order_sweep_queue(verdicts: Sequence[TriageVerdict]) -> List[TriageVerdict]:
    """Sweep-queue order: flagged targets first, clean ones last.

    Stable within each class, so the caller's own priority (e.g. corpus
    order) survives as the tie-break.  The queue consumer may then run
    the flagged prefix eagerly and defer — or skip — the clean suffix.
    """
    flagged = [v for v in verdicts if v.needs_search]
    clean = [v for v in verdicts if not v.needs_search]
    return flagged + clean
