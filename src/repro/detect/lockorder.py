"""Lock-order (potential-deadlock) detector.

Implication 4 of the paper: "future research should focus on building
novel blocking bug detection techniques, for example, with a combination
of static and dynamic blocking pattern detection."  This detector is the
classic dynamic half (lockdep/GoodLock): it builds a lock-acquisition
order graph from the trace — an edge ``A -> B`` whenever some goroutine
acquires ``B`` while holding ``A`` — and reports every cycle as a
*potential* deadlock, even in runs where the timing never lined up and
nothing actually blocked.

The companion ablation shows the point: on the AB/BA kernel the built-in
detector needs the deadlock to *happen*; the lock-order detector flags
the inversion on every schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..runtime.trace import EventKind, TraceEvent

_REQUEST = {EventKind.MU_REQUEST, EventKind.RW_REQUEST}
_ACQUIRE = {EventKind.MU_LOCK, EventKind.RW_LOCK}
_RELEASE = {EventKind.MU_UNLOCK, EventKind.RW_UNLOCK}


@dataclass(frozen=True)
class LockOrderViolation:
    """A cycle in the lock acquisition-order graph."""

    cycle: Tuple[int, ...]          # lock object ids, in cycle order
    witnesses: Tuple[Tuple[int, int, int], ...]  # (holder gid, held, wanted)

    def __str__(self) -> str:
        chain = " -> ".join(f"lock#{obj}" for obj in self.cycle)
        return (f"POTENTIAL DEADLOCK: lock-order cycle {chain} -> "
                f"lock#{self.cycle[0]} "
                f"({len(self.witnesses)} witnessed inversions)")


class LockOrderDetector:
    """Observer building the acquisition-order graph for one run.

    Attach to :func:`repro.run` like the other detectors::

        detector = LockOrderDetector()
        run(program, observers=[detector])
        for violation in detector.violations: ...

    Write locks on RWMutexes participate; read locks are ignored (shared
    acquisitions do not establish an exclusive order, and Go's
    writer-priority read-lock deadlock is a different shape caught by the
    leak detector).
    """

    name = "lock-order-detector"

    def __init__(self) -> None:
        #: edges[(a, b)] -> witness (gid, a, b) for "b acquired holding a".
        self.edges: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        self._held: Dict[int, List[int]] = {}  # gid -> stack of held locks
        self.violations: List[LockOrderViolation] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------

    def attach(self, rt) -> None:
        rt.sched.trace.subscribe(self.on_event)

    def finish(self, result) -> None:
        self.analyze()
        setattr(result, "lock_order_violations", list(self.violations))

    @property
    def detected(self) -> bool:
        if not self._finalized:
            self.analyze()
        return bool(self.violations)

    # ------------------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        if event.kind in _REQUEST:
            # Edges come from *requests*: a goroutine parked forever on its
            # second lock still witnesses the inversion (lockdep-style).
            held = self._held.get(event.gid, ())
            for prior in held:
                if prior != event.obj:
                    self.edges.setdefault(
                        (prior, event.obj), (event.gid, prior, event.obj)
                    )
        elif event.kind in _ACQUIRE:
            self._held.setdefault(event.gid, []).append(event.obj)
        elif event.kind in _RELEASE:
            held = self._held.get(event.gid)
            if held and event.obj in held:
                # Locks can be released out of order (and by other
                # goroutines, which we conservatively ignore here).
                held.remove(event.obj)

    # ------------------------------------------------------------------
    # Cycle detection
    # ------------------------------------------------------------------

    def analyze(self) -> List[LockOrderViolation]:
        """Find elementary cycles in the order graph (small graphs: DFS)."""
        self._finalized = True
        self.violations = []
        graph: Dict[int, Set[int]] = {}
        for a, b in self.edges:
            graph.setdefault(a, set()).add(b)

        seen_cycles: Set[FrozenSet[int]] = set()

        def dfs(start: int, node: int, path: List[int]) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt == start and len(path) > 1:
                    key = frozenset(path)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        witnesses = []
                        cycle = tuple(path)
                        for i, a in enumerate(cycle):
                            b = cycle[(i + 1) % len(cycle)]
                            witnesses.append(self.edges[(a, b)])
                        self.violations.append(
                            LockOrderViolation(cycle, tuple(witnesses))
                        )
                elif nxt not in path and nxt > start:
                    # Only explore nodes above `start` so each cycle is
                    # found once, from its smallest node.
                    dfs(start, nxt, path + [nxt])

        for start in sorted(graph):
            dfs(start, start, [start])
        return self.violations
