"""``context`` — request-scoped cancellation, deadlines and values.

Faithful to the behaviors the studied bugs depend on:

* ``Done()`` is a channel closed on cancellation; ``Background().Done()``
  is a nil channel (never ready in a select).
* ``WithCancel``/``WithTimeout`` under a cancellable parent attach a
  **watcher goroutine** that propagates the parent's cancellation — exactly
  the goroutine that leaks in Figure 6 when the only reference to the
  context (and its cancel function) is overwritten.  Calling the returned
  ``cancel`` releases it; never calling it leaks it, as in real Go.
* ``WithTimeout`` cancels with ``DEADLINE_EXCEEDED`` on the virtual clock.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

from ..chan.cases import recv

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class ContextError:
    """Sentinel error values, like ``context.Canceled``."""

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return f"context.{self.label}"


CANCELED = ContextError("Canceled")
DEADLINE_EXCEEDED = ContextError("DeadlineExceeded")


class Context:
    """Base context: no deadline, never cancelled, no values."""

    def __init__(self, rt: "Runtime"):
        self._rt = rt

    def done(self):
        """The cancellation channel; a nil channel when uncancellable."""
        return self._rt.nil_chan()

    def err(self) -> Optional[ContextError]:
        return None

    def value(self, key: Any) -> Any:
        return None

    def deadline(self) -> Tuple[Optional[float], bool]:
        return None, False

    def __repr__(self) -> str:
        return "context.Background"


class _CancelContext(Context):
    """A context with a Done channel and cancellation propagation."""

    def __init__(self, rt: "Runtime", parent: Context):
        super().__init__(rt)
        self._parent = parent
        self._done = rt.make_chan(0, name="ctx.done")
        self._err: Optional[ContextError] = None
        # Visible to the fault injector's cancellation storms.
        rt._cancel_contexts.append(self)

    def done(self):
        return self._done

    def err(self) -> Optional[ContextError]:
        return self._err

    def value(self, key: Any) -> Any:
        return self._parent.value(key)

    def deadline(self) -> Tuple[Optional[float], bool]:
        return self._parent.deadline()

    def cancel(self, err: ContextError = CANCELED) -> None:
        """Idempotent cancellation: closes Done exactly once."""
        if self._err is not None:
            return
        self._err = err
        self._done.close()

    def __repr__(self) -> str:
        state = repr(self._err) if self._err else "active"
        return f"<context.WithCancel {state}>"


class _TimeoutContext(_CancelContext):
    def __init__(self, rt: "Runtime", parent: Context, deadline_at: float):
        super().__init__(rt, parent)
        self._deadline_at = deadline_at
        self._timer_handle = rt.sched.clock.call_at(
            deadline_at, lambda: self.cancel(DEADLINE_EXCEEDED)
        )

    def deadline(self) -> Tuple[Optional[float], bool]:
        return self._deadline_at, True

    def cancel(self, err: ContextError = CANCELED) -> None:
        self._timer_handle.cancel()
        super().cancel(err)

    def __repr__(self) -> str:
        state = repr(self._err) if self._err else "active"
        return f"<context.WithTimeout deadline={self._deadline_at:g} {state}>"


class _ValueContext(Context):
    def __init__(self, rt: "Runtime", parent: Context, key: Any, val: Any):
        super().__init__(rt)
        self._parent = parent
        self._key = key
        self._val = val

    def done(self):
        return self._parent.done()

    def err(self) -> Optional[ContextError]:
        return self._parent.err()

    def value(self, key: Any) -> Any:
        if key == self._key:
            return self._val
        return self._parent.value(key)

    def deadline(self) -> Tuple[Optional[float], bool]:
        return self._parent.deadline()

    def __repr__(self) -> str:
        return f"<context.WithValue {self._key!r}>"


def background(rt: "Runtime") -> Context:
    """Root context, like ``context.Background()``."""
    return Context(rt)


def _attach_watcher(rt: "Runtime", parent: Context, child: _CancelContext) -> None:
    """Propagate parent cancellation to the child via a watcher goroutine.

    This goroutine is precisely the resource Figure 6's bug leaks: it lives
    until *either* context is done.
    """
    if isinstance(parent, Context) and type(parent) in (Context, _ValueContext):
        root = parent
        while isinstance(root, _ValueContext):
            root = root._parent
        if type(root) is Context:
            return  # uncancellable ancestry: nothing to watch

    def watch_parent_cancel():
        index, _value, _ok = rt.select(recv(parent.done()), recv(child.done()))
        if index == 0:
            err = parent.err() or CANCELED
            child.cancel(err)

    rt.go(watch_parent_cancel, name="context.watcher")


def with_cancel(rt: "Runtime", parent: Context) -> Tuple[_CancelContext, Callable[[], None]]:
    """Like ``context.WithCancel(parent)``: returns ``(ctx, cancel)``."""
    ctx = _CancelContext(rt, parent)
    _attach_watcher(rt, parent, ctx)

    def cancel() -> None:
        ctx.cancel(CANCELED)

    return ctx, cancel


def with_timeout(rt: "Runtime", parent: Context, timeout: float
                 ) -> Tuple[_TimeoutContext, Callable[[], None]]:
    """Like ``context.WithTimeout(parent, d)``: returns ``(ctx, cancel)``."""
    ctx = _TimeoutContext(rt, parent, rt.now() + max(timeout, 0.0))
    _attach_watcher(rt, parent, ctx)

    def cancel() -> None:
        ctx.cancel(CANCELED)

    return ctx, cancel


def with_value(rt: "Runtime", parent: Context, key: Any, val: Any) -> _ValueContext:
    """Like ``context.WithValue(parent, key, val)``."""
    return _ValueContext(rt, parent, key, val)
