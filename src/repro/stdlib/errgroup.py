"""``golang.org/x/sync/errgroup`` — structured goroutine groups.

The post-paper ecosystem's standard answer to several studied bug shapes:
it packages the WaitGroup-plus-first-error-plus-cancellation pattern that
kernels like the gRPC error-overwrite bug get wrong by hand.

Semantics, as in Go:

* ``group.go(fn)`` runs ``fn`` in a goroutine; ``fn`` reports failure by
  *returning* an error (any non-None value) or raising.
* ``group.wait()`` blocks until all started functions finished and returns
  the **first** error, if any.
* With a context (``with_context``), the first error cancels the group's
  context so siblings can stop early.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple, TYPE_CHECKING

from .context import CANCELED, Context

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class Group:
    """A collection of goroutines working on one task."""

    def __init__(self, rt: "Runtime", cancel: Optional[Callable[[], None]] = None):
        self._rt = rt
        self._wg = rt.waitgroup("errgroup")
        self._mu = rt.mutex("errgroup.err")
        self._err: Any = None
        self._cancel = cancel

    def go(self, fn: Callable[[], Any], name: Optional[str] = None) -> None:
        """Run ``fn`` in a goroutine; its return value is its error."""
        self._wg.add(1)

        def runner():
            try:
                err = fn()
            except Exception as exc:  # a raise is an error return
                err = exc
            if err is not None:
                self._record(err)
            self._wg.done()

        self._rt.go(runner, name=name or "errgroup.worker")

    def _record(self, err: Any) -> None:
        with self._mu:
            if self._err is None:
                self._err = err
                if self._cancel is not None:
                    self._cancel()

    def wait(self) -> Any:
        """Block for every started function; returns the first error."""
        self._wg.wait()
        if self._cancel is not None:
            self._cancel()
        with self._mu:
            return self._err


def new_group(rt: "Runtime") -> Group:
    """A plain group, like ``errgroup.Group{}``."""
    return Group(rt)


def with_context(rt: "Runtime", parent: Optional[Context] = None
                 ) -> Tuple[Group, Context]:
    """A group whose context is cancelled by the first error, like
    ``errgroup.WithContext(ctx)``."""
    if parent is None:
        parent = rt.background()
    ctx, cancel = rt.with_cancel(parent)
    return Group(rt, cancel=cancel), ctx
