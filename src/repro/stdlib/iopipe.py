"""``io.Pipe`` — a synchronous in-memory pipe.

Implemented the way Go implements it: a rendezvous over an unbuffered data
channel plus a ``done`` channel closed when either end is torn down.  The
blocking bug class it enables (4 of the paper's blocking bugs): a goroutine
stays blocked forever writing to — or reading from — a pipe nobody closes.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..chan.cases import recv, send

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class PipeError(Exception):
    """Raised on operations against a closed pipe, like ``io.ErrClosedPipe``."""


class EOF(Exception):
    """End of stream, like ``io.EOF``."""


class Pipe:
    """The shared pipe state; users hold :class:`PipeReader`/:class:`PipeWriter`."""

    def __init__(self, rt: "Runtime"):
        self._rt = rt
        self._data = rt.make_chan(0, name="pipe.data")
        self._done = rt.make_chan(0, name="pipe.done")
        self._err: Optional[Exception] = None
        self._write_closed = False
        self.reader = PipeReader(self)
        self.writer = PipeWriter(self)

    def _close(self, err: Optional[Exception]) -> None:
        if self._err is None:
            self._err = err or PipeError("io: read/write on closed pipe")
            self._done.close()


class PipeWriter:
    """The write end, like ``io.PipeWriter``."""

    def __init__(self, pipe: Pipe):
        self._pipe = pipe

    def write(self, data) -> int:
        """Write one chunk; blocks until the reader consumes it.

        Raises :class:`PipeError` (or the reader's close error) when the
        pipe was torn down.
        """
        pipe = self._pipe
        if pipe._write_closed:
            raise PipeError("io: write on closed pipe")
        if pipe._err is not None:
            raise pipe._err
        index, _value, _ok = pipe._rt.select(
            send(pipe._data, data),
            recv(pipe._done),
        )
        if index == 1:
            raise pipe._err or PipeError("io: write on closed pipe")
        return len(data) if hasattr(data, "__len__") else 1

    def close(self) -> None:
        """Close the write end: the reader sees EOF after draining."""
        pipe = self._pipe
        if pipe._write_closed:
            return
        pipe._write_closed = True
        pipe._data.close()

    def close_with_error(self, err: Exception) -> None:
        """Close and make the reader observe ``err``, like ``CloseWithError``."""
        pipe = self._pipe
        pipe._close(err)
        if not pipe._write_closed:
            pipe._write_closed = True
            pipe._data.close()


class PipeReader:
    """The read end, like ``io.PipeReader``."""

    def __init__(self, pipe: Pipe):
        self._pipe = pipe

    def read(self):
        """Read one chunk; blocks until a writer provides one.

        Raises :class:`EOF` when the writer closed cleanly, or the close
        error otherwise.
        """
        pipe = self._pipe
        if pipe._err is not None:
            raise pipe._err
        index, value, ok = pipe._rt.select(
            recv(pipe._data),
            recv(pipe._done),
        )
        if index == 1:
            raise pipe._err or PipeError("io: read on closed pipe")
        if not ok:
            raise EOF("EOF")
        return value

    def close(self) -> None:
        """Close the read end: blocked and future writes fail."""
        self._pipe._close(None)

    def close_with_error(self, err: Exception) -> None:
        self._pipe._close(err)
