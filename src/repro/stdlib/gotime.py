"""``time`` — timers and tickers on the virtual clock.

The subtlety behind Figure 12's bug is preserved: ``NewTimer(d)`` starts
counting down *at creation*, and ``NewTimer(0)`` delivers on ``timer.C``
essentially immediately, so code that creates a zero timer "just in case"
returns prematurely.  Timer delivery uses a capacity-1 channel with a
non-blocking send, exactly like Go's ``sendTime``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class Timer:
    """One-shot timer, like ``time.Timer``.  The channel is ``timer.c``."""

    def __init__(self, rt: "Runtime", duration: float):
        self._rt = rt
        self._sched = rt.sched
        #: Delivery channel (Go's ``timer.C``): capacity 1, receives the
        #: virtual fire time.
        self.c = rt.make_chan(1, name="timer.C")
        self._fired = False
        self._handle = self._arm(duration)

    def _arm(self, duration: float):
        return self._sched.clock.call_after(max(duration, 0.0), self._fire)

    def _fire(self) -> None:
        self._fired = True
        # Non-blocking send: if nobody drained the previous value, drop.
        self.c.poll_send(self._sched.clock.now, gid=0)

    def stop(self) -> bool:
        """Stop the timer, like ``timer.Stop()``.

        Returns False when the timer already fired — and, as in Go, does
        *not* drain ``timer.c``.
        """
        return self._handle.cancel()

    def reset(self, duration: float) -> bool:
        """Re-arm, like ``timer.Reset(d)``.

        Returns True when the timer was still active.  Carries Go's trap:
        a value from the previous expiry may still sit in ``timer.c``.
        """
        active = self._handle.cancel()
        self._fired = False
        self._handle = self._arm(duration)
        return active

    @property
    def fired(self) -> bool:
        return self._fired

    def __repr__(self) -> str:
        return f"<Timer fired={self._fired}>"


class Ticker:
    """Repeating ticker, like ``time.Ticker``.

    Delivery matches Go: capacity-1 channel, non-blocking send, so slow
    receivers *miss* ticks rather than queueing them.
    """

    def __init__(self, rt: "Runtime", interval: float):
        if interval <= 0:
            raise ValueError("non-positive interval for Ticker")
        self._rt = rt
        self._sched = rt.sched
        self.interval = interval
        self.c = rt.make_chan(1, name="ticker.C")
        self._stopped = False
        self._handle = self._sched.clock.call_after(interval, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.c.poll_send(self._sched.clock.now, gid=0)
        self._handle = self._sched.clock.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Stop, like ``ticker.Stop()``.  Does not close ``ticker.c``."""
        self._stopped = True
        self._handle.cancel()

    def reset(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("non-positive interval for Ticker")
        self.interval = interval
        self._handle.cancel()
        self._stopped = False
        self._handle = self._sched.clock.call_after(interval, self._tick)

    def __repr__(self) -> str:
        return f"<Ticker every {self.interval:g}s stopped={self._stopped}>"
