"""``testing`` — the miniature test harness whose ``T`` is a race magnet.

Three of the paper's non-blocking bugs are data races on a ``testing.T``
accessed both by the test function's goroutine and by goroutines it spawns
(Section 6.1.1, "Special libraries").  Our :class:`T` stores its state in
:class:`~repro.sync.shared.SharedVar`s so those races are visible to the
race detector, just as Go's ``-race`` instruments the real ``testing.T``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class T:
    """Per-test state handle, like ``*testing.T``."""

    def __init__(self, rt: "Runtime", name: str = "Test"):
        self._rt = rt
        self.name = name
        # Plain (racy) fields, as in Go's testing.T before its own locking.
        self._failed = rt.shared(f"{name}.failed", False)
        self._logs = rt.shared(f"{name}.logs", ())

    def log(self, message: str) -> None:
        """Append to the test log (a racy read-modify-write, as in the bugs)."""
        logs = self._logs.load()
        self._logs.store(logs + (message,))

    def errorf(self, message: str) -> None:
        """Record a failure, like ``t.Errorf``."""
        self.log(message)
        self._failed.store(True)

    def fatalf(self, message: str) -> None:
        """Record a failure and panic out of the test, like ``t.Fatalf``."""
        self.errorf(message)
        self._rt.panic(f"test fatal: {message}")

    def failed(self) -> bool:
        return bool(self._failed.load())

    @property
    def logs(self) -> tuple:
        return tuple(self._logs.peek())

    def __repr__(self) -> str:
        return f"<testing.T {self.name} failed={self._failed.peek()}>"


def run_test(rt: "Runtime", name: str, fn: Callable[["T"], None]) -> T:
    """Run ``fn(t)`` as a test body on the current goroutine."""
    t = T(rt, name)
    fn(t)
    return t
