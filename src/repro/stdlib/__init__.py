"""Go standard-library analogues: context, time, io.Pipe, testing."""

from .context import (
    CANCELED,
    DEADLINE_EXCEEDED,
    Context,
    ContextError,
    background,
    with_cancel,
    with_timeout,
    with_value,
)
from .errgroup import Group, new_group, with_context as errgroup_with_context
from .gotime import Ticker, Timer
from .iopipe import EOF, Pipe, PipeError, PipeReader, PipeWriter
from .testingpkg import T, run_test

__all__ = [
    "CANCELED",
    "DEADLINE_EXCEEDED",
    "Context",
    "ContextError",
    "EOF",
    "Group",
    "Pipe",
    "PipeError",
    "PipeReader",
    "PipeWriter",
    "T",
    "Ticker",
    "Timer",
    "background",
    "errgroup_with_context",
    "new_group",
    "run_test",
    "with_cancel",
    "with_timeout",
    "with_value",
]
