"""repro — reproduction of "Understanding Real-World Concurrency Bugs in Go".

A pure-Python, deterministic simulator of Go's concurrency model, an
executable corpus of the paper's bug patterns, reimplementations of the two
evaluated detectors, and the empirical-study pipeline that regenerates every
table and figure in the paper's evaluation.

Quickstart::

    from repro import run, recv, send

    def main(rt):
        ch = rt.make_chan()           # unbuffered channel
        rt.go(lambda: ch.send("hi"))  # goroutine
        print(ch.recv())

    result = run(main, seed=1)
    assert result.status == "ok"

See README.md for the full tour and DESIGN.md for the architecture.
"""

from .chan import Channel, NilChannel, recv, send
from .inject import Fault, FaultInjector, FaultPlan
from .observe import Observer, chrome_trace, chrome_trace_json, measure_overhead
from .parallel import RunSummary, sweep_seeds
from .runtime import (
    DeadlockError,
    EventKind,
    GoPanic,
    Goroutine,
    RunResult,
    Runtime,
    SimulatorError,
    StepLimitExceeded,
    Trace,
    TraceEvent,
    explore,
    run,
)
from .stdlib import CANCELED, DEADLINE_EXCEEDED, EOF, PipeError
from .sync import (
    AtomicInt,
    AtomicValue,
    Cond,
    Mutex,
    Once,
    RWMutex,
    SharedVar,
    WaitGroup,
)

__version__ = "1.0.0"

__all__ = [
    "AtomicInt",
    "AtomicValue",
    "CANCELED",
    "Channel",
    "Cond",
    "DEADLINE_EXCEEDED",
    "DeadlockError",
    "EOF",
    "EventKind",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "GoPanic",
    "Goroutine",
    "Mutex",
    "NilChannel",
    "Observer",
    "Once",
    "PipeError",
    "RWMutex",
    "RunResult",
    "RunSummary",
    "Runtime",
    "SharedVar",
    "SimulatorError",
    "StepLimitExceeded",
    "Trace",
    "TraceEvent",
    "WaitGroup",
    "chrome_trace",
    "chrome_trace_json",
    "explore",
    "measure_overhead",
    "recv",
    "run",
    "send",
    "sweep_seeds",
    "__version__",
]
