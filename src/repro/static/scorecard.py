"""The static scorecard: every kernel, both variants, zero executions.

Mirrors the predict-vs-dynamic scorecard from :mod:`repro.predict.report`
but scores against the ground-truth taxonomy labels in
:mod:`repro.dataset.labels` instead of recorded runs — the whole corpus
plus the mini-apps scans in well under a second, so the scorecard is
cheap enough to gate CI on.

Scoring: a kernel's *buggy* variant should be flagged (recall) and its
*fixed* variant should scan clean (precision) — except the pinned
:data:`~repro.dataset.labels.RACY_FIXED_KERNELS`, whose fixed variants
carry a dynamically confirmed residual race; flagging those is correct
and counts as a true positive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dataset.labels import KernelLabels, labels_for
from .engine import analyze_paths, analyze_program
from .model import StaticReport


@dataclass
class StaticScorecardRow:
    """Static verdicts for one kernel, scored against its labels."""

    kernel_id: str
    behavior: str
    subcause: str
    buggy_flagged: bool
    fixed_flagged: bool
    buggy_rules: Tuple[str, ...]
    fixed_rules: Tuple[str, ...]
    fixed_expected_clean: bool
    wall_ms: float
    buggy_report: Optional[StaticReport] = field(default=None, repr=False)
    fixed_report: Optional[StaticReport] = field(default=None, repr=False)

    @property
    def caught(self) -> bool:
        return self.buggy_flagged

    @property
    def fixed_ok(self) -> bool:
        """Did the fixed variant score as the labels demand?"""
        if self.fixed_expected_clean:
            return not self.fixed_flagged
        return self.fixed_flagged

    @property
    def verdict(self) -> str:
        if not self.buggy_flagged:
            return "missed"
        if not self.fixed_ok:
            return "caught/fixed-noisy"
        return "caught"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel_id": self.kernel_id,
            "behavior": self.behavior,
            "subcause": self.subcause,
            "buggy_flagged": self.buggy_flagged,
            "fixed_flagged": self.fixed_flagged,
            "buggy_rules": list(self.buggy_rules),
            "fixed_rules": list(self.fixed_rules),
            "fixed_expected_clean": self.fixed_expected_clean,
            "verdict": self.verdict,
            "wall_ms": round(self.wall_ms, 3),
        }


def score_kernel(kernel: Any) -> StaticScorecardRow:
    """Scan both variants of one kernel and score them."""
    labels = labels_for(kernel.meta)
    t0 = time.perf_counter()
    buggy = analyze_program(kernel, variant="buggy")
    fixed = analyze_program(kernel, variant="fixed")
    wall_ms = (time.perf_counter() - t0) * 1000
    return StaticScorecardRow(
        kernel_id=labels.kernel_id,
        behavior=labels.behavior,
        subcause=labels.subcause,
        buggy_flagged=buggy.found,
        fixed_flagged=fixed.found,
        buggy_rules=tuple(buggy.rules()),
        fixed_rules=tuple(fixed.rules()),
        fixed_expected_clean=labels.fixed_expected_clean,
        wall_ms=wall_ms,
        buggy_report=buggy,
        fixed_report=fixed,
    )


def build_static_scorecard(kernels: Optional[Sequence[Any]] = None
                           ) -> List[StaticScorecardRow]:
    """Score the whole corpus (or a subset)."""
    if kernels is None:
        from ..bugs.registry import all_kernels
        kernels = all_kernels()
    return [score_kernel(k) for k in kernels]


def static_recall(rows: Sequence[StaticScorecardRow]) -> float:
    """Fraction of buggy variants some checker flagged."""
    if not rows:
        return 0.0
    return sum(1 for r in rows if r.buggy_flagged) / len(rows)


def static_precision(rows: Sequence[StaticScorecardRow]) -> float:
    """True findings over all flagged variant scans.

    Every flagged buggy variant is a true positive; a flagged fixed
    variant is a false positive unless the labels say the fixed variant
    genuinely still races.
    """
    tp = sum(1 for r in rows if r.buggy_flagged)
    tp += sum(1 for r in rows
              if r.fixed_flagged and not r.fixed_expected_clean)
    fp = sum(1 for r in rows
             if r.fixed_flagged and r.fixed_expected_clean)
    if tp + fp == 0:
        return 1.0
    return tp / (tp + fp)


def checker_timings(rows: Sequence[StaticScorecardRow]
                    ) -> Dict[str, float]:
    """Total per-stage wall time (seconds) across every scan."""
    totals: Dict[str, float] = {}
    for r in rows:
        for rep in (r.buggy_report, r.fixed_report):
            if rep is None:
                continue
            for stage, secs in rep.timings.items():
                totals[stage] = totals.get(stage, 0.0) + secs
    return totals


def scorecard_dict(rows: Sequence[StaticScorecardRow],
                   apps_report: Optional[StaticReport] = None
                   ) -> Dict[str, Any]:
    """The JSON shape the CLI and bench emit."""
    out: Dict[str, Any] = {
        "kernels": len(rows),
        "caught": sum(1 for r in rows if r.buggy_flagged),
        "missed": [r.kernel_id for r in rows if not r.buggy_flagged],
        "false_positives": [r.kernel_id for r in rows
                            if r.fixed_flagged and r.fixed_expected_clean],
        "recall": round(static_recall(rows), 4),
        "precision": round(static_precision(rows), 4),
        "wall_ms_total": round(sum(r.wall_ms for r in rows), 3),
        "checker_seconds": {k: round(v, 6)
                            for k, v in checker_timings(rows).items()},
        "rows": [r.to_dict() for r in rows],
    }
    if apps_report is not None:
        out["apps"] = {
            "target": apps_report.target,
            "clean": not apps_report.found,
            "findings": len(apps_report.findings),
            "wall_ms": round(apps_report.wall_s * 1000, 3),
        }
    return out


def scan_apps() -> StaticReport:
    """Module-mode scan of the six mini-apps."""
    from pathlib import Path

    import repro.apps as apps_pkg

    return analyze_paths([Path(apps_pkg.__file__).parent])


def render_static_scorecard(rows: Sequence[StaticScorecardRow],
                            apps_report: Optional[StaticReport] = None
                            ) -> str:
    from ..study.tables import render

    table_rows = []
    for r in rows:
        table_rows.append([
            r.kernel_id,
            r.behavior,
            "yes" if r.buggy_flagged else "MISS",
            ",".join(r.buggy_rules) or "-",
            ("clean" if not r.fixed_flagged
             else ("known-racy" if not r.fixed_expected_clean else "FP")),
            f"{r.wall_ms:.1f}",
        ])
    table = render(
        ["kernel", "behavior", "buggy", "rules", "fixed", "ms"],
        table_rows,
        title="static scorecard (ground truth: repro.dataset.labels)")
    lines = [table, ""]
    lines.append(f"recall    {static_recall(rows):.3f}  "
                 f"({sum(1 for r in rows if r.buggy_flagged)}/{len(rows)} "
                 "buggy variants flagged)")
    lines.append(f"precision {static_precision(rows):.3f}")
    lines.append(f"wall      {sum(r.wall_ms for r in rows):.0f} ms over "
                 f"{2 * len(rows)} scans")
    if apps_report is not None:
        verdict = "clean" if not apps_report.found else \
            f"{len(apps_report.findings)} findings"
        lines.append(f"mini-apps {verdict} "
                     f"({apps_report.wall_s * 1000:.0f} ms, module mode)")
    return "\n".join(lines)
