"""The summary IR the static checkers consume.

The abstract interpreter (:mod:`repro.static.interp`) reduces a kernel's
source to a :class:`ProgramModel`: one :class:`ThreadModel` per spawned
goroutine (plus main), each holding the set of executable *paths* the
interpreter explored, each path an ordered list of :class:`Op` records —
lock acquires/releases, channel operations, waitgroup deltas, spawns —
annotated with the lockset held at that point and a multiplicity flag
for ops inside unbounded loops.

Everything here is deliberately plain data: the checkers
(:mod:`.lockgraph`, :mod:`.chanshape`, :mod:`.sharedrace`) are pure
functions over this model and never touch the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Multiplicity markers: ``"1"`` = executes at most once per run of the
#: path, ``"*"`` = sits inside a loop the interpreter did not unroll.
ONCE = "1"
MANY = "*"


class AbstractObj:
    """One runtime object the interpreter tracked (mutex, chan, wg, ...).

    ``kind`` is one of: mutex, rwmutex, wg, cond, once, shared, atomic,
    chan, ctx, cancel, timer, ticker, pipe_r, pipe_w, lib, instance.
    """

    __slots__ = ("kind", "name", "oid", "capacity", "nil", "timer_duration",
                 "is_timer", "is_ticker", "is_done", "attrs", "values",
                 "cancel_called", "auto_cancel", "line", "peer")

    def __init__(self, kind: str, name: str, oid: int, line: int = 0):
        self.kind = kind
        self.name = name
        self.oid = oid
        self.line = line
        self.capacity: Optional[int] = None   # channels
        self.nil = False                      # nil channel
        self.timer_duration = None            # Const duration for timers
        self.is_timer = False                 # chan is a timer/after channel
        self.is_ticker = False
        self.is_done = False                  # chan is some ctx.done()
        self.attrs: Dict[str, object] = {}    # instances, timers (.c)
        self.values: Dict[object, object] = {}  # ctx value store
        self.cancel_called = False            # cancel handles
        self.auto_cancel = False              # with_timeout cancels itself
        self.peer = None                      # pipe_r <-> pipe_w

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name}#{self.oid}>"


@dataclass
class Op:
    """One abstract operation on one abstract object."""

    kind: str                      # acquire/release/send/recv/... (see doc)
    obj: Optional[AbstractObj]
    line: int
    #: Locks held when the op executes: ((mutex_obj, "w"|"r"), ...).
    lockset: Tuple[Tuple[AbstractObj, str], ...] = ()
    mult: str = ONCE
    in_once: bool = False
    mode: str = "w"                # acquire/release mode
    delta: Optional[int] = None    # wg.add delta / timer duration
    blocking: bool = True
    #: select only: ((case_kind, chan_obj), ...) and default presence.
    arms: Tuple[Tuple[str, AbstractObj], ...] = ()
    has_default: bool = False
    detail: str = ""               # spawn target key, lib method name, ...

    def holds(self, obj: AbstractObj) -> bool:
        return any(mu is obj for mu, _ in self.lockset)

    def __repr__(self) -> str:
        tgt = self.obj.name if self.obj is not None else self.detail
        locks = "{" + ",".join(f"{mu.name}/{m}" for mu, m in self.lockset) + "}"
        star = "*" if self.mult == MANY else ""
        return f"{self.kind}{star}({tgt})@{self.line}{locks}"


@dataclass
class Path:
    """One explored control-flow path through a thread body."""

    ops: List[Op] = field(default_factory=list)
    returned: bool = False

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)


@dataclass
class ThreadModel:
    """All explored paths of one goroutine."""

    key: str                       # stable id: "<fn>@<line>#<occurrence>"
    name: str
    paths: List[Path] = field(default_factory=list)
    mult: str = ONCE               # spawned inside an unbounded loop?
    parent_key: Optional[str] = None
    conditional: bool = False      # spawned on some but not all paths

    @property
    def is_main(self) -> bool:
        return self.parent_key is None

    def ops(self) -> Iterator[Tuple[int, int, Op]]:
        """Yield (path_index, op_index, op) over every path."""
        for pi, path in enumerate(self.paths):
            for oi, op in enumerate(path.ops):
                yield pi, oi, op


@dataclass
class ProgramModel:
    """The whole-program summary: every thread, every path, every op."""

    target: str
    threads: List[ThreadModel] = field(default_factory=list)
    objects: Dict[int, AbstractObj] = field(default_factory=dict)

    @property
    def main(self) -> ThreadModel:
        return self.threads[0]

    def thread(self, key: str) -> Optional[ThreadModel]:
        for t in self.threads:
            if t.key == key:
                return t
        return None

    def all_ops(self) -> Iterator[Tuple[ThreadModel, int, int, Op]]:
        for t in self.threads:
            for pi, oi, op in t.ops():
                yield t, pi, oi, op

    def objects_of_kind(self, *kinds: str) -> List[AbstractObj]:
        return [o for o in self.objects.values() if o.kind in kinds]

    # -- queries the checkers share -----------------------------------

    def ops_on(self, obj: AbstractObj, *kinds: str
               ) -> List[Tuple[ThreadModel, int, int, Op]]:
        out = []
        for t, pi, oi, op in self.all_ops():
            if op.obj is obj and (not kinds or op.kind in kinds):
                out.append((t, pi, oi, op))
        return out

    def potential_count(self, obj: AbstractObj, kinds: Tuple[str, ...],
                        exclude: Optional[ThreadModel] = None) -> float:
        """Upper bound on how often ops of ``kinds`` hit ``obj``.

        Per thread the max over its paths (an op that *may* execute
        counts), ``inf`` for ops inside unbounded loops or in threads
        spawned inside them.  Select arms count: an arm ``(kind, obj)``
        contributes like a direct op of that kind.
        """
        total = 0.0
        for t in self.threads:
            if t is exclude:
                continue
            best = 0.0
            for path in t.paths:
                here = 0.0
                for op in path.ops:
                    hit = (op.obj is obj and op.kind in kinds)
                    if not hit and op.kind == "select":
                        hit = any(arm_obj is obj and arm_kind in kinds
                                  for arm_kind, arm_obj in op.arms)
                    if hit:
                        here = float("inf") if (op.mult == MANY
                                                or t.mult == MANY) \
                            else here + 1
                best = max(best, here)
            total += best
        return total

    def spawn_index(self, parent: ThreadModel, path: Path,
                    child_key: str) -> Optional[int]:
        """Index of the op in ``path`` that spawned ``child_key``."""
        for i, op in enumerate(path.ops):
            if op.kind == "spawn" and op.detail == child_key:
                return i
        return None
