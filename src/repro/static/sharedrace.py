"""Static lockset race detection over shared cells.

The non-blocking half of the taxonomy: two accesses to the same shared
cell from different goroutines, at least one a write, with disjoint
locksets and no ordering the summary model can prove.  The
happens-before fragment modelled here is deliberately small — spawn
edges, WaitGroup done->wait edges and unambiguous channel send->recv
edges — mirroring what the corpus's fixed variants actually rely on.

Also hosts two shape rules that need the same machinery: the
order-violation pattern (a consumer loads a cell that only a racing
producer initialises) and the split-critical-section pattern (a load
and a dependent store of one cell in two separate critical sections).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ir import MANY, AbstractObj, Op, Path, ProgramModel, ThreadModel
from .model import StaticFinding

_CHECKER = "sharedrace"

#: cap on paths considered per thread when pairing accesses
_PATH_CAP = 8

_WRITES = ("store", "rmw", "lib_use")
_READS = ("load",)


def _finding(rule: str, message: str, obj: Optional[AbstractObj],
             line: int, function: str = "") -> StaticFinding:
    return StaticFinding(checker=_CHECKER, rule=rule, message=message,
                         obj=obj.name if obj is not None else "",
                         function=function, line=line)


class _Access:
    __slots__ = ("thread", "path_i", "op_i", "op")

    def __init__(self, thread: ThreadModel, path_i: int, op_i: int,
                 op: Op):
        self.thread = thread
        self.path_i = path_i
        self.op_i = op_i
        self.op = op

    @property
    def path(self) -> Path:
        return self.thread.paths[self.path_i]

    @property
    def is_write(self) -> bool:
        return self.op.kind in _WRITES


def check(model: ProgramModel) -> List[StaticFinding]:
    hb = _HB(model)
    findings: List[StaticFinding] = []
    for obj in model.objects_of_kind("shared", "lib"):
        accesses = _collect(model, obj)
        race = _first_race(model, hb, obj, accesses)
        if race is not None:
            findings.append(race)
        split = _split_critical_section(model, obj, accesses)
        if split is not None:
            findings.append(split)
    for obj in model.objects_of_kind("atomic"):
        ov = _order_violation(model, hb, obj)
        if ov is not None:
            findings.append(ov)
    return findings


def _collect(model: ProgramModel, obj: AbstractObj) -> List[_Access]:
    accesses = []
    for t in model.threads:
        for pi, path in enumerate(t.paths[:_PATH_CAP]):
            for oi, op in enumerate(path.ops):
                if op.obj is obj and op.kind in _WRITES + _READS:
                    accesses.append(_Access(t, pi, oi, op))
    return accesses


# -- the core lockset rule ---------------------------------------------

def _first_race(model: ProgramModel, hb: "_HB", obj: AbstractObj,
                accesses: List[_Access]) -> Optional[StaticFinding]:
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.thread is b.thread:
                continue
            if not (a.is_write or b.is_write):
                continue
            if a.op.in_once and b.op.in_once:
                continue
            if _common_exclusive_lock(a.op, b.op):
                continue
            if hb.ordered(a, b) or hb.ordered(b, a):
                continue
            kind_a, kind_b = a.op.kind, b.op.kind
            if obj.kind == "lib":
                msg = (f"{obj.name}.{a.op.detail or kind_a} in "
                       f"{a.thread.name} races "
                       f"{obj.name}.{b.op.detail or kind_b} in "
                       f"{b.thread.name}: the library is not "
                       "goroutine-safe")
            else:
                msg = (f"{kind_a} of {obj.name} in {a.thread.name} "
                       f"(line {a.op.line}) races {kind_b} in "
                       f"{b.thread.name} (line {b.op.line}) with "
                       "disjoint locksets")
            return _finding("lockset-race", msg, obj, a.op.line,
                            a.thread.name)
    return None


def _common_exclusive_lock(a: Op, b: Op) -> bool:
    """A shared mutex held by both, not merely two read-locks."""
    modes_a = {mu.oid: m for mu, m in a.lockset}
    for mu, m_b in b.lockset:
        m_a = modes_a.get(mu.oid)
        if m_a is None:
            continue
        if m_a == "r" and m_b == "r":
            continue  # two readers do not exclude each other
        return True
    return False


# -- the happens-before fragment ---------------------------------------

class _HB:
    """exists-a-path ordering queries between two accesses."""

    def __init__(self, model: ProgramModel):
        self.model = model
        self._parents: Dict[str, Optional[str]] = {
            t.key: t.parent_key for t in model.threads}

    def ordered(self, a: _Access, b: _Access) -> bool:
        return (self._spawn_edge(a, b) or self._wg_edge(a, b)
                or self._chan_edge(a, b))

    # spawner ops before the spawn happen-before everything in the child
    def _spawn_edge(self, a: _Access, b: _Access) -> bool:
        if a.op.mult == MANY:
            # a looped access and a looped spawn interleave: a later
            # iteration's access races an earlier iteration's child
            return False
        chain = []
        cur: Optional[str] = b.thread.key
        while cur is not None:
            parent = self._parents.get(cur)
            chain.append((parent, cur))
            cur = parent
        for parent_key, child_key in chain:
            if parent_key == a.thread.key:
                si = self.model.spawn_index(a.thread, a.path, child_key)
                return si is not None and a.op_i < si
        return False

    # ops before wg.done happen-before ops after the matching wg.wait
    def _wg_edge(self, a: _Access, b: _Access) -> bool:
        done_wgs = {op.obj.oid for op in a.path.ops[a.op_i:]
                    if op.kind == "wg_done"}
        if not done_wgs:
            return False
        return any(op.kind == "wg_wait" and op.obj.oid in done_wgs
                   for op in b.path.ops[:b.op_i])

    # ops before a send/close happen-before ops after the matching recv.
    # Positional within-path order stands in for per-iteration pairing:
    # in a loop, each iteration's accesses precede that iteration's send.
    def _chan_edge(self, a: _Access, b: _Access) -> bool:
        sends_after = [op for op in a.path.ops[a.op_i:]
                       if op.kind in ("send", "try_send", "close")]
        for sop in sends_after:
            chan = sop.obj
            if chan is None:
                continue
            # a close orders only the recv that observes it — never the
            # per-iteration recvs a range loop did before the close
            rkinds = ("recv", "recv_ok") if sop.kind == "close" \
                else ("recv", "recv_ok", "range")
            for rop in b.path.ops[:b.op_i]:
                if rop.obj is chan and rop.kind in rkinds:
                    return True
        return False


# -- order violation on lazily initialised cells -----------------------

def _order_violation(model: ProgramModel, hb: "_HB",
                     obj: AbstractObj) -> Optional[StaticFinding]:
    """A consumer reads a cell whose only initialisation races it.

    Atomics silence the data-race rule but not the ordering bug: when a
    cell starts as None, one goroutine stores the real value and another
    loads it with no happens-before edge, the load can observe the
    uninitialised None (the paper's order-violation class).  The
    double-checked-locking fix — re-checking under a lock shared with
    the writer — suppresses the report.
    """
    init = obj.attrs.get("init")
    init_is_none = init is None or (
        getattr(init, "value", object()) is None)
    if not init_is_none:
        return None
    stores = [a for a in _collect(model, obj)
              if a.op.kind == "store" and a.op.detail != "none"]
    loads = [a for a in _collect(model, obj) if a.op.kind == "load"]
    for s in stores:
        for l in loads:
            if s.thread is l.thread:
                continue
            if hb.ordered(s, l) or hb.ordered(l, s):
                continue
            if _common_lock_recheck(s, loads):
                continue
            return _finding(
                "order-violation",
                f"{l.thread.name} loads {obj.name} concurrently with "
                f"its initialising store in {s.thread.name}: no "
                "ordering guarantees the value is published first",
                obj, l.op.line, l.thread.name)
    return None


def _common_lock_recheck(store: _Access, loads: Sequence[_Access]) -> bool:
    """Double-checked locking: some load shares a lock with the store."""
    store_locks = {mu.oid for mu, _m in store.op.lockset}
    if not store_locks:
        return False
    return any({mu.oid for mu, _m in l.op.lockset} & store_locks
               for l in loads)


# -- split critical sections -------------------------------------------

def _split_critical_section(model: ProgramModel, obj: AbstractObj,
                            accesses: List[_Access]
                            ) -> Optional[StaticFinding]:
    """Load in one critical section, dependent store in a later one.

    A read-modify-write split across two lock regions is atomic in
    neither: a peer writer can slip between them and its update is
    lost.  Requires a concurrent writer to exist, so the single-writer
    snapshot patterns stay clean.
    """
    for a in accesses:
        if a.op.kind != "load" or not a.op.lockset:
            continue
        path = a.path
        for oi in range(a.op_i + 1, len(path.ops)):
            op = path.ops[oi]
            if op.obj is obj and op.kind == "store" and op.lockset:
                common = {mu.oid for mu, _m in a.op.lockset} & \
                         {mu.oid for mu, _m in op.lockset}
                if not common:
                    continue
                released = any(
                    mid.kind == "release" and mid.obj.oid in common
                    for mid in path.ops[a.op_i:oi])
                if not released:
                    continue
                peer_writes = any(
                    b.thread is not a.thread and b.is_write
                    for b in accesses)
                if peer_writes:
                    return _finding(
                        "split-critical-section",
                        f"{a.thread.name} loads {obj.name} in one "
                        "critical section and stores the derived value "
                        "in a later one: concurrent updates between "
                        "the two sections are lost",
                        obj, op.line, a.thread.name)
    return None
