"""Lock-discipline checks over the interprocedural summary model.

Implements the classic static lock analyses from the paper's blocking
taxonomy (Section 5): double acquisition, read-lock upgrades, forgotten
and unmatched unlocks, ABBA cycles in the interprocedural lock-order
graph, and the Mutex-x-channel interactions the paper singles out
(Figure 7's send-under-lock and wait-under-lock) where every partner
operation is gated behind the very lock the blocked goroutine holds.

All rules are pure functions over :class:`~repro.static.ir.ProgramModel`;
locksets were computed by the abstract interpreter, so each rule is a
query, not a traversal of source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ir import MANY, AbstractObj, Op, Path, ProgramModel, ThreadModel
from .model import StaticFinding

_CHECKER = "lockgraph"

_SEND_PARTNERS = ("recv", "recv_ok", "range", "try_recv")
_RECV_PARTNERS = ("send", "try_send", "close")


def _finding(rule: str, message: str, obj: Optional[AbstractObj],
             line: int, function: str = "") -> StaticFinding:
    return StaticFinding(checker=_CHECKER, rule=rule, message=message,
                         obj=obj.name if obj is not None else "",
                         function=function, line=line)


def check(model: ProgramModel) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    findings += _relock_rules(model)
    findings += _forgotten_unlock(model)
    findings += _abba_cycles(model)
    findings += _chan_under_lock(model)
    findings += _wait_under_lock(model)
    return findings


# -- double locks, upgrades, unmatched unlocks -------------------------

def _relock_rules(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for t, _pi, _oi, op in model.all_ops():
        if op.kind == "acquire":
            held_modes = [m for mu, m in op.lockset if mu is op.obj]
            if not held_modes:
                continue
            if op.mode == "w" and "r" in held_modes \
                    and op.obj.kind == "rwmutex":
                out.append(_finding(
                    "rlock-upgrade",
                    f"write-lock of {op.obj.name} while holding its "
                    "read lock: upgrades self-deadlock",
                    op.obj, op.line, t.name))
            elif op.mode == "r" and set(held_modes) == {"r"}:
                if _has_writer_elsewhere(model, op.obj, t):
                    out.append(_finding(
                        "rlock-reentrant",
                        f"re-entrant read-lock of {op.obj.name} with a "
                        "concurrent writer: the waiting writer blocks "
                        "the inner RLock",
                        op.obj, op.line, t.name))
            else:
                out.append(_finding(
                    "double-lock",
                    f"{op.obj.name} acquired while already held by "
                    "this goroutine",
                    op.obj, op.line, t.name))
        elif op.kind == "release" and op.detail == "unmatched":
            out.append(_finding(
                "unlock-without-lock",
                f"unlock of {op.obj.name} with no matching lock on "
                "this path",
                op.obj, op.line, t.name))
    return out


def _has_writer_elsewhere(model: ProgramModel, mu: AbstractObj,
                          reader: ThreadModel) -> bool:
    for t, _pi, _oi, op in model.all_ops():
        if t is not reader and op.kind == "acquire" \
                and op.obj is mu and op.mode == "w":
            return True
    return False


# -- forgotten unlock --------------------------------------------------

def _forgotten_unlock(model: ProgramModel) -> List[StaticFinding]:
    """A path that ends still holding an explicitly taken lock."""
    out: List[StaticFinding] = []
    flagged: Set[Tuple[str, int]] = set()
    for t in model.threads:
        for path in t.paths:
            held: List[Tuple[AbstractObj, str, int]] = []
            for op in path.ops:
                if op.kind == "acquire":
                    held.append((op.obj, op.mode, op.line))
                elif op.kind == "release" and op.detail != "unmatched":
                    for i in range(len(held) - 1, -1, -1):
                        if held[i][0] is op.obj and held[i][1] == op.mode:
                            del held[i]
                            break
            for obj, _mode, line in held:
                key = (t.key, obj.oid)
                if key in flagged:
                    continue
                flagged.add(key)
                out.append(_finding(
                    "forgotten-unlock",
                    f"path through {t.name} ends still holding "
                    f"{obj.name}",
                    obj, line, t.name))
    return out


# -- ABBA lock-order cycles --------------------------------------------

def _abba_cycles(model: ProgramModel) -> List[StaticFinding]:
    """Cross-thread cycles in the held-lock -> acquired-lock graph."""
    # edges[(A,B)] = set of thread keys that acquire B while holding A
    edges: Dict[Tuple[int, int], Set[str]] = {}
    info: Dict[Tuple[int, int], Tuple[AbstractObj, AbstractObj, int]] = {}
    for t, _pi, _oi, op in model.all_ops():
        if op.kind != "acquire":
            continue
        for held, _mode in op.lockset:
            if held is op.obj:
                continue
            key = (held.oid, op.obj.oid)
            edges.setdefault(key, set()).add(t.key)
            info.setdefault(key, (held, op.obj, op.line))
    out: List[StaticFinding] = []
    seen: Set[Tuple[int, int]] = set()
    for (a, b), threads_ab in edges.items():
        back = edges.get((b, a))
        if not back:
            continue
        pair = (min(a, b), max(a, b))
        if pair in seen:
            continue
        # a genuine ABBA needs the two orders in *different* goroutines
        if not any(t1 != t2 for t1 in threads_ab for t2 in back):
            continue
        seen.add(pair)
        held, acq, line = info[(a, b)]
        out.append(_finding(
            "abba-cycle",
            f"lock order cycle: {held.name} -> {acq.name} in one "
            f"goroutine, {acq.name} -> {held.name} in another",
            acq, line))
    return out


# -- channel ops while holding a lock the partner needs (Figure 7) -----

def _chan_under_lock(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for t, _pi, _oi, op in model.all_ops():
        if op.kind not in ("send", "recv", "recv_ok", "range"):
            continue
        if not op.blocking or not op.lockset or op.obj is None:
            continue
        chan = op.obj
        if chan.is_timer or chan.is_ticker or chan.is_done:
            continue
        want = _SEND_PARTNERS if op.kind == "send" else ("send", "try_send")
        want_arm = "recv" if op.kind == "send" else "send"
        # buffered sends with headroom do not block
        if op.kind == "send" and chan.capacity and \
                model.potential_count(chan, ("send", "try_send")) \
                <= chan.capacity:
            continue
        for mu, _mode in op.lockset:
            partners = _partner_positions(model, chan, want, want_arm,
                                          exclude=t)
            if not partners:
                continue  # no-partner rules live in chanshape
            if all(_gated_behind(mu, path, idx, p_op)
                   for (_t2, path, idx, p_op) in partners):
                out.append(_finding(
                    "chan-under-lock",
                    f"blocking {op.kind} on {chan.name} while holding "
                    f"{mu.name}, but every partner first needs "
                    f"{mu.name}",
                    chan, op.line, t.name))
                break
    return out


def _partner_positions(model: ProgramModel, chan: AbstractObj,
                       kinds: Tuple[str, ...], arm_kind: str,
                       exclude: ThreadModel
                       ) -> List[Tuple[ThreadModel, Path, int, Op]]:
    positions = []
    for t in model.threads:
        if t is exclude:
            continue
        for path in t.paths:
            for i, op in enumerate(path.ops):
                if op.obj is chan and op.kind in kinds:
                    positions.append((t, path, i, op))
                elif op.kind == "select" and any(
                        ak == arm_kind and ac is chan
                        for ak, ac in op.arms):
                    positions.append((t, path, i, op))
    return positions


def _gated_behind(mu: AbstractObj, path: Path, idx: int, op: Op) -> bool:
    """Must the partner acquire ``mu`` before it can reach ``op``?

    True when some acquire of ``mu`` appears at or before ``idx`` on the
    partner's path — even if released again, the partner cannot get
    *past that point* while the flagged goroutine holds ``mu``, so it
    never reaches the partner op.
    """
    for i in range(idx + 1):
        prior = path.ops[i]
        if prior.kind == "acquire" and prior.obj is mu:
            return True
    return False


# -- wg.Wait while holding a lock the workers need ---------------------

def _wait_under_lock(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for t, pi, oi, op in model.all_ops():
        if op.kind != "wg_wait" or not op.lockset:
            continue
        wg = op.obj
        wpath = t.paths[pi]
        for mu, _mode in op.lockset:
            contributors = []
            for t2 in model.threads:
                if t2 is t:
                    continue
                for path in t2.paths:
                    for i, dop in enumerate(path.ops):
                        if dop.kind == "wg_done" and dop.obj is wg:
                            contributors.append((t2, path, i, dop))
            if not contributors or not all(
                    _gated_behind(mu, path, i, dop)
                    for (_t2, path, i, dop) in contributors):
                continue
            # the wait only blocks if the counter can be positive while
            # a contributor is stuck at the gate: either the waiter
            # added before waiting, or a contributor adds after its
            # gate acquire and then meets another gate before done
            if not (_adds_before(wpath, oi, wg)
                    or any(_pending_at_gate(mu, path, i, wg)
                           for (_t2, path, i, _dop) in contributors)):
                continue
            out.append(_finding(
                "wait-under-lock",
                f"wg.wait on {wg.name} while holding {mu.name}, "
                f"but every wg.done first needs {mu.name}",
                wg, op.line, t.name))
            break
    return out


def _adds_before(path: Path, idx: int, wg: AbstractObj) -> bool:
    return any(op.kind == "wg_add" and op.obj is wg
               and (op.delta is None or op.delta > 0)
               for op in path.ops[:idx])


def _pending_at_gate(mu: AbstractObj, path: Path, done_idx: int,
                     wg: AbstractObj) -> bool:
    """Can this contributor block at a ``mu`` acquire with its own add
    already counted but its done still ahead?"""
    for g in range(done_idx):
        op = path.ops[g]
        if op.kind != "acquire" or op.obj is not mu:
            continue
        adds = sum(1 for p in path.ops[:g]
                   if p.kind == "wg_add" and p.obj is wg)
        dones = sum(1 for p in path.ops[:g]
                    if p.kind == "wg_done" and p.obj is wg)
        if adds > dones:
            return True
    return False
