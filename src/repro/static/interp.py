"""Abstract interpretation of kernel source into the summary IR.

The corpus convention makes whole-program analysis tractable: every
kernel is a class whose ``buggy``/``fixed`` staticmethods call a shared
``_program(rt, <flag>)`` with *literal constant* flags.  The interpreter
exploits that — it propagates constants through calls, folds branches on
them, and thereby *specializes* the program to the variant under
analysis, exactly like a compiler would.  What it cannot decide (a
comparison on a runtime value) forks the path; what it cannot bound (a
``while True`` loop, a ``range`` over an unknown count) it walks once
and marks every op inside with ``mult="*"``.

The output is a :class:`~repro.static.ir.ProgramModel`: one thread per
``rt.go`` spawn (unrolled loop iterations spawn distinct threads, so
per-thread constant arguments survive), each op annotated with the held
lockset.  No kernel code is ever executed.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, List, Optional, Tuple

from .ir import MANY, ONCE, AbstractObj, Op, Path, ProgramModel, ThreadModel

STATE_CAP = 64          # explored paths per thread body
UNROLL_CAP = 16         # literal-loop unrolling bound
CALL_DEPTH_CAP = 12


class _Unknown:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<?>"


UNKNOWN = _Unknown()


class Const:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Const({self.value!r})"


class RT:
    """The ``rt`` parameter: the runtime API sentinel."""

    def __repr__(self):
        return "<rt>"


class RtMethod:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class FuncVal:
    __slots__ = ("node", "env", "name", "self_obj")

    def __init__(self, node, env, name, self_obj=None):
        self.node = node          # FunctionDef or Lambda
        self.env = env
        self.name = name
        self.self_obj = self_obj


class ClassVal:
    __slots__ = ("name", "methods", "env")

    def __init__(self, name, methods, env):
        self.name = name
        self.methods = methods    # name -> FunctionDef node
        self.env = env


class ClassRef:
    """Reference to the kernel class itself (constants + staticmethods)."""

    __slots__ = ("consts", "methods")

    def __init__(self, consts, methods):
        self.consts = consts
        self.methods = methods


class BoundMethod:
    __slots__ = ("obj", "name")

    def __init__(self, obj, name):
        self.obj = obj
        self.name = name


class CaseCtor:
    __slots__ = ("kind",)

    def __init__(self, kind):
        self.kind = kind


class CaseVal:
    __slots__ = ("kind", "chan")

    def __init__(self, kind, chan):
        self.kind = kind
        self.chan = chan


class TupleVal:
    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)


class RLocker:
    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class Env:
    __slots__ = ("vars", "parent")

    def __init__(self, parent=None):
        self.vars: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name):
        env = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return None

    def bind(self, name, value):
        self.vars[name] = value


class State:
    """One path-in-progress: its ops, lockset and control flow."""

    __slots__ = ("ops", "locks", "flow", "mult_depth", "once_depth",
                 "recv_idx", "retval")

    def __init__(self):
        self.ops: List[Op] = []
        self.locks: Tuple[Tuple[AbstractObj, str], ...] = ()
        self.flow = "next"        # next | return | break | continue | raise
        self.mult_depth = 0
        self.once_depth = 0
        self.recv_idx: Dict[int, int] = {}
        self.retval: Any = None

    def fork(self) -> "State":
        st = State.__new__(State)
        st.ops = list(self.ops)
        st.locks = self.locks
        st.flow = self.flow
        st.mult_depth = self.mult_depth
        st.once_depth = self.once_depth
        st.recv_idx = dict(self.recv_idx)
        st.retval = self.retval
        return st


def _const(value) -> bool:
    return isinstance(value, Const)


class StaticInterp:
    """Interpret one kernel class into a :class:`ProgramModel`."""

    def __init__(self, kernel_cls):
        self.kernel_cls = kernel_cls
        source = textwrap.dedent(inspect.getsource(
            kernel_cls if isinstance(kernel_cls, type) else type(kernel_cls)))
        tree = ast.parse(source)
        self.class_node = next(n for n in tree.body
                               if isinstance(n, ast.ClassDef))
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.consts: Dict[str, Any] = {}
        for node in self.class_node.body:
            if isinstance(node, ast.FunctionDef):
                self.methods[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                try:
                    self.consts[node.targets[0].id] = \
                        Const(ast.literal_eval(node.value))
                except (ValueError, SyntaxError):
                    pass

    # -- top level ----------------------------------------------------

    def analyze(self, variant: str = "buggy") -> ProgramModel:
        self._oid = 0
        self._objects: Dict[int, AbstractObj] = {}
        self._chan_values: Dict[int, List[Any]] = {}
        self._pending: List[Tuple[str, FuncVal, tuple, str, str, str]] = []
        self._spawned_keys = set()
        self._depth = 0
        self._class_ref = ClassRef(self.consts, self.methods)

        model = ProgramModel(target=variant)
        entry = self.methods.get(variant)
        if entry is None:
            raise ValueError(f"kernel has no {variant!r} method")

        env = Env()
        env.bind(self.class_node.name, self._class_ref)
        fn = FuncVal(entry, env, variant)

        main = self._run_thread("main", fn, (RT(),), None, ONCE, "main")
        model.threads.append(main)

        cursor = 0
        while cursor < len(self._pending):
            key, fval, args, parent, mult, name = self._pending[cursor]
            cursor += 1
            if len(model.threads) > 64:
                break
            model.threads.append(
                self._run_thread(key, fval, args, parent, mult, name))
        model.objects = self._objects
        return model

    def _run_thread(self, key, fval, args, parent, mult, name) -> ThreadModel:
        st = State()
        if mult == MANY:
            st.mult_depth = 1
        self._cur_thread_key = key
        results = self._apply(fval, list(args), {}, st, 0)
        thread = ThreadModel(key=key, name=name, mult=mult, parent_key=parent)
        for end_st, _val in results[:STATE_CAP]:
            thread.paths.append(Path(ops=end_st.ops,
                                     returned=end_st.flow in ("next",
                                                              "return")))
        if not thread.paths:
            thread.paths.append(Path())
        return thread

    # -- object factory -----------------------------------------------

    def _new_obj(self, kind, name, line=0) -> AbstractObj:
        self._oid += 1
        obj = AbstractObj(kind, name or f"{kind}#{self._oid}", self._oid,
                          line)
        self._objects[obj.oid] = obj
        return obj

    # -- statements ----------------------------------------------------

    def _exec_block(self, stmts, states: List[State]) -> List[State]:
        for stmt in stmts:
            nxt: List[State] = []
            for st in states:
                if st.flow != "next":
                    nxt.append(st)
                else:
                    nxt.extend(self._exec_stmt(stmt, st))
            states = nxt[:STATE_CAP]
        return states

    def _exec_stmt(self, stmt, st: State) -> List[State]:
        if isinstance(stmt, ast.Expr):
            return [s for s, _ in self._eval(stmt.value, st)]
        if isinstance(stmt, ast.Assign):
            out = []
            for s, val in self._eval(stmt.value, st):
                for target in stmt.targets:
                    self._bind_target(target, val, s)
                out.append(s)
            return out
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return [st]
            out = []
            for s, val in self._eval(stmt.value, st):
                self._bind_target(stmt.target, val, s)
                out.append(s)
            return out
        if isinstance(stmt, ast.AugAssign):
            out = []
            for s, cur in self._eval(stmt.target, st):
                for s2, inc in self._eval(stmt.value, s):
                    val = UNKNOWN
                    if _const(cur) and _const(inc):
                        try:
                            val = Const(self._fold_binop(
                                stmt.op, cur.value, inc.value))
                        except Exception:
                            val = UNKNOWN
                    self._bind_target(stmt.target, val, s2)
                    out.append(s2)
            return out
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                st.flow = "return"
                st.retval = Const(None)
                return [st]
            out = []
            for s, val in self._eval(stmt.value, st):
                s.flow = "return"
                s.retval = val
                out.append(s)
            return out
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, st)
        if isinstance(stmt, ast.While):
            return self._exec_while(stmt, st)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt, st)
        if isinstance(stmt, ast.With):
            return self._exec_with(stmt, st)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, st)
        if isinstance(stmt, ast.FunctionDef):
            env = self._cur_env
            env.bind(stmt.name, FuncVal(stmt, env, stmt.name))
            return [st]
        if isinstance(stmt, ast.ClassDef):
            methods = {n.name: n for n in stmt.body
                       if isinstance(n, ast.FunctionDef)}
            self._cur_env.bind(stmt.name,
                               ClassVal(stmt.name, methods, self._cur_env))
            return [st]
        if isinstance(stmt, ast.Break):
            st.flow = "break"
            return [st]
        if isinstance(stmt, ast.Continue):
            st.flow = "continue"
            return [st]
        if isinstance(stmt, ast.Raise):
            st.flow = "raise"
            return [st]
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Import, ast.ImportFrom, ast.Assert,
                             ast.Delete)):
            return [st]
        return [st]

    def _exec_if(self, stmt, st: State) -> List[State]:
        out = []
        for s, cond in self._eval(stmt.test, st):
            truth = self._truth(cond)
            if truth is True:
                out.extend(self._exec_block(stmt.body, [s]))
            elif truth is False:
                out.extend(self._exec_block(stmt.orelse, [s]))
            else:
                out.extend(self._exec_block(stmt.body, [s.fork()]))
                out.extend(self._exec_block(stmt.orelse, [s]))
        return out

    def _exec_while(self, stmt, st: State) -> List[State]:
        out = []
        for s, cond in self._eval(stmt.test, st):
            truth = self._truth(cond)
            if truth is False:
                out.append(s)
                continue
            body = s if truth is True else s.fork()
            body.mult_depth += 1
            ends = self._exec_block(stmt.body, [body])
            for e in ends:
                e.mult_depth = max(0, e.mult_depth - 1)
                if e.flow in ("break", "continue"):
                    e.flow = "next"
                out.append(e)
            if truth is not True:
                out.append(s)       # zero-iteration path
        return out

    def _exec_for(self, stmt, st: State) -> List[State]:
        out = []
        for s, iterable in self._eval(stmt.iter, st):
            items = None
            if _const(iterable):
                v = iterable.value
                if isinstance(v, (list, tuple, str, range)):
                    seq = list(v)
                    if len(seq) <= UNROLL_CAP:
                        items = [Const(x) for x in seq]
            elif isinstance(iterable, TupleVal) and \
                    len(iterable.items) <= UNROLL_CAP:
                items = list(iterable.items)

            if items is not None:
                states = [s]
                broke: List[State] = []
                for item in items:
                    nxt: List[State] = []
                    for cur in states:
                        if cur.flow != "next":
                            (broke if cur.flow == "break"
                             else nxt).append(cur)
                            continue
                        self._bind_target(stmt.target, item, cur)
                        for e in self._exec_block(stmt.body, [cur]):
                            if e.flow == "continue":
                                e.flow = "next"
                            if e.flow == "break":
                                e.flow = "next"
                                broke.append(e)
                            else:
                                nxt.append(e)
                    states = nxt[:STATE_CAP]
                for e in states + broke:
                    if e.flow == "break":
                        e.flow = "next"
                    out.append(e)
                continue

            if isinstance(iterable, AbstractObj) and iterable.kind == "chan":
                self._record(s, Op("range", iterable, stmt.lineno,
                                   lockset=s.locks,
                                   mult=self._mult(s),
                                   in_once=s.once_depth > 0))
                sent = self._chan_values.get(iterable.oid, [])
                self._bind_target(stmt.target,
                                  sent[0] if sent else UNKNOWN, s)
            else:
                self._bind_target(stmt.target, UNKNOWN, s)
            s.mult_depth += 1
            for e in self._exec_block(stmt.body, [s]):
                e.mult_depth = max(0, e.mult_depth - 1)
                if e.flow in ("break", "continue"):
                    e.flow = "next"
                out.append(e)
        return out

    def _exec_with(self, stmt, st: State) -> List[State]:
        states = [st]
        acquired: List[Tuple[AbstractObj, str]] = []
        for item in stmt.items:
            nxt = []
            for s in states:
                for s2, ctx in self._eval(item.context_expr, s):
                    lock = self._as_lock(ctx)
                    if lock is not None:
                        obj, mode = lock
                        self._acquire(s2, obj, mode, stmt.lineno)
                        if (obj, mode) not in acquired:
                            acquired.append((obj, mode))
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars,
                                          ctx if lock is None else UNKNOWN,
                                          s2)
                    nxt.append(s2)
            states = nxt
        ends = self._exec_block(stmt.body, states)
        for e in ends:
            for obj, mode in reversed(acquired):
                self._release(e, obj, mode, stmt.lineno)
        return ends

    def _exec_try(self, stmt, st: State) -> List[State]:
        pre = st.fork()
        ends = self._exec_block(stmt.body, [st])
        ok = [e for e in ends if e.flow != "raise"]
        if stmt.handlers:
            for handler in stmt.handlers:
                ok.extend(self._exec_block(handler.body, [pre.fork()]))
        else:
            ok.extend(e for e in ends if e.flow == "raise")
        if stmt.orelse:
            nxt = []
            for e in ok:
                if e.flow == "next":
                    nxt.extend(self._exec_block(stmt.orelse, [e]))
                else:
                    nxt.append(e)
            ok = nxt
        if stmt.finalbody:
            fin = []
            for e in ok:
                flow, e.flow = e.flow, "next"
                for f in self._exec_block(stmt.finalbody, [e]):
                    if f.flow == "next":
                        f.flow = flow
                    fin.append(f)
            ok = fin
        return ok[:STATE_CAP]

    # -- helpers -------------------------------------------------------

    def _as_lock(self, value) -> Optional[Tuple[AbstractObj, str]]:
        if isinstance(value, AbstractObj) and value.kind in ("mutex",
                                                            "rwmutex"):
            return (value, "w")
        if isinstance(value, RLocker):
            return (value.mutex, "r")
        return None

    def _mult(self, st: State) -> str:
        return MANY if st.mult_depth > 0 else ONCE

    def _record(self, st: State, op: Op) -> None:
        st.ops.append(op)

    def _op(self, st: State, kind, obj, line, **kw) -> Op:
        op = Op(kind, obj, line, lockset=st.locks, mult=self._mult(st),
                in_once=st.once_depth > 0, **kw)
        self._record(st, op)
        return op

    def _acquire(self, st, obj, mode, line):
        self._op(st, "acquire", obj, line, mode=mode)
        st.locks = st.locks + ((obj, mode),)

    def _release(self, st, obj, mode, line):
        locks = list(st.locks)
        for i in range(len(locks) - 1, -1, -1):
            if locks[i][0] is obj and locks[i][1] == mode:
                del locks[i]
                st.locks = tuple(locks)
                self._op(st, "release", obj, line, mode=mode)
                return
        self._op(st, "release", obj, line, mode=mode, detail="unmatched")

    def _truth(self, value) -> Optional[bool]:
        if _const(value):
            return bool(value.value)
        if isinstance(value, (AbstractObj, FuncVal, ClassVal, TupleVal)):
            return True
        return None

    def _bind_target(self, target, value, st: State) -> None:
        if isinstance(target, ast.Name):
            self._cur_env.bind(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = None
            if isinstance(value, TupleVal):
                items = value.items
            elif _const(value) and isinstance(value.value, (tuple, list)):
                items = tuple(Const(v) for v in value.value)
            for i, elt in enumerate(target.elts):
                item = items[i] if items is not None and i < len(items) \
                    else UNKNOWN
                self._bind_target(elt, item, st)
        elif isinstance(target, ast.Attribute):
            for s, base in self._eval(target.value, st):
                if isinstance(base, AbstractObj) and base.kind == "instance":
                    base.attrs[target.attr] = value
        # subscript targets etc.: ignored

    # -- expressions ---------------------------------------------------

    def _eval(self, node, st: State) -> List[Tuple[State, Any]]:
        try:
            return self._eval_inner(node, st)
        except RecursionError:
            return [(st, UNKNOWN)]

    def _eval_inner(self, node, st: State) -> List[Tuple[State, Any]]:
        if isinstance(node, ast.Constant):
            return [(st, Const(node.value))]
        if isinstance(node, ast.Name):
            val = self._cur_env.lookup(node.id)
            if val is None:
                if node.id in ("recv", "send"):
                    return [(st, CaseCtor(node.id))]
                return [(st, UNKNOWN)]
            return [(st, val)]
        if isinstance(node, ast.Attribute):
            out = []
            for s, base in self._eval(node.value, st):
                out.append((s, self._getattr(base, node.attr)))
            return out
        if isinstance(node, ast.Call):
            return self._eval_call(node, st)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, st)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(node, st)
        if isinstance(node, ast.UnaryOp):
            out = []
            for s, v in self._eval(node.operand, st):
                if _const(v):
                    try:
                        if isinstance(node.op, ast.Not):
                            out.append((s, Const(not v.value)))
                        elif isinstance(node.op, ast.USub):
                            out.append((s, Const(-v.value)))
                        else:
                            out.append((s, UNKNOWN))
                        continue
                    except Exception:
                        pass
                truth = self._truth(v)
                if isinstance(node.op, ast.Not) and truth is not None:
                    out.append((s, Const(not truth)))
                else:
                    out.append((s, UNKNOWN))
            return out
        if isinstance(node, ast.BinOp):
            out = []
            for s, left in self._eval(node.left, st):
                for s2, right in self._eval(node.right, s):
                    if _const(left) and _const(right):
                        try:
                            out.append((s2, Const(self._fold_binop(
                                node.op, left.value, right.value))))
                            continue
                        except Exception:
                            pass
                    out.append((s2, UNKNOWN))
            return out
        if isinstance(node, ast.IfExp):
            out = []
            for s, cond in self._eval(node.test, st):
                truth = self._truth(cond)
                if truth is True:
                    out.extend(self._eval(node.body, s))
                elif truth is False:
                    out.extend(self._eval(node.orelse, s))
                else:
                    out.extend(self._eval(node.body, s.fork()))
                    out.extend(self._eval(node.orelse, s))
            return out
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._eval_seq(node.elts, st)
        if isinstance(node, ast.Dict):
            try:
                return [(st, Const(ast.literal_eval(node)))]
            except (ValueError, SyntaxError):
                return [(st, UNKNOWN)]
        if isinstance(node, ast.Set):
            return [(st, UNKNOWN)]
        if isinstance(node, ast.Subscript):
            out = []
            for s, base in self._eval(node.value, st):
                for s2, idx in self._eval(node.slice, s):
                    val = UNKNOWN
                    if _const(idx):
                        if isinstance(base, TupleVal) and \
                                isinstance(idx.value, int) and \
                                0 <= idx.value < len(base.items):
                            val = base.items[idx.value]
                        elif _const(base):
                            try:
                                val = Const(base.value[idx.value])
                            except Exception:
                                val = UNKNOWN
                    out.append((s2, val))
            return out
        if isinstance(node, ast.Lambda):
            return [(st, FuncVal(node, self._cur_env, "<lambda>"))]
        if isinstance(node, ast.JoinedStr):
            parts = []
            s = st
            const = True
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                    continue
                results = self._eval(piece.value, s)
                s, v = results[0]
                if _const(v):
                    parts.append(str(v.value))
                else:
                    const = False
            return [(s, Const("".join(parts)) if const else UNKNOWN)]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # walk the element once so embedded ops are not lost
            for gen in node.generators:
                for s, _ in self._eval(gen.iter, st):
                    st = s
                self._bind_target(gen.target, UNKNOWN, st)
            elt = node.elt if not isinstance(node, ast.DictComp) else \
                node.value
            for s, _ in self._eval(elt, st):
                st = s
            return [(st, UNKNOWN)]
        if isinstance(node, ast.Starred):
            return self._eval(node.value, st)
        if isinstance(node, ast.Await):
            return self._eval(node.value, st)
        return [(st, UNKNOWN)]

    def _eval_seq(self, nodes, st: State) -> List[Tuple[State, Any]]:
        states_vals: List[Tuple[State, List[Any]]] = [(st, [])]
        for node in nodes:
            nxt = []
            for s, vals in states_vals:
                for s2, v in self._eval(node, s):
                    nxt.append((s2, vals + [v]))
            states_vals = nxt[:STATE_CAP]
        out = []
        for s, vals in states_vals:
            if all(_const(v) for v in vals):
                out.append((s, Const(tuple(v.value for v in vals))))
            else:
                out.append((s, TupleVal(vals)))
        return out

    def _fold_binop(self, op, a, b):
        import operator as _op

        table = {ast.Add: _op.add, ast.Sub: _op.sub, ast.Mult: _op.mul,
                 ast.Div: _op.truediv, ast.FloorDiv: _op.floordiv,
                 ast.Mod: _op.mod, ast.Pow: _op.pow}
        return table[type(op)](a, b)

    def _eval_compare(self, node, st: State) -> List[Tuple[State, Any]]:
        out = []
        for s, left in self._eval(node.left, st):
            vals = [left]
            s_cur = s
            for comp in node.comparators:
                results = self._eval(comp, s_cur)
                s_cur, v = results[0]
                vals.append(v)
            verdict: Optional[bool] = True
            for op, lv, rv in zip(node.ops, vals, vals[1:]):
                folded = self._fold_compare(op, lv, rv)
                if folded is None:
                    verdict = None
                    break
                if not folded:
                    verdict = False
                    break
            out.append((s_cur, Const(verdict) if verdict is not None
                        else UNKNOWN))
        return out

    def _fold_compare(self, op, left, right) -> Optional[bool]:
        if isinstance(op, (ast.Is, ast.IsNot)):
            neg = isinstance(op, ast.IsNot)
            if _const(left) and _const(right):
                return (left.value is right.value) != neg
            if isinstance(left, (AbstractObj, TupleVal, FuncVal)) and \
                    _const(right) and right.value is None:
                return neg
            if isinstance(right, (AbstractObj, TupleVal, FuncVal)) and \
                    _const(left) and left.value is None:
                return neg
            return None
        if _const(left) and _const(right):
            import operator as _op

            table = {ast.Eq: _op.eq, ast.NotEq: _op.ne, ast.Lt: _op.lt,
                     ast.LtE: _op.le, ast.Gt: _op.gt, ast.GtE: _op.ge}
            fn = table.get(type(op))
            if fn is not None:
                try:
                    return bool(fn(left.value, right.value))
                except Exception:
                    return None
            if isinstance(op, ast.In):
                try:
                    return left.value in right.value
                except Exception:
                    return None
            if isinstance(op, ast.NotIn):
                try:
                    return left.value not in right.value
                except Exception:
                    return None
        return None

    def _eval_boolop(self, node, st: State) -> List[Tuple[State, Any]]:
        is_and = isinstance(node.op, ast.And)
        states = [(st, None, False)]  # (state, value, decided)
        for value_node in node.values:
            nxt = []
            for s, val, decided in states:
                if decided:
                    nxt.append((s, val, True))
                    continue
                for s2, v in self._eval(value_node, s):
                    truth = self._truth(v)
                    if truth is None:
                        nxt.append((s2, UNKNOWN, True))
                    elif truth != is_and:     # short-circuit value
                        nxt.append((s2, v, True))
                    else:
                        nxt.append((s2, v, False))
            states = nxt[:STATE_CAP]
        return [(s, v if v is not None else UNKNOWN) for s, v, _ in states]

    # -- attribute / call dispatch ------------------------------------

    def _getattr(self, base, attr):
        if isinstance(base, RT):
            return RtMethod(attr)
        if isinstance(base, ClassRef):
            if attr in base.consts:
                return base.consts[attr]
            if attr in base.methods:
                env = Env()
                env.bind(self.class_node.name, self._class_ref)
                return FuncVal(base.methods[attr], env, attr)
            return UNKNOWN
        if isinstance(base, AbstractObj):
            if base.kind == "instance":
                if attr in base.attrs:
                    return base.attrs[attr]
                cls = base.attrs.get("__class__")
                if isinstance(cls, ClassVal) and attr in cls.methods:
                    return FuncVal(cls.methods[attr], cls.env, attr,
                                   self_obj=base)
                return UNKNOWN
            if base.kind in ("timer", "ticker") and attr == "c":
                return base.attrs["c"]
            return BoundMethod(base, attr)
        if isinstance(base, ClassVal):
            if attr in base.methods:
                return FuncVal(base.methods[attr], base.env, attr)
            return UNKNOWN
        return UNKNOWN

    def _eval_call(self, node, st: State) -> List[Tuple[State, Any]]:
        out = []
        for s, fn in self._eval(node.func, st):
            arg_sets: List[Tuple[State, List[Any]]] = [(s, [])]
            for arg in node.args:
                nxt = []
                for s2, vals in arg_sets:
                    for s3, v in self._eval(arg, s2):
                        nxt.append((s3, vals + [v]))
                arg_sets = nxt[:STATE_CAP]
            for s2, args in arg_sets:
                kwargs = {}
                s3 = s2
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    results = self._eval(kw.value, s3)
                    s3, v = results[0]
                    kwargs[kw.arg] = v
                out.extend(self._apply(fn, args, kwargs, s3, node.lineno,
                                       func_node=node.func))
        return out[:STATE_CAP]

    def _apply(self, fn, args, kwargs, st: State, line,
               func_node=None) -> List[Tuple[State, Any]]:
        if isinstance(fn, RtMethod):
            return self._apply_rt(fn.name, args, kwargs, st, line)
        if isinstance(fn, BoundMethod):
            return self._apply_method(fn.obj, fn.name, args, kwargs, st,
                                      line)
        if isinstance(fn, CaseCtor):
            chan = args[0] if args else UNKNOWN
            if isinstance(chan, AbstractObj):
                return [(st, CaseVal(fn.kind, chan))]
            return [(st, UNKNOWN)]
        if isinstance(fn, FuncVal):
            return self._call_func(fn, args, st, line, kwargs)
        if isinstance(fn, ClassVal):
            inst = self._new_obj("instance", fn.name, line)
            inst.attrs["__class__"] = fn
            init = fn.methods.get("__init__")
            results = [(st, None)]
            if init is not None:
                results = self._call_func(
                    FuncVal(init, fn.env, "__init__", self_obj=inst),
                    args, st, line, kwargs)
            return [(s, inst) for s, _ in results]
        if isinstance(fn, AbstractObj):
            if fn.kind == "cancel":
                # cancel handles are called directly: ``cancel()``
                fn.cancel_called = True
                self._op(st, "cancel", fn, line)
                return [(st, Const(None))]
            return [(st, UNKNOWN)]
        if isinstance(fn, _Unknown) or fn is None or _const(fn):
            # builtins reachable by bare name
            name = func_node.id if isinstance(func_node, ast.Name) else None
            return self._apply_builtin(name, args, kwargs, st, line)
        return [(st, UNKNOWN)]

    def _apply_builtin(self, name, args, kwargs, st, line):
        const_args = [a.value for a in args if _const(a)]
        all_const = len(const_args) == len(args)
        if name == "range" and all_const:
            try:
                return [(st, Const(tuple(range(*const_args))))]
            except Exception:
                return [(st, UNKNOWN)]
        if name == "len":
            if all_const and args:
                try:
                    return [(st, Const(len(const_args[0])))]
                except Exception:
                    return [(st, UNKNOWN)]
            if args and isinstance(args[0], TupleVal):
                return [(st, Const(len(args[0].items)))]
            return [(st, UNKNOWN)]
        if name in ("tuple", "list", "sorted", "set", "min", "max", "sum",
                    "abs", "bool", "int", "str", "float") and all_const:
            import builtins

            try:
                return [(st, Const(getattr(builtins, name)(*const_args)))]
            except Exception:
                return [(st, UNKNOWN)]
        if name is not None and args and isinstance(args[0], RT):
            # unresolved helper taking rt: model as an opaque shared
            # library object (e.g. testing.T) so races on it are visible
            return [(st, self._new_obj("lib", name, line))]
        return [(st, UNKNOWN)]

    def _call_func(self, fn: FuncVal, args, st: State, line,
                   kwargs=None) -> List[Tuple[State, Any]]:
        if self._depth >= CALL_DEPTH_CAP:
            return [(st, UNKNOWN)]
        env = Env(parent=fn.env)
        node = fn.node
        if isinstance(node, ast.Lambda):
            params = node.args
            body_is_expr = True
        else:
            params = node.args
            body_is_expr = False
        names = [a.arg for a in params.args]
        bound = list(args)
        if fn.self_obj is not None:
            bound = [fn.self_obj] + bound
        defaults = params.defaults
        for i, pname in enumerate(names):
            if i < len(bound):
                env.bind(pname, bound[i])
            else:
                di = i - (len(names) - len(defaults))
                if 0 <= di < len(defaults):
                    try:
                        env.bind(pname,
                                 Const(ast.literal_eval(defaults[di])))
                    except (ValueError, SyntaxError):
                        env.bind(pname, UNKNOWN)
                else:
                    env.bind(pname, UNKNOWN)
        if kwargs:
            for k, v in kwargs.items():
                env.bind(k, v)

        prev_env = self._cur_env
        prev_retval = st.retval
        st.retval = None
        self._cur_env = env
        self._depth += 1
        try:
            if body_is_expr:
                results = self._eval(node.body, st)
            else:
                ends = self._exec_block(node.body, [st])
                results = []
                for e in ends:
                    value = e.retval if e.flow == "return" and \
                        e.retval is not None else Const(None)
                    if e.flow == "return":
                        e.flow = "next"
                    e.retval = prev_retval
                    results.append((e, value))
        finally:
            self._depth -= 1
            self._cur_env = prev_env
        return results

    # -- the rt.* API --------------------------------------------------

    def _apply_rt(self, name, args, kwargs, st: State, line
                  ) -> List[Tuple[State, Any]]:
        def kwname(default=""):
            v = kwargs.get("name")
            if v is not None and _const(v):
                return str(v.value)
            if args and _const(args[0]) and isinstance(args[0].value, str):
                return args[0].value
            return default

        if name in ("mutex", "rwmutex"):
            return [(st, self._new_obj(name, kwname(), line))]
        if name == "waitgroup":
            return [(st, self._new_obj("wg", kwname(), line))]
        if name == "cond":
            return [(st, self._new_obj("cond", kwname(), line))]
        if name == "once":
            return [(st, self._new_obj("once", kwname(), line))]
        if name in ("shared", "atomic_int", "atomic_value"):
            kind = "shared" if name == "shared" else "atomic"
            obj = self._new_obj(kind, kwname(), line)
            init = None
            if name == "shared" and len(args) >= 2:
                init = args[1]
            elif name != "shared" and args:
                init = args[0]
            obj.attrs["init"] = init
            return [(st, obj)]
        if name == "make_chan":
            obj = self._new_obj("chan", kwname(""), line)
            cap = args[0] if args else kwargs.get("capacity")
            obj.capacity = cap.value if _const(cap) and \
                isinstance(cap.value, int) else (0 if cap is None else None)
            if not obj.name:
                obj.name = f"chan@{line}"
            return [(st, obj)]
        if name == "nil_chan":
            obj = self._new_obj("chan", f"nil@{line}", line)
            obj.nil = True
            return [(st, obj)]
        if name == "select":
            arms = []
            for a in args:
                if isinstance(a, CaseVal):
                    arms.append((a.kind, a.chan))
            default = kwargs.get("default")
            has_default = _const(default) and bool(default.value)
            self._op(st, "select", None, line, arms=tuple(arms),
                     has_default=bool(has_default))
            return [(st, TupleVal((UNKNOWN, UNKNOWN, UNKNOWN)))]
        if name == "go":
            return self._spawn(args, kwargs, st, line)
        if name == "pipe":
            pr = self._new_obj("pipe_r", f"pipe_r@{line}", line)
            pw = self._new_obj("pipe_w", f"pipe_w@{line}", line)
            pr.peer, pw.peer = pw, pr
            return [(st, TupleVal((pr, pw)))]
        if name in ("with_cancel", "with_timeout"):
            ctx = self._new_obj("ctx", f"ctx@{line}", line)
            cancel = self._new_obj("cancel", f"cancel@{line}", line)
            if name == "with_timeout":
                cancel.auto_cancel = True
                cancel.cancel_called = True
            ctx.attrs["cancel"] = cancel
            parent = args[0] if args else None
            if isinstance(parent, AbstractObj):
                ctx.values.update(parent.values)
                parent.attrs["used_as_parent"] = True
            return [(st, TupleVal((ctx, cancel)))]
        if name == "with_value":
            ctx = self._new_obj("ctx", f"ctx@{line}", line)
            parent = args[0] if args else None
            if isinstance(parent, AbstractObj):
                ctx.values.update(parent.values)
                parent.attrs["used_as_parent"] = True
            if len(args) >= 3 and _const(args[1]):
                ctx.values[args[1].value] = args[2]
            return [(st, ctx)]
        if name == "background":
            return [(st, self._new_obj("ctx", "background", line))]
        if name in ("new_timer", "after"):
            dur = args[0] if args else None
            chan = self._new_obj("chan", f"timer@{line}", line)
            chan.capacity = 1
            chan.is_timer = True
            chan.timer_duration = dur.value if _const(dur) else None
            self._op(st, "timer_new", chan, line,
                     delta=int(bool(chan.timer_duration)) if _const(dur)
                     else None)
            if name == "after":
                return [(st, chan)]
            timer = self._new_obj("timer", f"timer@{line}", line)
            timer.attrs["c"] = chan
            return [(st, timer)]
        if name == "new_ticker":
            chan = self._new_obj("chan", f"ticker@{line}", line)
            chan.capacity = 1
            chan.is_ticker = True
            ticker = self._new_obj("ticker", f"ticker@{line}", line)
            ticker.attrs["c"] = chan
            return [(st, ticker)]
        if name in ("sleep", "gosched"):
            return [(st, Const(None))]
        if name == "now":
            return [(st, UNKNOWN)]
        return [(st, UNKNOWN)]

    def _spawn(self, args, kwargs, st: State, line
               ) -> List[Tuple[State, Any]]:
        if not args:
            return [(st, Const(None))]
        fn = args[0]
        fn_args = tuple(args[1:])
        if not isinstance(fn, FuncVal):
            return [(st, Const(None))]
        occurrence = sum(1 for op in st.ops
                         if op.kind == "spawn" and op.line == line)
        fingerprint = ",".join(
            repr(a.value) if _const(a) else "?" for a in fn_args)
        key = f"{fn.name}@{line}#{occurrence}({fingerprint})"
        namearg = kwargs.get("name")
        display = namearg.value if _const(namearg) and \
            isinstance(namearg.value, str) else fn.name
        self._op(st, "spawn", None, line, detail=key)
        if key not in self._spawned_keys:
            self._spawned_keys.add(key)
            self._pending.append((key, fn, fn_args, self._cur_thread_key,
                                  self._mult(st), display))
        return [(st, Const(None))]

    # -- object method ops --------------------------------------------

    _WRITE_LIB = ("errorf", "error", "fatal", "fatalf", "log", "logf",
                  "fail", "skip", "append", "add", "write", "set")

    def _apply_method(self, obj: AbstractObj, meth, args, kwargs,
                      st: State, line) -> List[Tuple[State, Any]]:
        kind = obj.kind
        if kind in ("mutex", "rwmutex"):
            if meth == "lock":
                self._acquire(st, obj, "w", line)
            elif meth == "unlock":
                self._release(st, obj, "w", line)
            elif meth == "rlock":
                self._acquire(st, obj, "r", line)
            elif meth == "runlock":
                self._release(st, obj, "r", line)
            elif meth == "rlocker":
                return [(st, RLocker(obj))]
            return [(st, Const(None))]
        if kind == "chan":
            return self._apply_chan(obj, meth, args, st, line)
        if kind == "wg":
            if meth == "add":
                delta = args[0].value if args and _const(args[0]) and \
                    isinstance(args[0].value, int) else None
                self._op(st, "wg_add", obj, line, delta=delta)
            elif meth == "done":
                self._op(st, "wg_done", obj, line)
            elif meth == "wait":
                self._op(st, "wg_wait", obj, line)
            return [(st, Const(None))]
        if kind in ("shared", "atomic"):
            if meth == "load":
                self._op(st, "load", obj, line)
                return [(st, UNKNOWN)]
            if meth == "store":
                detail = "none" if args and _const(args[0]) and \
                    args[0].value is None else "value"
                self._op(st, "store", obj, line, detail=detail)
                return [(st, Const(None))]
            if meth in ("add", "incr", "update"):
                self._op(st, "rmw", obj, line)
                return [(st, UNKNOWN)]
            if meth in ("peek", "poke"):
                init = obj.attrs.get("init")
                return [(st, init if meth == "peek" and init is not None
                         else UNKNOWN)]
            return [(st, UNKNOWN)]
        if kind == "cond":
            if meth in ("wait", "signal", "broadcast"):
                self._op(st, f"cond_{meth}", obj, line)
            return [(st, Const(None))]
        if kind == "once":
            if meth == "do" and args:
                st.once_depth += 1
                try:
                    if isinstance(args[0], FuncVal):
                        results = self._call_func(args[0], [], st, line)
                    elif isinstance(args[0], BoundMethod):
                        results = self._apply_method(
                            args[0].obj, args[0].name, [], {}, st, line)
                    else:
                        results = [(st, UNKNOWN)]
                finally:
                    for s, _ in results:
                        s.once_depth = max(0, s.once_depth - 1)
                return [(s, Const(None)) for s, _ in results]
            return [(st, Const(None))]
        if kind in ("pipe_r", "pipe_w"):
            table = {"read": "pipe_read", "write": "pipe_write",
                     "close": "pipe_close"}
            if meth in table:
                self._op(st, table[meth], obj, line)
            return [(st, UNKNOWN if meth == "read" else Const(None))]
        if kind == "ctx":
            if meth == "done":
                if "done" not in obj.attrs:
                    chan = self._new_obj("chan", f"{obj.name}.done", line)
                    chan.capacity = 0
                    chan.is_done = True
                    obj.attrs["done"] = chan
                return [(st, obj.attrs["done"])]
            if meth == "value":
                if args and _const(args[0]):
                    return [(st, obj.values.get(args[0].value, UNKNOWN))]
                return [(st, UNKNOWN)]
            return [(st, UNKNOWN)]
        if kind == "cancel":
            obj.cancel_called = True
            self._op(st, "cancel", obj, line)
            return [(st, Const(None))]
        if kind in ("timer", "ticker"):
            return [(st, Const(None))]
        if kind == "lib":
            self._op(st, "lib_use", obj, line, detail=meth)
            return [(st, UNKNOWN)]
        if kind == "instance":
            member = self._getattr(obj, meth)
            if isinstance(member, FuncVal):
                return self._call_func(member, args, st, line, kwargs)
            if isinstance(member, AbstractObj):
                return [(st, member)]
            return [(st, UNKNOWN)]
        return [(st, UNKNOWN)]

    def _apply_chan(self, obj: AbstractObj, meth, args, st: State, line
                    ) -> List[Tuple[State, Any]]:
        if meth == "send":
            self._op(st, "send", obj, line)
            if args:
                self._chan_values.setdefault(obj.oid, []).append(args[0])
            return [(st, Const(None))]
        if meth in ("recv", "recv_ok"):
            self._op(st, meth, obj, line)
            sent = self._chan_values.get(obj.oid, [])
            idx = st.recv_idx.get(obj.oid, 0)
            st.recv_idx[obj.oid] = idx + 1
            val = sent[idx] if idx < len(sent) else UNKNOWN
            if meth == "recv_ok":
                return [(st, TupleVal((val, UNKNOWN)))]
            return [(st, val)]
        if meth in ("try_send", "try_recv"):
            self._op(st, meth, obj, line, blocking=False)
            if meth == "try_send" and args:
                self._chan_values.setdefault(obj.oid, []).append(args[0])
            return [(st, UNKNOWN)]
        if meth == "close":
            self._op(st, "close", obj, line)
            return [(st, Const(None))]
        if meth == "cap" or meth == "len":
            return [(st, UNKNOWN)]
        return [(st, UNKNOWN)]

    # current environment / thread key are tracked explicitly because the
    # statement and expression helpers all need them
    _cur_env: Env = Env()
    _cur_thread_key: str = "main"


_INTERP_CACHE: Dict[type, "StaticInterp"] = {}


def build_model(kernel_cls, variant: str = "buggy") -> ProgramModel:
    """Public entry: interpret one kernel variant into a ProgramModel.

    The parse (``StaticInterp.__init__``) is cached per class —
    ``analyze`` resets all per-run state, so both variants share it.
    """
    key = kernel_cls if isinstance(kernel_cls, type) else type(kernel_cls)
    interp = _INTERP_CACHE.get(key)
    if interp is None:
        interp = _INTERP_CACHE[key] = StaticInterp(kernel_cls)
    model = interp.analyze(variant)
    model.target = getattr(kernel_cls, "meta", None) and \
        f"{kernel_cls.meta.kernel_id} ({variant})" or variant
    return model
