"""``repro.static`` — the fourth detector family: no execution at all.

Section 7 of the paper observes that existing static analyses cover a
sliver of the taxonomy (a loop-capture scanner that "already discovered
a few new bugs").  This package grows that sliver into a tier: an
abstract interpreter (:mod:`.interp`) reduces each kernel to a
whole-program summary model (:mod:`.ir`), and pure checkers over that
model cover both halves of the study —

* :mod:`.lockgraph` — double locks, upgrades, forgotten unlocks,
  interprocedural ABBA cycles, and the Figure 7 channel/Mutex traps;
* :mod:`.chanshape` — sends with no receiver, receives with no sender,
  close discipline, the Figure 1 abandoned send, select shapes,
  WaitGroup/Cond/context/pipe/timer misuse;
* :mod:`.sharedrace` — lockset data races with a small happens-before
  fragment, order violations, split critical sections;
* :mod:`.capture` — the original syntactic loop-capture detector,
  folded in as a peer (and the whole of *module mode* for arbitrary
  source trees).

The scorecard (:mod:`.scorecard`) scores the corpus against the
ground-truth labels in :mod:`repro.dataset.labels`; the triage bridge
(:mod:`.triage`) feeds the shared sweep-queue verdict, so a static scan
can skip or redirect the expensive dynamic exploration tier.
"""

from .capture import check_file, check_paths, check_source
from .engine import (MODEL_CHECKERS, analyze_corpus, analyze_kernel,
                     analyze_paths, analyze_program)
from .interp import StaticInterp, build_model
from .ir import MANY, ONCE, AbstractObj, Op, Path, ProgramModel, ThreadModel
from .model import CHECKERS, StaticFinding, StaticReport, dedupe
from .scorecard import (StaticScorecardRow, build_static_scorecard,
                        checker_timings, render_static_scorecard,
                        scan_apps, score_kernel, scorecard_dict,
                        static_precision, static_recall)
from .triage import (TriageVerdict, order_sweep_queue, triage_kernel,
                     triage_report, triage_sweep)

__all__ = [
    "AbstractObj", "CHECKERS", "MANY", "MODEL_CHECKERS", "ONCE", "Op",
    "Path", "ProgramModel", "StaticFinding", "StaticInterp",
    "StaticReport", "StaticScorecardRow", "ThreadModel", "TriageVerdict",
    "analyze_corpus", "analyze_kernel", "analyze_paths",
    "analyze_program", "build_model", "build_static_scorecard",
    "check_file", "check_paths", "check_source", "checker_timings",
    "dedupe", "order_sweep_queue", "render_static_scorecard",
    "scan_apps", "score_kernel", "scorecard_dict", "static_precision",
    "static_recall", "triage_kernel", "triage_report", "triage_sweep",
]
