"""Loop-variable capture checker (Figure 8) — the syntactic peer.

Section 7 of the paper: "As a preliminary effort, we built a detector
targeting the non-blocking bugs caused by anonymous functions (e.g.
Figure 8).  Our detector has already discovered a few new bugs."

This began life as the standalone ``repro.detect.capture`` scanner and
now lives in the static tier as one checker among peers, emitting the
shared :class:`~repro.static.model.StaticFinding` schema.  Unlike the
model-based checkers it needs no abstract interpretation — it pattern
matches the AST directly — which is exactly why it also powers *module
mode*: scanning arbitrary files (the mini-apps, user code) where no
whole-program model exists.

Figure 8's pattern exists verbatim in Python: a closure created inside a
loop captures the loop variable *by reference*, so every goroutine
started with ``rt.go(closure)`` may observe the final value.  The fix —
a default-argument copy, ``def w(i=i)``, or passing ``i`` as an
``rt.go`` argument — is the exact analogue of Docker's "pass i as a
parameter" patch.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from .model import StaticFinding

_CHECKER = "capture"
RULE = "loop-var-capture"


def _loop_target_names(node: ast.For) -> Set[str]:
    names: Set[str] = set()
    for target in ast.walk(node.target):
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _free_reads(fn: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda]) -> Set[str]:
    """Names read inside ``fn`` that are neither params nor locally bound."""
    params: Set[str] = set()
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        params.add(arg.arg)
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)

    bound: Set[str] = set(params)
    reads: Set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    reads.add(node.id)
    return reads - bound


class _GoCallCollector(ast.NodeVisitor):
    """Finds ``<anything>.go(fn, ...)`` calls and local function defs."""

    def __init__(self) -> None:
        self.go_calls: List[ast.Call] = []
        self.local_defs: Dict[str, ast.FunctionDef] = {}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "go":
            self.go_calls.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_defs[node.name] = node
        self.generic_visit(node)


def _scan_loop(loop: ast.For, path: str,
               findings: List[StaticFinding]) -> None:
    loop_vars = _loop_target_names(loop)
    if not loop_vars:
        return
    collector = _GoCallCollector()
    for stmt in loop.body + loop.orelse:
        collector.visit(stmt)
    for call in collector.go_calls:
        if not call.args:
            continue
        target = call.args[0]
        fn_node: Optional[Union[ast.FunctionDef, ast.Lambda]] = None
        fn_name = "<lambda>"
        if isinstance(target, ast.Lambda):
            fn_node = target
        elif isinstance(target, ast.Name) \
                and target.id in collector.local_defs:
            fn_node = collector.local_defs[target.id]
            fn_name = target.id
        if fn_node is None:
            continue
        # Default arguments rebind the loop variable: the standard fix.
        defaults: Set[str] = set()
        for arg, default in zip(
            reversed(fn_node.args.args), reversed(fn_node.args.defaults)
        ):
            if default is not None:
                defaults.add(arg.arg)
        captured = (_free_reads(fn_node) & loop_vars) - defaults
        # A parameter with the same name shadows the loop variable.
        params = {a.arg for a in fn_node.args.args}
        captured -= params
        for var in sorted(captured):
            findings.append(StaticFinding(
                checker=_CHECKER,
                rule=RULE,
                message=(f"goroutine closure {fn_name!r} captures loop "
                         f"variable {var!r} by reference"),
                obj=var,
                function=fn_name,
                path=path,
                line=call.lineno,
            ))


def check_tree(tree: ast.AST, path: str = "<string>"
               ) -> List[StaticFinding]:
    """Scan an already-parsed AST (program mode reuses one parse)."""
    findings: List[StaticFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            _scan_loop(node, path, findings)
    return findings


def check_source(source: str, path: str = "<string>"
                 ) -> List[StaticFinding]:
    """Scan one module's source text for goroutine loop-capture bugs."""
    return check_tree(ast.parse(source, filename=path), path)


def check_file(path: Union[str, Path]) -> List[StaticFinding]:
    path = Path(path)
    return check_source(path.read_text(encoding="utf-8"), str(path))


def check_paths(paths: Iterable[Union[str, Path]]) -> List[StaticFinding]:
    """Scan files and directories (recursively, ``*.py``)."""
    findings: List[StaticFinding] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                findings.extend(check_file(file))
        else:
            findings.extend(check_file(entry))
    return findings


def to_capture_finding(finding: StaticFinding):
    """Back-compat bridge to the legacy ``repro.detect`` report type."""
    from ..detect.report import CaptureFinding

    return CaptureFinding(path=finding.path, line=finding.line,
                          loop_var=finding.obj,
                          function=finding.function)
