"""The static analysis engine: one entry point per target shape.

Program mode (``analyze_kernel``) interprets a corpus kernel variant
into a :class:`~repro.static.ir.ProgramModel` and runs the model
checkers — lockgraph, chanshape, sharedrace — plus the syntactic
capture scanner.  Module mode (``analyze_paths``) scans arbitrary
source files (the mini-apps, user code) with the syntactic checkers
only.  Both return :class:`~repro.static.model.StaticReport` with
per-checker wall times, so ``repro bench --static`` can account for
every stage.
"""

from __future__ import annotations

import inspect
import time
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from . import capture, chanshape, lockgraph, sharedrace
from .interp import build_model
from .ir import ProgramModel
from .model import StaticFinding, StaticReport, dedupe

#: the model checkers, in report order
MODEL_CHECKERS: Tuple[Tuple[str, Callable[[ProgramModel],
                                          List[StaticFinding]]], ...] = (
    ("lockgraph", lockgraph.check),
    ("chanshape", chanshape.check),
    ("sharedrace", sharedrace.check),
)


def analyze_program(kernel_cls: Any, variant: str = "buggy",
                    target: Optional[str] = None) -> StaticReport:
    """Interpret one kernel variant and run every checker over it."""
    t_start = time.perf_counter()
    timings = {}
    t0 = time.perf_counter()
    model = build_model(kernel_cls, variant)
    timings["interp"] = time.perf_counter() - t0

    findings: List[StaticFinding] = []
    for name, checker in MODEL_CHECKERS:
        t0 = time.perf_counter()
        findings.extend(checker(model))
        timings[name] = time.perf_counter() - t0

    t0 = time.perf_counter()
    findings.extend(_capture_program(kernel_cls, variant))
    timings["capture"] = time.perf_counter() - t0

    label = target or model.target
    findings = [_with_path(f, label) for f in dedupe(findings)]
    return StaticReport(target=label, findings=findings, timings=timings,
                        wall_s=time.perf_counter() - t_start,
                        mode="program")


def analyze_kernel(kernel: Any, variant: str = "buggy") -> StaticReport:
    """``analyze_program`` with the corpus naming convention."""
    return analyze_program(kernel, variant=variant)


_CLASS_TREES: dict = {}


def _class_tree(kernel_cls: Any):
    """One ``inspect.getsource`` + ``ast.parse`` per kernel class, cached."""
    import ast
    import textwrap
    if kernel_cls in _CLASS_TREES:
        return _CLASS_TREES[kernel_cls]
    tree = None
    try:
        source = inspect.getsource(kernel_cls)
        tree = ast.parse(textwrap.dedent(source))
    except (OSError, TypeError, SyntaxError):
        tree = None
    _CLASS_TREES[kernel_cls] = tree
    return tree


def _capture_program(kernel_cls: Any, variant: str) -> List[StaticFinding]:
    """Run the syntactic capture scanner on the variant's entry code.

    Scanning only the relevant variant (plus shared helpers) keeps a
    capture bug in ``buggy`` from bleeding into the ``fixed`` report.
    """
    import ast
    other = "fixed" if variant == "buggy" else "buggy"
    tree = _class_tree(kernel_cls)
    if tree is None:
        return []
    cls = tree.body[0]
    kept = [n for n in cls.body
            if not (isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and n.name == other)]
    module = ast.Module(body=kept, type_ignores=[])
    name = getattr(getattr(kernel_cls, "meta", None), "kernel_id",
                   kernel_cls.__name__)
    return capture.check_tree(module, path=f"{name} ({variant})")


def _with_path(f: StaticFinding, label: str) -> StaticFinding:
    if f.path:
        return f
    return StaticFinding(checker=f.checker, rule=f.rule, message=f.message,
                         obj=f.obj, function=f.function, path=label,
                         line=f.line)


def analyze_paths(paths: Iterable[Union[str, Path]]) -> StaticReport:
    """Module mode: syntactic checks over arbitrary source files."""
    t_start = time.perf_counter()
    timings = {}
    t0 = time.perf_counter()
    findings = capture.check_paths(paths)
    timings["capture"] = time.perf_counter() - t0
    targets = ", ".join(str(p) for p in paths)
    return StaticReport(target=targets or "<empty>",
                        findings=dedupe(findings), timings=timings,
                        wall_s=time.perf_counter() - t_start,
                        mode="module")


def analyze_corpus(variant: str = "buggy") -> List[StaticReport]:
    """Scan every registered kernel's ``variant`` with every checker."""
    from ..bugs.registry import all_kernels

    return [analyze_program(k, variant=variant) for k in all_kernels()]
