"""The shared static finding/report schema.

Every checker — lock-order graphs, channel shapes, lockset races, the
loop-capture scanner — emits :class:`StaticFinding` records; one scan of
one target produces a :class:`StaticReport`.  The schema is the static
tier's analogue of :class:`repro.predict.report.PredictReport`, and the
triage bridge (:mod:`repro.static.triage`) folds it into the same
:class:`~repro.detect.triage.TriageVerdict` the predictive screen emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Checker names, in report order.
CHECKERS = ("lockgraph", "chanshape", "sharedrace", "capture")


@dataclass(frozen=True)
class StaticFinding:
    """One defect candidate from one checker."""

    checker: str               # lockgraph | chanshape | sharedrace | capture
    rule: str                  # e.g. "abba-cycle", "recv-no-sender"
    message: str
    obj: str = ""              # object involved (mutex/chan/var name)
    function: str = ""         # thread or function context
    path: str = ""             # file path (module mode) or kernel id
    line: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "message": self.message,
            "obj": self.obj,
            "function": self.function,
            "path": self.path,
            "line": self.line,
        }

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.path else f"L{self.line}"
        ctx = f" in {self.function}" if self.function else ""
        return f"[{self.checker}/{self.rule}] {self.message} ({where}{ctx})"


@dataclass
class StaticReport:
    """Everything one static scan of one target produced."""

    target: str
    findings: List[StaticFinding] = field(default_factory=list)
    #: per-stage wall time (seconds): "interp" plus one key per checker.
    timings: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    mode: str = "program"      # program (kernels) | module (apps/paths)

    @property
    def found(self) -> bool:
        return bool(self.findings)

    def by_checker(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.checker] = counts.get(f.checker, 0) + 1
        return counts

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def rules(self) -> List[str]:
        return sorted({f.rule for f in self.findings})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "mode": self.mode,
            "found": self.found,
            "checkers": self.by_checker(),
            "findings": [f.to_dict() for f in self.findings],
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "wall_s": round(self.wall_s, 6),
        }

    def render(self) -> str:
        head = (f"{self.target} ({self.mode} mode, "
                f"{self.wall_s * 1000:.1f}ms)")
        if not self.findings:
            return head + "\n  clean: no checker fired"
        lines = [head]
        for f in self.findings:
            lines.append(f"  {f}")
        return "\n".join(lines)


def dedupe(findings: List[StaticFinding]) -> List[StaticFinding]:
    """Drop findings identical up to (checker, rule, obj, line)."""
    seen = set()
    out = []
    for f in findings:
        key = (f.checker, f.rule, f.obj, f.line)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out
